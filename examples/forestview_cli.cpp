// forestview_cli — command-line front end over the library, the entry point
// a downstream lab would script against. Subcommands:
//
//   generate <dir> [--genes N] [--seed S]
//       synthesize a compendium directory (PCL + manifest)
//   cluster <dir> <dataset> [--metric pearson|euclidean]
//           [--linkage single|complete|avg|ward|median|centroid]
//       hierarchically cluster one member dataset in place (PCL -> CDT+GTR);
//       ward/median/centroid operate on squared Euclidean distances and
//       force --metric euclidean
//   render <dir> <out.ppm> [--select g1,g2,...] [--width W] [--height H]
//       render the synchronized multi-pane frame
//   search <dir> g1,g2,... [--top N] [--iterate R]
//       SPELL search; prints ranked datasets and genes
//   wall <dir> <out.ppm> [--tiles CxR] [--select g1,g2,...]
//       render on the simulated display wall and report frame statistics
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/hclust.hpp"
#include "core/app.hpp"
#include "core/session.hpp"
#include "expr/compendium_io.hpp"
#include "expr/synth.hpp"
#include "spell/spell.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace {

namespace ex = fv::expr;
namespace co = fv::core;

int usage() {
  std::fprintf(stderr,
               "usage: forestview_cli <generate|cluster|render|search|wall> "
               "...\n  see the header comment of forestview_cli.cpp for "
               "per-command flags\n");
  return 2;
}

/// Trivial flag scanner: returns the value following `--name`, or fallback.
std::string flag(int argc, char** argv, const char* name,
                 const std::string& fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

std::vector<std::string> comma_list(const std::string& text) {
  std::vector<std::string> items;
  for (const auto part : fv::str::split(text, ',')) {
    const auto trimmed = fv::str::trim(part);
    if (!trimmed.empty()) items.emplace_back(trimmed);
  }
  return items;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string dir = argv[0];
  ex::CompendiumSpec spec;
  spec.genome = ex::GenomeSpec::yeast_like(static_cast<std::size_t>(
      std::stoul(flag(argc, argv, "--genes", "1000"))));
  spec.seed = std::stoull(flag(argc, argv, "--seed", "2007"));
  spec.stress_datasets = 2;
  spec.nutrient_datasets = 1;
  spec.knockout_datasets = 1;
  spec.noise_datasets = 1;
  const auto compendium = ex::make_compendium(spec);
  ex::save_compendium_dir(compendium.datasets, dir);
  std::printf("wrote %zu datasets (%zu genes) to %s\n",
              compendium.datasets.size(), compendium.genome.gene_count(),
              dir.c_str());
  return 0;
}

int cmd_cluster(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string dir = argv[0];
  const std::string name = argv[1];
  auto datasets = ex::load_compendium_dir(dir);
  const std::string metric_name = flag(argc, argv, "--metric", "pearson");
  fv::cluster::Metric metric;
  if (metric_name == "pearson") {
    metric = fv::cluster::Metric::kPearson;
  } else if (metric_name == "euclidean") {
    metric = fv::cluster::Metric::kEuclidean;
  } else {
    std::fprintf(stderr,
                 "unknown --metric '%s' (expected pearson|euclidean)\n",
                 metric_name.c_str());
    return 2;
  }
  const std::string linkage_name = flag(argc, argv, "--linkage", "avg");
  fv::cluster::Linkage linkage;
  if (linkage_name == "single") {
    linkage = fv::cluster::Linkage::kSingle;
  } else if (linkage_name == "complete") {
    linkage = fv::cluster::Linkage::kComplete;
  } else if (linkage_name == "avg" || linkage_name == "average") {
    linkage = fv::cluster::Linkage::kAverage;
  } else if (linkage_name == "ward") {
    linkage = fv::cluster::Linkage::kWard;
  } else if (linkage_name == "median") {
    linkage = fv::cluster::Linkage::kMedian;
  } else if (linkage_name == "centroid") {
    linkage = fv::cluster::Linkage::kCentroid;
  } else {
    std::fprintf(stderr,
                 "unknown --linkage '%s' (expected single|complete|avg|"
                 "ward|median|centroid)\n",
                 linkage_name.c_str());
    return 2;
  }
  if (fv::cluster::linkage_uses_squared_distances(linkage) &&
      metric != fv::cluster::Metric::kEuclidean) {
    std::printf("note: %s linkage runs on squared Euclidean distances; "
                "forcing --metric euclidean\n",
                linkage_name.c_str());
    metric = fv::cluster::Metric::kEuclidean;
  }
  bool found = false;
  fv::par::ThreadPool pool;
  for (auto& dataset : datasets) {
    if (dataset.name() != name) continue;
    found = true;
    fv::cluster::cluster_genes(dataset, metric, linkage, pool);
    fv::cluster::cluster_arrays(dataset, fv::cluster::Metric::kEuclidean,
                                linkage, pool);
    std::printf("clustered %s (%zu genes x %zu arrays)\n", name.c_str(),
                dataset.gene_count(), dataset.condition_count());
  }
  if (!found) {
    std::fprintf(stderr, "dataset '%s' not in %s\n", name.c_str(),
                 dir.c_str());
    return 1;
  }
  ex::save_compendium_dir(datasets, dir);
  return 0;
}

int cmd_render(int argc, char** argv) {
  if (argc < 2) return usage();
  co::Session session(ex::load_compendium_dir(argv[0]));
  const std::string select = flag(argc, argv, "--select", "");
  if (!select.empty()) {
    const std::size_t found = session.select_by_names(comma_list(select));
    std::printf("selected %zu of the requested genes\n", found);
  } else {
    session.select_region(0, 0, 50);
  }
  co::ForestViewApp app(&session);
  co::FrameConfig config;
  config.width = std::stol(flag(argc, argv, "--width", "1600"));
  config.height = std::stol(flag(argc, argv, "--height", "1200"));
  fv::render::write_ppm(app.render_desktop(config), argv[1]);
  std::printf("wrote %s\n", argv[1]);
  return 0;
}

int cmd_search(int argc, char** argv) {
  if (argc < 2) return usage();
  const auto datasets = ex::load_compendium_dir(argv[0]);
  const auto query = comma_list(argv[1]);
  const auto top = static_cast<std::size_t>(
      std::stoul(flag(argc, argv, "--top", "15")));
  const auto rounds = static_cast<std::size_t>(
      std::stoul(flag(argc, argv, "--iterate", "1")));
  const fv::spell::SpellSearch search(datasets);
  fv::spell::SpellOptions options;
  options.exclude_query_from_ranking = true;
  const auto iterative =
      fv::spell::iterative_search(search, query, rounds, 5, options);
  const auto& result = iterative.final_result;
  std::printf("datasets by relevance:\n");
  for (const auto& score : result.dataset_ranking) {
    std::printf("  %-20s weight=%.3f\n",
                datasets[score.dataset_index].name().c_str(), score.weight);
  }
  std::printf("top %zu genes (after %zu round(s), query grew to %zu):\n",
              top, iterative.rounds_run, iterative.expanded_query.size());
  for (std::size_t i = 0; i < top && i < result.gene_ranking.size(); ++i) {
    std::printf("  %2zu. %-12s %.3f\n", i + 1,
                result.gene_ranking[i].gene.c_str(),
                result.gene_ranking[i].score);
  }
  return 0;
}

int cmd_wall(int argc, char** argv) {
  if (argc < 2) return usage();
  co::Session session(ex::load_compendium_dir(argv[0]));
  const std::string select = flag(argc, argv, "--select", "");
  if (!select.empty()) {
    session.select_by_names(comma_list(select));
  } else {
    session.select_region(0, 0, 80);
  }
  const auto tiles = comma_list(flag(argc, argv, "--tiles", "6x4"));
  fv::wall::WallSpec spec = fv::wall::WallSpec::princeton_wall();
  if (!tiles.empty()) {
    const auto parts = fv::str::split(tiles[0], 'x');
    if (parts.size() == 2) {
      spec.tile_cols = std::stoul(std::string(parts[0]));
      spec.tile_rows = std::stoul(std::string(parts[1]));
    }
  }
  co::ForestViewApp app(&session);
  const auto wall = app.render_wall(spec);
  std::printf("wall %zux%zu tiles (%.1f Mpixel): %.1f ms frame, %zu/%zu "
              "commands executed, %.2f MB shipped\n",
              spec.tile_cols, spec.tile_rows,
              static_cast<double>(wall.stats.pixels) / 1e6,
              wall.stats.total_seconds * 1e3, wall.stats.commands_executed,
              wall.commands * spec.tile_count(),
              static_cast<double>(wall.stats.bytes_distributed) / 1e6);
  fv::render::write_ppm(wall.frame, argv[1]);
  std::printf("wrote %s\n", argv[1]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "generate") return cmd_generate(argc - 2, argv + 2);
    if (command == "cluster") return cmd_cluster(argc - 2, argv + 2);
    if (command == "render") return cmd_render(argc - 2, argv + 2);
    if (command == "search") return cmd_search(argc - 2, argv + 2);
    if (command == "wall") return cmd_wall(argc - 2, argv + 2);
  } catch (const fv::Error& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return usage();
}
