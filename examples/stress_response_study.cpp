// Reproduction of the paper's §4 biological-insight study.
//
// The collaborator's question: "is the traditional global stress response
// signal present in other types of data?" Workflow, exactly as described:
//  1. load standard stress datasets, a nutrient-limitation study and a
//     knockout compendium side by side,
//  2. find and select clusters of genes in the nutrient/knockout data that
//     look like a stress-response effect,
//  3. examine how those genes relate to each other within the stress data.
//
// Because our compendium is synthetic with planted modules, the script can
// also *score* the discovery: the selected cluster should be dominated by
// ESR genes, and its within-stress-data correlation should be high.
//
// Run:  ./stress_response_study [output.ppm]
#include <algorithm>
#include <cstdio>
#include <string>

#include "cluster/hclust.hpp"
#include "core/app.hpp"
#include "core/session.hpp"
#include "expr/synth.hpp"
#include "stats/correlation.hpp"

namespace ex = fv::expr;
namespace cl = fv::cluster;

int main(int argc, char** argv) {
  const std::string output = argc > 1 ? argv[1] : "stress_study.ppm";

  // --- the three data sources of §4 ---------------------------------------
  const auto genome = ex::make_genome(ex::GenomeSpec::yeast_like(1200), 41);
  ex::StressDatasetSpec stress_spec;
  stress_spec.name = "gasch_stress";
  ex::NutrientDatasetSpec nutrient_spec;
  nutrient_spec.name = "saldanha_nutrient";
  ex::KnockoutDatasetSpec knockout_spec;
  knockout_spec.name = "hughes_knockout";
  knockout_spec.knockouts = 150;
  knockout_spec.slow_growth_fraction = 0.2;

  std::vector<ex::Dataset> datasets;
  datasets.push_back(ex::make_stress_dataset(genome, stress_spec, 1));
  datasets.push_back(ex::make_nutrient_dataset(genome, nutrient_spec, 2));
  auto knockout = ex::make_knockout_dataset(genome, knockout_spec, 3);
  datasets.push_back(std::move(knockout.dataset));

  // --- step 2: cluster the knockout data and pick the suspicious cluster --
  fv::par::ThreadPool pool;
  const auto merges = cl::cluster_genes(datasets[2], cl::Metric::kPearson,
                                        cl::Linkage::kAverage, pool);
  const auto tree = *datasets[2].gene_tree();
  const auto clusters = cl::cut_tree_at_similarity(tree, 0.35);
  // The "suspected stress response" cluster: the largest one.
  std::size_t best = 0;
  for (std::size_t i = 1; i < clusters.size(); ++i) {
    if (clusters[i].size() > clusters[best].size()) best = i;
  }
  std::printf("knockout data: %zu clusters at similarity 0.35; largest has "
              "%zu genes\n",
              clusters.size(), clusters[best].size());

  fv::core::Session session(std::move(datasets));
  std::vector<fv::core::GeneId> picked;
  for (const std::size_t row : clusters[best]) {
    picked.push_back(session.merged().catalog().id_of_row(2, row));
  }
  session.select_from_analysis(picked, "knockout-clustering");

  // --- step 3: how do those genes behave inside the stress data? ---------
  const auto& stress = session.dataset(0);
  std::vector<std::size_t> stress_rows;
  for (const auto gene : session.selection().ordered()) {
    if (const auto row = session.merged().catalog().row_in(0, gene);
        row.has_value()) {
      stress_rows.push_back(*row);
    }
  }
  double total_corr = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < stress_rows.size() && i < 60; ++i) {
    for (std::size_t j = i + 1; j < stress_rows.size() && j < 60; ++j) {
      total_corr += fv::stats::pearson(stress.profile(stress_rows[i]),
                                       stress.profile(stress_rows[j]));
      ++pairs;
    }
  }
  const double mean_corr = pairs > 0 ? total_corr / pairs : 0.0;
  std::printf("selected cluster inside stress data: %zu/%zu genes measured, "
              "mean pairwise correlation %.3f\n",
              stress_rows.size(), session.selection().size(), mean_corr);

  // --- ground-truth scoring (impossible with the paper's real data) ------
  std::size_t esr = 0;
  for (const auto gene : session.selection().ordered()) {
    const auto& name = session.merged().catalog().name(gene);
    for (const std::size_t g : genome.module_members("ESR_UP")) {
      if (genome.gene(g).systematic_name == name) {
        ++esr;
        break;
      }
    }
    for (const std::size_t g : genome.module_members("RP")) {
      if (genome.gene(g).systematic_name == name) {
        ++esr;
        break;
      }
    }
  }
  std::printf("ground truth: %zu of %zu selected genes belong to the planted "
              "stress program (ESR_UP or RP)\n",
              esr, session.selection().size());
  std::printf("conclusion: %s\n",
              mean_corr > 0.4
                  ? "the knockout-derived cluster carries the global stress "
                    "response signal — the paper's §4 insight"
                  : "no strong stress signal found (unexpected)");

  // The paper's contrast: doing this without ForestView needs "over a dozen
  // independent instances" and cut-and-paste; here it is one session.
  std::printf("session operations used: %zu (see event log below)\n",
              session.operation_count());
  for (const auto& entry : session.event_log()) {
    std::printf("  - %s\n", entry.c_str());
  }

  fv::core::ForestViewApp app(&session);
  fv::core::FrameConfig config;
  config.width = 1920;
  config.height = 1080;
  fv::render::write_ppm(app.render_desktop(config), output);
  std::printf("wrote %s\n", output.c_str());
  (void)merges;
  return 0;
}
