// GOLEM-in-ForestView (paper §3, Figure 5 workflow): select a cluster of
// co-expressed genes, run GO enrichment on the selection *without* the
// export/re-import round trip, and draw the local exploration map of the
// significantly enriched terms.
//
// Run:  ./golem_explore [map.ppm]
#include <cstdio>
#include <string>

#include "cluster/hclust.hpp"
#include "core/adapters.hpp"
#include "core/session.hpp"
#include "expr/synth.hpp"
#include "go/local_map.hpp"
#include "go/synth_ontology.hpp"

namespace ex = fv::expr;

int main(int argc, char** argv) {
  const std::string output = argc > 1 ? argv[1] : "golem_map.ppm";

  // Genome + GO-like ontology with annotations aligned to planted modules.
  const auto genome = ex::make_genome(ex::GenomeSpec::yeast_like(1000), 17);
  const auto synth_go = fv::go::make_synth_ontology(genome);
  std::printf("ontology: %zu terms, %zu annotated genes\n",
              synth_go.ontology->term_count(),
              synth_go.propagated.gene_count());

  // One stress dataset; cluster it and select the tightest large cluster.
  ex::StressDatasetSpec stress_spec;
  std::vector<ex::Dataset> datasets;
  datasets.push_back(ex::make_stress_dataset(genome, stress_spec, 23));
  fv::par::ThreadPool pool;
  fv::cluster::cluster_genes(datasets[0], fv::cluster::Metric::kPearson,
                             fv::cluster::Linkage::kAverage, pool);
  const auto clusters =
      fv::cluster::cut_tree_at_similarity(*datasets[0].gene_tree(), 0.5);
  std::size_t best = 0;
  for (std::size_t i = 1; i < clusters.size(); ++i) {
    if (clusters[i].size() > clusters[best].size()) best = i;
  }

  fv::core::Session session(std::move(datasets));
  std::vector<fv::core::GeneId> picked;
  for (const std::size_t row : clusters[best]) {
    picked.push_back(session.merged().catalog().id_of_row(0, row));
  }
  session.select_from_analysis(picked, "hierarchical-clustering");
  std::printf("selected the tightest cluster: %zu genes\n",
              session.selection().size());

  // GOLEM on the selection, directly through the adapter.
  const auto enrichment =
      fv::core::run_golem_on_selection(session, synth_go.propagated);
  std::printf("\nGO enrichment (top 8 terms):\n");
  std::printf("  %-12s %-24s %7s %7s %10s %8s\n", "term", "name", "k/n",
              "K/N", "p-value", "q(BH)");
  for (std::size_t i = 0; i < 8 && i < enrichment.terms.size(); ++i) {
    const auto& row = enrichment.terms[i];
    const auto& term = synth_go.ontology->term(row.term);
    char kn[16], KN[16];
    std::snprintf(kn, sizeof(kn), "%zu/%zu", row.query_annotated,
                  row.query_size);
    std::snprintf(KN, sizeof(KN), "%zu/%zu", row.population_annotated,
                  row.population_size);
    std::printf("  %-12s %-24s %7s %7s %10.2e %8.2e\n", term.id.c_str(),
                term.name.substr(0, 24).c_str(), kn, KN, row.p_value,
                row.q_benjamini_hochberg);
  }

  // Local exploration map of the significant terms.
  const auto map =
      fv::go::build_local_map(*synth_go.ontology, enrichment, 0.01);
  std::printf("\nlocal exploration map: %zu terms across %zu layers\n",
              map.nodes.size(), map.layer_count);
  fv::render::Framebuffer fb(1024, 640);
  fv::go::draw_local_map(fb, *synth_go.ontology, map, 10, 10, 1004, 620);
  fv::render::write_ppm(fb, output);
  std::printf("wrote %s\n", output.c_str());
  return 0;
}
