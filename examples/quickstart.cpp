// Quickstart: build a small synthetic compendium, cluster one dataset,
// select a gene region the way a ForestView user would (mouse highlight in
// the global view), and render the synchronized multi-pane display to a PPM
// image.
//
// Run:  ./quickstart [output.ppm]
#include <cstdio>
#include <string>

#include "cluster/hclust.hpp"
#include "core/app.hpp"
#include "core/session.hpp"
#include "expr/synth.hpp"
#include "render/framebuffer.hpp"

int main(int argc, char** argv) {
  const std::string output = argc > 1 ? argv[1] : "quickstart.ppm";

  // 1. A compendium of four yeast-like datasets over one 800-gene genome.
  fv::expr::CompendiumSpec spec;
  spec.genome = fv::expr::GenomeSpec::yeast_like(800);
  spec.stress_datasets = 2;
  spec.nutrient_datasets = 1;
  spec.knockout_datasets = 1;
  spec.noise_datasets = 0;
  spec.seed = 2007;
  auto compendium = fv::expr::make_compendium(spec);
  std::printf("compendium: %zu datasets over %zu genes\n",
              compendium.datasets.size(), compendium.genome.gene_count());

  // 2. Cluster the first stress dataset so its pane has a dendrogram and a
  //    biologically meaningful display order.
  fv::par::ThreadPool pool;
  fv::cluster::cluster_genes(compendium.datasets[0],
                             fv::cluster::Metric::kPearson,
                             fv::cluster::Linkage::kAverage, pool);
  std::printf("clustered '%s' (%zu genes)\n",
              compendium.datasets[0].name().c_str(),
              compendium.datasets[0].gene_count());

  // 3. Open a ForestView session and select a block of 40 adjacent genes in
  //    the clustered global view — the other panes find those genes
  //    automatically through the merged dataset interface.
  fv::core::Session session(std::move(compendium.datasets));
  session.select_region(/*dataset=*/0, /*first=*/100, /*count=*/40);
  std::printf("selected %zu genes; synchronized views across %zu panes\n",
              session.selection().size(), session.dataset_count());

  // 4. Render the multi-pane frame (paper Figure 2) to an image.
  fv::core::ForestViewApp app(&session);
  fv::core::FrameConfig config;
  config.width = 1600;
  config.height = 1200;
  const auto frame = app.render_desktop(config);
  fv::render::write_ppm(frame, output);
  std::printf("wrote %s (%zux%zu)\n", output.c_str(), frame.width(),
              frame.height());

  // 5. Export the selection as a GMT gene list, ForestView's interchange
  //    path to external analysis tools.
  const auto gene_set = session.export_selection("quickstart_selection");
  std::printf("exported gene list '%s' with %zu genes\n",
              gene_set.name.c_str(), gene_set.genes.size());
  return 0;
}
