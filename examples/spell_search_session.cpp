// SPELL-in-ForestView session (paper §3, Figure 4 workflow):
// query a compendium with a handful of related genes, let SPELL rank the
// datasets and genes, then display the results in ForestView — "datasets
// ... in decreasing order of relevance to the query, and the top n genes
// selected and highlighted within each dataset."
//
// Run:  ./spell_search_session [output.ppm]
#include <cstdio>
#include <string>
#include <unordered_set>

#include "core/adapters.hpp"
#include "core/app.hpp"
#include "expr/synth.hpp"
#include "spell/eval.hpp"

namespace ex = fv::expr;

int main(int argc, char** argv) {
  const std::string output = argc > 1 ? argv[1] : "spell_session.ppm";

  ex::CompendiumSpec spec;
  spec.genome = ex::GenomeSpec::yeast_like(900);
  spec.stress_datasets = 2;
  spec.nutrient_datasets = 1;
  spec.knockout_datasets = 1;
  spec.noise_datasets = 2;
  spec.seed = 99;
  auto compendium = ex::make_compendium(spec);

  // Query: five ribosomal-protein genes (by common name, as a user would).
  std::vector<std::string> query;
  for (const std::size_t g : compendium.genome.module_members("RP")) {
    query.push_back(compendium.genome.gene(g).common_name);
    if (query.size() == 5) break;
  }
  std::printf("SPELL query:");
  for (const auto& name : query) std::printf(" %s", name.c_str());
  std::printf("\n");

  // Ground truth for scoring the retrieval.
  std::unordered_set<std::string> rp_members;
  for (const std::size_t g : compendium.genome.module_members("RP")) {
    rp_members.insert(compendium.genome.gene(g).systematic_name);
  }

  fv::core::Session session(std::move(compendium.datasets));
  const auto integration =
      fv::core::apply_spell_search(session, query, /*top_n=*/25);

  std::printf("\ndatasets by SPELL relevance:\n");
  for (const auto& score : integration.result.dataset_ranking) {
    std::printf("  %-14s weight=%.3f (query genes found: %zu)\n",
                session.dataset(score.dataset_index).name().c_str(),
                score.weight, score.query_genes_found);
  }

  std::printf("\ntop 10 genes:\n");
  for (std::size_t i = 0;
       i < 10 && i < integration.result.gene_ranking.size(); ++i) {
    const auto& gene = integration.result.gene_ranking[i];
    std::printf("  %2zu. %-10s score=%.3f %s\n", i + 1, gene.gene.c_str(),
                gene.score,
                rp_members.count(gene.gene) > 0 ? "[RP module]" : "");
  }
  const double p20 = fv::spell::precision_at_k(
      integration.result.gene_ranking, rp_members, 20);
  std::printf("\nprecision@20 against the planted RP module: %.2f\n", p20);

  // The session now shows the reordered panes with the SPELL selection.
  fv::core::ForestViewApp app(&session);
  fv::core::FrameConfig config;
  config.width = 1920;
  config.height = 1080;
  fv::render::write_ppm(app.render_desktop(config), output);
  std::printf("wrote %s (panes reordered by relevance, %zu genes "
              "highlighted)\n",
              output.c_str(), integration.genes_selected);
  return 0;
}
