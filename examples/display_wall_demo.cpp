// Display-wall demo (paper Figure 3): the same ForestView session rendered
// on a 2-Mpixel desktop and on the simulated 24-projector Princeton wall,
// with the distribution/cull/composite statistics the wall pipeline
// produces. Demonstrates the paper's claim that large-format displays give
// roughly two orders of magnitude more visualization capability.
//
// Run:  ./display_wall_demo [wall.ppm]
#include <cstdio>
#include <string>

#include "cluster/hclust.hpp"
#include "core/app.hpp"
#include "expr/synth.hpp"

namespace ex = fv::expr;
namespace wl = fv::wall;

int main(int argc, char** argv) {
  const std::string output = argc > 1 ? argv[1] : "wall_frame.ppm";

  ex::CompendiumSpec spec;
  spec.genome = ex::GenomeSpec::yeast_like(1000);
  spec.stress_datasets = 3;
  spec.nutrient_datasets = 2;
  spec.knockout_datasets = 1;
  spec.noise_datasets = 0;
  spec.seed = 31;
  auto compendium = ex::make_compendium(spec);
  fv::par::ThreadPool pool;
  fv::cluster::cluster_genes(compendium.datasets[0],
                             fv::cluster::Metric::kPearson,
                             fv::cluster::Linkage::kAverage, pool);

  fv::core::Session session(std::move(compendium.datasets));
  session.select_region(0, 50, 120);
  fv::core::ForestViewApp app(&session);

  // Desktop: a paper-era 2-Mpixel monitor.
  const auto desktop_spec = wl::WallSpec::desktop();
  fv::core::FrameConfig desktop_config;
  desktop_config.width = static_cast<long>(desktop_spec.total_width());
  desktop_config.height = static_cast<long>(desktop_spec.total_height());
  const auto desktop = app.render_desktop(desktop_config);
  std::printf("desktop frame: %zux%zu = %.1f Mpixel\n", desktop.width(),
              desktop.height(),
              static_cast<double>(desktop.pixel_count()) / 1e6);

  // Wall: Princeton's 6x4 projector grid, one simulated node per tile.
  const auto wall_spec = wl::WallSpec::princeton_wall();
  const auto wall = app.render_wall(wall_spec);
  std::printf("wall frame:    %zux%zu = %.1f Mpixel on %zu tiles\n",
              wall.frame.width(), wall.frame.height(),
              static_cast<double>(wall.stats.pixels) / 1e6,
              wall_spec.tile_count());
  std::printf("  commands: %zu recorded, %zu executed after per-tile "
              "culling (%.1fx replication)\n",
              wall.commands, wall.stats.commands_executed,
              static_cast<double>(wall.stats.commands_executed) /
                  static_cast<double>(wall.commands));
  std::printf("  distribution: %.2f MB shipped to nodes\n",
              static_cast<double>(wall.stats.bytes_distributed) / 1e6);
  std::printf("  frame time: %.1f ms total, slowest node %.1f ms\n",
              wall.stats.total_seconds * 1e3,
              wall.stats.max_node_render_seconds * 1e3);
  std::printf("  pixel capability vs desktop: %.1fx (paper: ~two orders of "
              "magnitude counting physical size)\n",
              static_cast<double>(wall.stats.pixels) /
                  static_cast<double>(desktop.pixel_count()));

  fv::render::write_ppm(wall.frame, output);
  std::printf("wrote %s\n", output.c_str());
  return 0;
}
