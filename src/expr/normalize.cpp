#include "expr/normalize.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace fv::expr {

void log2_transform(ExpressionMatrix& matrix) {
  for (float& v : matrix.data()) {
    if (stats::is_missing(v)) continue;
    FV_REQUIRE(v > 0.0f, "log2_transform requires positive values");
    v = std::log2(v);
  }
}

void median_center_rows(ExpressionMatrix& matrix) {
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    auto row = matrix.row(r);
    const double med = stats::median(row);
    if (std::isnan(med)) continue;
    for (float& v : row) {
      if (!stats::is_missing(v)) v = static_cast<float>(v - med);
    }
  }
}

void z_normalize_rows(ExpressionMatrix& matrix) {
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    stats::z_normalize(matrix.row(r));
  }
}

std::size_t mean_impute(ExpressionMatrix& matrix) {
  std::size_t imputed = 0;
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    auto row = matrix.row(r);
    const double row_mean = stats::mean(row);
    const float fill =
        std::isnan(row_mean) ? 0.0f : static_cast<float>(row_mean);
    for (float& v : row) {
      if (stats::is_missing(v)) {
        v = fill;
        ++imputed;
      }
    }
  }
  return imputed;
}

namespace {

/// Coverage-scaled Euclidean distance over shared present columns;
/// infinity when fewer than 2 columns are shared.
double impute_distance(std::span<const float> a, std::span<const float> b) {
  double sum = 0.0;
  std::size_t shared = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (stats::is_missing(a[i]) || stats::is_missing(b[i])) continue;
    const double diff = static_cast<double>(a[i]) - b[i];
    sum += diff * diff;
    ++shared;
  }
  if (shared < 2) return std::numeric_limits<double>::infinity();
  return std::sqrt(sum * static_cast<double>(a.size()) /
                   static_cast<double>(shared));
}

}  // namespace

std::size_t knn_impute(ExpressionMatrix& matrix, std::size_t k) {
  FV_REQUIRE(k >= 1, "knn_impute needs k >= 1");
  // Neighbor candidates are drawn from the original (pre-imputation) data so
  // results are order-independent.
  const ExpressionMatrix original = matrix;
  std::size_t imputed = 0;
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    // Columns missing in this row.
    std::vector<std::size_t> holes;
    for (std::size_t c = 0; c < matrix.cols(); ++c) {
      if (stats::is_missing(original.at(r, c))) holes.push_back(c);
    }
    if (holes.empty()) continue;

    // k nearest rows by distance (partial selection keeps this O(n log k)).
    std::vector<std::pair<double, std::size_t>> neighbors;
    for (std::size_t other = 0; other < original.rows(); ++other) {
      if (other == r) continue;
      const double d = impute_distance(original.row(r), original.row(other));
      if (std::isinf(d)) continue;
      neighbors.emplace_back(d, other);
    }
    const std::size_t keep = std::min(k, neighbors.size());
    std::partial_sort(neighbors.begin(),
                      neighbors.begin() + static_cast<long>(keep),
                      neighbors.end());
    neighbors.resize(keep);

    const double row_mean = stats::mean(original.row(r));
    const float fallback =
        std::isnan(row_mean) ? 0.0f : static_cast<float>(row_mean);
    for (const std::size_t c : holes) {
      double weighted = 0.0;
      double weight_total = 0.0;
      for (const auto& [distance, other] : neighbors) {
        const float v = original.at(other, c);
        if (stats::is_missing(v)) continue;
        const double w = 1.0 / std::max(distance, 1e-9);
        weighted += w * v;
        weight_total += w;
      }
      matrix.set(r, c, weight_total > 0.0
                           ? static_cast<float>(weighted / weight_total)
                           : fallback);
      ++imputed;
    }
  }
  return imputed;
}

}  // namespace fv::expr
