#include "expr/normalize.hpp"

#include <algorithm>
#include <cmath>

#include "sim/similarity_engine.hpp"
#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace fv::expr {

void log2_transform(ExpressionMatrix& matrix) {
  for (float& v : matrix.data()) {
    if (stats::is_missing(v)) continue;
    FV_REQUIRE(v > 0.0f, "log2_transform requires positive values");
    v = std::log2(v);
  }
}

void median_center_rows(ExpressionMatrix& matrix) {
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    auto row = matrix.row(r);
    const double med = stats::median(row);
    if (std::isnan(med)) continue;
    for (float& v : row) {
      if (!stats::is_missing(v)) v = static_cast<float>(v - med);
    }
  }
}

void z_normalize_rows(ExpressionMatrix& matrix) {
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    stats::z_normalize(matrix.row(r));
  }
}

std::size_t mean_impute(ExpressionMatrix& matrix) {
  std::size_t imputed = 0;
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    auto row = matrix.row(r);
    const double row_mean = stats::mean(row);
    const float fill =
        std::isnan(row_mean) ? 0.0f : static_cast<float>(row_mean);
    for (float& v : row) {
      if (stats::is_missing(v)) {
        v = fill;
        ++imputed;
      }
    }
  }
  return imputed;
}

std::size_t knn_impute(ExpressionMatrix& matrix, std::size_t k) {
  return knn_impute(matrix, k, par::ThreadPool::shared());
}

std::size_t knn_impute(ExpressionMatrix& matrix, std::size_t k,
                       par::ThreadPool& pool) {
  FV_REQUIRE(k >= 1, "knn_impute needs k >= 1");
  if (matrix.rows() == 0 || matrix.cols() == 0) return 0;
  // Complete matrices (common after upstream QC) must not pay the O(n²·m)
  // distance phase for a guaranteed zero result.
  const auto& values = matrix.data();
  if (std::none_of(values.begin(), values.end(),
                   [](float v) { return stats::is_missing(v); })) {
    return 0;
  }
  // Neighbor candidates are drawn from the original (pre-imputation) data so
  // results are order-independent. The engine's Euclidean kernel is the
  // coverage-scaled distance this function always used
  // (sqrt(sum * cols / shared) over shared present columns); min_common = 2
  // reproduces the old rule that neighbors sharing fewer than 2 columns
  // carry no evidence. One streamed top-k pass replaces the seed's scalar
  // O(n² · m) per-pair loop, and only n x k neighbors are ever stored.
  const auto engine =
      sim::SimilarityEngine::from_rows(matrix, sim::Metric::kEuclidean);
  const sim::NeighborTable neighbors = engine.top_k_neighbors(k, pool, 2);

  std::size_t imputed = 0;
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    if (!engine.row_has_missing(r)) continue;

    const double row_mean = stats::mean(matrix.row(r));
    const float fallback =
        std::isnan(row_mean) ? 0.0f : static_cast<float>(row_mean);
    const auto nearest = neighbors.neighbors(r);
    const auto nearest_d = neighbors.neighbor_distances(r);
    for (std::size_t c = 0; c < matrix.cols(); ++c) {
      if (!stats::is_missing(matrix.at(r, c))) continue;
      double weighted = 0.0;
      double weight_total = 0.0;
      for (std::size_t s = 0; s < nearest.size(); ++s) {
        const std::size_t other = nearest[s];
        // Reading the pre-imputation value through the engine's mask keeps
        // rows from seeing each other's imputed cells without copying the
        // whole matrix: the fill loop below only touches cells missing in
        // `matrix`, which stay missing until their own row is processed —
        // but `other`'s row may already be filled, so consult the mask.
        if (!engine.value_present(other, c)) continue;
        const double w = 1.0 / std::max<double>(nearest_d[s], 1e-9);
        weighted += w * matrix.at(other, c);
        weight_total += w;
      }
      matrix.set(r, c, weight_total > 0.0
                           ? static_cast<float>(weighted / weight_total)
                           : fallback);
      ++imputed;
    }
  }
  return imputed;
}

}  // namespace fv::expr
