// Per-row normalizations applied before clustering/search, mirroring the
// preprocessing options of Cluster 3.0 / Java TreeView.
#pragma once

#include "expr/expression_matrix.hpp"
#include "par/thread_pool.hpp"

namespace fv::expr {

/// log2-transforms every present value; requires all present values > 0
/// (raw intensity ratios). Missing cells stay missing.
void log2_transform(ExpressionMatrix& matrix);

/// Subtracts each row's median from its present values.
void median_center_rows(ExpressionMatrix& matrix);

/// Z-scores each row over present values (constant rows become zero).
void z_normalize_rows(ExpressionMatrix& matrix);

/// Replaces missing cells with their row mean; rows that are entirely
/// missing become zero. Returns the number of imputed cells.
std::size_t mean_impute(ExpressionMatrix& matrix);

/// KNN imputation (Troyanskaya et al. 2001, the standard microarray
/// preprocessing): each missing cell is filled with the weighted average of
/// that column's values in the k nearest rows (coverage-scaled Euclidean
/// over shared present columns — neighbors sharing < 2 columns are
/// excluded — weights 1/distance). Rows with no usable neighbor fall back
/// to the row mean. Returns the number of imputed cells.
///
/// Neighbors come from one sim::SimilarityEngine::top_k_neighbors pass:
/// the distance phase streams 64x64 tiles through vectorized kernels and
/// keeps only n x k candidates (O(n·k) memory), instead of the seed's
/// scalar per-pair rescan of the whole matrix per missing-bearing row.
std::size_t knn_impute(ExpressionMatrix& matrix, std::size_t k = 10);
std::size_t knn_impute(ExpressionMatrix& matrix, std::size_t k,
                       par::ThreadPool& pool);

}  // namespace fv::expr
