// Synthetic yeast-like compendium generator.
//
// The paper's studies run over published yeast microarray collections
// (Gasch stress time courses, Saldanha/Brauer nutrient-limitation chemostats,
// the Hughes knockout compendium). Those specific datasets are not available
// here, so this module generates structurally equivalent data over a shared
// gene universe with *planted* co-expression modules. Because the planted
// structure is known, every downstream experiment (SPELL retrieval, GOLEM
// enrichment, the §4 stress-response study) can additionally be scored
// against ground truth — something the original data never allowed.
//
// The planted biology mirrors the real yeast programs the paper leans on:
//  * ESR_UP    — environmental-stress-response induced genes,
//  * RP / RIBI — ribosomal protein & ribosome-biogenesis genes, repressed
//                under stress and tracking growth rate (the §4 insight is
//                that nutrient-limitation and knockout data secretly carry
//                this signature),
//  * HSP/OXI   — stress-specific programs (heat, oxidative),
//  * MITO, CC  — housekeeping programs touched only by specific knockouts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "expr/dataset.hpp"

namespace fv::expr {

/// One planted co-expression module.
struct ModuleSpec {
  std::string name;          ///< e.g. "ESR_UP"
  double fraction = 0.0;     ///< share of the genome in this module
  std::string gene_prefix;   ///< common-name prefix, e.g. "HSP"
  std::string description;   ///< annotation text given to member genes
  double amplitude = 1.5;    ///< typical |log2 ratio| at full response
};

/// Genome-level generator parameters.
struct GenomeSpec {
  std::size_t gene_count = 2000;
  std::vector<ModuleSpec> modules;

  /// The default yeast-like module set described above.
  static GenomeSpec yeast_like(std::size_t gene_count = 2000);
};

/// The generated gene universe shared by all datasets in a compendium.
class SynthGenome {
 public:
  SynthGenome(std::vector<GeneInfo> genes, std::vector<int> module_of,
              std::vector<double> amplitude,
              std::vector<std::string> module_names);

  std::size_t gene_count() const noexcept { return genes_.size(); }
  const std::vector<GeneInfo>& genes() const noexcept { return genes_; }
  const GeneInfo& gene(std::size_t index) const;

  /// Module index of a gene, or -1 for background genes.
  int module_of(std::size_t gene) const;

  /// Per-gene response strength multiplier (log-normal-ish around 1).
  double amplitude(std::size_t gene) const;

  const std::vector<std::string>& module_names() const noexcept {
    return module_names_;
  }
  /// Index of a module by name; nullopt when absent.
  std::optional<std::size_t> module_index(std::string_view name) const;
  /// Gene indices belonging to the named module.
  std::vector<std::size_t> module_members(std::string_view name) const;

 private:
  std::vector<GeneInfo> genes_;
  std::vector<int> module_of_;
  std::vector<double> amplitude_;
  std::vector<std::string> module_names_;
};

SynthGenome make_genome(const GenomeSpec& spec, std::uint64_t seed);

/// Gasch-style stress time courses: several stresses, each a ramp of time
/// points. ESR_UP rises, RP/RIBI fall, HSP/OXI respond to their stress.
struct StressDatasetSpec {
  std::string name = "stress";
  std::vector<std::string> stresses = {"heat", "h2o2", "osmotic", "diamide"};
  std::size_t time_points = 6;
  double noise_sd = 0.30;
  double missing_rate = 0.02;
  /// Fraction of genes measured (rows present) in this dataset.
  double measured_fraction = 1.0;
};
Dataset make_stress_dataset(const SynthGenome& genome,
                            const StressDatasetSpec& spec,
                            std::uint64_t seed);

/// Saldanha/Brauer-style nutrient-limitation chemostats: per nutrient, a
/// series of growth rates. Slow growth expresses the stress signature —
/// exactly the cross-dataset effect the paper's §4 collaborator chased.
struct NutrientDatasetSpec {
  std::string name = "nutrient";
  std::vector<std::string> nutrients = {"glucose", "nitrogen", "phosphate",
                                        "sulfate"};
  std::vector<double> growth_rates = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  double noise_sd = 0.30;
  double missing_rate = 0.02;
  double measured_fraction = 1.0;
};
Dataset make_nutrient_dataset(const SynthGenome& genome,
                              const NutrientDatasetSpec& spec,
                              std::uint64_t seed);

/// Hughes-style knockout compendium: one array per deletion strain.
struct KnockoutDatasetSpec {
  std::string name = "knockout";
  std::size_t knockouts = 120;
  /// Knockout conditions that act as regulators of each module.
  std::size_t regulators_per_module = 3;
  /// Fraction of knockouts that grow slowly and induce a (scaled) ESR.
  double slow_growth_fraction = 0.15;
  double slow_growth_scale = 0.6;
  double noise_sd = 0.30;
  double missing_rate = 0.02;
  double measured_fraction = 1.0;
};

/// Ground truth describing how each knockout condition was generated.
struct KnockoutTruth {
  /// Per condition: targeted module index, or -1 for a neutral knockout.
  std::vector<int> targeted_module;
  /// Per condition: +1 when the deletion induces its module, -1 represses.
  std::vector<int> regulation_sign;
  /// Per condition: whether the strain is a slow grower (carries ESR).
  std::vector<bool> slow_growth;
};

struct KnockoutResult {
  Dataset dataset;
  KnockoutTruth truth;
};
KnockoutResult make_knockout_dataset(const SynthGenome& genome,
                                     const KnockoutDatasetSpec& spec,
                                     std::uint64_t seed);

/// Unstructured control dataset (noise only); SPELL should rank these last.
struct NoiseDatasetSpec {
  std::string name = "noise";
  std::size_t conditions = 20;
  double noise_sd = 0.6;
  double missing_rate = 0.02;
  double measured_fraction = 1.0;
};
Dataset make_noise_dataset(const SynthGenome& genome,
                           const NoiseDatasetSpec& spec, std::uint64_t seed);

/// A whole multi-dataset compendium over one shared genome.
struct CompendiumSpec {
  GenomeSpec genome = GenomeSpec::yeast_like();
  std::size_t stress_datasets = 2;
  std::size_t nutrient_datasets = 1;
  std::size_t knockout_datasets = 1;
  std::size_t noise_datasets = 1;
  /// Genes measured per dataset (rows are subsampled and shuffled so the
  /// per-dataset gene orders genuinely differ, as in real compendia).
  double measured_fraction = 0.9;
  std::uint64_t seed = 42;
};

struct Compendium {
  SynthGenome genome;
  std::vector<Dataset> datasets;
  /// Truth for each knockout dataset, keyed by dataset index.
  std::vector<std::pair<std::size_t, KnockoutTruth>> knockout_truth;

  Compendium(SynthGenome g) : genome(std::move(g)) {}
};

Compendium make_compendium(const CompendiumSpec& spec);

}  // namespace fv::expr
