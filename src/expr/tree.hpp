// Hierarchical-clustering tree model, matching the Java TreeView GTR/ATR
// node structure: leaves 0..n-1 are matrix rows (or columns), internal nodes
// are appended in merge order and carry the similarity at which their two
// children were joined.
#pragma once

#include <cstddef>
#include <vector>

namespace fv::expr {

/// One internal merge node; children may be leaves (< leaf_count) or earlier
/// internal nodes (>= leaf_count).
struct HierTreeNode {
  int left = -1;
  int right = -1;
  double similarity = 0.0;  ///< correlation at the merge, in [-1, 1]
};

class HierTree {
 public:
  HierTree() = default;
  explicit HierTree(std::size_t leaf_count);

  /// Appends a merge of `left` and `right` (ids of leaves or existing
  /// internal nodes); returns the new node's id. Each node may be used as a
  /// child exactly once.
  int add_node(int left, int right, double similarity);

  std::size_t leaf_count() const noexcept { return leaf_count_; }
  std::size_t internal_count() const noexcept { return nodes_.size(); }

  /// Total id space: leaves plus internal nodes.
  std::size_t node_count() const noexcept {
    return leaf_count_ + nodes_.size();
  }

  bool is_leaf(int id) const noexcept {
    return id >= 0 && static_cast<std::size_t>(id) < leaf_count_;
  }

  /// Internal node record for id in [leaf_count, node_count).
  const HierTreeNode& node(int id) const;

  /// Root id; the last node added (or the single leaf when n == 1).
  int root() const;

  /// True when every node except the root is referenced exactly once and the
  /// tree covers all leaves — i.e. a complete dendrogram.
  bool is_complete() const;

  /// Leaf ids in left-to-right dendrogram order (the display order used by
  /// TreeView-style global views).
  std::vector<std::size_t> leaf_order() const;

  /// All leaves in the subtree rooted at `id`, in dendrogram order.
  std::vector<std::size_t> leaves_under(int id) const;

 private:
  std::size_t leaf_count_ = 0;
  std::vector<HierTreeNode> nodes_;
};

}  // namespace fv::expr
