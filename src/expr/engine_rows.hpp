// Compendium rows served back out of a similarity engine.
//
// A kAllPairs engine already stores every input row verbatim (filled rows
// with missing cells zeroed + the presence bitmask), so consumers that
// need the original matrix — kNN imputation's fill loop, exports, tests —
// can reconstruct it from the engine alone. The interesting case is a
// borrowed-mapped engine (store::open_engine_mapped): the rows then come
// straight off the artifact mapping, meaning a warm process can serve
// compendium values without ever materializing a second heap copy of the
// matrix, and without re-parsing a single input file.
#pragma once

#include "expr/expression_matrix.hpp"
#include "sim/similarity_engine.hpp"

namespace fv::expr {

/// Reconstructs the exact input matrix a kAllPairs engine was built from:
/// size() x length(), each cell the original value where the engine's
/// presence bitmask says it was present and missing (quiet NaN) where not.
/// Bit-identical to the matrix passed to SimilarityEngine::from_rows —
/// filled rows preserve present cells verbatim — whether the engine is
/// heap-owned or borrowed-mapped. Throws fv::InvalidArgument on a kDotBank
/// engine (it keeps no filled rows by design).
ExpressionMatrix matrix_from_engine(const sim::SimilarityEngine& engine);

}  // namespace fv::expr
