#include "expr/dataset.hpp"

#include "util/string_util.hpp"

namespace fv::expr {

Dataset::Dataset(std::string name, std::vector<GeneInfo> genes,
                 std::vector<std::string> conditions, ExpressionMatrix values)
    : name_(std::move(name)),
      genes_(std::move(genes)),
      conditions_(std::move(conditions)),
      values_(std::move(values)) {
  FV_REQUIRE(genes_.size() == values_.rows(),
             "gene list and matrix row count disagree");
  FV_REQUIRE(conditions_.size() == values_.cols(),
             "condition list and matrix column count disagree");
  build_name_index();
}

const GeneInfo& Dataset::gene(std::size_t row) const {
  FV_REQUIRE(row < genes_.size(), "gene row out of range");
  return genes_[row];
}

const std::string& Dataset::condition(std::size_t col) const {
  FV_REQUIRE(col < conditions_.size(), "condition column out of range");
  return conditions_[col];
}

void Dataset::build_name_index() {
  name_index_.clear();
  name_index_.reserve(genes_.size() * 2);
  for (std::size_t row = 0; row < genes_.size(); ++row) {
    const GeneInfo& g = genes_[row];
    if (!g.systematic_name.empty()) {
      // First occurrence wins so duplicated identifiers stay deterministic.
      name_index_.emplace(str::to_lower(g.systematic_name), row);
    }
    if (!g.common_name.empty()) {
      name_index_.emplace(str::to_lower(g.common_name), row);
    }
  }
}

std::optional<std::size_t> Dataset::row_of(std::string_view gene_name) const {
  const auto it = name_index_.find(str::to_lower(str::trim(gene_name)));
  if (it == name_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::size_t> Dataset::search_annotation(
    std::string_view query) const {
  std::vector<std::size_t> hits;
  const std::string_view needle = str::trim(query);
  if (needle.empty()) return hits;
  for (std::size_t row = 0; row < genes_.size(); ++row) {
    const GeneInfo& g = genes_[row];
    if (str::icontains(g.systematic_name, needle) ||
        str::icontains(g.common_name, needle) ||
        str::icontains(g.description, needle)) {
      hits.push_back(row);
    }
  }
  return hits;
}

void Dataset::attach_gene_tree(HierTree tree) {
  FV_REQUIRE(tree.leaf_count() == gene_count(),
             "gene tree leaf count must equal gene count");
  FV_REQUIRE(tree.is_complete(), "gene tree must be a complete dendrogram");
  gene_tree_ = std::move(tree);
}

void Dataset::attach_array_tree(HierTree tree) {
  FV_REQUIRE(tree.leaf_count() == condition_count(),
             "array tree leaf count must equal condition count");
  FV_REQUIRE(tree.is_complete(), "array tree must be a complete dendrogram");
  array_tree_ = std::move(tree);
}

std::vector<std::size_t> Dataset::display_order() const {
  if (gene_tree_.has_value()) return gene_tree_->leaf_order();
  std::vector<std::size_t> order(gene_count());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  return order;
}

}  // namespace fv::expr
