#include "expr/cdt_io.hpp"

#include <cmath>
#include <filesystem>
#include <sstream>
#include <unordered_map>

#include "stats/descriptive.hpp"
#include "util/string_util.hpp"
#include "util/table_io.hpp"

namespace fv::expr {

namespace {

std::string gene_leaf_name(std::size_t row) {
  return "GENE" + std::to_string(row) + "X";
}

std::string array_leaf_name(std::size_t col) {
  return "ARRY" + std::to_string(col) + "X";
}

std::string node_name(std::size_t merge_index) {
  return "NODE" + std::to_string(merge_index + 1) + "X";
}

std::string format_name_cell(const GeneInfo& gene) {
  if (gene.description.empty()) return gene.common_name;
  return gene.common_name + "|" + gene.description;
}

GeneInfo parse_name_cell(std::string_view id, std::string_view name_cell) {
  GeneInfo info;
  info.systematic_name = std::string(fv::str::trim(id));
  const std::size_t bar = name_cell.find('|');
  if (bar == std::string_view::npos) {
    info.common_name = std::string(fv::str::trim(name_cell));
  } else {
    info.common_name = std::string(fv::str::trim(name_cell.substr(0, bar)));
    info.description = std::string(fv::str::trim(name_cell.substr(bar + 1)));
  }
  return info;
}

void append_value(std::string& out, float value) {
  if (fv::stats::is_missing(value)) return;
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", static_cast<double>(value));
  out += buffer;
}

// Serializes merges as "NODEkX child child similarity" rows, children named
// after the given leaf-name function.
template <typename LeafNameFn>
std::string format_tree(const HierTree& tree, LeafNameFn leaf_name) {
  std::string out;
  const std::size_t leaves = tree.leaf_count();
  for (std::size_t m = 0; m + 1 < leaves; ++m) {
    const int id = static_cast<int>(leaves + m);
    const HierTreeNode& node = tree.node(id);
    const auto child_name = [&](int child) {
      return tree.is_leaf(child)
                 ? leaf_name(static_cast<std::size_t>(child))
                 : node_name(static_cast<std::size_t>(child) - leaves);
    };
    char sim[32];
    std::snprintf(sim, sizeof(sim), "%.6g", node.similarity);
    out += node_name(m) + '\t' + child_name(node.left) + '\t' +
           child_name(node.right) + '\t' + sim + '\n';
  }
  return out;
}

// Parses tree text; `resolve_leaf` maps a leaf token (e.g. "GENE7X") to a
// leaf index, returning npos for unknown tokens.
HierTree parse_tree(const std::string& text, std::size_t leaf_count,
                    const std::unordered_map<std::string, std::size_t>&
                        leaf_ids) {
  HierTree tree(leaf_count);
  std::unordered_map<std::string, int> node_ids;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (fv::str::trim(line).empty()) continue;
    const auto fields = fv::str::split(line, '\t');
    if (fields.size() < 4) {
      throw ParseError("tree row needs NODE, two children, similarity",
                       line_no);
    }
    const auto resolve = [&](std::string_view token) -> int {
      const std::string key(fv::str::trim(token));
      if (const auto it = leaf_ids.find(key); it != leaf_ids.end()) {
        return static_cast<int>(it->second);
      }
      if (const auto it = node_ids.find(key); it != node_ids.end()) {
        return it->second;
      }
      throw ParseError("unknown tree child '" + key + "'", line_no);
    };
    const int left = resolve(fields[1]);
    const int right = resolve(fields[2]);
    const auto similarity = fv::str::parse_double(fields[3]);
    if (!similarity.has_value()) {
      throw ParseError("unparseable similarity", line_no);
    }
    const int id = tree.add_node(left, right, *similarity);
    node_ids.emplace(std::string(fv::str::trim(fields[0])), id);
  }
  if (!tree.is_complete()) {
    throw ParseError("tree file does not describe a complete dendrogram");
  }
  return tree;
}

}  // namespace

CdtBundle format_cdt(const Dataset& dataset) {
  CdtBundle bundle;
  const bool has_gene_tree = dataset.gene_tree().has_value();
  const bool has_array_tree = dataset.array_tree().has_value();

  std::string& out = bundle.cdt;
  out.reserve(dataset.gene_count() * (dataset.condition_count() * 8 + 48));
  if (has_gene_tree) out += "GID\t";
  out += "ID\tNAME\tGWEIGHT";
  for (const std::string& condition : dataset.conditions()) {
    out += '\t';
    out += condition;
  }
  out += '\n';

  const std::size_t meta_cols = has_gene_tree ? 4 : 3;
  if (has_array_tree) {
    out += "AID";
    for (std::size_t i = 1; i < meta_cols; ++i) out += '\t';
    for (std::size_t c = 0; c < dataset.condition_count(); ++c) {
      out += '\t';
      out += array_leaf_name(c);
    }
    out += '\n';
  }
  out += "EWEIGHT";
  for (std::size_t i = 1; i < meta_cols; ++i) out += '\t';
  for (std::size_t c = 0; c < dataset.condition_count(); ++c) out += "\t1";
  out += '\n';

  for (const std::size_t r : dataset.display_order()) {
    if (has_gene_tree) {
      out += gene_leaf_name(r);
      out += '\t';
    }
    const GeneInfo& gene = dataset.gene(r);
    out += gene.systematic_name;
    out += '\t';
    out += format_name_cell(gene);
    out += "\t1";
    const auto row = dataset.values().row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += '\t';
      append_value(out, row[c]);
    }
    out += '\n';
  }

  if (has_gene_tree) {
    bundle.gtr = format_tree(*dataset.gene_tree(), gene_leaf_name);
  }
  if (has_array_tree) {
    bundle.atr = format_tree(*dataset.array_tree(), array_leaf_name);
  }
  return bundle;
}

Dataset parse_cdt(const CdtBundle& bundle, const std::string& name) {
  std::vector<std::string> lines;
  {
    std::istringstream stream(bundle.cdt);
    std::string line;
    while (std::getline(stream, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      lines.push_back(line);
    }
  }
  if (lines.empty()) throw ParseError("empty CDT file");

  const auto header = str::split(lines[0], '\t');
  if (header.empty()) throw ParseError("missing CDT header", 1);
  const bool has_gid = str::iequals(str::trim(header[0]), "GID");
  const std::size_t meta_cols = has_gid ? 4 : 3;
  if (header.size() < meta_cols) {
    throw ParseError("CDT header too short", 1);
  }
  std::vector<std::string> conditions;
  for (std::size_t c = meta_cols; c < header.size(); ++c) {
    conditions.emplace_back(str::trim(header[c]));
  }
  const std::size_t cols = conditions.size();

  // Optional AID row then optional EWEIGHT row.
  std::size_t next_line = 1;
  std::vector<std::string> array_leaf_tokens;
  if (next_line < lines.size()) {
    const auto fields = str::split(lines[next_line], '\t');
    if (!fields.empty() && str::iequals(str::trim(fields[0]), "AID")) {
      for (std::size_t c = meta_cols; c < fields.size(); ++c) {
        array_leaf_tokens.emplace_back(str::trim(fields[c]));
      }
      if (array_leaf_tokens.size() != cols) {
        throw ParseError("AID row width disagrees with header",
                         next_line + 1);
      }
      ++next_line;
    }
  }
  if (next_line < lines.size()) {
    const auto fields = str::split(lines[next_line], '\t');
    if (!fields.empty() && str::iequals(str::trim(fields[0]), "EWEIGHT")) {
      ++next_line;
    }
  }

  std::vector<GeneInfo> genes;
  std::vector<std::vector<float>> rows;
  std::unordered_map<std::string, std::size_t> gene_leaf_ids;
  for (std::size_t ln = next_line; ln < lines.size(); ++ln) {
    if (str::trim(lines[ln]).empty()) continue;
    const auto fields = str::split(lines[ln], '\t');
    if (fields.size() < meta_cols) {
      throw ParseError("CDT data row too short", ln + 1);
    }
    if (fields.size() > meta_cols + cols) {
      throw ParseError("CDT data row too long", ln + 1);
    }
    const std::size_t row_index = rows.size();
    if (has_gid) {
      gene_leaf_ids.emplace(std::string(str::trim(fields[0])), row_index);
    }
    genes.push_back(
        parse_name_cell(fields[meta_cols - 3], fields[meta_cols - 2]));
    std::vector<float> row(cols, stats::missing_value());
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t field = meta_cols + c;
      if (field >= fields.size()) break;
      const std::string_view cell = str::trim(fields[field]);
      if (cell.empty()) continue;
      const auto value = str::parse_double(cell);
      if (!value.has_value()) {
        throw ParseError("unparseable expression value", ln + 1);
      }
      row[c] = static_cast<float>(*value);
    }
    rows.push_back(std::move(row));
  }

  ExpressionMatrix matrix(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < cols; ++c) matrix.set(r, c, rows[r][c]);
  }
  Dataset dataset(name, std::move(genes), std::move(conditions),
                  std::move(matrix));

  if (!bundle.gtr.empty()) {
    if (!has_gid) {
      throw ParseError("GTR supplied but CDT has no GID column");
    }
    dataset.attach_gene_tree(
        parse_tree(bundle.gtr, dataset.gene_count(), gene_leaf_ids));
  }
  if (!bundle.atr.empty()) {
    std::unordered_map<std::string, std::size_t> array_leaf_ids;
    if (!array_leaf_tokens.empty()) {
      for (std::size_t c = 0; c < array_leaf_tokens.size(); ++c) {
        array_leaf_ids.emplace(array_leaf_tokens[c], c);
      }
    } else {
      for (std::size_t c = 0; c < dataset.condition_count(); ++c) {
        array_leaf_ids.emplace(array_leaf_name(c), c);
      }
    }
    dataset.attach_array_tree(
        parse_tree(bundle.atr, dataset.condition_count(), array_leaf_ids));
  }
  return dataset;
}

void write_cdt(const Dataset& dataset, const std::string& base_path) {
  const CdtBundle bundle = format_cdt(dataset);
  write_text_file(base_path + ".cdt", bundle.cdt);
  if (!bundle.gtr.empty()) write_text_file(base_path + ".gtr", bundle.gtr);
  if (!bundle.atr.empty()) write_text_file(base_path + ".atr", bundle.atr);
}

Dataset read_cdt(const std::string& base_path) {
  CdtBundle bundle;
  bundle.cdt = read_text_file(base_path + ".cdt");
  namespace fs = std::filesystem;
  if (fs::exists(base_path + ".gtr")) {
    bundle.gtr = read_text_file(base_path + ".gtr");
  }
  if (fs::exists(base_path + ".atr")) {
    bundle.atr = read_text_file(base_path + ".atr");
  }
  const fs::path p(base_path);
  return parse_cdt(bundle, p.filename().string());
}

}  // namespace fv::expr
