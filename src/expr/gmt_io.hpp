// GMT gene-set files ("Export Gene List" in paper Figure 1 uses this
// interchange format: one named set of gene identifiers per line).
#pragma once

#include <string>
#include <vector>

namespace fv::expr {

struct GeneSet {
  std::string name;
  std::string description;
  std::vector<std::string> genes;
};

/// Parses GMT text: name <tab> description <tab> gene1 <tab> gene2 ...
std::vector<GeneSet> parse_gmt(const std::string& content);

/// Serializes gene sets to GMT text.
std::string format_gmt(const std::vector<GeneSet>& sets);

/// File wrappers.
std::vector<GeneSet> read_gmt(const std::string& path);
void write_gmt(const std::vector<GeneSet>& sets, const std::string& path);

}  // namespace fv::expr
