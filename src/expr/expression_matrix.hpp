// Dense gene-by-condition expression storage.
//
// Rows are genes, columns are conditions (arrays). Values are log-ratios as
// in Java TreeView; missing measurements are quiet NaN. Storage is row-major
// float so a whole-compendium merged view (paper claim: hundreds of millions
// of measurements) stays memory-feasible.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace fv::expr {

class ExpressionMatrix {
 public:
  ExpressionMatrix() = default;

  /// Creates a rows x cols matrix filled with `fill` (default: missing).
  ExpressionMatrix(std::size_t rows, std::size_t cols)
      : ExpressionMatrix(rows, cols, stats::missing_value()) {}

  ExpressionMatrix(std::size_t rows, std::size_t cols, float fill)
      : rows_(rows), cols_(cols), values_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }

  float at(std::size_t row, std::size_t col) const {
    FV_REQUIRE(row < rows_ && col < cols_, "matrix index out of range");
    return values_[row * cols_ + col];
  }

  void set(std::size_t row, std::size_t col, float value) {
    FV_REQUIRE(row < rows_ && col < cols_, "matrix index out of range");
    values_[row * cols_ + col] = value;
  }

  std::span<const float> row(std::size_t index) const {
    FV_REQUIRE(index < rows_, "matrix row out of range");
    return {values_.data() + index * cols_, cols_};
  }

  std::span<float> row(std::size_t index) {
    FV_REQUIRE(index < rows_, "matrix row out of range");
    return {values_.data() + index * cols_, cols_};
  }

  std::span<const float> data() const noexcept { return values_; }
  std::span<float> data() noexcept { return values_; }

  /// Extracts one column (gene profile across one condition).
  std::vector<float> column(std::size_t col) const {
    FV_REQUIRE(col < cols_, "matrix column out of range");
    std::vector<float> out(rows_);
    for (std::size_t r = 0; r < rows_; ++r) out[r] = values_[r * cols_ + col];
    return out;
  }

  /// Returns the transpose (conditions become rows). Column-wise analyses
  /// (array clustering, per-condition scans) should materialize this once
  /// and use contiguous row access instead of calling column() per pair,
  /// which allocates every time.
  ExpressionMatrix transposed() const {
    ExpressionMatrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) {
        t.values_[c * rows_ + r] = values_[r * cols_ + c];
      }
    }
    return t;
  }

  /// Fraction of cells that are missing.
  double missing_fraction() const {
    if (values_.empty()) return 0.0;
    std::size_t missing = 0;
    for (float v : values_) {
      if (stats::is_missing(v)) ++missing;
    }
    return static_cast<double>(missing) / static_cast<double>(values_.size());
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> values_;
};

}  // namespace fv::expr
