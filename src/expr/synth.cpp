#include "expr/synth.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace fv::expr {

namespace {

// Module name constants used by the response models below.
constexpr std::string_view kEsrUp = "ESR_UP";
constexpr std::string_view kRp = "RP";
constexpr std::string_view kRibi = "RIBI";
constexpr std::string_view kHsp = "HSP";
constexpr std::string_view kOxi = "OXI";
constexpr std::string_view kMito = "MITO";
constexpr std::string_view kCellCycle = "CC";

std::string systematic_name(std::size_t index) {
  // Plausible yeast-style ORF names: Y + chromosome letter + arm + number +
  // strand, e.g. YAL042W. Uniqueness comes from enumerating (chr, number).
  const std::size_t per_chromosome = 2 * 999;
  const std::size_t chromosome = index / per_chromosome;
  const std::size_t rest = index % per_chromosome;
  const char arm = (rest % 2 == 0) ? 'L' : 'R';
  const std::size_t number = rest / 2 + 1;
  const char strand = (number % 2 == 0) ? 'W' : 'C';
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "Y%c%c%03zu%c",
                static_cast<char>('A' + chromosome % 16), arm, number, strand);
  return buffer;
}

// Ramp over time points: fast rise, plateau — the canonical shock response.
double time_ramp(std::size_t point, std::size_t total) {
  if (total <= 1) return 1.0;
  const double t = static_cast<double>(point) / static_cast<double>(total - 1);
  return 1.0 - std::exp(-3.0 * t);
}

float noisy_value(double signal, double noise_sd, Rng& rng) {
  return static_cast<float>(signal + rng.normal(0.0, noise_sd));
}

/// Shared scaffolding for dataset construction: picks the measured gene
/// subset (shuffled so per-dataset row orders differ), then fills the matrix
/// via a per-(gene, condition) signal model.
template <typename SignalFn>
Dataset build_dataset(const SynthGenome& genome, const std::string& name,
                      const std::vector<std::string>& conditions,
                      double measured_fraction, double missing_rate,
                      double noise_sd, Rng& rng, SignalFn signal) {
  FV_REQUIRE(measured_fraction > 0.0 && measured_fraction <= 1.0,
             "measured_fraction must lie in (0, 1]");
  const std::size_t total = genome.gene_count();
  const std::size_t measured = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             static_cast<double>(total) * measured_fraction)));
  std::vector<std::size_t> chosen =
      rng.sample_without_replacement(total, measured);

  std::vector<GeneInfo> genes;
  genes.reserve(chosen.size());
  for (std::size_t g : chosen) genes.push_back(genome.gene(g));

  ExpressionMatrix matrix(chosen.size(), conditions.size());
  for (std::size_t r = 0; r < chosen.size(); ++r) {
    const std::size_t g = chosen[r];
    for (std::size_t c = 0; c < conditions.size(); ++c) {
      if (rng.bernoulli(missing_rate)) continue;  // leave missing
      matrix.set(r, c, noisy_value(signal(g, c), noise_sd, rng));
    }
  }
  return Dataset(name, std::move(genes), std::move(conditions),
                 std::move(matrix));
}

}  // namespace

GenomeSpec GenomeSpec::yeast_like(std::size_t gene_count) {
  GenomeSpec spec;
  spec.gene_count = gene_count;
  spec.modules = {
      {std::string(kEsrUp), 0.05, "DDR",
       "environmental stress response, induced", 1.6},
      {std::string(kRp), 0.04, "RPL",
       "ribosomal protein; repressed under stress", 1.8},
      {std::string(kRibi), 0.03, "UTP",
       "ribosome biogenesis; growth-rate correlated", 1.4},
      {std::string(kHsp), 0.012, "HSP", "heat shock protein chaperone", 2.0},
      {std::string(kOxi), 0.012, "CTT",
       "oxidative stress defense, catalase/peroxidase", 1.8},
      {std::string(kMito), 0.02, "COX",
       "mitochondrial respiration complex", 1.2},
      {std::string(kCellCycle), 0.02, "CLN",
       "cell cycle regulated cyclin", 1.3},
  };
  return spec;
}

SynthGenome::SynthGenome(std::vector<GeneInfo> genes,
                         std::vector<int> module_of,
                         std::vector<double> amplitude,
                         std::vector<std::string> module_names)
    : genes_(std::move(genes)),
      module_of_(std::move(module_of)),
      amplitude_(std::move(amplitude)),
      module_names_(std::move(module_names)) {
  FV_REQUIRE(genes_.size() == module_of_.size() &&
                 genes_.size() == amplitude_.size(),
             "genome arrays must be parallel");
}

const GeneInfo& SynthGenome::gene(std::size_t index) const {
  FV_REQUIRE(index < genes_.size(), "gene index out of range");
  return genes_[index];
}

int SynthGenome::module_of(std::size_t gene) const {
  FV_REQUIRE(gene < module_of_.size(), "gene index out of range");
  return module_of_[gene];
}

double SynthGenome::amplitude(std::size_t gene) const {
  FV_REQUIRE(gene < amplitude_.size(), "gene index out of range");
  return amplitude_[gene];
}

std::optional<std::size_t> SynthGenome::module_index(
    std::string_view name) const {
  for (std::size_t i = 0; i < module_names_.size(); ++i) {
    if (module_names_[i] == name) return i;
  }
  return std::nullopt;
}

std::vector<std::size_t> SynthGenome::module_members(
    std::string_view name) const {
  std::vector<std::size_t> members;
  const auto index = module_index(name);
  if (!index.has_value()) return members;
  for (std::size_t g = 0; g < module_of_.size(); ++g) {
    if (module_of_[g] == static_cast<int>(*index)) members.push_back(g);
  }
  return members;
}

SynthGenome make_genome(const GenomeSpec& spec, std::uint64_t seed) {
  FV_REQUIRE(spec.gene_count > 0, "genome needs at least one gene");
  double total_fraction = 0.0;
  for (const ModuleSpec& m : spec.modules) total_fraction += m.fraction;
  FV_REQUIRE(total_fraction <= 0.8,
             "planted modules may cover at most 80% of the genome");

  Rng rng(seed);
  const std::size_t n = spec.gene_count;

  std::vector<int> module_of(n, -1);
  // Assign module members from a random permutation so membership is not
  // correlated with systematic-name order.
  std::vector<std::size_t> permutation(n);
  for (std::size_t i = 0; i < n; ++i) permutation[i] = i;
  rng.shuffle(permutation);
  std::size_t cursor = 0;
  std::vector<std::string> module_names;
  std::vector<std::size_t> module_sizes;
  for (const ModuleSpec& m : spec.modules) {
    const auto size = static_cast<std::size_t>(
        std::llround(m.fraction * static_cast<double>(n)));
    module_names.push_back(m.name);
    module_sizes.push_back(size);
    for (std::size_t i = 0; i < size && cursor < n; ++i, ++cursor) {
      module_of[permutation[cursor]] = static_cast<int>(module_names.size() - 1);
    }
  }

  std::vector<GeneInfo> genes(n);
  std::vector<double> amplitude(n, 1.0);
  std::vector<std::size_t> member_counter(spec.modules.size(), 0);
  for (std::size_t g = 0; g < n; ++g) {
    GeneInfo& info = genes[g];
    info.systematic_name = systematic_name(g);
    const int m = module_of[g];
    if (m >= 0) {
      const ModuleSpec& mod = spec.modules[static_cast<std::size_t>(m)];
      info.common_name =
          mod.gene_prefix + std::to_string(++member_counter[static_cast<std::size_t>(m)]);
      info.description = mod.description;
      // Log-normal spread of response strengths around the module amplitude.
      amplitude[g] = mod.amplitude * std::exp(rng.normal(0.0, 0.25));
    } else {
      info.description = "uncharacterized open reading frame";
      amplitude[g] = std::exp(rng.normal(0.0, 0.25));
    }
  }
  return SynthGenome(std::move(genes), std::move(module_of),
                     std::move(amplitude), std::move(module_names));
}

namespace {

/// Signed module response shared by the stress-like generators: +1 for
/// induced ESR, -1 for growth machinery, stress-specific extras per stress.
double stress_module_response(const SynthGenome& genome, std::size_t gene,
                              std::string_view stress, double intensity) {
  const int m = genome.module_of(gene);
  if (m < 0) return 0.0;
  const std::string& name = genome.module_names()[static_cast<std::size_t>(m)];
  const double amp = genome.amplitude(gene);
  if (name == kEsrUp) return +amp * intensity;
  if (name == kRp) return -amp * intensity;
  if (name == kRibi) return -0.8 * amp * intensity;
  if (name == kHsp) {
    return amp * intensity * (stress == "heat" ? 1.3 : 0.15);
  }
  if (name == kOxi) {
    return amp * intensity * ((stress == "h2o2" || stress == "diamide") ? 1.3
                                                                        : 0.15);
  }
  if (name == kMito) {
    return stress == "starvation" ? 0.4 * amp * intensity : 0.0;
  }
  return 0.0;  // CC and other modules are stress-neutral
}

}  // namespace

Dataset make_stress_dataset(const SynthGenome& genome,
                            const StressDatasetSpec& spec,
                            std::uint64_t seed) {
  FV_REQUIRE(!spec.stresses.empty() && spec.time_points > 0,
             "stress dataset needs stresses and time points");
  Rng rng(seed);
  std::vector<std::string> conditions;
  conditions.reserve(spec.stresses.size() * spec.time_points);
  for (const std::string& stress : spec.stresses) {
    for (std::size_t t = 0; t < spec.time_points; ++t) {
      conditions.push_back(stress + "_t" + std::to_string(5 * (t + 1)) + "min");
    }
  }
  const std::size_t points = spec.time_points;
  const auto& stresses = spec.stresses;
  return build_dataset(
      genome, spec.name, conditions, spec.measured_fraction,
      spec.missing_rate, spec.noise_sd, rng,
      [&](std::size_t gene, std::size_t condition) {
        const std::size_t stress_index = condition / points;
        const std::size_t t = condition % points;
        return stress_module_response(genome, gene, stresses[stress_index],
                                      time_ramp(t, points));
      });
}

Dataset make_nutrient_dataset(const SynthGenome& genome,
                              const NutrientDatasetSpec& spec,
                              std::uint64_t seed) {
  FV_REQUIRE(!spec.nutrients.empty() && !spec.growth_rates.empty(),
             "nutrient dataset needs nutrients and growth rates");
  Rng rng(seed);
  std::vector<std::string> conditions;
  for (const std::string& nutrient : spec.nutrients) {
    for (double rate : spec.growth_rates) {
      char label[64];
      std::snprintf(label, sizeof(label), "%s_lim_d%.2f", nutrient.c_str(),
                    rate);
      conditions.push_back(label);
    }
  }
  const double max_rate =
      *std::max_element(spec.growth_rates.begin(), spec.growth_rates.end());
  const std::size_t rates = spec.growth_rates.size();
  return build_dataset(
      genome, spec.name, conditions, spec.measured_fraction,
      spec.missing_rate, spec.noise_sd, rng,
      [&](std::size_t gene, std::size_t condition) {
        const std::size_t nutrient_index = condition / rates;
        const double rate = spec.growth_rates[condition % rates];
        // Slow growth expresses the generic stress program — the hidden
        // cross-dataset signal of paper §4.
        const double slowdown = (max_rate - rate) / max_rate;
        double signal = stress_module_response(genome, gene, "slow_growth",
                                               slowdown);
        // Glucose limitation additionally de-represses respiration.
        const int m = genome.module_of(gene);
        if (m >= 0 &&
            genome.module_names()[static_cast<std::size_t>(m)] == kMito &&
            spec.nutrients[nutrient_index] == "glucose") {
          signal += 0.8 * genome.amplitude(gene) * slowdown;
        }
        return signal;
      });
}

KnockoutResult make_knockout_dataset(const SynthGenome& genome,
                                     const KnockoutDatasetSpec& spec,
                                     std::uint64_t seed) {
  FV_REQUIRE(spec.knockouts > 0, "knockout dataset needs conditions");
  Rng rng(seed);

  const std::size_t module_count = genome.module_names().size();
  KnockoutTruth truth;
  truth.targeted_module.assign(spec.knockouts, -1);
  truth.regulation_sign.assign(spec.knockouts, 0);
  truth.slow_growth.assign(spec.knockouts, false);

  // Reserve the first conditions as module regulators (shuffled afterwards
  // via condition naming, not position, to keep the truth arrays simple).
  std::size_t next_condition = 0;
  for (std::size_t m = 0; m < module_count; ++m) {
    for (std::size_t k = 0;
         k < spec.regulators_per_module && next_condition < spec.knockouts;
         ++k, ++next_condition) {
      truth.targeted_module[next_condition] = static_cast<int>(m);
      // Deleting an activator represses the module and vice versa; the sign
      // is fixed per regulator so the module moves coherently.
      truth.regulation_sign[next_condition] = rng.bernoulli(0.5) ? +1 : -1;
    }
  }
  for (std::size_t c = 0; c < spec.knockouts; ++c) {
    if (rng.bernoulli(spec.slow_growth_fraction)) {
      truth.slow_growth[c] = true;
    }
  }

  std::vector<std::string> conditions;
  conditions.reserve(spec.knockouts);
  for (std::size_t c = 0; c < spec.knockouts; ++c) {
    if (truth.targeted_module[c] >= 0) {
      const std::string& module =
          genome.module_names()[static_cast<std::size_t>(
              truth.targeted_module[c])];
      conditions.push_back(str::to_lower(module) + "_reg" +
                           std::to_string(c) + "-del");
    } else {
      conditions.push_back("orf" + std::to_string(c) + "-del");
    }
  }

  Dataset dataset = build_dataset(
      genome, spec.name, conditions, spec.measured_fraction,
      spec.missing_rate, spec.noise_sd, rng,
      [&](std::size_t gene, std::size_t condition) {
        double signal = 0.0;
        const int gene_module = genome.module_of(gene);
        if (gene_module >= 0 &&
            gene_module == truth.targeted_module[condition]) {
          signal += static_cast<double>(truth.regulation_sign[condition]) *
                    genome.amplitude(gene);
        }
        if (truth.slow_growth[condition]) {
          signal += spec.slow_growth_scale *
                    stress_module_response(genome, gene, "slow_growth", 1.0);
        }
        return signal;
      });
  return KnockoutResult{std::move(dataset), std::move(truth)};
}

Dataset make_noise_dataset(const SynthGenome& genome,
                           const NoiseDatasetSpec& spec, std::uint64_t seed) {
  FV_REQUIRE(spec.conditions > 0, "noise dataset needs conditions");
  Rng rng(seed);
  std::vector<std::string> conditions;
  for (std::size_t c = 0; c < spec.conditions; ++c) {
    conditions.push_back("array" + std::to_string(c));
  }
  return build_dataset(genome, spec.name, conditions, spec.measured_fraction,
                       spec.missing_rate, spec.noise_sd, rng,
                       [](std::size_t, std::size_t) { return 0.0; });
}

Compendium make_compendium(const CompendiumSpec& spec) {
  Rng rng(spec.seed);
  Compendium compendium(make_genome(spec.genome, rng.next_u64()));

  for (std::size_t i = 0; i < spec.stress_datasets; ++i) {
    StressDatasetSpec ds;
    ds.name = "stress_" + std::to_string(i + 1);
    ds.measured_fraction = spec.measured_fraction;
    compendium.datasets.push_back(
        make_stress_dataset(compendium.genome, ds, rng.next_u64()));
  }
  for (std::size_t i = 0; i < spec.nutrient_datasets; ++i) {
    NutrientDatasetSpec ds;
    ds.name = "nutrient_" + std::to_string(i + 1);
    ds.measured_fraction = spec.measured_fraction;
    compendium.datasets.push_back(
        make_nutrient_dataset(compendium.genome, ds, rng.next_u64()));
  }
  for (std::size_t i = 0; i < spec.knockout_datasets; ++i) {
    KnockoutDatasetSpec ds;
    ds.name = "knockout_" + std::to_string(i + 1);
    ds.measured_fraction = spec.measured_fraction;
    KnockoutResult result =
        make_knockout_dataset(compendium.genome, ds, rng.next_u64());
    compendium.knockout_truth.emplace_back(compendium.datasets.size(),
                                           std::move(result.truth));
    compendium.datasets.push_back(std::move(result.dataset));
  }
  for (std::size_t i = 0; i < spec.noise_datasets; ++i) {
    NoiseDatasetSpec ds;
    ds.name = "noise_" + std::to_string(i + 1);
    ds.measured_fraction = spec.measured_fraction;
    compendium.datasets.push_back(
        make_noise_dataset(compendium.genome, ds, rng.next_u64()));
  }
  return compendium;
}

}  // namespace fv::expr
