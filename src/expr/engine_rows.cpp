#include "expr/engine_rows.hpp"

#include <algorithm>

#include "stats/descriptive.hpp"

namespace fv::expr {

ExpressionMatrix matrix_from_engine(const sim::SimilarityEngine& engine) {
  const std::size_t rows = engine.size();
  const std::size_t cols = engine.length();
  ExpressionMatrix matrix(rows, cols);  // all cells missing
  for (std::size_t i = 0; i < rows; ++i) {
    const std::span<const float> filled = engine.filled_row(i);
    const std::span<float> out = matrix.row(i);
    if (!engine.row_has_missing(i)) {
      // Dense row: every cell present, one straight copy.
      std::copy(filled.begin(), filled.begin() + cols, out.begin());
      continue;
    }
    for (std::size_t k = 0; k < cols; ++k) {
      if (engine.value_present(i, k)) out[k] = filled[k];
    }
  }
  return matrix;
}

}  // namespace fv::expr
