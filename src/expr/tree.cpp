#include "expr/tree.hpp"

#include <vector>

#include "util/error.hpp"

namespace fv::expr {

HierTree::HierTree(std::size_t leaf_count) : leaf_count_(leaf_count) {
  nodes_.reserve(leaf_count > 0 ? leaf_count - 1 : 0);
}

int HierTree::add_node(int left, int right, double similarity) {
  const int next_id = static_cast<int>(node_count());
  FV_REQUIRE(left >= 0 && left < next_id, "left child id out of range");
  FV_REQUIRE(right >= 0 && right < next_id, "right child id out of range");
  FV_REQUIRE(left != right, "a node cannot merge with itself");
  nodes_.push_back(HierTreeNode{left, right, similarity});
  return next_id;
}

const HierTreeNode& HierTree::node(int id) const {
  FV_REQUIRE(id >= 0 && static_cast<std::size_t>(id) >= leaf_count_ &&
                 static_cast<std::size_t>(id) < node_count(),
             "internal node id out of range");
  return nodes_[static_cast<std::size_t>(id) - leaf_count_];
}

int HierTree::root() const {
  FV_REQUIRE(node_count() > 0, "empty tree has no root");
  return static_cast<int>(node_count()) - 1;
}

bool HierTree::is_complete() const {
  if (leaf_count_ == 0) return false;
  if (nodes_.size() != leaf_count_ - 1) return false;
  // Count how many times each node id is used as a child.
  std::vector<int> uses(node_count(), 0);
  for (const HierTreeNode& n : nodes_) {
    ++uses[static_cast<std::size_t>(n.left)];
    ++uses[static_cast<std::size_t>(n.right)];
  }
  for (std::size_t id = 0; id + 1 < node_count(); ++id) {
    if (uses[id] != 1) return false;
  }
  return uses[node_count() - 1] == 0;  // root is referenced by nobody
}

std::vector<std::size_t> HierTree::leaf_order() const {
  if (node_count() == 0) return {};
  return leaves_under(root());
}

std::vector<std::size_t> HierTree::leaves_under(int id) const {
  FV_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < node_count(),
             "node id out of range");
  std::vector<std::size_t> leaves;
  // Iterative DFS pushing right child first so the left subtree is emitted
  // first, matching the file's visual ordering.
  std::vector<int> stack{id};
  while (!stack.empty()) {
    const int current = stack.back();
    stack.pop_back();
    if (is_leaf(current)) {
      leaves.push_back(static_cast<std::size_t>(current));
      continue;
    }
    const HierTreeNode& n = node(current);
    stack.push_back(n.right);
    stack.push_back(n.left);
  }
  return leaves;
}

}  // namespace fv::expr
