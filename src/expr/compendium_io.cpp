#include "expr/compendium_io.hpp"

#include <filesystem>

#include "expr/cdt_io.hpp"
#include "expr/pcl_io.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"
#include "util/table_io.hpp"

namespace fv::expr {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestName = "compendium.manifest";

}  // namespace

void save_compendium_dir(const std::vector<Dataset>& datasets,
                         const std::string& directory) {
  FV_REQUIRE(!datasets.empty(), "cannot save an empty compendium");
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) throw IoError("cannot create directory: " + directory);

  std::string manifest =
      "# ForestView compendium manifest: one dataset per line\n";
  for (const Dataset& dataset : datasets) {
    FV_REQUIRE(!dataset.name().empty(), "dataset needs a name to be saved");
    FV_REQUIRE(dataset.name().find('/') == std::string::npos &&
                   dataset.name().find('\\') == std::string::npos,
               "dataset name must not contain path separators");
    const std::string base = directory + "/" + dataset.name();
    if (dataset.gene_tree().has_value() || dataset.array_tree().has_value()) {
      write_cdt(dataset, base);
    } else {
      write_pcl(dataset, base + ".pcl");
    }
    manifest += dataset.name() + "\n";
  }
  write_text_file(directory + "/" + kManifestName, manifest);
}

std::vector<Dataset> load_compendium_dir(const std::string& directory) {
  const std::string manifest_path =
      directory + "/" + kManifestName;
  std::vector<Dataset> datasets;
  for (const std::string& line : read_lines(manifest_path)) {
    const std::string_view trimmed = str::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const std::string base = directory + "/" + std::string(trimmed);
    if (fs::exists(base + ".cdt")) {
      datasets.push_back(read_cdt(base));
    } else if (fs::exists(base + ".pcl")) {
      datasets.push_back(read_pcl(base + ".pcl"));
    } else {
      throw IoError("manifest entry '" + std::string(trimmed) +
                    "' has no .cdt or .pcl file in " + directory);
    }
  }
  if (datasets.empty()) {
    throw ParseError("compendium manifest lists no datasets");
  }
  return datasets;
}

}  // namespace fv::expr
