// Compendium directory persistence.
//
// A compendium on disk is a directory of TreeView-compatible files plus a
// small manifest listing the member datasets in display order:
//
//   compendium.manifest     (one dataset name per line, '#' comments)
//   <name>.pcl              (datasets without trees)
//   <name>.cdt/.gtr/.atr    (clustered datasets)
//
// This is how a lab would actually share a ForestView workspace: every file
// remains readable by Java TreeView and Cluster 3.0.
#pragma once

#include <string>
#include <vector>

#include "expr/dataset.hpp"

namespace fv::expr {

/// Writes all datasets plus the manifest into `directory` (created if
/// needed). Datasets with trees are stored as CDT triples, others as PCL.
void save_compendium_dir(const std::vector<Dataset>& datasets,
                         const std::string& directory);

/// Loads a compendium directory written by save_compendium_dir (or
/// assembled by hand from TreeView files + manifest). Dataset order follows
/// the manifest. Throws IoError / ParseError on problems.
std::vector<Dataset> load_compendium_dir(const std::string& directory);

}  // namespace fv::expr
