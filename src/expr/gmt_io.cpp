#include "expr/gmt_io.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"
#include "util/table_io.hpp"

namespace fv::expr {

std::vector<GeneSet> parse_gmt(const std::string& content) {
  std::vector<GeneSet> sets;
  std::istringstream stream(content);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (str::trim(line).empty()) continue;
    const auto fields = str::split(line, '\t');
    if (fields.size() < 2) {
      throw ParseError("GMT row needs at least name and description",
                       line_no);
    }
    GeneSet set;
    set.name = std::string(str::trim(fields[0]));
    if (set.name.empty()) throw ParseError("GMT set name is empty", line_no);
    set.description = std::string(str::trim(fields[1]));
    for (std::size_t i = 2; i < fields.size(); ++i) {
      const std::string_view gene = str::trim(fields[i]);
      if (!gene.empty()) set.genes.emplace_back(gene);
    }
    sets.push_back(std::move(set));
  }
  return sets;
}

std::string format_gmt(const std::vector<GeneSet>& sets) {
  std::string out;
  for (const GeneSet& set : sets) {
    out += set.name;
    out += '\t';
    out += set.description;
    for (const std::string& gene : set.genes) {
      out += '\t';
      out += gene;
    }
    out += '\n';
  }
  return out;
}

std::vector<GeneSet> read_gmt(const std::string& path) {
  return parse_gmt(read_text_file(path));
}

void write_gmt(const std::vector<GeneSet>& sets, const std::string& path) {
  write_text_file(path, format_gmt(sets));
}

}  // namespace fv::expr
