// One microarray dataset: the bottom boxes of paper Figure 1.
//
// A Dataset bundles the expression matrix with per-gene identity/annotation,
// condition names and (optionally) the gene/array dendrograms that CDT+GTR
// files carry. It also provides the per-dataset lookups ForestView's merged
// interface and annotation search are built on.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "expr/expression_matrix.hpp"
#include "expr/gene.hpp"
#include "expr/tree.hpp"

namespace fv::expr {

class Dataset {
 public:
  Dataset() = default;

  /// Requires genes.size() == values.rows() and
  /// conditions.size() == values.cols().
  Dataset(std::string name, std::vector<GeneInfo> genes,
          std::vector<std::string> conditions, ExpressionMatrix values);

  const std::string& name() const noexcept { return name_; }
  std::size_t gene_count() const noexcept { return genes_.size(); }
  std::size_t condition_count() const noexcept { return conditions_.size(); }

  const GeneInfo& gene(std::size_t row) const;
  const std::vector<GeneInfo>& genes() const noexcept { return genes_; }
  const std::string& condition(std::size_t col) const;
  const std::vector<std::string>& conditions() const noexcept {
    return conditions_;
  }

  const ExpressionMatrix& values() const noexcept { return values_; }
  ExpressionMatrix& values() noexcept { return values_; }

  /// Expression profile of one gene across all conditions.
  std::span<const float> profile(std::size_t row) const {
    return values_.row(row);
  }

  /// Row index of a gene by systematic or common name (case-insensitive);
  /// nullopt when the gene is not measured in this dataset.
  std::optional<std::size_t> row_of(std::string_view gene_name) const;

  /// Rows whose systematic name, common name or description contains the
  /// query (case-insensitive substring) — the paper's annotation search.
  std::vector<std::size_t> search_annotation(std::string_view query) const;

  /// Attaches the gene (row) dendrogram; must have gene_count() leaves.
  void attach_gene_tree(HierTree tree);
  /// Attaches the array (column) dendrogram; must have condition_count()
  /// leaves.
  void attach_array_tree(HierTree tree);

  const std::optional<HierTree>& gene_tree() const noexcept {
    return gene_tree_;
  }
  const std::optional<HierTree>& array_tree() const noexcept {
    return array_tree_;
  }

  /// Row display order: the gene tree's leaf order when a tree is attached,
  /// otherwise file order.
  std::vector<std::size_t> display_order() const;

 private:
  std::string name_;
  std::vector<GeneInfo> genes_;
  std::vector<std::string> conditions_;
  ExpressionMatrix values_;
  std::optional<HierTree> gene_tree_;
  std::optional<HierTree> array_tree_;
  // Lower-cased systematic and common names -> row.
  std::unordered_map<std::string, std::size_t> name_index_;

  void build_name_index();
};

}  // namespace fv::expr
