// CDT/GTR/ATR clustered-dataset files, the Java TreeView triple that paper
// Figure 1 lists as the dataset storage format.
//
// A CDT file is a PCL augmented with a GID column (linking each data row to
// a gene-tree leaf) and an AID row (linking columns to array-tree leaves).
// GTR/ATR files list merges bottom-up: "NODEkX  childA  childB  similarity".
#pragma once

#include <string>

#include "expr/dataset.hpp"

namespace fv::expr {

/// In-memory image of the TreeView file triple.
struct CdtBundle {
  std::string cdt;  ///< clustered data table text
  std::string gtr;  ///< gene tree text; empty when there is no gene tree
  std::string atr;  ///< array tree text; empty when there is no array tree
};

/// Serializes a dataset (and its attached trees) to CDT/GTR/ATR text.
/// Data rows are emitted in gene-tree display order, as TreeView does.
CdtBundle format_cdt(const Dataset& dataset);

/// Parses the triple back into a Dataset. Pass empty strings for absent
/// trees. Rows keep the CDT file order; tree leaves are remapped to the
/// parsed row positions so display_order() reproduces the file's ordering.
Dataset parse_cdt(const CdtBundle& bundle, const std::string& name);

/// Convenience wrappers writing/reading `<base>.cdt`, `<base>.gtr`,
/// `<base>.atr` (tree files only when trees are attached / present).
void write_cdt(const Dataset& dataset, const std::string& base_path);
Dataset read_cdt(const std::string& base_path);

}  // namespace fv::expr
