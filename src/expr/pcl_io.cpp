#include "expr/pcl_io.hpp"

#include <cmath>
#include <sstream>

#include "stats/descriptive.hpp"
#include "util/string_util.hpp"
#include "util/table_io.hpp"

namespace fv::expr {

namespace {

constexpr std::size_t kMetaColumns = 3;  // ID, NAME, GWEIGHT

std::string file_stem(const std::string& path) {
  const std::size_t slash = path.find_last_of("/\\");
  const std::size_t start = slash == std::string::npos ? 0 : slash + 1;
  const std::size_t dot = path.find_last_of('.');
  const std::size_t end =
      (dot == std::string::npos || dot < start) ? path.size() : dot;
  return path.substr(start, end - start);
}

GeneInfo parse_name_cell(std::string_view id, std::string_view name_cell) {
  GeneInfo info;
  info.systematic_name = std::string(fv::str::trim(id));
  const std::size_t bar = name_cell.find('|');
  if (bar == std::string_view::npos) {
    info.common_name = std::string(fv::str::trim(name_cell));
  } else {
    info.common_name = std::string(fv::str::trim(name_cell.substr(0, bar)));
    info.description = std::string(fv::str::trim(name_cell.substr(bar + 1)));
  }
  return info;
}

std::string format_name_cell(const GeneInfo& gene) {
  if (gene.description.empty()) return gene.common_name;
  return gene.common_name + "|" + gene.description;
}

void append_value(std::string& out, float value) {
  if (fv::stats::is_missing(value)) return;  // empty cell == missing
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", static_cast<double>(value));
  out += buffer;
}

}  // namespace

Dataset parse_pcl(const std::string& content, const std::string& name) {
  std::vector<std::string> lines;
  {
    std::istringstream stream(content);
    std::string line;
    while (std::getline(stream, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      lines.push_back(line);
    }
  }
  if (lines.empty()) throw ParseError("empty PCL file");

  const auto header = str::split(lines[0], '\t');
  if (header.size() < kMetaColumns) {
    throw ParseError("PCL header needs at least ID, NAME, GWEIGHT columns", 1);
  }
  std::vector<std::string> conditions;
  for (std::size_t c = kMetaColumns; c < header.size(); ++c) {
    conditions.emplace_back(str::trim(header[c]));
  }
  const std::size_t cols = conditions.size();

  std::size_t first_data_line = 1;
  if (lines.size() > 1) {
    const auto second = str::split(lines[1], '\t');
    if (!second.empty() && str::iequals(str::trim(second[0]), "EWEIGHT")) {
      first_data_line = 2;  // weights are accepted and ignored
    }
  }

  std::vector<GeneInfo> genes;
  std::vector<std::vector<float>> rows;
  for (std::size_t ln = first_data_line; ln < lines.size(); ++ln) {
    if (str::trim(lines[ln]).empty()) continue;
    const auto fields = str::split(lines[ln], '\t');
    if (fields.size() < kMetaColumns) {
      throw ParseError("data row has fewer than 3 columns", ln + 1);
    }
    if (fields.size() > kMetaColumns + cols) {
      throw ParseError("data row has more value cells than conditions",
                       ln + 1);
    }
    genes.push_back(parse_name_cell(fields[0], fields[1]));
    std::vector<float> row(cols, stats::missing_value());
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t field = kMetaColumns + c;
      if (field >= fields.size()) break;  // short row: trailing missing cells
      const std::string_view cell = str::trim(fields[field]);
      if (cell.empty()) continue;
      const auto value = str::parse_double(cell);
      if (!value.has_value()) {
        throw ParseError("unparseable expression value '" +
                             std::string(cell) + "'",
                         ln + 1);
      }
      row[c] = static_cast<float>(*value);
    }
    rows.push_back(std::move(row));
  }

  ExpressionMatrix matrix(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < cols; ++c) matrix.set(r, c, rows[r][c]);
  }
  return Dataset(name, std::move(genes), std::move(conditions),
                 std::move(matrix));
}

Dataset read_pcl(const std::string& path) {
  return parse_pcl(read_text_file(path), file_stem(path));
}

std::string format_pcl(const Dataset& dataset) {
  std::string out;
  out.reserve(dataset.gene_count() * (dataset.condition_count() * 8 + 32));
  out += "ID\tNAME\tGWEIGHT";
  for (const std::string& condition : dataset.conditions()) {
    out += '\t';
    out += condition;
  }
  out += '\n';
  out += "EWEIGHT\t\t";
  for (std::size_t c = 0; c < dataset.condition_count(); ++c) out += "\t1";
  out += '\n';
  for (std::size_t r = 0; r < dataset.gene_count(); ++r) {
    const GeneInfo& gene = dataset.gene(r);
    out += gene.systematic_name;
    out += '\t';
    out += format_name_cell(gene);
    out += "\t1";
    const auto row = dataset.values().row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += '\t';
      append_value(out, row[c]);
    }
    out += '\n';
  }
  return out;
}

void write_pcl(const Dataset& dataset, const std::string& path) {
  write_text_file(path, format_pcl(dataset));
}

}  // namespace fv::expr
