// Gene identity and annotation records.
//
// Microarray files identify a gene by a systematic name (e.g. YAL001C), an
// optional common name (e.g. TFC3) and a free-text description. ForestView's
// annotation search (paper §2, "search over the gene annotation information")
// matches against all three.
#pragma once

#include <string>

namespace fv::expr {

/// One gene's identity as carried in PCL/CDT files.
struct GeneInfo {
  std::string systematic_name;  ///< primary key, e.g. "YAL001C"
  std::string common_name;      ///< may be empty, e.g. "TFC3"
  std::string description;      ///< free-text annotation, may be empty

  /// Display label: the common name when present, otherwise systematic.
  const std::string& label() const {
    return common_name.empty() ? systematic_name : common_name;
  }
};

}  // namespace fv::expr
