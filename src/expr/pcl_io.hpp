// PCL file format (Stanford "pre-clustering" tab table), the paper's primary
// on-disk dataset representation ("typically accessed through cdt or pcl
// files", §2).
//
// Layout:
//   ID <tab> NAME <tab> GWEIGHT <tab> cond1 ... condM
//   EWEIGHT <tab> <tab> <tab> 1 ... 1            (optional)
//   <systematic> <tab> <annotation> <tab> <w> <tab> v1 ... vM
//
// The NAME cell carries "common|description"; empty value cells are missing
// measurements.
#pragma once

#include <string>

#include "expr/dataset.hpp"

namespace fv::expr {

/// Parses a PCL file. The dataset name defaults to the file stem.
Dataset read_pcl(const std::string& path);

/// Parses PCL content from a string (dataset named `name`). Throws
/// ParseError with a line number on malformed input.
Dataset parse_pcl(const std::string& content, const std::string& name);

/// Serializes to PCL text.
std::string format_pcl(const Dataset& dataset);

/// Writes a PCL file.
void write_pcl(const Dataset& dataset, const std::string& path);

}  // namespace fv::expr
