// Message representation and payload (de)serialization for mpx, the
// in-process message-passing layer.
//
// mpx mirrors MPI's point-to-point semantics (ranked processes exchanging
// tagged, typed payloads) so the display-wall code is written exactly as it
// would be against a real cluster: the paper's wall is driven by one PC per
// projector tile. Payloads are byte buffers with explicit little-endian-
// agnostic in-process packing — trivially copyable types only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace fv::mpx {

/// Matches any source rank in receive calls.
inline constexpr int kAnySource = -1;
/// Matches any non-reserved tag in receive calls.
inline constexpr int kAnyTag = -1;

struct Message {
  int source = kAnySource;
  int tag = 0;
  /// 1-based per-(source, tag) sequence number stamped by Comm on send.
  /// Monotone at the receiving mailbox (the in-process transport is FIFO per
  /// sender), which lets the mailbox suppress duplicated deliveries. 0 on
  /// hand-built messages: such envelopes bypass duplicate suppression.
  std::uint64_t sequence = 0;
  /// Payload checksum stamped by Comm on send (see payload_checksum). The
  /// mailbox re-computes it before handing the message to a receiver and
  /// throws CorruptMessageError on mismatch. 0 = unsealed: hand-built
  /// messages skip the integrity check.
  std::uint64_t checksum = 0;
  std::vector<std::byte> payload;
};

/// 64-bit payload checksum for the message envelope. Word-wise
/// rotate-and-xor with the length folded in, finalized with one multiply —
/// cheap enough to run on every send/receive (memory-bound, no multiply per
/// word) while detecting any single corrupted byte and any truncation.
/// Never returns 0, so 0 can serve as the "unsealed" sentinel.
inline std::uint64_t payload_checksum(
    std::span<const std::byte> payload) noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^
                    (static_cast<std::uint64_t>(payload.size()) *
                     0xff51afd7ed558ccdull);
  const std::size_t size = payload.size();
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, payload.data() + i, 8);
    h = ((h << 1) | (h >> 63)) ^ word;
  }
  std::uint64_t tail = 0;
  if (i < size) std::memcpy(&tail, payload.data() + i, size - i);
  h = ((h << 1) | (h >> 63)) ^ tail;
  h *= 0x2545f4914f6cdd1dull;
  h ^= h >> 33;
  return h == 0 ? 1 : h;
}

/// Sequentially packs trivially copyable values into a byte buffer.
class PayloadWriter {
 public:
  template <typename T>
  void write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "payloads carry trivially copyable types only");
    const auto* bytes = reinterpret_cast<const std::byte*>(&value);
    buffer_.insert(buffer_.end(), bytes, bytes + sizeof(T));
  }

  template <typename T>
  void write_span(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "payloads carry trivially copyable types only");
    write<std::uint64_t>(values.size());
    const auto* bytes = reinterpret_cast<const std::byte*>(values.data());
    buffer_.insert(buffer_.end(), bytes, bytes + values.size_bytes());
  }

  void write_string(std::string_view text) {
    write<std::uint64_t>(text.size());
    const auto* bytes = reinterpret_cast<const std::byte*>(text.data());
    buffer_.insert(buffer_.end(), bytes, bytes + text.size());
  }

  std::vector<std::byte> take() { return std::move(buffer_); }

 private:
  std::vector<std::byte> buffer_;
};

/// Sequentially unpacks values written by PayloadWriter; throws on overrun.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::byte> payload)
      : payload_(payload) {}

  template <typename T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "payloads carry trivially copyable types only");
    require(sizeof(T));
    T value;
    std::memcpy(&value, payload_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> read_vector() {
    const auto count = read<std::uint64_t>();
    require(count * sizeof(T));
    std::vector<T> values(count);
    std::memcpy(values.data(), payload_.data() + offset_, count * sizeof(T));
    offset_ += count * sizeof(T);
    return values;
  }

  std::string read_string() {
    const auto size = read<std::uint64_t>();
    require(size);
    std::string text(reinterpret_cast<const char*>(payload_.data() + offset_),
                     size);
    offset_ += size;
    return text;
  }

  std::size_t remaining() const noexcept { return payload_.size() - offset_; }

 private:
  void require(std::size_t bytes) const {
    FV_REQUIRE(offset_ + bytes <= payload_.size(),
               "payload underrun: message shorter than expected");
  }

  std::span<const std::byte> payload_;
  std::size_t offset_ = 0;
};

}  // namespace fv::mpx
