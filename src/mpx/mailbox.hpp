// Per-rank message queue with MPI-style (source, tag) selective receive,
// bounded-wait variants, and envelope integrity enforcement.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "mpx/message.hpp"

namespace fv::mpx {

class Mailbox {
 public:
  using Clock = std::chrono::steady_clock;

  /// Enqueues a message (called from the sender's thread).
  void deliver(Message message);

  /// Blocks until a message matching (source, tag) is available and removes
  /// it. kAnySource / kAnyTag act as wildcards. Matching preserves per-
  /// (source, tag) FIFO order: the oldest matching message is returned.
  ///
  /// Envelope enforcement (applies to every receive variant):
  ///  * sealed messages (checksum != 0) are re-checksummed; a mismatch
  ///    removes the message and throws CorruptMessageError;
  ///  * sequenced messages (sequence != 0) already seen for their
  ///    (source, tag) are discarded silently (duplicate suppression).
  ///
  /// Throws AbortError if the group aborts while waiting. Queued messages
  /// that already match are still drained after an abort — receivers get the
  /// data that made it before the failure, then the abort.
  Message receive(int source = kAnySource, int tag = kAnyTag);

  /// Like receive, but gives up at `deadline` with TimeoutError.
  Message receive_until(Clock::time_point deadline, int source = kAnySource,
                        int tag = kAnyTag);

  /// Non-blocking variant; nullopt when no matching message is queued.
  std::optional<Message> try_receive(int source = kAnySource,
                                     int tag = kAnyTag);

  /// Bounded-wait variant; nullopt when the deadline passes without a match
  /// (never throws TimeoutError; AbortError / CorruptMessageError still
  /// propagate).
  std::optional<Message> try_receive_until(Clock::time_point deadline,
                                           int source = kAnySource,
                                           int tag = kAnyTag);

  /// Number of queued messages (for diagnostics/tests).
  std::size_t pending() const;

  /// Wakes all blocked receivers with an AbortError carrying the originating
  /// rank (-1 = unattributed) and reason; further (unmatched) receives throw.
  void abort(int origin_rank = -1, const std::string& reason = {});

 private:
  std::optional<Message> match_locked(int source, int tag);
  [[noreturn]] void throw_aborted_locked() const;

  mutable std::mutex mutex_;
  std::condition_variable arrived_;
  std::deque<Message> queue_;
  /// Highest sequence number returned per (source, tag); duplicates at or
  /// below it are suppressed. Only advanced on successful delivery to the
  /// receiver, so a corrupt original does not mask a later clean resend.
  std::map<std::pair<int, int>, std::uint64_t> delivered_sequence_;
  bool aborted_ = false;
  int abort_rank_ = -1;
  std::string abort_reason_;
};

}  // namespace fv::mpx
