// Per-rank message queue with MPI-style (source, tag) selective receive.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "mpx/message.hpp"

namespace fv::mpx {

class Mailbox {
 public:
  /// Enqueues a message (called from the sender's thread).
  void deliver(Message message);

  /// Blocks until a message matching (source, tag) is available and removes
  /// it. kAnySource / kAnyTag act as wildcards. Matching preserves per-
  /// (source, tag) FIFO order: the oldest matching message is returned.
  /// Throws Error if the group is aborted while waiting.
  Message receive(int source = kAnySource, int tag = kAnyTag);

  /// Non-blocking variant; nullopt when no matching message is queued.
  std::optional<Message> try_receive(int source = kAnySource,
                                     int tag = kAnyTag);

  /// Number of queued messages (for diagnostics/tests).
  std::size_t pending() const;

  /// Wakes all blocked receivers with an error; further receives throw.
  void abort();

 private:
  std::optional<Message> match_locked(int source, int tag);

  mutable std::mutex mutex_;
  std::condition_variable arrived_;
  std::deque<Message> queue_;
  bool aborted_ = false;
};

}  // namespace fv::mpx
