// Deterministic fault injection for the mpx transport.
//
// A FaultPlan is installed per GroupState (zero cost when absent: one null
// pointer check per send) and consulted by Comm at every message delivery.
// Decisions are a pure hash of (seed, source, dest, tag, sequence), so a
// given seed reproduces exactly the same set of dropped / delayed /
// duplicated / corrupted messages regardless of thread interleaving — every
// failure mode the chaos suite exercises is replayable. The one stateful
// fault, crash-rank-at-op-N, counts each rank's mpx operations on the rank's
// own thread, which is equally deterministic.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace fv::mpx {

/// What happens to one message at delivery time. Actions are mutually
/// exclusive per message (one draw decides).
enum class FaultAction : std::uint8_t {
  kNone,
  kDrop,       ///< message silently discarded at the sender
  kDelay,      ///< sender sleeps spec.delay before delivering (FIFO kept)
  kDuplicate,  ///< message delivered twice with the same sequence number
  kCorrupt,    ///< one payload byte flipped; checksum left stale
};

struct FaultSpec {
  std::uint64_t seed = 0;       ///< reproducibility key for all decisions
  double drop_rate = 0.0;       ///< P(message dropped)
  double delay_rate = 0.0;      ///< P(message delayed by `delay`)
  double duplicate_rate = 0.0;  ///< P(message delivered twice)
  double corrupt_rate = 0.0;    ///< P(one payload byte flipped)
  std::chrono::milliseconds delay{5};  ///< sleep applied to delayed messages

  /// Rank that "crashes" (its thread exits silently, as a lost cluster node
  /// would) at its crash_at_op-th mpx operation; -1 disables.
  int crash_rank = -1;
  std::uint64_t crash_at_op = 1;  ///< 1-based op index on crash_rank

  /// User tags never faulted — control traffic (e.g. the wall's shutdown
  /// message) that must stay reliable for bounded termination. Reserved
  /// (negative) collective tags are always exempt.
  std::vector<int> exempt_tags;

  /// True when installing this spec would change any behavior.
  bool any() const noexcept {
    return drop_rate > 0.0 || delay_rate > 0.0 || duplicate_rate > 0.0 ||
           corrupt_rate > 0.0 || crash_rank >= 0;
  }
};

/// Counts of injected faults (relaxed atomics; read them after run_group
/// joins, or accept approximate values mid-flight).
struct FaultStats {
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> delayed{0};
  std::atomic<std::uint64_t> duplicated{0};
  std::atomic<std::uint64_t> corrupted{0};
  std::atomic<std::uint64_t> crashes{0};
};

class FaultPlan {
 public:
  /// Validates rates: each in [0, 1] and their sum at most 1 (one uniform
  /// draw is partitioned across the four actions).
  explicit FaultPlan(FaultSpec spec);

  const FaultSpec& spec() const noexcept { return spec_; }
  FaultStats& stats() const noexcept { return stats_; }

  /// Deterministic decision for the message identified by its envelope
  /// coordinates. Reserved (negative) and exempt tags always get kNone.
  FaultAction decide(int source, int dest, int tag,
                     std::uint64_t sequence) const;

  /// Deterministic payload byte index to flip for a kCorrupt decision.
  std::size_t corrupt_index(std::uint64_t sequence,
                            std::size_t payload_size) const;

  /// True when `op` (1-based, counted per rank on the rank's own thread) is
  /// `rank`'s configured crash point.
  bool crash_now(int rank, std::uint64_t op) const noexcept {
    return rank == spec_.crash_rank && op == spec_.crash_at_op;
  }

 private:
  FaultSpec spec_;
  mutable FaultStats stats_;
};

/// Thrown by the fault hook to simulate a node dying mid-operation.
/// Deliberately NOT an fv::Error: application code catching fv::Error must
/// not resurrect a crashed rank. run_group swallows it — the rank's thread
/// exits silently without aborting the group, exactly like a lost cluster
/// node; surviving ranks only notice through their own deadlines.
struct RankCrashed {
  int rank = -1;
};

}  // namespace fv::mpx
