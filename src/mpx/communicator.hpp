// Communicator: the per-rank handle for point-to-point messaging and
// collective operations, mirroring the MPI subset the display-wall code
// needs (send/recv, barrier, broadcast, scatter, gather, reduce).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mpx/mailbox.hpp"
#include "mpx/message.hpp"

namespace fv::mpx {

/// State shared by every rank of one group: mailboxes plus barrier bookkeeping.
class GroupState {
 public:
  explicit GroupState(int size);

  int size() const noexcept { return size_; }
  Mailbox& mailbox(int rank);

  /// Sense-reversing central barrier; throws if the group aborts.
  void barrier_wait();

  /// Marks the group failed and wakes every blocked rank.
  void abort();
  bool aborted() const;

 private:
  const int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  mutable std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;
  bool aborted_ = false;
};

/// Reserved (negative) tags used internally by collectives. User tags must
/// be non-negative.
namespace reserved_tag {
inline constexpr int kBroadcast = -2;
inline constexpr int kGather = -3;
inline constexpr int kReduce = -4;
inline constexpr int kScatter = -5;
inline constexpr int kAllGather = -6;
}  // namespace reserved_tag

class Comm {
 public:
  Comm(GroupState* state, int rank);

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return state_->size(); }

  // -- point to point ------------------------------------------------------

  /// Sends a raw payload; tag must be >= 0 for user traffic.
  void send(int dest, int tag, std::vector<std::byte> payload);

  /// Blocking receive; wildcards allowed.
  Message recv(int source = kAnySource, int tag = kAnyTag);

  /// Non-blocking receive.
  std::optional<Message> try_recv(int source = kAnySource, int tag = kAnyTag);

  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    PayloadWriter writer;
    writer.write(value);
    send(dest, tag, writer.take());
  }

  template <typename T>
  T recv_value(int source = kAnySource, int tag = kAnyTag,
               int* actual_source = nullptr) {
    Message message = recv(source, tag);
    if (actual_source != nullptr) *actual_source = message.source;
    PayloadReader reader(message.payload);
    return reader.read<T>();
  }

  template <typename T>
  void send_vector(int dest, int tag, std::span<const T> values) {
    PayloadWriter writer;
    writer.write_span(values);
    send(dest, tag, writer.take());
  }

  template <typename T>
  std::vector<T> recv_vector(int source = kAnySource, int tag = kAnyTag,
                             int* actual_source = nullptr) {
    Message message = recv(source, tag);
    if (actual_source != nullptr) *actual_source = message.source;
    PayloadReader reader(message.payload);
    return reader.read_vector<T>();
  }

  // -- collectives (every rank of the group must participate) --------------

  void barrier();

  /// Root's buffer is distributed to every rank (buffer is replaced on
  /// non-root ranks; sizes may differ per call).
  template <typename T>
  void broadcast(int root, std::vector<T>& data) {
    check_root(root);
    if (rank_ == root) {
      for (int dest = 0; dest < size(); ++dest) {
        if (dest == rank_) continue;
        PayloadWriter writer;
        writer.write_span(std::span<const T>(data));
        deliver(dest, reserved_tag::kBroadcast, writer.take());
      }
    } else {
      Message message = recv_reserved(root, reserved_tag::kBroadcast);
      PayloadReader reader(message.payload);
      data = reader.read_vector<T>();
    }
  }

  /// Root collects one vector per rank (ordered by rank); non-roots get {}.
  template <typename T>
  std::vector<std::vector<T>> gather(int root, std::span<const T> mine) {
    check_root(root);
    if (rank_ != root) {
      PayloadWriter writer;
      writer.write_span(mine);
      deliver(root, reserved_tag::kGather, writer.take());
      return {};
    }
    std::vector<std::vector<T>> parts(static_cast<std::size_t>(size()));
    parts[static_cast<std::size_t>(rank_)].assign(mine.begin(), mine.end());
    for (int source = 0; source < size(); ++source) {
      if (source == rank_) continue;
      Message message = recv_reserved(source, reserved_tag::kGather);
      PayloadReader reader(message.payload);
      parts[static_cast<std::size_t>(source)] = reader.read_vector<T>();
    }
    return parts;
  }

  /// Every rank receives every rank's value, ordered by rank.
  template <typename T>
  std::vector<T> all_gather_value(const T& value) {
    for (int dest = 0; dest < size(); ++dest) {
      if (dest == rank_) continue;
      PayloadWriter writer;
      writer.write(value);
      deliver(dest, reserved_tag::kAllGather, writer.take());
    }
    std::vector<T> values(static_cast<std::size_t>(size()));
    values[static_cast<std::size_t>(rank_)] = value;
    for (int source = 0; source < size(); ++source) {
      if (source == rank_) continue;
      Message message = recv_reserved(source, reserved_tag::kAllGather);
      PayloadReader reader(message.payload);
      values[static_cast<std::size_t>(source)] = reader.read<T>();
    }
    return values;
  }

  /// Root receives `combine` folded over all ranks' values (rank order);
  /// non-roots receive the identity-folded local value unchanged.
  double reduce(int root, double value,
                const std::function<double(double, double)>& combine);

  /// Sum-reduction delivered to every rank.
  double all_reduce_sum(double value);

  /// Root hands parts[r] to rank r; returns this rank's part.
  template <typename T>
  std::vector<T> scatter(int root, const std::vector<std::vector<T>>& parts) {
    check_root(root);
    if (rank_ == root) {
      FV_REQUIRE(parts.size() == static_cast<std::size_t>(size()),
                 "scatter needs exactly one part per rank");
      for (int dest = 0; dest < size(); ++dest) {
        if (dest == rank_) continue;
        PayloadWriter writer;
        writer.write_span(
            std::span<const T>(parts[static_cast<std::size_t>(dest)]));
        deliver(dest, reserved_tag::kScatter, writer.take());
      }
      return parts[static_cast<std::size_t>(rank_)];
    }
    Message message = recv_reserved(root, reserved_tag::kScatter);
    PayloadReader reader(message.payload);
    return reader.read_vector<T>();
  }

 private:
  void check_root(int root) const;
  /// Internal delivery used by collectives (reserved tags allowed).
  void deliver(int dest, int tag, std::vector<std::byte> payload);
  Message recv_reserved(int source, int tag);

  GroupState* state_;
  int rank_;
};

/// Runs `body` once per rank on dedicated threads and joins them.
/// If any rank throws, the group is aborted (unblocking the others) and the
/// lowest-rank exception is rethrown.
void run_group(int ranks, const std::function<void(Comm&)>& body);

}  // namespace fv::mpx
