// Communicator: the per-rank handle for point-to-point messaging and
// collective operations, mirroring the MPI subset the display-wall code
// needs (send/recv, barrier, broadcast, scatter, gather, reduce).
//
// Robustness surface (see src/mpx/README.md for the full contracts):
//  * under fault injection every send seals an envelope (per-(dest, tag)
//    sequence + payload checksum) — corruption surfaces as
//    fv::CorruptMessageError at the receiver, duplicates are suppressed by
//    the mailbox; a trusted group skips sealing (the in-process transport
//    cannot corrupt bytes on its own, so it would be pure overhead);
//  * bounded waits: recv_for / try_recv_until, and deadline overloads of
//    barrier / broadcast / gather that throw fv::TimeoutError;
//  * aborts are attributed: victims of a group failure get fv::AbortError
//    carrying the originating rank and reason;
//  * a seeded FaultPlan can be installed per group to deterministically
//    drop / delay / duplicate / corrupt messages or crash a rank mid-run
//    (zero cost when absent).
#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "mpx/fault.hpp"
#include "mpx/mailbox.hpp"
#include "mpx/message.hpp"

namespace fv::mpx {

/// State shared by every rank of one group: mailboxes plus barrier
/// bookkeeping plus the (optional) fault plan.
class GroupState {
 public:
  using Clock = std::chrono::steady_clock;

  explicit GroupState(int size);

  int size() const noexcept { return size_; }
  Mailbox& mailbox(int rank);

  /// Installs a deterministic fault plan. Call before any rank starts
  /// communicating; no-op when the spec would change nothing.
  void install_faults(const FaultSpec& spec);
  const FaultPlan* fault_plan() const noexcept { return fault_plan_.get(); }

  /// Sense-reversing central barrier; throws AbortError if the group aborts.
  /// With a deadline, throws TimeoutError when not every rank arrives in
  /// time — the timed-out rank withdraws its arrival, so the barrier state
  /// stays consistent (the surviving ranks keep waiting; a typical caller
  /// lets the TimeoutError abort the group, unblocking them).
  void barrier_wait(std::optional<Clock::time_point> deadline = std::nullopt);

  /// Marks the group failed and wakes every blocked rank. origin_rank/reason
  /// are carried into the AbortError every victim sees (-1 = unattributed).
  void abort(int origin_rank = -1, const std::string& reason = {});
  bool aborted() const;

 private:
  const int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::unique_ptr<const FaultPlan> fault_plan_;

  mutable std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;
  bool aborted_ = false;
  int abort_rank_ = -1;
  std::string abort_reason_;
};

/// Reserved (negative) tags used internally by collectives. User tags must
/// be non-negative. Reserved traffic is never fault-injected.
namespace reserved_tag {
inline constexpr int kBroadcast = -2;
inline constexpr int kGather = -3;
inline constexpr int kReduce = -4;
inline constexpr int kScatter = -5;
inline constexpr int kAllGather = -6;
}  // namespace reserved_tag

/// More than one rank failed for an independent reason: every per-rank
/// failure is aggregated here (rank id + what()) instead of silently
/// discarding all but one, so multi-rank failures stay diagnosable.
class GroupFailure : public Error {
 public:
  struct RankError {
    int rank = -1;
    std::string what;
  };

  GroupFailure(const std::string& message, std::vector<RankError> failures)
      : Error(message), failures_(std::move(failures)) {}

  const std::vector<RankError>& failures() const noexcept {
    return failures_;
  }

 private:
  std::vector<RankError> failures_;
};

class Comm {
 public:
  using Clock = std::chrono::steady_clock;

  Comm(GroupState* state, int rank);

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return state_->size(); }

  /// Fault counters of the installed plan, or nullptr without one.
  const FaultStats* fault_stats() const noexcept {
    const FaultPlan* plan = state_->fault_plan();
    return plan == nullptr ? nullptr : &plan->stats();
  }

  // -- point to point ------------------------------------------------------

  /// Sends a raw payload; tag must be >= 0 for user traffic. Never blocks
  /// (in-process delivery is an enqueue). When the group has a fault plan,
  /// the envelope is sealed (sequence + checksum) before any fault
  /// injection, so tampering is detectable.
  void send(int dest, int tag, std::vector<std::byte> payload);

  /// Blocking receive; wildcards allowed.
  Message recv(int source = kAnySource, int tag = kAnyTag);

  /// Bounded-wait receive: throws fv::TimeoutError after `timeout`.
  Message recv_for(std::chrono::milliseconds timeout,
                   int source = kAnySource, int tag = kAnyTag);

  /// Non-blocking receive.
  std::optional<Message> try_recv(int source = kAnySource, int tag = kAnyTag);

  /// Bounded-wait receive: nullopt once `deadline` passes (never throws
  /// TimeoutError; AbortError / CorruptMessageError still propagate).
  std::optional<Message> try_recv_until(Clock::time_point deadline,
                                        int source = kAnySource,
                                        int tag = kAnyTag);

  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    PayloadWriter writer;
    writer.write(value);
    send(dest, tag, writer.take());
  }

  template <typename T>
  T recv_value(int source = kAnySource, int tag = kAnyTag,
               int* actual_source = nullptr) {
    Message message = recv(source, tag);
    if (actual_source != nullptr) *actual_source = message.source;
    PayloadReader reader(message.payload);
    return reader.read<T>();
  }

  template <typename T>
  void send_vector(int dest, int tag, std::span<const T> values) {
    PayloadWriter writer;
    writer.write_span(values);
    send(dest, tag, writer.take());
  }

  template <typename T>
  std::vector<T> recv_vector(int source = kAnySource, int tag = kAnyTag,
                             int* actual_source = nullptr) {
    Message message = recv(source, tag);
    if (actual_source != nullptr) *actual_source = message.source;
    PayloadReader reader(message.payload);
    return reader.read_vector<T>();
  }

  // -- collectives (every rank of the group must participate) --------------

  void barrier();
  /// Deadline barrier: throws fv::TimeoutError if the group does not
  /// assemble within `timeout`.
  void barrier(std::chrono::milliseconds timeout);

  /// Root's buffer is distributed to every rank (buffer is replaced on
  /// non-root ranks; sizes may differ per call). The deadline overload
  /// bounds the non-root wait for the root's message.
  template <typename T>
  void broadcast(int root, std::vector<T>& data) {
    broadcast_impl(root, data, std::nullopt);
  }
  template <typename T>
  void broadcast(int root, std::vector<T>& data,
                 std::chrono::milliseconds timeout) {
    broadcast_impl(root, data, Clock::now() + timeout);
  }

  /// Root collects one vector per rank (ordered by rank); non-roots get {}.
  /// The deadline overload bounds the root's wait for each contribution.
  template <typename T>
  std::vector<std::vector<T>> gather(int root, std::span<const T> mine) {
    return gather_impl(root, mine, std::nullopt);
  }
  template <typename T>
  std::vector<std::vector<T>> gather(int root, std::span<const T> mine,
                                     std::chrono::milliseconds timeout) {
    return gather_impl(root, mine, Clock::now() + timeout);
  }

  /// Every rank receives every rank's value, ordered by rank.
  template <typename T>
  std::vector<T> all_gather_value(const T& value) {
    for (int dest = 0; dest < size(); ++dest) {
      if (dest == rank_) continue;
      PayloadWriter writer;
      writer.write(value);
      deliver(dest, reserved_tag::kAllGather, writer.take());
    }
    std::vector<T> values(static_cast<std::size_t>(size()));
    values[static_cast<std::size_t>(rank_)] = value;
    for (int source = 0; source < size(); ++source) {
      if (source == rank_) continue;
      Message message = recv_reserved(source, reserved_tag::kAllGather);
      PayloadReader reader(message.payload);
      values[static_cast<std::size_t>(source)] = reader.read<T>();
    }
    return values;
  }

  /// Root receives `combine` folded over all ranks' values (rank order);
  /// non-roots receive the identity-folded local value unchanged.
  double reduce(int root, double value,
                const std::function<double(double, double)>& combine);

  /// Sum-reduction delivered to every rank.
  double all_reduce_sum(double value);

  /// Root hands parts[r] to rank r; returns this rank's part.
  template <typename T>
  std::vector<T> scatter(int root, const std::vector<std::vector<T>>& parts) {
    check_root(root);
    if (rank_ == root) {
      FV_REQUIRE(parts.size() == static_cast<std::size_t>(size()),
                 "scatter needs exactly one part per rank");
      for (int dest = 0; dest < size(); ++dest) {
        if (dest == rank_) continue;
        PayloadWriter writer;
        writer.write_span(
            std::span<const T>(parts[static_cast<std::size_t>(dest)]));
        deliver(dest, reserved_tag::kScatter, writer.take());
      }
      return parts[static_cast<std::size_t>(rank_)];
    }
    Message message = recv_reserved(root, reserved_tag::kScatter);
    PayloadReader reader(message.payload);
    return reader.read_vector<T>();
  }

 private:
  void check_root(int root) const;
  /// Internal delivery used by collectives (reserved tags allowed); seals
  /// the envelope and applies the fault plan (user tags only).
  void deliver(int dest, int tag, std::vector<std::byte> payload);
  Message recv_reserved(int source, int tag,
                        std::optional<Clock::time_point> deadline =
                            std::nullopt);
  /// Per-rank op counter for the crash fault; throws RankCrashed at the
  /// configured op. No-op without a fault plan.
  void fault_op();

  template <typename T>
  void broadcast_impl(int root, std::vector<T>& data,
                      std::optional<Clock::time_point> deadline) {
    check_root(root);
    if (rank_ == root) {
      for (int dest = 0; dest < size(); ++dest) {
        if (dest == rank_) continue;
        PayloadWriter writer;
        writer.write_span(std::span<const T>(data));
        deliver(dest, reserved_tag::kBroadcast, writer.take());
      }
    } else {
      Message message =
          recv_reserved(root, reserved_tag::kBroadcast, deadline);
      PayloadReader reader(message.payload);
      data = reader.read_vector<T>();
    }
  }

  template <typename T>
  std::vector<std::vector<T>> gather_impl(
      int root, std::span<const T> mine,
      std::optional<Clock::time_point> deadline) {
    check_root(root);
    if (rank_ != root) {
      PayloadWriter writer;
      writer.write_span(mine);
      deliver(root, reserved_tag::kGather, writer.take());
      return {};
    }
    std::vector<std::vector<T>> parts(static_cast<std::size_t>(size()));
    parts[static_cast<std::size_t>(rank_)].assign(mine.begin(), mine.end());
    for (int source = 0; source < size(); ++source) {
      if (source == rank_) continue;
      Message message =
          recv_reserved(source, reserved_tag::kGather, deadline);
      PayloadReader reader(message.payload);
      parts[static_cast<std::size_t>(source)] = reader.read_vector<T>();
    }
    return parts;
  }

  GroupState* state_;
  int rank_;
  /// Next sequence number per (dest, tag); Comm lives on one rank's thread,
  /// so no locking. Sequences start at 1 (0 = unsequenced sentinel).
  std::map<std::pair<int, int>, std::uint64_t> next_sequence_;
  /// Count of this rank's mpx operations (sends + receives), for the
  /// crash-at-op fault. Only advanced when a fault plan is installed.
  std::uint64_t ops_ = 0;
};

/// Runs `body` once per rank on dedicated threads and joins them.
///
/// Failure semantics: a rank that throws aborts the group (unblocking every
/// other rank with an attributed AbortError). After the join, failures are
/// aggregated: ranks that merely died of the abort (AbortError victims) are
/// secondary; if exactly one rank failed for its own reason, that original
/// exception is rethrown; if several did, a GroupFailure listing every
/// (rank, what()) is thrown. Ranks crashed by a fault plan exit silently —
/// a simulated lost node is not an error here; survivors see it only
/// through their own deadlines.
void run_group(int ranks, const std::function<void(Comm&)>& body);

/// As above, with a deterministic fault plan installed for the group's
/// lifetime. `faults` with nothing enabled behaves exactly like run_group.
void run_group(int ranks, const std::function<void(Comm&)>& body,
               const FaultSpec& faults);

}  // namespace fv::mpx
