#include "mpx/mailbox.hpp"

namespace fv::mpx {

void Mailbox::deliver(Message message) {
  {
    std::unique_lock lock(mutex_);
    queue_.push_back(std::move(message));
  }
  arrived_.notify_all();
}

std::optional<Message> Mailbox::match_locked(int source, int tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    const bool source_ok = source == kAnySource || it->source == source;
    const bool tag_ok = tag == kAnyTag || it->tag == tag;
    if (source_ok && tag_ok) {
      Message found = std::move(*it);
      queue_.erase(it);
      return found;
    }
  }
  return std::nullopt;
}

Message Mailbox::receive(int source, int tag) {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (auto found = match_locked(source, tag); found.has_value()) {
      return std::move(*found);
    }
    if (aborted_) {
      throw Error("mpx group aborted while a rank was blocked in receive");
    }
    arrived_.wait(lock);
  }
}

std::optional<Message> Mailbox::try_receive(int source, int tag) {
  std::unique_lock lock(mutex_);
  return match_locked(source, tag);
}

std::size_t Mailbox::pending() const {
  std::unique_lock lock(mutex_);
  return queue_.size();
}

void Mailbox::abort() {
  {
    std::unique_lock lock(mutex_);
    aborted_ = true;
  }
  arrived_.notify_all();
}

}  // namespace fv::mpx
