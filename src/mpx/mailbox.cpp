#include "mpx/mailbox.hpp"

#include <sstream>

namespace fv::mpx {

void Mailbox::deliver(Message message) {
  {
    std::unique_lock lock(mutex_);
    queue_.push_back(std::move(message));
  }
  arrived_.notify_all();
}

std::optional<Message> Mailbox::match_locked(int source, int tag) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    const bool source_ok = source == kAnySource || it->source == source;
    const bool tag_ok = tag == kAnyTag || it->tag == tag;
    if (!source_ok || !tag_ok) {
      ++it;
      continue;
    }
    if (it->sequence != 0) {
      auto& last = delivered_sequence_[{it->source, it->tag}];
      if (it->sequence <= last) {
        it = queue_.erase(it);  // duplicate delivery: suppress silently
        continue;
      }
      if (it->checksum != 0 && payload_checksum(it->payload) != it->checksum) {
        std::ostringstream os;
        os << "message from rank " << it->source << " tag " << it->tag
           << " seq " << it->sequence
           << " failed its payload checksum (corrupted or truncated in "
              "transit)";
        queue_.erase(it);
        // last NOT advanced: a clean resend with this sequence still counts.
        throw CorruptMessageError(os.str());
      }
      last = it->sequence;
    } else if (it->checksum != 0 &&
               payload_checksum(it->payload) != it->checksum) {
      std::ostringstream os;
      os << "message from rank " << it->source << " tag " << it->tag
         << " failed its payload checksum";
      queue_.erase(it);
      throw CorruptMessageError(os.str());
    }
    Message found = std::move(*it);
    queue_.erase(it);
    return found;
  }
  return std::nullopt;
}

void Mailbox::throw_aborted_locked() const {
  std::ostringstream os;
  os << "mpx group aborted while a rank was blocked in receive";
  if (abort_rank_ >= 0) os << " (aborted by rank " << abort_rank_ << ")";
  if (!abort_reason_.empty()) os << ": " << abort_reason_;
  throw AbortError(os.str(), abort_rank_);
}

Message Mailbox::receive(int source, int tag) {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (auto found = match_locked(source, tag); found.has_value()) {
      return std::move(*found);
    }
    if (aborted_) throw_aborted_locked();
    arrived_.wait(lock);
  }
}

Message Mailbox::receive_until(Clock::time_point deadline, int source,
                               int tag) {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (auto found = match_locked(source, tag); found.has_value()) {
      return std::move(*found);
    }
    if (aborted_) throw_aborted_locked();
    if (arrived_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // Recheck once: the message may have raced the deadline.
      if (auto found = match_locked(source, tag); found.has_value()) {
        return std::move(*found);
      }
      if (aborted_) throw_aborted_locked();
      std::ostringstream os;
      os << "receive(source=" << source << ", tag=" << tag
         << ") deadline expired";
      throw TimeoutError(os.str());
    }
  }
}

std::optional<Message> Mailbox::try_receive(int source, int tag) {
  std::unique_lock lock(mutex_);
  return match_locked(source, tag);
}

std::optional<Message> Mailbox::try_receive_until(Clock::time_point deadline,
                                                  int source, int tag) {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (auto found = match_locked(source, tag); found.has_value()) {
      return found;
    }
    if (aborted_) throw_aborted_locked();
    if (arrived_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return match_locked(source, tag);  // last-chance race recheck
    }
  }
}

std::size_t Mailbox::pending() const {
  std::unique_lock lock(mutex_);
  return queue_.size();
}

void Mailbox::abort(int origin_rank, const std::string& reason) {
  {
    std::unique_lock lock(mutex_);
    if (!aborted_) {  // first abort wins the attribution
      aborted_ = true;
      abort_rank_ = origin_rank;
      abort_reason_ = reason;
    }
  }
  arrived_.notify_all();
}

}  // namespace fv::mpx
