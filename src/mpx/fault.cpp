#include "mpx/fault.hpp"

#include <algorithm>

#include "util/fault_hash.hpp"

namespace fv::mpx {

namespace {

/// One deterministic uniform draw in [0, 1) per message envelope: the
/// shared fault_hash chain over the envelope packed into two words. The
/// packing (and therefore every decision any historical seed produced) is
/// pinned by the FaultHash equivalence test in tests/util_test.cpp.
double uniform_draw(std::uint64_t seed, int source, int dest, int tag,
                    std::uint64_t sequence, std::uint64_t stream) {
  const std::uint64_t h = fault_hash(
      seed, stream,
      {(static_cast<std::uint64_t>(static_cast<std::uint32_t>(source))
        << 32) ^
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(dest)),
       (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)) << 32) ^
           sequence});
  return fault_uniform(h);
}

}  // namespace

FaultPlan::FaultPlan(FaultSpec spec) : spec_(std::move(spec)) {
  const double rates[] = {spec_.drop_rate, spec_.delay_rate,
                          spec_.duplicate_rate, spec_.corrupt_rate};
  double sum = 0.0;
  for (const double rate : rates) {
    FV_REQUIRE(rate >= 0.0 && rate <= 1.0,
               "fault rates must lie in [0, 1]");
    sum += rate;
  }
  FV_REQUIRE(sum <= 1.0 + 1e-12,
             "fault rates partition one draw; their sum must be <= 1");
  FV_REQUIRE(spec_.delay.count() >= 0, "fault delay must be non-negative");
  FV_REQUIRE(spec_.crash_rank < 0 || spec_.crash_at_op >= 1,
             "crash_at_op is 1-based");
}

FaultAction FaultPlan::decide(int source, int dest, int tag,
                              std::uint64_t sequence) const {
  if (tag < 0) return FaultAction::kNone;  // reserved collective traffic
  if (std::find(spec_.exempt_tags.begin(), spec_.exempt_tags.end(), tag) !=
      spec_.exempt_tags.end()) {
    return FaultAction::kNone;
  }
  const double u = uniform_draw(spec_.seed, source, dest, tag, sequence, 1);
  double edge = spec_.drop_rate;
  if (u < edge) return FaultAction::kDrop;
  edge += spec_.delay_rate;
  if (u < edge) return FaultAction::kDelay;
  edge += spec_.duplicate_rate;
  if (u < edge) return FaultAction::kDuplicate;
  edge += spec_.corrupt_rate;
  if (u < edge) return FaultAction::kCorrupt;
  return FaultAction::kNone;
}

std::size_t FaultPlan::corrupt_index(std::uint64_t sequence,
                                     std::size_t payload_size) const {
  FV_REQUIRE(payload_size > 0, "cannot pick a corrupt index in empty payload");
  return static_cast<std::size_t>(
      fault_mix64(spec_.seed ^ (sequence * 0xd1342543de82ef95ull)) %
      payload_size);
}

}  // namespace fv::mpx
