#include "mpx/fault.hpp"

#include <algorithm>

namespace fv::mpx {

namespace {

/// splitmix64 finalizer: full-avalanche 64-bit mix.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// One deterministic uniform draw in [0, 1) per message envelope.
double uniform_draw(std::uint64_t seed, int source, int dest, int tag,
                    std::uint64_t sequence, std::uint64_t stream) {
  std::uint64_t h = mix64(seed ^ (stream * 0x9e3779b97f4a7c15ull));
  h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(source))
                 << 32) ^
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(dest)));
  h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag))
                 << 32) ^
            sequence);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultPlan::FaultPlan(FaultSpec spec) : spec_(std::move(spec)) {
  const double rates[] = {spec_.drop_rate, spec_.delay_rate,
                          spec_.duplicate_rate, spec_.corrupt_rate};
  double sum = 0.0;
  for (const double rate : rates) {
    FV_REQUIRE(rate >= 0.0 && rate <= 1.0,
               "fault rates must lie in [0, 1]");
    sum += rate;
  }
  FV_REQUIRE(sum <= 1.0 + 1e-12,
             "fault rates partition one draw; their sum must be <= 1");
  FV_REQUIRE(spec_.delay.count() >= 0, "fault delay must be non-negative");
  FV_REQUIRE(spec_.crash_rank < 0 || spec_.crash_at_op >= 1,
             "crash_at_op is 1-based");
}

FaultAction FaultPlan::decide(int source, int dest, int tag,
                              std::uint64_t sequence) const {
  if (tag < 0) return FaultAction::kNone;  // reserved collective traffic
  if (std::find(spec_.exempt_tags.begin(), spec_.exempt_tags.end(), tag) !=
      spec_.exempt_tags.end()) {
    return FaultAction::kNone;
  }
  const double u = uniform_draw(spec_.seed, source, dest, tag, sequence, 1);
  double edge = spec_.drop_rate;
  if (u < edge) return FaultAction::kDrop;
  edge += spec_.delay_rate;
  if (u < edge) return FaultAction::kDelay;
  edge += spec_.duplicate_rate;
  if (u < edge) return FaultAction::kDuplicate;
  edge += spec_.corrupt_rate;
  if (u < edge) return FaultAction::kCorrupt;
  return FaultAction::kNone;
}

std::size_t FaultPlan::corrupt_index(std::uint64_t sequence,
                                     std::size_t payload_size) const {
  FV_REQUIRE(payload_size > 0, "cannot pick a corrupt index in empty payload");
  return static_cast<std::size_t>(
      mix64(spec_.seed ^ (sequence * 0xd1342543de82ef95ull)) % payload_size);
}

}  // namespace fv::mpx
