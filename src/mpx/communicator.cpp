#include "mpx/communicator.hpp"

#include <sstream>
#include <thread>

namespace fv::mpx {

GroupState::GroupState(int size) : size_(size) {
  FV_REQUIRE(size >= 1, "group needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Mailbox& GroupState::mailbox(int rank) {
  FV_REQUIRE(rank >= 0 && rank < size_, "rank out of range");
  return *mailboxes_[static_cast<std::size_t>(rank)];
}

void GroupState::install_faults(const FaultSpec& spec) {
  if (!spec.any()) return;
  FV_REQUIRE(spec.crash_rank < size_,
             "crash_rank must name a rank of this group");
  fault_plan_ = std::make_unique<FaultPlan>(spec);
}

void GroupState::barrier_wait(std::optional<Clock::time_point> deadline) {
  std::unique_lock lock(barrier_mutex_);
  if (aborted_) {
    throw AbortError("mpx group aborted during barrier" +
                         (abort_reason_.empty() ? std::string()
                                                : ": " + abort_reason_),
                     abort_rank_);
  }
  const std::uint64_t generation = barrier_generation_;
  if (++barrier_waiting_ == size_) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  const auto assembled = [&] {
    return barrier_generation_ != generation || aborted_;
  };
  if (deadline.has_value()) {
    if (!barrier_cv_.wait_until(lock, *deadline, assembled)) {
      // Withdraw this rank's arrival so the barrier's count stays honest
      // for whoever is still waiting.
      --barrier_waiting_;
      throw TimeoutError("barrier deadline expired before every rank arrived");
    }
  } else {
    barrier_cv_.wait(lock, assembled);
  }
  if (aborted_ && barrier_generation_ == generation) {
    throw AbortError("mpx group aborted during barrier" +
                         (abort_reason_.empty() ? std::string()
                                                : ": " + abort_reason_),
                     abort_rank_);
  }
}

void GroupState::abort(int origin_rank, const std::string& reason) {
  {
    std::unique_lock lock(barrier_mutex_);
    if (!aborted_) {  // first abort wins the attribution
      aborted_ = true;
      abort_rank_ = origin_rank;
      abort_reason_ = reason;
    }
  }
  barrier_cv_.notify_all();
  for (auto& mailbox : mailboxes_) mailbox->abort(origin_rank, reason);
}

bool GroupState::aborted() const {
  std::unique_lock lock(barrier_mutex_);
  return aborted_;
}

Comm::Comm(GroupState* state, int rank) : state_(state), rank_(rank) {
  FV_REQUIRE(state != nullptr, "communicator needs a group");
  FV_REQUIRE(rank >= 0 && rank < state->size(), "rank out of range");
}

void Comm::fault_op() {
  const FaultPlan* plan = state_->fault_plan();
  if (plan == nullptr) return;
  ++ops_;
  if (plan->crash_now(rank_, ops_)) {
    plan->stats().crashes.fetch_add(1, std::memory_order_relaxed);
    throw RankCrashed{rank_};
  }
}

void Comm::send(int dest, int tag, std::vector<std::byte> payload) {
  FV_REQUIRE(tag >= 0, "user messages must use non-negative tags");
  deliver(dest, tag, std::move(payload));
}

void Comm::deliver(int dest, int tag, std::vector<std::byte> payload) {
  FV_REQUIRE(dest >= 0 && dest < size(), "destination rank out of range");
  fault_op();
  Message message;
  message.source = rank_;
  message.tag = tag;
  const FaultPlan* plan = state_->fault_plan();
  if (plan != nullptr) {
    // Seal the envelope only under fault injection: the in-process
    // transport cannot corrupt or duplicate on its own, so sealing a
    // trusted group's messages would be pure per-byte overhead (the
    // checksum is the one per-payload-byte cost in the whole layer).
    message.sequence = ++next_sequence_[{dest, tag}];
    message.checksum = payload_checksum(payload);
  }
  message.payload = std::move(payload);

  if (plan != nullptr) {
    switch (plan->decide(rank_, dest, tag, message.sequence)) {
      case FaultAction::kDrop:
        plan->stats().dropped.fetch_add(1, std::memory_order_relaxed);
        return;
      case FaultAction::kDelay:
        plan->stats().delayed.fetch_add(1, std::memory_order_relaxed);
        // Sleeping on the sender's thread keeps per-(source, tag) FIFO
        // order, which the mailbox's duplicate suppression relies on.
        std::this_thread::sleep_for(plan->spec().delay);
        break;
      case FaultAction::kDuplicate:
        plan->stats().duplicated.fetch_add(1, std::memory_order_relaxed);
        state_->mailbox(dest).deliver(message);  // same sequence, twice
        break;
      case FaultAction::kCorrupt:
        if (!message.payload.empty()) {
          plan->stats().corrupted.fetch_add(1, std::memory_order_relaxed);
          const std::size_t index =
              plan->corrupt_index(message.sequence, message.payload.size());
          message.payload[index] ^= std::byte{0x2a};
          // checksum left stale: the receiver's verification must fire.
        }
        break;
      case FaultAction::kNone:
        break;
    }
  }
  state_->mailbox(dest).deliver(std::move(message));
}

Message Comm::recv(int source, int tag) {
  fault_op();
  return state_->mailbox(rank_).receive(source, tag);
}

Message Comm::recv_for(std::chrono::milliseconds timeout, int source,
                       int tag) {
  fault_op();
  return state_->mailbox(rank_).receive_until(Clock::now() + timeout, source,
                                              tag);
}

std::optional<Message> Comm::try_recv(int source, int tag) {
  fault_op();
  return state_->mailbox(rank_).try_receive(source, tag);
}

std::optional<Message> Comm::try_recv_until(Clock::time_point deadline,
                                            int source, int tag) {
  fault_op();
  return state_->mailbox(rank_).try_receive_until(deadline, source, tag);
}

Message Comm::recv_reserved(int source, int tag,
                            std::optional<Clock::time_point> deadline) {
  fault_op();
  if (deadline.has_value()) {
    return state_->mailbox(rank_).receive_until(*deadline, source, tag);
  }
  return state_->mailbox(rank_).receive(source, tag);
}

void Comm::barrier() {
  fault_op();
  state_->barrier_wait();
}

void Comm::barrier(std::chrono::milliseconds timeout) {
  fault_op();
  state_->barrier_wait(Clock::now() + timeout);
}

void Comm::check_root(int root) const {
  FV_REQUIRE(root >= 0 && root < size(), "collective root out of range");
}

double Comm::reduce(int root, double value,
                    const std::function<double(double, double)>& combine) {
  check_root(root);
  if (rank_ != root) {
    PayloadWriter writer;
    writer.write(value);
    deliver(root, reserved_tag::kReduce, writer.take());
    return value;
  }
  double accumulated = 0.0;
  bool first = true;
  for (int source = 0; source < size(); ++source) {
    double contribution;
    if (source == rank_) {
      contribution = value;
    } else {
      Message message = recv_reserved(source, reserved_tag::kReduce);
      PayloadReader reader(message.payload);
      contribution = reader.read<double>();
    }
    accumulated = first ? contribution : combine(accumulated, contribution);
    first = false;
  }
  return accumulated;
}

double Comm::all_reduce_sum(double value) {
  const std::vector<double> values = all_gather_value(value);
  double total = 0.0;
  for (double v : values) total += v;
  return total;
}

namespace {

/// What one rank's thread left behind.
struct RankOutcome {
  std::exception_ptr error;   ///< null = clean exit (or simulated crash)
  bool abort_victim = false;  ///< failure was an AbortError (secondary)
  std::string what;
};

void run_group_impl(int ranks, const std::function<void(Comm&)>& body,
                    const FaultSpec* faults) {
  FV_REQUIRE(ranks >= 1, "group needs at least one rank");
  FV_REQUIRE(body != nullptr, "group body must be callable");
  GroupState state(ranks);
  if (faults != nullptr) state.install_faults(*faults);
  std::vector<RankOutcome> outcomes(static_cast<std::size_t>(ranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      auto& outcome = outcomes[static_cast<std::size_t>(r)];
      try {
        Comm comm(&state, r);
        body(comm);
      } catch (const RankCrashed&) {
        // Simulated node death: the thread exits silently, no abort — the
        // rest of the group only notices through its own deadlines.
      } catch (const AbortError& e) {
        // Victim of someone else's failure: secondary, never aborts again.
        outcome = {std::current_exception(), true, e.what()};
      } catch (const std::exception& e) {
        outcome = {std::current_exception(), false, e.what()};
        state.abort(r, e.what());
      } catch (...) {
        outcome = {std::current_exception(), false, "non-standard exception"};
        state.abort(r, "non-standard exception");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::vector<GroupFailure::RankError> primaries;
  for (int r = 0; r < ranks; ++r) {
    const auto& outcome = outcomes[static_cast<std::size_t>(r)];
    if (outcome.error && !outcome.abort_victim) {
      primaries.push_back({r, outcome.what});
    }
  }
  if (primaries.size() == 1) {
    for (const auto& outcome : outcomes) {
      if (outcome.error && !outcome.abort_victim) {
        std::rethrow_exception(outcome.error);
      }
    }
  }
  if (primaries.size() > 1) {
    std::ostringstream os;
    os << primaries.size() << " of " << ranks << " ranks failed";
    for (const auto& failure : primaries) {
      os << "; rank " << failure.rank << ": " << failure.what;
    }
    throw GroupFailure(os.str(), std::move(primaries));
  }
  // No primary failure: surface a stray abort victim if one exists (e.g.
  // someone called GroupState::abort directly).
  for (const auto& outcome : outcomes) {
    if (outcome.error) std::rethrow_exception(outcome.error);
  }
}

}  // namespace

void run_group(int ranks, const std::function<void(Comm&)>& body) {
  run_group_impl(ranks, body, nullptr);
}

void run_group(int ranks, const std::function<void(Comm&)>& body,
               const FaultSpec& faults) {
  run_group_impl(ranks, body, &faults);
}

}  // namespace fv::mpx
