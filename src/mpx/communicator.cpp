#include "mpx/communicator.hpp"

#include <thread>

namespace fv::mpx {

GroupState::GroupState(int size) : size_(size) {
  FV_REQUIRE(size >= 1, "group needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Mailbox& GroupState::mailbox(int rank) {
  FV_REQUIRE(rank >= 0 && rank < size_, "rank out of range");
  return *mailboxes_[static_cast<std::size_t>(rank)];
}

void GroupState::barrier_wait() {
  std::unique_lock lock(barrier_mutex_);
  if (aborted_) throw Error("mpx group aborted during barrier");
  const std::uint64_t generation = barrier_generation_;
  if (++barrier_waiting_ == size_) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] {
    return barrier_generation_ != generation || aborted_;
  });
  if (aborted_ && barrier_generation_ == generation) {
    throw Error("mpx group aborted during barrier");
  }
}

void GroupState::abort() {
  {
    std::unique_lock lock(barrier_mutex_);
    aborted_ = true;
  }
  barrier_cv_.notify_all();
  for (auto& mailbox : mailboxes_) mailbox->abort();
}

bool GroupState::aborted() const {
  std::unique_lock lock(barrier_mutex_);
  return aborted_;
}

Comm::Comm(GroupState* state, int rank) : state_(state), rank_(rank) {
  FV_REQUIRE(state != nullptr, "communicator needs a group");
  FV_REQUIRE(rank >= 0 && rank < state->size(), "rank out of range");
}

void Comm::send(int dest, int tag, std::vector<std::byte> payload) {
  FV_REQUIRE(tag >= 0, "user messages must use non-negative tags");
  deliver(dest, tag, std::move(payload));
}

void Comm::deliver(int dest, int tag, std::vector<std::byte> payload) {
  FV_REQUIRE(dest >= 0 && dest < size(), "destination rank out of range");
  Message message;
  message.source = rank_;
  message.tag = tag;
  message.payload = std::move(payload);
  state_->mailbox(dest).deliver(std::move(message));
}

Message Comm::recv(int source, int tag) {
  return state_->mailbox(rank_).receive(source, tag);
}

std::optional<Message> Comm::try_recv(int source, int tag) {
  return state_->mailbox(rank_).try_receive(source, tag);
}

Message Comm::recv_reserved(int source, int tag) {
  return state_->mailbox(rank_).receive(source, tag);
}

void Comm::barrier() { state_->barrier_wait(); }

void Comm::check_root(int root) const {
  FV_REQUIRE(root >= 0 && root < size(), "collective root out of range");
}

double Comm::reduce(int root, double value,
                    const std::function<double(double, double)>& combine) {
  check_root(root);
  if (rank_ != root) {
    PayloadWriter writer;
    writer.write(value);
    deliver(root, reserved_tag::kReduce, writer.take());
    return value;
  }
  double accumulated = 0.0;
  bool first = true;
  for (int source = 0; source < size(); ++source) {
    double contribution;
    if (source == rank_) {
      contribution = value;
    } else {
      Message message = recv_reserved(source, reserved_tag::kReduce);
      PayloadReader reader(message.payload);
      contribution = reader.read<double>();
    }
    accumulated = first ? contribution : combine(accumulated, contribution);
    first = false;
  }
  return accumulated;
}

double Comm::all_reduce_sum(double value) {
  const std::vector<double> values = all_gather_value(value);
  double total = 0.0;
  for (double v : values) total += v;
  return total;
}

void run_group(int ranks, const std::function<void(Comm&)>& body) {
  FV_REQUIRE(ranks >= 1, "group needs at least one rank");
  FV_REQUIRE(body != nullptr, "group body must be callable");
  GroupState state(ranks);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(ranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        Comm comm(&state, r);
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        state.abort();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace fv::mpx
