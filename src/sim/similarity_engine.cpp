#include "sim/similarity_engine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "stats/ranking.hpp"
#include "util/error.hpp"
#include "util/triangular.hpp"

namespace fv::sim {

namespace {

/// Kernel lane width: rows are padded to a multiple of this so the hot
/// loops below carry independent accumulator chains the compiler can keep
/// in vector registers (no remainder loop, no reassociation needed).
constexpr std::size_t kLanes = 16;

/// Pair-block edge for all_distances: 64 rows x 96 floats = 24 KiB per
/// side, so one tile's working set stays L1/L2 resident while its
/// 64 x 64 pairs reuse it.
constexpr std::size_t kTile = 64;

double dot_padded(const float* a, const float* b, std::size_t stride) {
  double acc[kLanes] = {};
  for (std::size_t k = 0; k < stride; k += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      acc[l] += static_cast<double>(a[k + l]) * static_cast<double>(b[k + l]);
    }
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kLanes; ++l) total += acc[l];
  return total;
}

double squared_diff_padded(const float* a, const float* b,
                           std::size_t stride) {
  double acc[kLanes] = {};
  for (std::size_t k = 0; k < stride; k += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      const double diff =
          static_cast<double>(a[k + l]) - static_cast<double>(b[k + l]);
      acc[l] += diff * diff;
    }
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kLanes; ++l) total += acc[l];
  return total;
}

/// Pairwise-complete moment sums over the common-present cells of two rows.
struct PairSums {
  std::size_t n = 0;
  double sum_a = 0, sum_b = 0, sum_aa = 0, sum_bb = 0, sum_ab = 0;
};

double finish_centered(const PairSums& s) {
  if (s.n < stats::kMinCompletePairs) return 0.0;
  const double n = static_cast<double>(s.n);
  const double cov = s.sum_ab - s.sum_a * s.sum_b / n;
  const double var_a = s.sum_aa - s.sum_a * s.sum_a / n;
  const double var_b = s.sum_bb - s.sum_b * s.sum_b / n;
  // Relative zero guard: the subtraction-based masked sums can leave a
  // ~1e-13 residue where the scalar reference computes an exact 0 variance
  // (constant-over-common-subset profiles). Purely relative to the row's
  // energy, so small-magnitude but genuinely varying profiles still
  // correlate (sum_aa >= var_a >= 0 always, making eps = 0 exactly when
  // the subset is all zeros).
  if (var_a <= 1e-12 * s.sum_aa || var_b <= 1e-12 * s.sum_bb) return 0.0;
  return std::clamp(cov / std::sqrt(var_a * var_b), -1.0, 1.0);
}

double finish_uncentered(const PairSums& s) {
  if (s.n < stats::kMinCompletePairs) return 0.0;
  if (s.sum_aa <= 0.0 || s.sum_bb <= 0.0) return 0.0;
  return std::clamp(s.sum_ab / std::sqrt(s.sum_aa * s.sum_bb), -1.0, 1.0);
}

/// One kTile x kTile pair block of the upper triangle.
struct TilePair {
  std::uint32_t a, b;
};

/// Balanced schedule: every work unit is one pair block, so unit cost is
/// near-uniform regardless of row index (the seed's row-per-task triangle
/// gave the first row n-1 pairs and the last row one). Dynamic pull absorbs
/// what variance remains (diagonal tiles are half-size; masked rows cost
/// more).
std::vector<TilePair> upper_triangle_tiles(std::size_t n) {
  const std::size_t tiles = (n + kTile - 1) / kTile;
  std::vector<TilePair> work;
  work.reserve(tiles * (tiles + 1) / 2);
  for (std::uint32_t ta = 0; ta < tiles; ++ta) {
    for (std::uint32_t tb = ta; tb < tiles; ++tb) {
      work.push_back({ta, tb});
    }
  }
  return work;
}

}  // namespace

SimilarityEngine SimilarityEngine::from_rows(
    const expr::ExpressionMatrix& matrix, Metric metric,
    Precompute precompute) {
  SimilarityEngine engine;
  engine.build(matrix.data(), matrix.rows(), matrix.cols(), metric,
               precompute);
  return engine;
}

SimilarityEngine SimilarityEngine::from_columns(
    const expr::ExpressionMatrix& matrix, Metric metric) {
  // One transpose up front beats a column() allocation per profile fetch.
  return from_rows(matrix.transposed(), metric);
}

SimilarityEngine SimilarityEngine::from_profiles(std::span<const float> flat,
                                                 std::size_t count,
                                                 std::size_t length,
                                                 Metric metric,
                                                 Precompute precompute) {
  FV_REQUIRE(flat.size() == count * length,
             "profile buffer size must be count * length");
  SimilarityEngine engine;
  engine.build(flat, count, length, metric, precompute);
  return engine;
}

void SimilarityEngine::build(std::span<const float> flat, std::size_t count,
                             std::size_t length, Metric metric,
                             Precompute precompute) {
  FV_REQUIRE(precompute == Precompute::kAllPairs ||
                 metric == Metric::kPearson ||
                 metric == Metric::kUncenteredPearson,
             "a dot bank requires a Pearson-family metric");
  metric_ = metric;
  precompute_ = precompute;
  count_ = count;
  length_ = length;
  stride_ = ((length + kLanes - 1) / kLanes) * kLanes;
  if (stride_ == 0) stride_ = kLanes;
  mask_words_ = (length + 63) / 64;
  if (mask_words_ == 0) mask_words_ = 1;

  // A dot bank keeps only what dot_all-style scoring reads (normalized
  // rows + presence/zscale); the pairwise-only state below stays empty.
  const bool all_pairs = precompute == Precompute::kAllPairs;
  raw_.assign(metric == Metric::kSpearman ? count * stride_ : 0, 0.0f);
  filled_.assign(all_pairs ? count * stride_ : 0, 0.0f);
  mask_.assign(all_pairs ? count * mask_words_ : 0, 0);
  present_.assign(count, 0);
  has_missing_.assign(count, 0);
  degenerate_.assign(count, 0);
  zscale_.assign(count, 0.0f);
  own_sum_.assign(all_pairs ? count : 0, 0.0);
  own_sumsq_.assign(all_pairs ? count : 0, 0.0);
  missing_idx_.clear();
  missing_begin_.assign(all_pairs ? count + 1 : 0, 0);
  const bool correlation = metric != Metric::kEuclidean;
  normalized_.assign(correlation ? count * stride_ : 0, 0.0f);

  std::vector<double> ranks;  // scratch for Spearman
  for (std::size_t i = 0; i < count; ++i) {
    const float* src = flat.data() + i * length;
    float* raw = raw_.empty() ? nullptr : raw_.data() + i * stride_;
    float* filled = all_pairs ? filled_.data() + i * stride_ : nullptr;
    std::uint64_t* mask = all_pairs ? mask_.data() + i * mask_words_
                                    : nullptr;
    std::size_t present = 0;
    double own_sum = 0.0;
    double own_sumsq = 0.0;
    for (std::size_t k = 0; k < length; ++k) {
      if (raw != nullptr) raw[k] = src[k];
      if (stats::is_missing(src[k])) {
        if (all_pairs) missing_idx_.push_back(static_cast<std::uint32_t>(k));
        continue;
      }
      if (filled != nullptr) filled[k] = src[k];
      if (mask != nullptr) mask[k / 64] |= std::uint64_t{1} << (k % 64);
      ++present;
      own_sum += src[k];
      own_sumsq += static_cast<double>(src[k]) * src[k];
    }
    if (all_pairs) {
      missing_begin_[i + 1] = static_cast<std::uint32_t>(missing_idx_.size());
      own_sum_[i] = own_sum;
      own_sumsq_[i] = own_sumsq;
    }
    present_[i] = static_cast<std::uint32_t>(present);
    has_missing_[i] = present != length ? 1 : 0;
    if (!correlation) continue;

    float* norm_row = normalized_.data() + i * stride_;
    const bool center = metric != Metric::kUncenteredPearson;

    if (metric == Metric::kSpearman) {
      // Rank rows are only consulted on the dense fast path (both rows
      // complete); pairs with missing cells must re-rank the complete
      // subset per pair, which the masked path does via stats::spearman.
      if (has_missing_[i] != 0) continue;
      ranks = stats::midranks(std::span<const float>(src, length));
      double mean = 0.0;
      for (const double r : ranks) mean += r;
      mean = length > 0 ? mean / static_cast<double>(length) : 0.0;
      double sumsq = 0.0;
      for (const double r : ranks) sumsq += (r - mean) * (r - mean);
      if (length < stats::kMinCompletePairs || sumsq <= 0.0) {
        degenerate_[i] = 1;
        continue;
      }
      const double inv_norm = 1.0 / std::sqrt(sumsq);
      for (std::size_t k = 0; k < length; ++k) {
        norm_row[k] = static_cast<float>((ranks[k] - mean) * inv_norm);
      }
      continue;
    }

    // Pearson / uncentered: store (x - mean) / ||x - mean|| with missing
    // cells as 0 — the unit-norm form of the stats::ZProfile z-row. The
    // norm comes from a second centered pass rather than own_sumsq so
    // cancellation cannot inflate it.
    const double mean =
        center && present > 0 ? own_sum / static_cast<double>(present) : 0.0;
    double sumsq = 0.0;
    for (std::size_t k = 0; k < length; ++k) {
      if (stats::is_missing(src[k])) continue;
      const double d = static_cast<double>(src[k]) - mean;
      sumsq += d * d;
    }
    if (present < stats::kMinCompletePairs || sumsq <= 0.0) {
      degenerate_[i] = 1;
      continue;
    }
    const double inv_norm = 1.0 / std::sqrt(sumsq);
    for (std::size_t k = 0; k < length; ++k) {
      if (stats::is_missing(src[k])) continue;
      norm_row[k] =
          static_cast<float>((static_cast<double>(src[k]) - mean) * inv_norm);
    }
    if (present >= 2) {
      zscale_[i] =
          static_cast<float>(std::sqrt(static_cast<double>(present - 1)));
    }
  }
}

std::span<const float> SimilarityEngine::normalized_row(std::size_t i) const {
  FV_REQUIRE(i < count_, "profile index out of range");
  if (normalized_.empty()) return {};
  return {normalized_.data() + i * stride_, stride_};
}

std::size_t SimilarityEngine::common_present(std::size_t i,
                                             std::size_t j) const {
  const std::uint64_t* ma = mask_.data() + i * mask_words_;
  const std::uint64_t* mb = mask_.data() + j * mask_words_;
  std::size_t n = 0;
  for (std::size_t w = 0; w < mask_words_; ++w) {
    n += static_cast<std::size_t>(std::popcount(ma[w] & mb[w]));
  }
  return n;
}

double SimilarityEngine::masked_similarity(std::size_t i, std::size_t j) const {
  if (metric_ == Metric::kSpearman) {
    // Ranks depend on the pairwise-complete subset, so each pair must be
    // re-ranked; the scalar kernel (on the NaN-preserving rows) is the
    // only exact option here.
    return stats::spearman({raw_.data() + i * stride_, length_},
                           {raw_.data() + j * stride_, length_});
  }
  // All reads below hit present cells only, where filled_ == the input.
  const float* a = filled_.data() + i * stride_;
  const float* b = filled_.data() + j * stride_;
  PairSums s;
  s.n = common_present(i, j);
  if (s.n < stats::kMinCompletePairs) return 0.0;
  // Pairwise-complete sums = each row's own sums minus the cells the other
  // row is missing: one vectorized dot over the zero-filled rows plus
  // O(#missing) scalar corrections, instead of a branch per element.
  s.sum_ab = dot_padded(filled_.data() + i * stride_,
                        filled_.data() + j * stride_, stride_);
  s.sum_a = own_sum_[i];
  s.sum_aa = own_sumsq_[i];
  for (std::uint32_t m = missing_begin_[j]; m < missing_begin_[j + 1]; ++m) {
    const std::size_t k = missing_idx_[m];
    if (!present_at(i, k)) continue;
    s.sum_a -= a[k];
    s.sum_aa -= static_cast<double>(a[k]) * a[k];
  }
  s.sum_b = own_sum_[j];
  s.sum_bb = own_sumsq_[j];
  for (std::uint32_t m = missing_begin_[i]; m < missing_begin_[i + 1]; ++m) {
    const std::size_t k = missing_idx_[m];
    if (!present_at(j, k)) continue;
    s.sum_b -= b[k];
    s.sum_bb -= static_cast<double>(b[k]) * b[k];
  }
  return metric_ == Metric::kPearson ? finish_centered(s)
                                     : finish_uncentered(s);
}

double SimilarityEngine::similarity(std::size_t i, std::size_t j) const {
  FV_REQUIRE(metric_ != Metric::kEuclidean,
             "similarity() requires a correlation metric");
  FV_REQUIRE(precompute_ == Precompute::kAllPairs,
             "similarity() requires Precompute::kAllPairs");
  FV_REQUIRE(i < count_ && j < count_, "profile index out of range");
  if (has_missing_[i] != 0 || has_missing_[j] != 0) {
    return masked_similarity(i, j);
  }
  if (degenerate_[i] != 0 || degenerate_[j] != 0) return 0.0;
  const double dot = dot_padded(normalized_.data() + i * stride_,
                                normalized_.data() + j * stride_, stride_);
  return std::clamp(dot, -1.0, 1.0);
}

float SimilarityEngine::euclidean_distance(std::size_t i,
                                           std::size_t j) const {
  // filled_ equals the input at every present cell, which is all either
  // path below reads.
  const float* a = filled_.data() + i * stride_;
  const float* b = filled_.data() + j * stride_;
  if (has_missing_[i] == 0 && has_missing_[j] == 0) {
    // Padding is 0 on both sides, so the tail contributes nothing.
    return static_cast<float>(std::sqrt(squared_diff_padded(a, b, stride_)));
  }
  const std::size_t pairs = common_present(i, j);
  if (pairs == 0) return 0.0f;
  // Over the zero-filled rows, a cell missing on exactly one side leaks its
  // present value squared into the diff sum; subtract those back out.
  double sum = squared_diff_padded(a, b, stride_);
  for (std::uint32_t m = missing_begin_[j]; m < missing_begin_[j + 1]; ++m) {
    const std::size_t k = missing_idx_[m];
    if (present_at(i, k)) sum -= static_cast<double>(a[k]) * a[k];
  }
  for (std::uint32_t m = missing_begin_[i]; m < missing_begin_[i + 1]; ++m) {
    const std::size_t k = missing_idx_[m];
    if (present_at(j, k)) sum -= static_cast<double>(b[k]) * b[k];
  }
  sum = std::max(sum, 0.0);
  // Coverage scaling, as in cluster::profile_distance (Cluster 3.0).
  return static_cast<float>(std::sqrt(sum * static_cast<double>(length_) /
                                      static_cast<double>(pairs)));
}

float SimilarityEngine::distance(std::size_t i, std::size_t j) const {
  FV_REQUIRE(i < count_ && j < count_, "profile index out of range");
  FV_REQUIRE(precompute_ == Precompute::kAllPairs,
             "distance() requires Precompute::kAllPairs");
  if (metric_ == Metric::kEuclidean) return euclidean_distance(i, j);
  return static_cast<float>(1.0 - similarity(i, j));
}

void SimilarityEngine::all_distances(std::span<float> out,
                                     par::ThreadPool& pool) const {
  const std::size_t n = count_;
  FV_REQUIRE(out.size() == n * n, "output must be size() x size()");
  if (n == 0) return;

  const std::vector<TilePair> work = upper_triangle_tiles(n);
  float* d = out.data();
  par::parallel_dynamic(pool, 0, work.size(), [&](std::size_t t) {
    const auto [ta, tb] = work[t];
    const std::size_t i_end = std::min<std::size_t>(n, (ta + 1) * kTile);
    const std::size_t j_begin = tb * kTile;
    const std::size_t j_end = std::min<std::size_t>(n, (tb + 1) * kTile);
    for (std::size_t i = ta * kTile; i < i_end; ++i) {
      for (std::size_t j = ta == tb ? i + 1 : j_begin; j < j_end; ++j) {
        const float dist = distance(i, j);
        d[i * n + j] = dist;
        d[j * n + i] = dist;
      }
    }
  });
  for (std::size_t i = 0; i < n; ++i) d[i * n + i] = 0.0f;
}

void SimilarityEngine::condensed_distances(std::span<float> out,
                                           par::ThreadPool& pool) const {
  const std::size_t n = count_;
  FV_REQUIRE(out.size() == condensed_size(n),
             "output must hold condensed_size(size()) values");
  if (n < 2) return;

  // Same balanced tile schedule as all_distances, but each (i, j) pair is
  // written exactly once at its condensed offset. Within one row segment of
  // a tile the condensed indices are contiguous (offset(i, j+1) =
  // offset(i, j) + 1), so the inner loop is a linear store stream; distinct
  // tiles cover disjoint (i, j-range) segments, so writes never race.
  const std::vector<TilePair> work = upper_triangle_tiles(n);
  float* d = out.data();
  par::parallel_dynamic(pool, 0, work.size(), [&](std::size_t t) {
    const auto [ta, tb] = work[t];
    const std::size_t i_end = std::min<std::size_t>(n, (ta + 1) * kTile);
    const std::size_t j_begin = tb * kTile;
    const std::size_t j_end = std::min<std::size_t>(n, (tb + 1) * kTile);
    for (std::size_t i = ta * kTile; i < i_end; ++i) {
      const std::size_t j_first = ta == tb ? i + 1 : j_begin;
      if (j_first >= j_end) continue;
      // Row base such that row[j] is pair (i, j)'s condensed cell.
      float* row = d + condensed_index(i, j_first, n) - j_first;
      for (std::size_t j = j_first; j < j_end; ++j) {
        row[j] = distance(i, j);
      }
    }
  });
}

void SimilarityEngine::dot_all(std::span<const float> query,
                               std::span<double> out) const {
  // Spearman is excluded deliberately: its bank has no normalized rows for
  // profiles with missing cells, so dots would silently score them 0.
  FV_REQUIRE(metric_ == Metric::kPearson ||
                 metric_ == Metric::kUncenteredPearson,
             "dot_all() requires a Pearson-family metric");
  FV_REQUIRE(query.size() == stride_, "query must have stride() entries");
  FV_REQUIRE(out.size() == count_, "output must have size() entries");
  for (std::size_t i = 0; i < count_; ++i) {
    out[i] = dot_padded(normalized_.data() + i * stride_, query.data(),
                        stride_);
  }
}

}  // namespace fv::sim
