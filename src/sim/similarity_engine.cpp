#include "sim/similarity_engine.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>

#include "sim/lsh.hpp"
#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "stats/ranking.hpp"
#include "util/error.hpp"
#include "util/triangular.hpp"

namespace fv::sim {

namespace {

/// Kernel lane width: rows are padded to a multiple of this so the hot
/// loops below carry independent accumulator chains the compiler can keep
/// in vector registers (no remainder loop, no reassociation needed).
constexpr std::size_t kLanes = 16;

/// Pair-block edge for all_distances: 64 rows x 96 floats = 24 KiB per
/// side, so one tile's working set stays L1/L2 resident while its
/// 64 x 64 pairs reuse it.
constexpr std::size_t kTile = 64;

/// Segment width of the blocked row norms the pruned top-k bound uses: one
/// kernel lane block. Finer segments only tighten the Cauchy–Schwarz bound
/// (splitting a segment can never increase Σ_s ||a_s||·||b_s|| — apply
/// Cauchy–Schwarz to the sub-norm pairs), and 16 matches the condition-
/// block granularity of compendium data (datasets enter as groups of
/// adjacent columns); the cost is one float per 16 row elements.
constexpr std::size_t kBoundSegment = kLanes;

double dot_padded(const float* a, const float* b, std::size_t stride) {
  double acc[kLanes] = {};
  for (std::size_t k = 0; k < stride; k += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      acc[l] += static_cast<double>(a[k + l]) * static_cast<double>(b[k + l]);
    }
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kLanes; ++l) total += acc[l];
  return total;
}

/// Elements between double flushes of the float kernel's lane array. Each
/// float lane sums kFloatFlushBlock / 16 products sequentially before the
/// block's lane sums drain into double accumulators and the float lanes
/// reset; on unit-norm inputs (the normalized rows) the per-block absolute
/// product sums add up to Σ|a_k b_k| <= 1 over the whole row by
/// Cauchy–Schwarz, so the total rounding error is bounded by
/// (kFloatFlushBlock / 16) * 2^-24 ≈ 9.5e-7 at ANY stride — always inside
/// the 1e-6 equivalence contract. (Before the flush existed the bound was
/// (stride / 16) * 2^-24 and kAuto had to fall back past stride 256; the
/// flush is what removed the ceiling.) Must be a multiple of the unrolled
/// step, kLanes * kUnroll = 64. Measured error on random profiles is
/// ~100x below the bound; see the error-bound study in tests/topk_test.cpp
/// and src/sim/README.md.
constexpr std::size_t kFloatFlushBlock = 256;

/// Float-accumulator dense dot: the double kernel's 16-lane accumulator
/// array in float, with the main loop unrolled 4 vector blocks deep (64
/// elements per iteration into the same 16 chains — unrolling does not
/// change the per-lane summation order, so the error analysis above holds
/// for any blocking). Floats halve the bytes per element the vector units
/// move, so dense rows retire ~2x the elements per cycle (measured 1.7x at
/// 96 conditions, 2.9x at 512, AVX-512 host; wider accumulator arrays
/// spill and lose). Every kFloatFlushBlock elements the lanes flush into
/// double accumulators (for stride <= 256 that is a single flush, i.e. the
/// exact pre-flush arithmetic); the final 16-way reduction is in double.
double dot_padded_float(const float* a, const float* b, std::size_t stride) {
  constexpr std::size_t kUnroll = 4;
  double flushed[kLanes] = {};
  for (std::size_t base = 0; base < stride; base += kFloatFlushBlock) {
    const std::size_t end = std::min(stride, base + kFloatFlushBlock);
    float acc[kLanes] = {};
    std::size_t k = base;
    for (; k + kLanes * kUnroll <= end; k += kLanes * kUnroll) {
      for (std::size_t u = 0; u < kUnroll; ++u) {
        for (std::size_t l = 0; l < kLanes; ++l) {
          acc[l] += a[k + u * kLanes + l] * b[k + u * kLanes + l];
        }
      }
    }
    for (; k < end; k += kLanes) {
      for (std::size_t l = 0; l < kLanes; ++l) {
        acc[l] += a[k + l] * b[k + l];
      }
    }
    for (std::size_t l = 0; l < kLanes; ++l) {
      flushed[l] += static_cast<double>(acc[l]);
    }
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kLanes; ++l) {
    total += flushed[l];
  }
  return total;
}

double squared_diff_padded(const float* a, const float* b,
                           std::size_t stride) {
  double acc[kLanes] = {};
  for (std::size_t k = 0; k < stride; k += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      const double diff =
          static_cast<double>(a[k + l]) - static_cast<double>(b[k + l]);
      acc[l] += diff * diff;
    }
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kLanes; ++l) total += acc[l];
  return total;
}

/// Pairwise-complete moment sums over the common-present cells of two rows.
struct PairSums {
  std::size_t n = 0;
  double sum_a = 0, sum_b = 0, sum_aa = 0, sum_bb = 0, sum_ab = 0;
};

double finish_centered(const PairSums& s) {
  if (s.n < stats::kMinCompletePairs) return 0.0;
  const double n = static_cast<double>(s.n);
  const double cov = s.sum_ab - s.sum_a * s.sum_b / n;
  const double var_a = s.sum_aa - s.sum_a * s.sum_a / n;
  const double var_b = s.sum_bb - s.sum_b * s.sum_b / n;
  // Relative zero guard: the subtraction-based masked sums can leave a
  // ~1e-13 residue where the scalar reference computes an exact 0 variance
  // (constant-over-common-subset profiles). Purely relative to the row's
  // energy, so small-magnitude but genuinely varying profiles still
  // correlate (sum_aa >= var_a >= 0 always, making eps = 0 exactly when
  // the subset is all zeros).
  if (var_a <= 1e-12 * s.sum_aa || var_b <= 1e-12 * s.sum_bb) return 0.0;
  return std::clamp(cov / std::sqrt(var_a * var_b), -1.0, 1.0);
}

double finish_uncentered(const PairSums& s) {
  if (s.n < stats::kMinCompletePairs) return 0.0;
  if (s.sum_aa <= 0.0 || s.sum_bb <= 0.0) return 0.0;
  return std::clamp(s.sum_ab / std::sqrt(s.sum_aa * s.sum_bb), -1.0, 1.0);
}

}  // namespace

SimilarityEngine SimilarityEngine::from_rows(
    const expr::ExpressionMatrix& matrix, Metric metric,
    Precompute precompute, DenseKernel kernel) {
  SimilarityEngine engine;
  engine.build(matrix.data(), matrix.rows(), matrix.cols(), metric,
               precompute, kernel);
  return engine;
}

SimilarityEngine SimilarityEngine::from_columns(
    const expr::ExpressionMatrix& matrix, Metric metric) {
  // One transpose up front beats a column() allocation per profile fetch.
  return from_rows(matrix.transposed(), metric);
}

SimilarityEngine SimilarityEngine::from_profiles(std::span<const float> flat,
                                                 std::size_t count,
                                                 std::size_t length,
                                                 Metric metric,
                                                 Precompute precompute,
                                                 DenseKernel kernel) {
  FV_REQUIRE(flat.size() == count * length,
             "profile buffer size must be count * length");
  SimilarityEngine engine;
  engine.build(flat, count, length, metric, precompute, kernel);
  return engine;
}

void SimilarityEngine::build(std::span<const float> flat, std::size_t count,
                             std::size_t length, Metric metric,
                             Precompute precompute, DenseKernel kernel) {
  FV_REQUIRE(precompute == Precompute::kAllPairs ||
                 metric == Metric::kPearson ||
                 metric == Metric::kUncenteredPearson,
             "a dot bank requires a Pearson-family metric");
  metric_ = metric;
  precompute_ = precompute;
  count_ = count;
  length_ = length;
  stride_ = ((length + kLanes - 1) / kLanes) * kLanes;
  if (stride_ == 0) stride_ = kLanes;
  // The float kernel's error bound only holds for unit-norm inputs, so it
  // serves the correlation fast path; Euclidean rows are unnormalized and
  // always take the double kernel. The compensated block flush keeps the
  // bound inside the 1e-6 contract at any stride, so kAuto no longer
  // falls back on long rows.
  float_kernel_ = metric != Metric::kEuclidean &&
                  (kernel == DenseKernel::kFloat ||
                   kernel == DenseKernel::kAuto);
  mask_words_ = (length + 63) / 64;
  if (mask_words_ == 0) mask_words_ = 1;

  // A dot bank keeps only what dot_all-style scoring reads (normalized
  // rows + presence/zscale); the pairwise-only state below stays empty.
  const bool all_pairs = precompute == Precompute::kAllPairs;
  raw_.assign(metric == Metric::kSpearman ? count * stride_ : 0, 0.0f);
  filled_.assign(all_pairs ? count * stride_ : 0, 0.0f);
  mask_.assign(all_pairs ? count * mask_words_ : 0, 0);
  present_.assign(count, 0);
  has_missing_.assign(count, 0);
  degenerate_.assign(count, 0);
  zscale_.assign(count, 0.0f);
  own_sum_.assign(all_pairs ? count : 0, 0.0);
  own_sumsq_.assign(all_pairs ? count : 0, 0.0);
  missing_idx_.clear();
  missing_begin_.assign(all_pairs ? count + 1 : 0, 0);
  const bool correlation = metric != Metric::kEuclidean;
  normalized_.assign(correlation ? count * stride_ : 0, 0.0f);

  std::vector<double> ranks;  // scratch for Spearman
  for (std::size_t i = 0; i < count; ++i) {
    const float* src = flat.data() + i * length;
    float* raw = raw_.empty() ? nullptr : raw_.data() + i * stride_;
    float* filled = all_pairs ? filled_.data() + i * stride_ : nullptr;
    std::uint64_t* mask = all_pairs ? mask_.data() + i * mask_words_
                                    : nullptr;
    std::size_t present = 0;
    double own_sum = 0.0;
    double own_sumsq = 0.0;
    for (std::size_t k = 0; k < length; ++k) {
      if (raw != nullptr) raw[k] = src[k];
      if (stats::is_missing(src[k])) {
        if (all_pairs) missing_idx_.push_back(static_cast<std::uint32_t>(k));
        continue;
      }
      if (filled != nullptr) filled[k] = src[k];
      if (mask != nullptr) mask[k / 64] |= std::uint64_t{1} << (k % 64);
      ++present;
      own_sum += src[k];
      own_sumsq += static_cast<double>(src[k]) * src[k];
    }
    if (all_pairs) {
      missing_begin_[i + 1] = static_cast<std::uint32_t>(missing_idx_.size());
      own_sum_[i] = own_sum;
      own_sumsq_[i] = own_sumsq;
    }
    present_[i] = static_cast<std::uint32_t>(present);
    has_missing_[i] = present != length ? 1 : 0;
    if (!correlation) continue;

    float* norm_row = normalized_.data() + i * stride_;
    const bool center = metric != Metric::kUncenteredPearson;

    if (metric == Metric::kSpearman) {
      // Rank rows are only consulted on the dense fast path (both rows
      // complete); pairs with missing cells must re-rank the complete
      // subset per pair, which the masked path does via stats::spearman.
      if (has_missing_[i] != 0) continue;
      ranks = stats::midranks(std::span<const float>(src, length));
      double mean = 0.0;
      for (const double r : ranks) mean += r;
      mean = length > 0 ? mean / static_cast<double>(length) : 0.0;
      double sumsq = 0.0;
      for (const double r : ranks) sumsq += (r - mean) * (r - mean);
      if (length < stats::kMinCompletePairs || sumsq <= 0.0) {
        degenerate_[i] = 1;
        continue;
      }
      const double inv_norm = 1.0 / std::sqrt(sumsq);
      for (std::size_t k = 0; k < length; ++k) {
        norm_row[k] = static_cast<float>((ranks[k] - mean) * inv_norm);
      }
      continue;
    }

    // Pearson / uncentered: store (x - mean) / ||x - mean|| with missing
    // cells as 0 — the unit-norm form of the stats::ZProfile z-row. The
    // norm comes from a second centered pass rather than own_sumsq so
    // cancellation cannot inflate it.
    const double mean =
        center && present > 0 ? own_sum / static_cast<double>(present) : 0.0;
    double sumsq = 0.0;
    for (std::size_t k = 0; k < length; ++k) {
      if (stats::is_missing(src[k])) continue;
      const double d = static_cast<double>(src[k]) - mean;
      sumsq += d * d;
    }
    if (present < stats::kMinCompletePairs || sumsq <= 0.0) {
      degenerate_[i] = 1;
      continue;
    }
    const double inv_norm = 1.0 / std::sqrt(sumsq);
    for (std::size_t k = 0; k < length; ++k) {
      if (stats::is_missing(src[k])) continue;
      norm_row[k] =
          static_cast<float>((static_cast<double>(src[k]) - mean) * inv_norm);
    }
    if (present >= 2) {
      zscale_[i] =
          static_cast<float>(std::sqrt(static_cast<double>(present - 1)));
    }
  }

  // Blocked segment norms for the pruned top-k bound (correlation engines
  // that answer pairwise queries). Computed in double and inflated by one
  // part in 2^20 before the float store, so a stored norm can never round
  // below the true segment norm — the tile bound stays a proof. Rows with
  // missing cells get norms too, but the pruned path never consults them
  // (their pairwise-complete re-centering is unbounded by the full-row
  // norms, so blocks containing them are never pruned).
  if (correlation && all_pairs) {
    seg_count_ = stride_ / kBoundSegment;
    seg_norms_.assign(count * seg_count_, 0.0f);
    for (std::size_t i = 0; i < count; ++i) {
      const float* row = normalized_.data() + i * stride_;
      float* out = seg_norms_.data() + i * seg_count_;
      for (std::size_t s = 0; s < seg_count_; ++s) {
        double sumsq = 0.0;
        for (std::size_t k = 0; k < kBoundSegment; ++k) {
          const double v = row[s * kBoundSegment + k];
          sumsq += v * v;
        }
        out[s] = static_cast<float>(std::sqrt(sumsq) *
                                    (1.0 + std::ldexp(1.0, -20)));
      }
    }
    // How far the computed float distance can fall below the exact-
    // arithmetic Cauchy–Schwarz chain: kernel rounding (the float kernel's
    // block-flush bound when active, the double kernel's negligible one
    // otherwise) plus the double->float cast of 1 - dot (values <= 2, so
    // one ulp is 2^-23) plus margin for the double arithmetic of the bound
    // itself. Subtracted from every tile bound before the threshold test.
    const double kernel_error =
        float_kernel_
            ? static_cast<double>(std::min(stride_, kFloatFlushBlock) /
                                  kLanes) *
                  std::ldexp(1.0, -24)
            : static_cast<double>(stride_ / kLanes) * std::ldexp(1.0, -52);
    prune_slack_ =
        static_cast<float>(kernel_error + 4.0 * std::ldexp(1.0, -23));
  }
}

std::span<const float> SimilarityEngine::normalized_row(std::size_t i) const {
  FV_REQUIRE(i < count_, "profile index out of range");
  if (normalized_.empty()) return {};
  return {normalized_.data() + i * stride_, stride_};
}

std::span<const float> SimilarityEngine::filled_row(std::size_t i) const {
  FV_REQUIRE(i < count_, "profile index out of range");
  FV_REQUIRE(precompute_ == Precompute::kAllPairs,
             "filled_row() requires Precompute::kAllPairs");
  return {filled_.data() + i * stride_, stride_};
}

std::size_t SimilarityEngine::common_present(std::size_t i,
                                             std::size_t j) const {
  const std::uint64_t* ma = mask_.data() + i * mask_words_;
  const std::uint64_t* mb = mask_.data() + j * mask_words_;
  std::size_t n = 0;
  for (std::size_t w = 0; w < mask_words_; ++w) {
    n += static_cast<std::size_t>(std::popcount(ma[w] & mb[w]));
  }
  return n;
}

double SimilarityEngine::masked_similarity(std::size_t i, std::size_t j) const {
  if (metric_ == Metric::kSpearman) {
    // Ranks depend on the pairwise-complete subset, so each pair must be
    // re-ranked; the scalar kernel (on the NaN-preserving rows) is the
    // only exact option here.
    return stats::spearman({raw_.data() + i * stride_, length_},
                           {raw_.data() + j * stride_, length_});
  }
  // All reads below hit present cells only, where filled_ == the input.
  const float* a = filled_.data() + i * stride_;
  const float* b = filled_.data() + j * stride_;
  PairSums s;
  s.n = common_present(i, j);
  if (s.n < stats::kMinCompletePairs) return 0.0;
  // Pairwise-complete sums = each row's own sums minus the cells the other
  // row is missing: one vectorized dot over the zero-filled rows plus
  // O(#missing) scalar corrections, instead of a branch per element.
  s.sum_ab = dot_padded(filled_.data() + i * stride_,
                        filled_.data() + j * stride_, stride_);
  s.sum_a = own_sum_[i];
  s.sum_aa = own_sumsq_[i];
  for (std::uint32_t m = missing_begin_[j]; m < missing_begin_[j + 1]; ++m) {
    const std::size_t k = missing_idx_[m];
    if (!present_at(i, k)) continue;
    s.sum_a -= a[k];
    s.sum_aa -= static_cast<double>(a[k]) * a[k];
  }
  s.sum_b = own_sum_[j];
  s.sum_bb = own_sumsq_[j];
  for (std::uint32_t m = missing_begin_[i]; m < missing_begin_[i + 1]; ++m) {
    const std::size_t k = missing_idx_[m];
    if (!present_at(j, k)) continue;
    s.sum_b -= b[k];
    s.sum_bb -= static_cast<double>(b[k]) * b[k];
  }
  return metric_ == Metric::kPearson ? finish_centered(s)
                                     : finish_uncentered(s);
}

double SimilarityEngine::similarity(std::size_t i, std::size_t j) const {
  FV_REQUIRE(metric_ != Metric::kEuclidean,
             "similarity() requires a correlation metric");
  FV_REQUIRE(precompute_ == Precompute::kAllPairs,
             "similarity() requires Precompute::kAllPairs");
  FV_REQUIRE(i < count_ && j < count_, "profile index out of range");
  return similarity_unchecked(i, j);
}

double SimilarityEngine::similarity_unchecked(std::size_t i,
                                              std::size_t j) const {
  if (has_missing_[i] != 0 || has_missing_[j] != 0) {
    return masked_similarity(i, j);
  }
  if (degenerate_[i] != 0 || degenerate_[j] != 0) return 0.0;
  const float* a = normalized_.data() + i * stride_;
  const float* b = normalized_.data() + j * stride_;
  const double dot = float_kernel_ ? dot_padded_float(a, b, stride_)
                                   : dot_padded(a, b, stride_);
  return std::clamp(dot, -1.0, 1.0);
}

float SimilarityEngine::euclidean_distance(std::size_t i,
                                           std::size_t j) const {
  // filled_ equals the input at every present cell, which is all either
  // path below reads.
  const float* a = filled_.data() + i * stride_;
  const float* b = filled_.data() + j * stride_;
  if (has_missing_[i] == 0 && has_missing_[j] == 0) {
    // Padding is 0 on both sides, so the tail contributes nothing.
    return static_cast<float>(std::sqrt(squared_diff_padded(a, b, stride_)));
  }
  const std::size_t pairs = common_present(i, j);
  if (pairs == 0) return 0.0f;
  // Over the zero-filled rows, a cell missing on exactly one side leaks its
  // present value squared into the diff sum; subtract those back out.
  double sum = squared_diff_padded(a, b, stride_);
  for (std::uint32_t m = missing_begin_[j]; m < missing_begin_[j + 1]; ++m) {
    const std::size_t k = missing_idx_[m];
    if (present_at(i, k)) sum -= static_cast<double>(a[k]) * a[k];
  }
  for (std::uint32_t m = missing_begin_[i]; m < missing_begin_[i + 1]; ++m) {
    const std::size_t k = missing_idx_[m];
    if (present_at(j, k)) sum -= static_cast<double>(b[k]) * b[k];
  }
  sum = std::max(sum, 0.0);
  // Coverage scaling, as in cluster::profile_distance (Cluster 3.0).
  return static_cast<float>(std::sqrt(sum * static_cast<double>(length_) /
                                      static_cast<double>(pairs)));
}

float SimilarityEngine::distance(std::size_t i, std::size_t j) const {
  FV_REQUIRE(i < count_ && j < count_, "profile index out of range");
  FV_REQUIRE(precompute_ == Precompute::kAllPairs,
             "distance() requires Precompute::kAllPairs");
  return distance_unchecked(i, j);
}

float SimilarityEngine::distance_unchecked(std::size_t i,
                                           std::size_t j) const {
  if (metric_ == Metric::kEuclidean) return euclidean_distance(i, j);
  return static_cast<float>(1.0 - similarity_unchecked(i, j));
}

namespace {

/// Scratch-block pool for tile streaming: at most one block per concurrent
/// visitor invocation is ever live (blocks are returned after each tile),
/// so the distance phase of a streaming consumer peaks at
/// O(threads * kTile²) floats of transient state, never O(n²). The lock is
/// taken twice per tile — noise next to the tile's 4096 kernel calls.
class TileScratchPool {
 public:
  std::vector<float> acquire() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        std::vector<float> block = std::move(free_.back());
        free_.pop_back();
        return block;
      }
    }
    return std::vector<float>(kTile * kTile);
  }
  void release(std::vector<float> block) {
    const std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(block));
  }

 private:
  std::mutex mutex_;
  std::vector<std::vector<float>> free_;
};

}  // namespace

std::size_t SimilarityEngine::tile_count() const noexcept {
  const std::size_t tiles = (count_ + kTile - 1) / kTile;
  return tiles * (tiles + 1) / 2;
}

void SimilarityEngine::compute_tile(std::size_t t, float* scratch,
                                    DistanceTile& tile) const {
  const std::size_t n = count_;
  const std::size_t tiles = (n + kTile - 1) / kTile;
  // Recover (ta, tb) from the linearized upper-triangle schedule position.
  std::size_t ta = 0;
  std::size_t base = 0;
  while (base + (tiles - ta) <= t) {
    base += tiles - ta;
    ++ta;
  }
  const std::size_t tb = ta + (t - base);

  tile.index = t;
  tile.row_begin = ta * kTile;
  tile.row_end = std::min<std::size_t>(n, (ta + 1) * kTile);
  tile.col_begin = tb * kTile;
  tile.col_end = std::min<std::size_t>(n, (tb + 1) * kTile);
  tile.ld = tile.col_end - tile.col_begin;
  tile.values = scratch;
  if (ta == tb) {
    // Diagonal tile: only j > i is meaningful; zero the rest so reused
    // scratch blocks never leak another tile's values.
    std::fill(scratch, scratch + (tile.row_end - tile.row_begin) * tile.ld,
              0.0f);
  }
  for (std::size_t i = tile.row_begin; i < tile.row_end; ++i) {
    float* row = scratch + (i - tile.row_begin) * tile.ld;
    for (std::size_t j = ta == tb ? i + 1 : tile.col_begin; j < tile.col_end;
         ++j) {
      row[j - tile.col_begin] = distance_unchecked(i, j);
    }
  }
}

void SimilarityEngine::release_row_pages(std::size_t begin,
                                         std::size_t end) const {
  if (pin_ == nullptr || end <= begin) return;
  // Only the count x stride slabs matter for residency: everything else
  // (masks, CSR lists, per-row scalars) is a few bytes per row and churning
  // madvise on it would cost more than the pages hold.
  const std::size_t bytes = (end - begin) * stride_ * sizeof(float);
  if (!normalized_.empty()) {
    pin_->release_pages(normalized_.data() + begin * stride_, bytes);
  }
  if (!filled_.empty()) {
    pin_->release_pages(filled_.data() + begin * stride_, bytes);
  }
  if (!raw_.empty()) {
    pin_->release_pages(raw_.data() + begin * stride_, bytes);
  }
}

void SimilarityEngine::for_each_tile(
    const std::function<void(const DistanceTile&)>& visit,
    par::ThreadPool& pool) const {
  FV_REQUIRE(precompute_ == Precompute::kAllPairs,
             "for_each_tile() requires Precompute::kAllPairs");
  if (count_ < 2) return;
  // One backing check for the whole phase: the pooled path keeps no page
  // cursor (workers touch tiles in pull order), so pages stay resident
  // until the phase ends — residency streaming is the SERIAL driver's job.
  check_backing();
  TileScratchPool scratch;
  par::parallel_dynamic(pool, 0, tile_count(), [&](std::size_t t) {
    std::vector<float> block = scratch.acquire();
    DistanceTile tile;
    compute_tile(t, block.data(), tile);
    visit(tile);
    scratch.release(std::move(block));
  });
}

void SimilarityEngine::for_each_tile(
    const std::function<void(const DistanceTile&)>& visit) const {
  FV_REQUIRE(precompute_ == Precompute::kAllPairs,
             "for_each_tile() requires Precompute::kAllPairs");
  if (count_ < 2) return;
  std::vector<float> block(kTile * kTile);
  // The same linear schedule positions t = 0, 1, 2, … the pooled driver
  // uses, walked as explicit row stripes (ta fixed, tb ascending) so a
  // borrowed-mapped engine can stream: rows enter the resident set when
  // the cursor reaches them and leave right after their last pair in the
  // stripe. Visit order — and therefore every visitor's reduction order —
  // is identical to the plain `for t` loop this replaces.
  const std::size_t blocks = (count_ + kTile - 1) / kTile;
  std::size_t t = 0;
  for (std::size_t ta = 0; ta < blocks; ++ta) {
    // Per-stripe, not per-phase: a stripe is the unit after which pages
    // are dropped, so each stripe re-proves the file still backs the
    // pages it is about to fault in (typed error, never SIGBUS).
    check_backing();
    for (std::size_t tb = ta; tb < blocks; ++tb, ++t) {
      DistanceTile tile;
      compute_tile(t, block.data(), tile);
      visit(tile);
      // The column block's rows are done for THIS stripe; later stripes
      // refault them from the page cache on demand. Keeping the diagonal
      // block resident across its own stripe avoids thrashing the rows
      // every inner tile reads.
      if (tb != ta) release_row_pages(tile.col_begin, tile.col_end);
    }
    release_row_pages(ta * kTile, std::min(count_, (ta + 1) * kTile));
  }
}

void SimilarityEngine::all_distances(std::span<float> out,
                                     par::ThreadPool& pool) const {
  const std::size_t n = count_;
  FV_REQUIRE(out.size() == n * n, "output must be size() x size()");
  if (n == 0) return;

  // Trivial tile visitor: mirror each tile into both triangles of the
  // dense layout. Tiles cover disjoint (i, j) ranges, so writes never race.
  float* d = out.data();
  for_each_tile(
      [&](const DistanceTile& tile) {
        for (std::size_t i = tile.row_begin; i < tile.row_end; ++i) {
          const std::size_t j_first =
              std::max(tile.col_begin, i + 1);
          for (std::size_t j = j_first; j < tile.col_end; ++j) {
            const float dist = tile.at(i, j);
            d[i * n + j] = dist;
            d[j * n + i] = dist;
          }
        }
      },
      pool);
  for (std::size_t i = 0; i < n; ++i) d[i * n + i] = 0.0f;
}

namespace {

/// Shared condensed-layout tile visitor: each (i, j) pair lands exactly
/// once at its condensed offset, through `transform`. Within one row
/// segment the condensed indices are contiguous (offset(i, j+1) =
/// offset(i, j) + 1), so the inner loop is a linear store stream; distinct
/// tiles cover disjoint (i, j-range) segments, so writes never race.
template <typename Transform>
auto condensed_tile_writer(float* d, std::size_t n, Transform transform) {
  return [d, n, transform](const DistanceTile& tile) {
    for (std::size_t i = tile.row_begin; i < tile.row_end; ++i) {
      const std::size_t j_first = std::max(tile.col_begin, i + 1);
      if (j_first >= tile.col_end) continue;
      // row[j - j_first] is pair (i, j)'s condensed cell; the base stays
      // inside the buffer so the pointer arithmetic is defined
      // (UBSan-clean) even for the first row segment.
      float* row = d + condensed_index(i, j_first, n);
      for (std::size_t j = j_first; j < tile.col_end; ++j) {
        row[j - j_first] = transform(tile.at(i, j));
      }
    }
  };
}

}  // namespace

void SimilarityEngine::condensed_distances(std::span<float> out,
                                           par::ThreadPool& pool) const {
  const std::size_t n = count_;
  FV_REQUIRE(out.size() == condensed_size(n),
             "output must hold condensed_size(size()) values");
  if (n < 2) return;
  for_each_tile(
      condensed_tile_writer(out.data(), n, [](float d) { return d; }), pool);
}

void SimilarityEngine::condensed_distances(std::span<float> out) const {
  const std::size_t n = count_;
  FV_REQUIRE(out.size() == condensed_size(n),
             "output must hold condensed_size(size()) values");
  if (n < 2) return;
  for_each_tile(
      condensed_tile_writer(out.data(), n, [](float d) { return d; }));
}

void SimilarityEngine::condensed_squared_distances(
    std::span<float> out, par::ThreadPool& pool) const {
  FV_REQUIRE(metric_ == Metric::kEuclidean,
             "condensed_squared_distances() squares Euclidean distances; "
             "correlation metrics have no squared-distance form");
  const std::size_t n = count_;
  FV_REQUIRE(out.size() == condensed_size(n),
             "output must hold condensed_size(size()) values");
  if (n < 2) return;
  // Same writer with each cell squared on the way out — the cheapest point
  // to square is the already-L1-resident tile.
  for_each_tile(
      condensed_tile_writer(out.data(), n, [](float d) { return d * d; }),
      pool);
}

namespace {

/// One nearest-neighbor candidate in a bounded per-row heap. Ordered
/// lexicographically by (distance, index): the global top-k under this
/// total order is what top_k_neighbors returns, which makes results
/// deterministic under any thread schedule (every global top-k entry is
/// among the k (distance, index)-smallest of whichever slot saw it, so the
/// union of slot heaps always contains the true top-k).
struct NeighborEntry {
  float d = 0.0f;
  std::uint32_t idx = 0;
  bool operator<(const NeighborEntry& o) const {
    return d != o.d ? d < o.d : idx < o.idx;
  }
};

/// Per-thread top-k state: n bounded max-heaps in one slab. Slots are
/// checked out per tile visit, so at most pool.thread_count() exist.
struct TopKSlot {
  std::vector<NeighborEntry> heap;  ///< n x k slab
  std::vector<std::uint32_t> size;  ///< live entries per row

  TopKSlot(std::size_t n, std::size_t k) : heap(n * k), size(n, 0) {}

  void push(std::size_t row, std::size_t k, NeighborEntry e) {
    NeighborEntry* base = heap.data() + row * k;
    std::uint32_t& s = size[row];
    if (s < k) {
      base[s++] = e;
      std::push_heap(base, base + s);
    } else if (e < base[0]) {
      std::pop_heap(base, base + k);
      base[k - 1] = e;
      std::push_heap(base, base + k);
    }
  }
};

/// Monotone-decreasing publish of a row's heap threshold. Stale (larger)
/// values only cost prunes, never correctness, so relaxed order suffices.
void publish_min(std::atomic<float>& slot, float value) {
  float current = slot.load(std::memory_order_relaxed);
  while (value < current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

NeighborTable SimilarityEngine::top_k_neighbors(std::size_t k,
                                                par::ThreadPool& pool,
                                                std::size_t min_common,
                                                TopKStrategy strategy,
                                                TopKStats* stats,
                                                const LshParams& lsh,
                                                const LshIndex* lsh_index)
    const {
  FV_REQUIRE(precompute_ == Precompute::kAllPairs,
             "top_k_neighbors() requires Precompute::kAllPairs");
  FV_REQUIRE(k >= 1, "top_k_neighbors() needs k >= 1");
  FV_REQUIRE(
      strategy != TopKStrategy::kPruned || metric_ != Metric::kEuclidean,
      "TopKStrategy::kPruned needs a correlation metric — Euclidean rows "
      "are unnormalized, so the Cauchy–Schwarz norm bound does not exist; "
      "use kAuto (which falls back to kExact) instead");
  FV_REQUIRE(
      strategy != TopKStrategy::kApprox || metric_ != Metric::kEuclidean,
      "TopKStrategy::kApprox needs a correlation metric — hyperplane "
      "signatures estimate the angle, which is not the Euclidean metric; "
      "use kAuto (which falls back to kExact) instead");
  if (strategy == TopKStrategy::kAuto) {
    strategy = metric_ == Metric::kEuclidean ? TopKStrategy::kExact
                                             : TopKStrategy::kPruned;
  }
  // The pruned and kApprox phases below run their own schedules (they do
  // not pass through for_each_tile), so prove the mapped backing is intact
  // once here before any of them walks unfaulted pages.
  check_backing();
  const std::size_t n = count_;
  NeighborTable table;
  table.count = n;
  table.k = n > 0 ? std::min(k, n - 1) : 0;
  table.valid.assign(n, 0);
  if (stats != nullptr) *stats = TopKStats{};
  if (n < 2 || table.k == 0) return table;
  // k >= n-1 asks for EVERY neighbor of every row — a candidate stage can
  // only lose recall there, never work. Fall back honestly to the exact
  // path (stats report it: signatures_built stays 0).
  if (strategy == TopKStrategy::kApprox && table.k == n - 1) {
    strategy = TopKStrategy::kExact;
  }
  const std::size_t kk = table.k;
  table.indices.assign(n * kk, 0);
  table.distances.assign(n * kk, 0.0f);

  // Slot checkout mirrors the scratch-block pool: one slot per concurrent
  // visitor, so peak state is O(threads * n * k) — for the single-threaded
  // CI host exactly one slot plus the merged table.
  std::mutex slots_mutex;
  std::vector<std::unique_ptr<TopKSlot>> slots;
  std::vector<TopKSlot*> free_slots;
  const auto acquire = [&]() -> TopKSlot* {
    {
      const std::lock_guard<std::mutex> lock(slots_mutex);
      if (!free_slots.empty()) {
        TopKSlot* slot = free_slots.back();
        free_slots.pop_back();
        return slot;
      }
    }
    auto fresh = std::make_unique<TopKSlot>(n, kk);
    TopKSlot* raw = fresh.get();
    const std::lock_guard<std::mutex> lock(slots_mutex);
    slots.push_back(std::move(fresh));
    return raw;
  };
  const auto release = [&](TopKSlot* slot) {
    const std::lock_guard<std::mutex> lock(slots_mutex);
    free_slots.push_back(slot);
  };

  // Pushes every surviving pair of one computed tile into a slot's heaps.
  // Shared verbatim by both strategies, so they cannot drift.
  const auto consume_tile = [&](const DistanceTile& tile, TopKSlot& slot) {
    for (std::size_t i = tile.row_begin; i < tile.row_end; ++i) {
      const std::size_t j_first = std::max(tile.col_begin, i + 1);
      const bool i_missing = has_missing_[i] != 0;
      for (std::size_t j = j_first; j < tile.col_end; ++j) {
        if (min_common > 0) {
          // Dense pairs share all length() cells; only pairs touching a
          // masked row pay the popcount.
          const std::size_t common =
              i_missing || has_missing_[j] != 0 ? common_present(i, j)
                                                : length_;
          if (common < min_common) continue;
        }
        const float dist = tile.at(i, j);
        slot.push(i, kk, {dist, static_cast<std::uint32_t>(j)});
        slot.push(j, kk, {dist, static_cast<std::uint32_t>(i)});
      }
    }
  };

  if (strategy == TopKStrategy::kApprox) {
    // --- LSH candidates + exact rescoring ---------------------------
    // The signature layer proposes pairs; everything REPORTED still goes
    // through distance_unchecked — the same call, in the same (i < j)
    // orientation, the tile path makes — so returned distances are
    // bit-identical to kExact and only recall is approximate. min_common
    // is enforced here, at rescoring, never in the candidate stage:
    // signatures know nothing about masks, so filtering there would
    // silently change which pairs even get considered.
    // A caller-supplied prebuilt index (warm-reopened from the artifact
    // store) skips the signature build — the dominant cost of this path.
    FV_REQUIRE(lsh_index == nullptr || lsh_index->size() == n,
               "prebuilt LSH index covers a different profile count than "
               "this engine");
    std::optional<LshIndex> built;
    if (lsh_index == nullptr) built.emplace(*this, lsh, pool);
    const LshIndex& index = lsh_index != nullptr ? *lsh_index : *built;
    LshIndex::CandidateStats cstats;
    const auto pairs = index.candidate_pairs(&cstats);
    std::atomic<std::size_t> rescored{0};
    // Chunked dynamic schedule over the deduped pair list: each chunk
    // checks out a slot, so the heap state stays O(threads * n * k).
    constexpr std::size_t kPairChunk = 2048;
    const std::size_t chunks = (pairs.size() + kPairChunk - 1) / kPairChunk;
    par::parallel_dynamic(pool, 0, chunks, [&](std::size_t c) {
      TopKSlot* slot = acquire();
      std::size_t local = 0;
      const std::size_t begin = c * kPairChunk;
      const std::size_t end = std::min(pairs.size(), begin + kPairChunk);
      for (std::size_t p = begin; p < end; ++p) {
        const std::size_t i = pairs[p].first;
        const std::size_t j = pairs[p].second;
        if (min_common > 0) {
          const std::size_t common =
              has_missing_[i] != 0 || has_missing_[j] != 0
                  ? common_present(i, j)
                  : length_;
          if (common < min_common) continue;
        }
        const float dist = distance_unchecked(i, j);
        ++local;
        slot->push(i, kk, {dist, static_cast<std::uint32_t>(j)});
        slot->push(j, kk, {dist, static_cast<std::uint32_t>(i)});
      }
      rescored.fetch_add(local, std::memory_order_relaxed);
      release(slot);
    });
    if (stats != nullptr) {
      // 0 under a prebuilt index: no signatures were built THIS call —
      // how tests observe that a warm-reopened index was actually reused.
      stats->signatures_built = lsh_index == nullptr ? n : 0;
      stats->buckets_probed = cstats.buckets_probed;
      stats->candidates_generated = cstats.candidates_generated;
      stats->candidates_rescored = rescored.load();
      stats->exact_dot_fraction =
          static_cast<double>(rescored.load()) /
          static_cast<double>(condensed_size(n));
    }
  } else if (strategy == TopKStrategy::kExact) {
    if (stats != nullptr) {
      stats->tiles_total = tile_count();
      stats->tiles_computed = tile_count();
      stats->exact_dot_fraction = 1.0;
    }
    for_each_tile(
        [&](const DistanceTile& tile) {
          TopKSlot* slot = acquire();
          consume_tile(tile, *slot);
          release(slot);
        },
        pool);
  } else {
    // --- Norm-bound tile pruning ------------------------------------
    // Per 64-row block: the segment-wise max norms of its rows (an
    // envelope) and whether every row is dense. For blocks A, B the dot
    // of any cross pair (i in A, j in B) obeys
    //   dot(a_i, a_j) <= Σ_s ||a_i[s]||·||a_j[s]||   (Cauchy–Schwarz per
    //                                                 segment)
    //                 <= Σ_s amax[s]·bmax[s]          (the envelope),
    // so every pair distance in tile (A, B) is at least
    // 1 - Σ_s amax[s]·bmax[s] - slack, where the slack covers kernel and
    // cast rounding (see build()). A tile whose bound strictly beats the
    // published heap threshold of every row it touches cannot contribute
    // a single heap entry and is skipped whole.
    const std::size_t blocks = (n + kTile - 1) / kTile;
    std::vector<float> block_max(blocks * seg_count_, 0.0f);
    std::vector<std::uint8_t> block_prunable(blocks, 1);
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t row_end = std::min(n, (b + 1) * kTile);
      float* bmax = block_max.data() + b * seg_count_;
      for (std::size_t i = b * kTile; i < row_end; ++i) {
        if (has_missing_[i] != 0) {
          // A masked pair's correlation re-centers over the pairwise-
          // complete subset; no full-row norm bounds it. Every tile
          // touching this block computes exactly.
          block_prunable[b] = 0;
          break;
        }
        const float* sn = seg_norms_.data() + i * seg_count_;
        for (std::size_t s = 0; s < seg_count_; ++s) {
          bmax[s] = std::max(bmax[s], sn[s]);
        }
      }
    }

    // Shared per-row heap thresholds: the k-th-smallest distance any one
    // slot has seen so far for the row (+inf until some slot's heap is
    // full). The k-th smallest of a SUBSET of a row's candidates can only
    // overestimate the k-th smallest of all of them, so pruning against a
    // published threshold — even a stale or partial-slot one — never
    // drops a true top-k pair. The feedback only decides how much is
    // pruned, never what is returned: the exact top-k under the total
    // (distance, index) order is unique, hence schedule-independent.
    std::vector<std::atomic<float>> thresholds(n);
    for (auto& t : thresholds) {
      t.store(std::numeric_limits<float>::infinity(),
              std::memory_order_relaxed);
    }

    // Diagonal-first schedule: sweep the block offset d = tb - ta
    // outward, so near-diagonal tiles (same-module pairs on clustered
    // compendia) fill the heaps with tight thresholds before the far
    // tiles — the prunable bulk — are checked. Exactly-once delivery
    // holds by construction: the permutation visits each tile index once.
    // Each entry carries its (ta, tb) so workers never re-decode the
    // linearization; `index` is the row-major upper-triangle position
    // compute_tile expects (base of block-row ta, plus the offset d).
    struct TileRef {
      std::size_t index, ta, tb;
    };
    std::vector<TileRef> order;
    order.reserve(tile_count());
    for (std::size_t d = 0; d < blocks; ++d) {
      for (std::size_t ta = 0; ta + d < blocks; ++ta) {
        order.push_back({ta * blocks - ta * (ta - 1) / 2 + d, ta, ta + d});
      }
    }

    std::atomic<std::size_t> pruned_tiles{0};
    std::atomic<std::size_t> checked_bounds{0};
    TileScratchPool scratch;
    par::parallel_dynamic(pool, 0, order.size(), [&](std::size_t pos) {
      const auto [t, ta, tb] = order[pos];
      const std::size_t row_begin = ta * kTile;
      const std::size_t row_end = std::min(n, row_begin + kTile);
      const std::size_t col_begin = tb * kTile;
      const std::size_t col_end = std::min(n, col_begin + kTile);

      if (block_prunable[ta] != 0 && block_prunable[tb] != 0) {
        checked_bounds.fetch_add(1, std::memory_order_relaxed);
        const float* amax = block_max.data() + ta * seg_count_;
        const float* bmax = block_max.data() + tb * seg_count_;
        double dot_bound = 0.0;
        for (std::size_t s = 0; s < seg_count_; ++s) {
          dot_bound += static_cast<double>(amax[s]) * bmax[s];
        }
        const double lower_distance = 1.0 - dot_bound - prune_slack_;
        // Strictly beating every touched row's threshold proves no pair
        // in the tile can displace a heap entry (a tie in distance could
        // still enter on a smaller index, so equality never prunes).
        bool skip = true;
        for (std::size_t i = row_begin; skip && i < row_end; ++i) {
          skip =
              lower_distance > thresholds[i].load(std::memory_order_relaxed);
        }
        for (std::size_t j = col_begin; skip && j < col_end; ++j) {
          skip =
              lower_distance > thresholds[j].load(std::memory_order_relaxed);
        }
        if (skip) {
          pruned_tiles.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }

      std::vector<float> block = scratch.acquire();
      DistanceTile tile;
      compute_tile(t, block.data(), tile);
      TopKSlot* slot = acquire();
      consume_tile(tile, *slot);
      // Broadcast the freshly-tightened heap minima back into the
      // schedule so later tiles prune against them. Only full heaps
      // publish — a short heap's max says nothing about the k-th-best.
      const auto publish = [&](std::size_t r) {
        if (slot->size[r] == kk) {
          publish_min(thresholds[r], slot->heap[r * kk].d);
        }
      };
      for (std::size_t i = row_begin; i < row_end; ++i) publish(i);
      if (tb != ta) {
        for (std::size_t j = col_begin; j < col_end; ++j) publish(j);
      }
      release(slot);
      scratch.release(std::move(block));
    });
    if (stats != nullptr) {
      stats->tiles_total = order.size();
      stats->tiles_pruned = pruned_tiles.load();
      stats->tiles_computed = order.size() - stats->tiles_pruned;
      stats->bounds_checked = checked_bounds.load();
      stats->exact_dot_fraction =
          static_cast<double>(stats->tiles_computed) /
          static_cast<double>(stats->tiles_total);
    }
  }

  // Merge: per row, the union of slot heaps contains the global
  // (distance, index)-smallest k; sort it and keep the head. Rows are
  // independent, so the merge itself parallelizes statically.
  par::parallel_for(pool, 0, n, 64, [&](std::size_t i) {
    std::vector<NeighborEntry> candidates;
    for (const auto& slot : slots) {
      const NeighborEntry* base = slot->heap.data() + i * kk;
      candidates.insert(candidates.end(), base, base + slot->size[i]);
    }
    std::sort(candidates.begin(), candidates.end());
    const std::size_t keep = std::min(kk, candidates.size());
    table.valid[i] = static_cast<std::uint32_t>(keep);
    for (std::size_t s = 0; s < keep; ++s) {
      table.indices[i * kk + s] = candidates[s].idx;
      table.distances[i * kk + s] = candidates[s].d;
    }
  });
  return table;
}

namespace {

/// Sums a tile's meaningful cells (the strict upper triangle) in double.
double tile_distance_sum(const DistanceTile& tile) {
  double sum = 0.0;
  for (std::size_t i = tile.row_begin; i < tile.row_end; ++i) {
    for (std::size_t j = std::max(tile.col_begin, i + 1); j < tile.col_end;
         ++j) {
      sum += tile.at(i, j);
    }
  }
  return sum;
}

}  // namespace

double SimilarityEngine::mean_pairwise_distance(par::ThreadPool& pool) const {
  if (count_ < 2) return 0.0;
  // Per-tile partials reduced in schedule order: deterministic no matter
  // which thread computed which tile.
  std::vector<double> partial(tile_count(), 0.0);
  for_each_tile(
      [&](const DistanceTile& tile) {
        partial[tile.index] = tile_distance_sum(tile);
      },
      pool);
  double total = 0.0;
  for (const double p : partial) total += p;
  return total / static_cast<double>(condensed_size(count_));
}

double SimilarityEngine::mean_pairwise_distance() const {
  if (count_ < 2) return 0.0;
  double total = 0.0;
  for_each_tile(
      [&](const DistanceTile& tile) { total += tile_distance_sum(tile); });
  return total / static_cast<double>(condensed_size(count_));
}

double profile_coherence(std::span<const float> flat, std::size_t count,
                         std::size_t length) {
  if (count < 2) return 0.0;
  const auto engine = SimilarityEngine::from_profiles(flat, count, length,
                                                      Metric::kPearson);
  // Mean r = 1 - mean (1 - r); engine distances match stats::pearson
  // within the 1e-6 contract.
  return std::max(0.0, 1.0 - engine.mean_pairwise_distance());
}

double profile_coherence(std::span<const std::span<const float>> profiles,
                         std::size_t length) {
  if (profiles.size() < 2) return 0.0;
  std::vector<float> flat(profiles.size() * length);
  for (std::size_t q = 0; q < profiles.size(); ++q) {
    FV_REQUIRE(profiles[q].size() == length,
               "every profile must have `length` values");
    std::copy(profiles[q].begin(), profiles[q].end(),
              flat.begin() + q * length);
  }
  return profile_coherence(flat, profiles.size(), length);
}

void SimilarityEngine::dot_all(std::span<const float> query,
                               std::span<double> out) const {
  // Spearman is excluded deliberately: its bank has no normalized rows for
  // profiles with missing cells, so dots would silently score them 0.
  FV_REQUIRE(metric_ == Metric::kPearson ||
                 metric_ == Metric::kUncenteredPearson,
             "dot_all() requires a Pearson-family metric");
  FV_REQUIRE(query.size() == stride_, "query must have stride() entries");
  FV_REQUIRE(out.size() == count_, "output must have size() entries");
  for (std::size_t i = 0; i < count_; ++i) {
    out[i] = dot_padded(normalized_.data() + i * stride_, query.data(),
                        stride_);
  }
}

}  // namespace fv::sim
