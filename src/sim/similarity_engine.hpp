// Blocked pairwise-similarity engine.
//
// Every heavy path in ForestView — gene/array clustering, SPELL query
// scoring, the merged-interface sweep — bottoms out in pairwise Pearson /
// Spearman / Euclidean over row profiles. The engine precomputes per-profile
// state ONCE (unit-norm centered rows for Pearson, normalized rank rows for
// Spearman, missing-value bitmasks, a has-missing flag) and then answers
// every pair from a SIMD-friendly dot-product kernel over contiguous padded
// rows. Rows that actually contain missing cells take a masked slow path
// with the same pairwise-complete semantics as the scalar kernels; results
// agree within the 1e-6 equivalence contract (not bit-for-bit — summation
// order differs and a relative-epsilon guard zeroes near-constant-subset
// variances). See src/sim/README.md for the fast/slow path contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "expr/expression_matrix.hpp"
#include "par/thread_pool.hpp"

namespace fv::sim {

enum class Metric {
  kPearson,            ///< 1 - Pearson correlation (pairwise complete)
  kUncenteredPearson,  ///< 1 - uncentered correlation
  kSpearman,           ///< 1 - Spearman rank correlation
  kEuclidean,          ///< Euclidean over pairwise-complete coordinates
};

/// How much per-profile state the engine keeps.
enum class Precompute {
  /// Everything: exact pairwise similarity()/distance()/all_distances()
  /// plus the dot bank.
  kAllPairs,
  /// Normalized rows + presence/zscale only — half the memory, for
  /// long-lived one-vs-all scorers (SPELL banks) that never ask for exact
  /// pairwise values. Correlation metrics only.
  kDotBank,
};

class SimilarityEngine {
 public:
  SimilarityEngine() = default;

  /// Builds the engine over the rows of `matrix` (gene profiles).
  static SimilarityEngine from_rows(const expr::ExpressionMatrix& matrix,
                                    Metric metric,
                                    Precompute precompute =
                                        Precompute::kAllPairs);

  /// Builds the engine over the columns of `matrix` (array profiles) by
  /// materializing the transpose once.
  static SimilarityEngine from_columns(const expr::ExpressionMatrix& matrix,
                                       Metric metric);

  /// Builds the engine over `count` contiguous row-major profiles of
  /// `length` values each.
  static SimilarityEngine from_profiles(std::span<const float> flat,
                                        std::size_t count, std::size_t length,
                                        Metric metric,
                                        Precompute precompute =
                                            Precompute::kAllPairs);

  std::size_t size() const noexcept { return count_; }      ///< profiles
  std::size_t length() const noexcept { return length_; }   ///< values each
  /// Padded row length (multiple of the kernel lane width); the tail of
  /// every stored row is zero so kernels never need a remainder loop.
  std::size_t stride() const noexcept { return stride_; }
  Metric metric() const noexcept { return metric_; }

  bool row_has_missing(std::size_t i) const { return has_missing_[i] != 0; }
  /// Number of present (non-missing) values in profile i.
  std::size_t present(std::size_t i) const { return present_[i]; }

  /// The precomputed transform of profile i (unit-norm centered values for
  /// Pearson, unit-norm raw for uncentered, unit-norm centered mid-ranks for
  /// Spearman; empty span for Euclidean). Length is stride(); entries past
  /// length() and at missing cells are 0. For Pearson this is exactly the
  /// stats::ZProfile z-row divided by zscale(i).
  std::span<const float> normalized_row(std::size_t i) const;

  /// Multiplier turning normalized_row(i) back into the stats::ZProfile
  /// z-row: sqrt(present - 1), or 0 for degenerate (constant / too-short)
  /// profiles. SPELL's zdot-convention scoring is built from this.
  float zscale(std::size_t i) const { return zscale_[i]; }

  /// Exact correlation between profiles i and j under the metric
  /// (requires a correlation metric and Precompute::kAllPairs). Matches
  /// the scalar stats:: kernels: dense pairs via the precomputed dot
  /// product, pairs with missing cells via the masked pairwise-complete
  /// path.
  double similarity(std::size_t i, std::size_t j) const;

  /// Distance between profiles i and j; matches cluster::profile_distance.
  /// Requires Precompute::kAllPairs.
  float distance(std::size_t i, std::size_t j) const;

  /// Fills `out` (size() x size(), row-major) with all pairwise distances:
  /// symmetric, zero diagonal. Work is scheduled as balanced square tiles
  /// on the pool (dynamic pull, so masked-path tiles cannot stall a static
  /// partition). Prefer condensed_distances() — it writes half the memory;
  /// this dense form is kept for callers not yet ported.
  void all_distances(std::span<float> out, par::ThreadPool& pool) const;

  /// Fills `out` (condensed_size(size()) floats, fv::condensed_index
  /// layout) with the strict upper triangle of the pairwise distance
  /// matrix, emitting each tile directly into condensed storage — no dense
  /// n x n staging buffer exists at any point, so the distance phase peaks
  /// at half the dense layout's memory. Same tile schedule and same values
  /// as all_distances(); tiles own disjoint condensed ranges per row
  /// segment, so writes never race.
  void condensed_distances(std::span<float> out, par::ThreadPool& pool) const;

  /// out[i] = dot(normalized_row(i), query) for every profile — the
  /// one-vs-all kernel behind SPELL scoring. `query` must have stride()
  /// entries (zero-padded past length()). Pearson-family metrics only:
  /// a Spearman bank has no normalized rows for profiles with missing
  /// cells, so a dot there would silently score them 0.
  void dot_all(std::span<const float> query, std::span<double> out) const;

 private:
  Metric metric_ = Metric::kPearson;
  Precompute precompute_ = Precompute::kAllPairs;
  std::size_t count_ = 0;
  std::size_t length_ = 0;
  std::size_t stride_ = 0;
  std::size_t mask_words_ = 0;
  /// count x stride with NaNs preserved; only the Spearman masked fallback
  /// needs original missing markers, so this stays empty otherwise (every
  /// other path reads present cells, where filled_ is identical).
  std::vector<float> raw_;
  std::vector<float> filled_;  ///< count x stride, missing cells as 0
  std::vector<float> normalized_;  ///< count x stride (correlation metrics)
  std::vector<std::uint64_t> mask_;  ///< present bitmask, count x mask_words
  std::vector<std::uint32_t> present_;
  std::vector<std::uint8_t> has_missing_;
  /// Dense fast path must report r = 0 for this row (constant profile or
  /// fewer than stats::kMinCompletePairs values).
  std::vector<std::uint8_t> degenerate_;
  std::vector<float> zscale_;
  /// Missing cell indices per row, CSR layout: row i's missing indices are
  /// missing_idx_[missing_begin_[i] .. missing_begin_[i+1]). The masked
  /// path is one dot product over filled_ plus O(#missing) corrections
  /// driven by these lists, so sparsely-missing rows stay near dense speed.
  std::vector<std::uint32_t> missing_idx_;
  std::vector<std::uint32_t> missing_begin_;
  std::vector<double> own_sum_;    ///< sum of present values per row
  std::vector<double> own_sumsq_;  ///< sum of squared present values

  void build(std::span<const float> flat, std::size_t count,
             std::size_t length, Metric metric, Precompute precompute);
  bool present_at(std::size_t i, std::size_t k) const {
    return (mask_[i * mask_words_ + k / 64] >>
            (k % 64) & 1) != 0;
  }
  std::size_t common_present(std::size_t i, std::size_t j) const;
  double masked_similarity(std::size_t i, std::size_t j) const;
  float euclidean_distance(std::size_t i, std::size_t j) const;
};

}  // namespace fv::sim
