// Blocked pairwise-similarity engine.
//
// Every heavy path in ForestView — gene/array clustering, SPELL query
// scoring, the merged-interface sweep — bottoms out in pairwise Pearson /
// Spearman / Euclidean over row profiles. The engine precomputes per-profile
// state ONCE (unit-norm centered rows for Pearson, normalized rank rows for
// Spearman, missing-value bitmasks, a has-missing flag) and then answers
// every pair from a SIMD-friendly dot-product kernel over contiguous padded
// rows. Rows that actually contain missing cells take a masked slow path
// with the same pairwise-complete semantics as the scalar kernels; results
// agree within the 1e-6 equivalence contract (not bit-for-bit — summation
// order differs and a relative-epsilon guard zeroes near-constant-subset
// variances). See src/sim/README.md for the fast/slow path contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "expr/expression_matrix.hpp"
#include "par/thread_pool.hpp"
#include "sim/engine_storage.hpp"

namespace fv::store {
class EngineCodec;  // store/cached.hpp — persists engine state verbatim
}  // namespace fv::store

namespace fv::sim {

class LshIndex;  // sim/lsh.hpp — kApprox candidate generator

enum class Metric {
  kPearson,            ///< 1 - Pearson correlation (pairwise complete)
  kUncenteredPearson,  ///< 1 - uncentered correlation
  kSpearman,           ///< 1 - Spearman rank correlation
  kEuclidean,          ///< Euclidean over pairwise-complete coordinates
};

/// How much per-profile state the engine keeps.
enum class Precompute {
  /// Everything: exact pairwise similarity()/distance()/all_distances()
  /// plus the dot bank.
  kAllPairs,
  /// Normalized rows + presence/zscale only — half the memory, for
  /// long-lived one-vs-all scorers (SPELL banks) that never ask for exact
  /// pairwise values. Correlation metrics only.
  kDotBank,
};

/// Which accumulator the dense correlation fast path uses.
enum class DenseKernel {
  /// Float accumulators for every correlation engine: the compensated
  /// block-flush (lane sums drained into doubles every 256 elements) keeps
  /// the worst-case rounding bound at (256/16)·2⁻²⁴ ≈ 9.5e-7 — inside the
  /// 1e-6 equivalence contract — at any row length. See src/sim/README.md.
  kAuto,
  kDouble,  ///< Always the double reference kernel.
  /// Same as kAuto for correlation metrics; kept distinct so tests and
  /// benches can state "the float path, explicitly" and so the error-bound
  /// study keeps a stable name if kAuto ever regains a fallback.
  kFloat,
};

/// How top_k_neighbors runs its distance phase.
enum class TopKStrategy {
  /// kPruned whenever the engine can prove bounds (correlation metrics,
  /// whose normalized rows carry the Cauchy–Schwarz norm structure),
  /// kExact otherwise (Euclidean). The returned table is identical either
  /// way — pruning skips only pairs *proven* unable to enter any heap.
  /// kAuto never routes to kApprox: approximation is strictly opt-in.
  kAuto,
  /// Stream every tile through the heaps (the unconditional path).
  kExact,
  /// Norm-bound tile pruning: skip whole 64×64 tiles whose Cauchy–Schwarz
  /// distance lower bound cannot beat the current per-row heap thresholds.
  /// Results stay exact and schedule-independent (the exact top-k under
  /// the total (distance, index) order is unique, and only provably-losing
  /// pairs are skipped). Correlation metrics only — Euclidean rows are
  /// unnormalized, so the unit-norm bound does not exist for them.
  kPruned,
  /// Random-hyperplane LSH candidate generation (sim::LshIndex) + exact
  /// rescoring: the schedule is sub-quadratic — O(n) signatures, bucket
  /// collisions instead of all pairs — and every pair that IS returned
  /// carries the bit-identical exact distance (candidates go through the
  /// same kernels as kExact). Rows may MISS true neighbors (measured
  /// recall ≥ 0.95 on module-structured data at the defaults; see
  /// src/sim/README.md §approximate top-k for the failure modes).
  /// Correlation metrics only, rejected on Euclidean like kPruned; k ≥
  /// n−1 falls back to kExact (every pair is needed anyway, and exact is
  /// strictly better when it costs the same).
  kApprox,
};

/// Parameters of the kApprox strategy's LSH layer (sim::LshIndex).
/// Defaults target the compendium module shape: 256 signature bits split
/// into 16 disjoint 16-bit bucket keys, one extra probe per table.
struct LshParams {
  /// Signature width. 64–1024, multiple of 64 (signatures pack into
  /// uint64_t words). More bits = better Hamming ≈ angle fidelity and
  /// sharper buckets, at O(bits) build cost per profile.
  std::size_t bits = 256;
  /// Bucket tables; table t keys on signature bits
  /// [t·bits/tables, (t+1)·bits/tables). More tables = higher recall
  /// (OR-construction) and more candidates. Must divide into bits at ≥ 1
  /// bit per slice (tables ≤ bits).
  std::size_t tables = 16;
  /// Bucket lookups per profile per table: 1 = the exact slice key only;
  /// p > 1 additionally probes the p−1 keys obtained by flipping, one at
  /// a time, the slice bits whose hyperplane projection had the smallest
  /// margin |dot| (the bits most likely to have landed on the wrong side
  /// — classic query-directed multi-probe). At most slice_bits + 1.
  std::size_t probes = 2;
  /// Seeds the Gaussian hyperplane bank (util/rng.hpp xoshiro, so
  /// signatures are reproducible across platforms). Same seed + params ⇒
  /// same signatures, same candidates, same table, under any pool.
  std::uint64_t seed = 0x15bf00d5eedULL;
};

/// Per-call statistics of a top_k_neighbors distance phase, for
/// benchmarking the pruned and approximate strategies. The *table* is
/// deterministic and schedule-independent; the tile counters are exact
/// only under a 1-thread pool (how many tiles prune depends on how tight
/// the shared thresholds were when each tile was checked). The kApprox
/// counters are exact under any pool — candidate generation is
/// deterministic and rescoring counts actual exact-distance evaluations.
struct TopKStats {
  std::size_t tiles_total = 0;     ///< tiles in the schedule
  std::size_t tiles_computed = 0;  ///< tiles whose pairs were computed
  std::size_t tiles_pruned = 0;    ///< tiles skipped on a bound proof
  std::size_t bounds_checked = 0;  ///< tiles whose bound was evaluated
  // --- kApprox (zero unless the LSH path actually ran) ---
  std::size_t signatures_built = 0;  ///< profiles signed (n, or 0 on fallback)
  std::size_t buckets_probed = 0;  ///< bucket enumerations + probe lookups
  std::size_t candidates_generated = 0;  ///< collision pairs, pre-dedup
  std::size_t candidates_rescored = 0;   ///< deduped pairs given exact dots
  /// Fraction of the n(n−1)/2 pair distances evaluated exactly: 1.0 for
  /// kExact, tiles_computed/tiles_total (tile granularity) for kPruned,
  /// candidates_rescored / (n(n−1)/2) for kApprox — the sub-quadratic
  /// headline number.
  double exact_dot_fraction = 0.0;
};

/// One computed tile of the pairwise-distance upper triangle, handed to a
/// for_each_tile() visitor. `values` is a row-major
/// (row_end - row_begin) x ld block owned by the engine for the duration of
/// the visit only — visitors must copy what they keep. On diagonal tiles
/// (row and column ranges overlap) only strictly-upper cells (j > i) are
/// meaningful; the rest are zero.
struct DistanceTile {
  std::size_t index = 0;      ///< position in the tile schedule (stable)
  std::size_t row_begin = 0, row_end = 0;  ///< i range [row_begin, row_end)
  std::size_t col_begin = 0, col_end = 0;  ///< j range [col_begin, col_end)
  const float* values = nullptr;
  std::size_t ld = 0;         ///< leading dimension of `values`

  /// Distance of pair (i, j); requires i/j inside this tile's ranges and
  /// j > i.
  float at(std::size_t i, std::size_t j) const {
    return values[(i - row_begin) * ld + (j - col_begin)];
  }
};

/// n x k nearest-neighbor table: for each profile, its k nearest other
/// profiles in ascending (distance, index) order. Rows with fewer valid
/// neighbors than k (filtered by min_common, or n - 1 < k) are short;
/// neighbor_count() says how many are real.
struct NeighborTable {
  std::size_t count = 0;  ///< profiles
  std::size_t k = 0;      ///< neighbor slots per profile
  std::vector<std::uint32_t> indices;    ///< count x k
  std::vector<float> distances;          ///< count x k
  std::vector<std::uint32_t> valid;      ///< real neighbors per profile

  std::size_t neighbor_count(std::size_t i) const { return valid[i]; }
  std::span<const std::uint32_t> neighbors(std::size_t i) const {
    return {indices.data() + i * k, valid[i]};
  }
  std::span<const float> neighbor_distances(std::size_t i) const {
    return {distances.data() + i * k, valid[i]};
  }
};

class SimilarityEngine {
 public:
  SimilarityEngine() = default;

  /// Builds the engine over the rows of `matrix` (gene profiles).
  static SimilarityEngine from_rows(const expr::ExpressionMatrix& matrix,
                                    Metric metric,
                                    Precompute precompute =
                                        Precompute::kAllPairs,
                                    DenseKernel kernel = DenseKernel::kAuto);

  /// Builds the engine over the columns of `matrix` (array profiles) by
  /// materializing the transpose once.
  static SimilarityEngine from_columns(const expr::ExpressionMatrix& matrix,
                                       Metric metric);

  /// Builds the engine over `count` contiguous row-major profiles of
  /// `length` values each.
  static SimilarityEngine from_profiles(std::span<const float> flat,
                                        std::size_t count, std::size_t length,
                                        Metric metric,
                                        Precompute precompute =
                                            Precompute::kAllPairs,
                                        DenseKernel kernel =
                                            DenseKernel::kAuto);

  std::size_t size() const noexcept { return count_; }      ///< profiles
  std::size_t length() const noexcept { return length_; }   ///< values each
  /// Padded row length (multiple of the kernel lane width); the tail of
  /// every stored row is zero so kernels never need a remainder loop.
  std::size_t stride() const noexcept { return stride_; }
  Metric metric() const noexcept { return metric_; }

  /// Where this engine's state arrays live: kOwnedHeap for built or
  /// codec-copied engines, kBorrowedMapped for engines whose arrays are
  /// read-only spans into a pinned artifact mapping
  /// (store::open_engine_mapped). Every query and tile path produces
  /// bit-identical results in both modes — this only reports residency.
  EngineStorage storage() const noexcept {
    return pin_ == nullptr ? EngineStorage::kOwnedHeap
                           : EngineStorage::kBorrowedMapped;
  }

  /// Whether the dense correlation fast path runs on float accumulators
  /// (DenseKernel::kFloat or kAuto — every correlation engine unless
  /// kDouble was forced; the block-flush bound holds at any stride).
  bool float_kernel_active() const noexcept { return float_kernel_; }

  bool row_has_missing(std::size_t i) const { return has_missing_[i] != 0; }
  /// Number of present (non-missing) values in profile i.
  std::size_t present(std::size_t i) const { return present_[i]; }
  /// Whether value `k` of profile `i` was present (non-missing) in the
  /// input — the precomputed bitmask, so consumers (kNN imputation) can
  /// test original presence without keeping their own matrix copy.
  /// Requires Precompute::kAllPairs.
  bool value_present(std::size_t i, std::size_t k) const {
    FV_REQUIRE(precompute_ == Precompute::kAllPairs && i < count_ &&
                   k < length_,
               "value_present() needs kAllPairs and in-range indices");
    return present_at(i, k);
  }

  /// The precomputed transform of profile i (unit-norm centered values for
  /// Pearson, unit-norm raw for uncentered, unit-norm centered mid-ranks for
  /// Spearman; empty span for Euclidean). Length is stride(); entries past
  /// length() and at missing cells are 0. For Pearson this is exactly the
  /// stats::ZProfile z-row divided by zscale(i).
  std::span<const float> normalized_row(std::size_t i) const;

  /// Profile i as stored: the input values with missing cells (and padding
  /// past length()) as 0. Combined with value_present() this reconstructs
  /// the original profile exactly — expr::matrix_from_engine serves
  /// compendium rows straight off a mapped engine through this, without a
  /// separate matrix copy. Requires Precompute::kAllPairs.
  std::span<const float> filled_row(std::size_t i) const;

  /// Multiplier turning normalized_row(i) back into the stats::ZProfile
  /// z-row: sqrt(present - 1), or 0 for degenerate (constant / too-short)
  /// profiles. SPELL's zdot-convention scoring is built from this.
  float zscale(std::size_t i) const { return zscale_[i]; }

  /// Exact correlation between profiles i and j under the metric
  /// (requires a correlation metric and Precompute::kAllPairs). Matches
  /// the scalar stats:: kernels: dense pairs via the precomputed dot
  /// product, pairs with missing cells via the masked pairwise-complete
  /// path.
  double similarity(std::size_t i, std::size_t j) const;

  /// Distance between profiles i and j; matches cluster::profile_distance.
  /// Requires Precompute::kAllPairs.
  float distance(std::size_t i, std::size_t j) const;

  /// Number of tiles in the balanced upper-triangle schedule; tile indices
  /// passed to visitors lie in [0, tile_count()). Lets streaming consumers
  /// preallocate per-tile partials for deterministic reduction.
  std::size_t tile_count() const noexcept;

  /// Streams every pairwise distance through `visit` one computed tile at a
  /// time instead of writing a matrix: the balanced 64x64 upper-triangle
  /// tile schedule runs on the pool (dynamic pull), each worker computes a
  /// tile into a scratch block and hands it to `visit`. At most
  /// pool.thread_count() tile blocks are live at any moment, so a streaming
  /// consumer's distance phase peaks at O(consumer state), never O(n²).
  /// Contract: each unordered pair is delivered exactly once; `visit` runs
  /// concurrently from pool threads (it must synchronize shared state or
  /// keep per-thread/per-tile state — tiles never overlap, and tile.index
  /// is a stable schedule position for ordered reductions); the tile's
  /// values are only valid during the visit.
  void for_each_tile(const std::function<void(const DistanceTile&)>& visit,
                     par::ThreadPool& pool) const;

  /// Serial variant running on the calling thread — for consumers that are
  /// themselves pool tasks (a blocking nested parallel_dynamic on the same
  /// pool would deadlock) or for tiny engines where scheduling outweighs
  /// the work. On a borrowed-mapped engine this is ALSO the streaming tile
  /// driver: tiles run in row-stripe order (ta fixed, tb ascending), the
  /// backing file is re-validated at each stripe start
  /// (fv::CorruptArtifactError instead of a mid-compute SIGBUS if it
  /// shrank), and each visited block's row pages are released behind the
  /// cursor — resident working set stays O(tiles in flight), not O(n·m),
  /// so the distance phase runs at n whose dense engine state exceeds RAM.
  void for_each_tile(
      const std::function<void(const DistanceTile&)>& visit) const;

  /// The k nearest other profiles of every profile — ascending
  /// (distance, index) per row, built by streaming tiles into per-thread
  /// bounded max-heaps merged at the end: O(n·k) memory per thread, never
  /// the O(n²/2) a materialized distance matrix costs. Deterministic under
  /// any thread schedule (the per-slot heaps keep supersets of the global
  /// (distance, index)-smallest k). Pairs whose profiles share fewer than
  /// `min_common` present cells are excluded (0 = keep everything) — kNN
  /// imputation uses this to drop meaninglessly-overlapping neighbors.
  ///
  /// `strategy` selects the distance phase: under TopKStrategy::kPruned
  /// (or kAuto on a correlation metric) tiles whose Cauchy–Schwarz
  /// distance lower bound — from precomputed per-row blocked segment
  /// norms — provably cannot beat the current per-row heap thresholds are
  /// skipped whole, without computing a single pair. The table is
  /// bit-identical to kExact (prune on proof only; see src/sim/README.md
  /// for the derivation). Under TopKStrategy::kApprox the quadratic tile
  /// schedule is replaced by LSH candidate generation (`lsh` parameters;
  /// sim::LshIndex) with exact rescoring: every returned pair's distance
  /// is bit-identical to the exact path's, but true neighbors can be
  /// missed — opt-in only, never chosen by kAuto. min_common is enforced
  /// at rescoring (the candidate stage sees signatures only). `stats`,
  /// when non-null, receives the per-call prune/LSH counters.
  ///
  /// `lsh_index`, when non-null, is a prebuilt signature index over THIS
  /// engine (it must have size() == size()) that the kApprox path reuses
  /// instead of building one — the artifact store hands warm-reopened
  /// indexes in through here, skipping the O(n·bits) signature build that
  /// dominates approximate top-k. Ignored by the exact strategies.
  NeighborTable top_k_neighbors(std::size_t k, par::ThreadPool& pool,
                                std::size_t min_common = 0,
                                TopKStrategy strategy = TopKStrategy::kAuto,
                                TopKStats* stats = nullptr,
                                const LshParams& lsh = LshParams{},
                                const LshIndex* lsh_index = nullptr) const;

  /// Mean of all n(n-1)/2 pairwise distances, streamed tile by tile (no
  /// matrix materialized; per-tile partials reduced in schedule order, so
  /// the result is deterministic). 0 when size() < 2. The serial overload
  /// is safe inside pool tasks. Query-coherence weights (SPELL, the merged
  /// interface) are 1 minus this under correlation metrics.
  double mean_pairwise_distance(par::ThreadPool& pool) const;
  double mean_pairwise_distance() const;

  /// Fills `out` (size() x size(), row-major) with all pairwise distances:
  /// symmetric, zero diagonal — a trivial for_each_tile visitor kept for
  /// callers that genuinely need the dense mirrored form. Prefer
  /// condensed_distances() (half the memory) or top_k_neighbors() /
  /// for_each_tile() (no matrix at all) on memory-bound paths.
  void all_distances(std::span<float> out, par::ThreadPool& pool) const;

  /// Fills `out` (condensed_size(size()) floats, fv::condensed_index
  /// layout) with the strict upper triangle of the pairwise distance
  /// matrix, emitting each tile directly into condensed storage — no dense
  /// n x n staging buffer exists at any point, so the distance phase peaks
  /// at half the dense layout's memory. Same tile schedule and same values
  /// as all_distances(); tiles own disjoint condensed ranges per row
  /// segment, so writes never race.
  void condensed_distances(std::span<float> out, par::ThreadPool& pool) const;

  /// Serial condensed_distances — same values, same condensed layout, no
  /// pool. This is the out-of-core distance phase: on a borrowed-mapped
  /// engine it inherits the serial for_each_tile streaming contract (page
  /// release behind the cursor, per-stripe backing checks), so peak
  /// transient memory is the condensed output plus one tile block.
  void condensed_distances(std::span<float> out) const;

  /// condensed_distances() with every cell squared — the input form the
  /// Lance–Williams recurrences of Ward/centroid/median hierarchical
  /// clustering operate on. Each value is exactly the float square of the
  /// corresponding condensed_distances() cell (same tiles, same schedule,
  /// same memory profile — no dense staging buffer). Euclidean engines
  /// only: squaring a correlation distance has no Lance–Williams meaning.
  void condensed_squared_distances(std::span<float> out,
                                   par::ThreadPool& pool) const;

  /// out[i] = dot(normalized_row(i), query) for every profile — the
  /// one-vs-all kernel behind SPELL scoring. `query` must have stride()
  /// entries (zero-padded past length()). Pearson-family metrics only:
  /// a Spearman bank has no normalized rows for profiles with missing
  /// cells, so a dot there would silently score them 0.
  void dot_all(std::span<const float> query, std::span<double> out) const;

 private:
  /// The artifact store's codec (store/cached.hpp) persists and restores
  /// every private field verbatim — serialization stays out of this class,
  /// state stays out of the public API.
  friend class fv::store::EngineCodec;

  Metric metric_ = Metric::kPearson;
  Precompute precompute_ = Precompute::kAllPairs;
  bool float_kernel_ = false;
  std::size_t count_ = 0;
  std::size_t length_ = 0;
  std::size_t stride_ = 0;
  std::size_t mask_words_ = 0;
  /// Engine state arrays are ArrayRef (sim/engine_storage.hpp): owned
  /// std::vectors on built/codec-copied engines, read-only spans into the
  /// artifact mapping held alive by pin_ on borrowed-mapped ones. All read
  /// paths below are mode-blind; only build() and the codec mutate, and
  /// only in owned mode.
  ///
  /// count x stride with NaNs preserved; only the Spearman masked fallback
  /// needs original missing markers, so this stays empty otherwise (every
  /// other path reads present cells, where filled_ is identical).
  ArrayRef<float> raw_;
  ArrayRef<float> filled_;  ///< count x stride, missing cells as 0
  ArrayRef<float> normalized_;  ///< count x stride (correlation metrics)
  ArrayRef<std::uint64_t> mask_;  ///< present bitmask, count x mask_words
  ArrayRef<std::uint32_t> present_;
  ArrayRef<std::uint8_t> has_missing_;
  /// Dense fast path must report r = 0 for this row (constant profile or
  /// fewer than stats::kMinCompletePairs values).
  ArrayRef<std::uint8_t> degenerate_;
  ArrayRef<float> zscale_;
  /// Missing cell indices per row, CSR layout: row i's missing indices are
  /// missing_idx_[missing_begin_[i] .. missing_begin_[i+1]). The masked
  /// path is one dot product over filled_ plus O(#missing) corrections
  /// driven by these lists, so sparsely-missing rows stay near dense speed.
  ArrayRef<std::uint32_t> missing_idx_;
  ArrayRef<std::uint32_t> missing_begin_;
  ArrayRef<double> own_sum_;    ///< sum of present values per row
  ArrayRef<double> own_sumsq_;  ///< sum of squared present values
  /// Blocked segment norms of the normalized rows (correlation metrics
  /// with kAllPairs only): count x seg_count_, seg_norms_[i * seg_count_
  /// + s] >= ||normalized_row(i)[s*16 .. (s+1)*16)|| (inflated a hair past
  /// the double-precision norm so the stored float can never round below
  /// the true value). The Cauchy–Schwarz tile bound of the pruned top-k
  /// path is built from these.
  ArrayRef<float> seg_norms_;
  std::size_t seg_count_ = 0;  ///< stride_ / 16 segments per row
  /// Everything the computed float distance can fall below the
  /// exact-arithmetic Cauchy–Schwarz chain by: kernel rounding (the float
  /// kernel's block-flush bound when active) + the double->float cast of
  /// the distance + margin. The pruned path subtracts this from every
  /// bound, so "bound > threshold" is a proof about *computed* distances.
  float prune_slack_ = 0.0f;
  /// Set only on borrowed-mapped engines: keeps the backing mapping alive
  /// as long as this engine (and any copy of it — shared_ptr semantics),
  /// drops pages the streaming tile driver is done with, and re-validates
  /// the backing file before compute phases (engine_storage.hpp).
  std::shared_ptr<const EngineStoragePin> pin_;

  void build(std::span<const float> flat, std::size_t count,
             std::size_t length, Metric metric, Precompute precompute,
             DenseKernel kernel);
  /// Computes tile `t` of the schedule into `scratch` (>= kTile*kTile
  /// floats) and fills `tile` to describe it.
  void compute_tile(std::size_t t, float* scratch, DistanceTile& tile) const;
  /// distance()/similarity() without the per-pair argument checks — the
  /// tile loop calls these O(n²) times with schedule-guaranteed indices,
  /// and the check branches are measurable next to a 96-element dot
  /// product. One shared dispatch so the public and tile paths cannot
  /// drift.
  float distance_unchecked(std::size_t i, std::size_t j) const;
  double similarity_unchecked(std::size_t i, std::size_t j) const;
  bool present_at(std::size_t i, std::size_t k) const {
    return (mask_[i * mask_words_ + k / 64] >>
            (k % 64) & 1) != 0;
  }
  std::size_t common_present(std::size_t i, std::size_t j) const;
  double masked_similarity(std::size_t i, std::size_t j) const;
  float euclidean_distance(std::size_t i, std::size_t j) const;
  /// Streaming residency hooks — no-ops on owned engines. check_backing()
  /// turns a foreign truncation of the mapped artifact into a typed
  /// fv::CorruptArtifactError at a phase boundary; release_row_pages()
  /// drops rows [begin, end) of the big per-row slabs (raw_/filled_/
  /// normalized_) from the resident set once the tile cursor is past them.
  void check_backing() const {
    if (pin_ != nullptr) pin_->check_backing();
  }
  void release_row_pages(std::size_t begin, std::size_t end) const;
};

/// Query-coherence of `count` stacked row-major profiles of `length`
/// values each: mean pairwise Pearson over all pairs, clamped at zero
/// (anti-coherent sets carry no evidence). Built on a throwaway sub-engine
/// whose tiles stream serially, so it is safe to call from inside pool
/// tasks — SPELL's dataset weighting and the merged interface's dataset
/// ordering both score query gene sets with this. 0 when count < 2.
double profile_coherence(std::span<const float> flat, std::size_t count,
                         std::size_t length);

/// Convenience overload for non-contiguous sources (selected dataset
/// rows): stacks the profile spans into one flat buffer internally. Every
/// span must have `length` values.
double profile_coherence(std::span<const std::span<const float>> profiles,
                         std::size_t length);

}  // namespace fv::sim
