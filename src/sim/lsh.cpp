#include "sim/lsh.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numbers>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fv::sim {

namespace {

constexpr std::size_t kNoFlip = std::numeric_limits<std::size_t>::max();

/// Same 16-lane double accumulator shape as the engine's dense kernel:
/// fixed lane array, so the compiler vectorizes at any SIMD width without
/// reassociation and the projection signs are identical on every ISA.
constexpr std::size_t kLanes = 16;

double dot_lanes(const float* a, const float* b, std::size_t stride) {
  double acc[kLanes] = {};
  for (std::size_t k = 0; k < stride; k += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      acc[l] += static_cast<double>(a[k + l]) * static_cast<double>(b[k + l]);
    }
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kLanes; ++l) total += acc[l];
  return total;
}

/// splitmix64 finalizer — the slice-word mixer. Hash collisions between
/// distinct slices only add candidates (rescored exactly); equal slices
/// always hash equal, so no true collision is ever lost.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Bits [begin, begin + count) of a packed signature, count <= 64. The
/// second word read exists whenever the range crosses a word boundary
/// (begin + count never exceeds the signature width).
std::uint64_t extract_bits(const std::uint64_t* sig, std::size_t begin,
                           std::size_t count) {
  const std::size_t w = begin / 64;
  const std::size_t off = begin % 64;
  std::uint64_t v = sig[w] >> off;
  if (off + count > 64) v |= sig[w + 1] << (64 - off);
  if (count < 64) v &= (std::uint64_t{1} << count) - 1;
  return v;
}

std::uint64_t pack_pair(std::uint32_t a, std::uint32_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

std::size_t hamming_words(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t words) {
  std::size_t distance = 0;
  for (std::size_t w = 0; w < words; ++w) {
    distance += static_cast<std::size_t>(std::popcount(a[w] ^ b[w]));
  }
  return distance;
}

std::size_t hamming_words_portable(const std::uint64_t* a,
                                   const std::uint64_t* b,
                                   std::size_t words) {
  std::size_t distance = 0;
  for (std::size_t w = 0; w < words; ++w) {
    // Classic SWAR population count: pairwise, then nibble, then byte
    // sums, folded with one multiply.
    std::uint64_t x = a[w] ^ b[w];
    x = x - ((x >> 1) & 0x5555555555555555ULL);
    x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
    x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0fULL;
    distance += static_cast<std::size_t>((x * 0x0101010101010101ULL) >> 56);
  }
  return distance;
}

LshIndex::LshIndex(const SimilarityEngine& engine, const LshParams& params,
                   par::ThreadPool& pool) {
  FV_REQUIRE(engine.metric() != Metric::kEuclidean,
             "LshIndex needs a correlation metric — Euclidean rows are "
             "unnormalized, so Hamming ≈ angle does not estimate the metric");
  FV_REQUIRE(params.bits >= 64 && params.bits <= 1024 &&
                 params.bits % 64 == 0,
             "LshParams::bits must be a multiple of 64 in [64, 1024]");
  FV_REQUIRE(params.tables >= 1 && params.tables <= params.bits,
             "LshParams::tables must be in [1, bits]");
  slice_bits_ = params.bits / params.tables;
  FV_REQUIRE(params.probes >= 1 && params.probes <= slice_bits_ + 1,
             "LshParams::probes must be in [1, bits/tables + 1]");

  count_ = engine.size();
  bits_ = params.bits;
  words_ = bits_ / 64;
  tables_ = params.tables;
  probes_ = params.probes;

  // Hyperplane bank: bits x stride floats, Gaussian over the engine's
  // length() real coordinates and zero over the padding tail, drawn from
  // one fv::Rng stream in a fixed order — same seed, same bank, on every
  // platform.
  const std::size_t stride = engine.stride();
  const std::size_t length = engine.length();
  std::vector<float> planes(bits_ * stride, 0.0f);
  Rng rng(params.seed);
  for (std::size_t b = 0; b < bits_; ++b) {
    float* plane = planes.data() + b * stride;
    for (std::size_t k = 0; k < length; ++k) {
      plane[k] = static_cast<float>(rng.normal());
    }
  }

  signatures_.assign(count_ * words_, 0);
  probe_bits_.assign(
      probes_ > 1 ? count_ * tables_ * (probes_ - 1) : 0, 0);

  // One pass per profile: bits projections, packed signs, and — when
  // probing — each table slice's lowest-margin bits. Rows are independent
  // and write disjoint ranges, so the pooled loop is deterministic under
  // any schedule.
  par::parallel_for(pool, 0, count_, 16, [&](std::size_t i) {
    const std::span<const float> row = engine.normalized_row(i);
    std::vector<double> proj(bits_, 0.0);
    if (!row.empty()) {
      for (std::size_t b = 0; b < bits_; ++b) {
        proj[b] = dot_lanes(row.data(), planes.data() + b * stride, stride);
      }
    }
    std::uint64_t* sig = signatures_.data() + i * words_;
    for (std::size_t b = 0; b < bits_; ++b) {
      // Ties at exactly 0 (all-zero normalized rows: degenerate profiles,
      // Spearman rows with missing cells) deterministically set the bit.
      if (proj[b] >= 0.0) sig[b / 64] |= std::uint64_t{1} << (b % 64);
    }
    if (probes_ > 1) {
      const std::size_t per = probes_ - 1;
      for (std::size_t t = 0; t < tables_; ++t) {
        // Smallest-|projection| slice bits, ties by bit index: a small
        // insertion pass — `per` is 1 in the default configuration.
        std::uint16_t* out = probe_bits_.data() + (i * tables_ + t) * per;
        std::vector<std::pair<double, std::uint16_t>> best;
        best.reserve(per);
        for (std::size_t s = 0; s < slice_bits_; ++s) {
          const std::pair<double, std::uint16_t> cand{
              std::abs(proj[t * slice_bits_ + s]),
              static_cast<std::uint16_t>(s)};
          if (best.size() < per) {
            best.insert(std::upper_bound(best.begin(), best.end(), cand),
                        cand);
          } else if (cand < best.back()) {
            best.pop_back();
            best.insert(std::upper_bound(best.begin(), best.end(), cand),
                        cand);
          }
        }
        for (std::size_t p = 0; p < per; ++p) out[p] = best[p].second;
      }
    }
  });

  // Bucket tables: ids sorted by (slice key, id). Sorting (not hashing
  // into an unordered container) keeps bucket enumeration order — and so
  // candidate generation — deterministic.
  tables_storage_.resize(tables_);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> kv(count_);
  for (std::size_t t = 0; t < tables_; ++t) {
    for (std::size_t i = 0; i < count_; ++i) {
      kv[i] = {slice_key(i, t, kNoFlip), static_cast<std::uint32_t>(i)};
    }
    std::sort(kv.begin(), kv.end());
    Table& table = tables_storage_[t];
    table.keys.resize(count_);
    table.rows.resize(count_);
    for (std::size_t i = 0; i < count_; ++i) {
      table.keys[i] = kv[i].first;
      table.rows[i] = kv[i].second;
    }
  }
}

std::span<const std::uint64_t> LshIndex::signature(std::size_t i) const {
  FV_REQUIRE(i < count_, "profile index out of range");
  return {signatures_.data() + i * words_, words_};
}

std::size_t LshIndex::hamming(std::size_t i, std::size_t j) const {
  FV_REQUIRE(i < count_ && j < count_, "profile index out of range");
  return hamming_words(signatures_.data() + i * words_,
                       signatures_.data() + j * words_, words_);
}

double LshIndex::estimated_distance(std::size_t i, std::size_t j) const {
  const double theta = std::numbers::pi * static_cast<double>(hamming(i, j)) /
                       static_cast<double>(bits_);
  return 1.0 - std::cos(theta);
}

std::uint64_t LshIndex::slice_key(std::size_t row, std::size_t table,
                                  std::size_t flip_bit) const {
  const std::uint64_t* sig = signatures_.data() + row * words_;
  const std::size_t begin = table * slice_bits_;
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t off = 0; off < slice_bits_; off += 64) {
    const std::size_t chunk = std::min<std::size_t>(64, slice_bits_ - off);
    std::uint64_t v = extract_bits(sig, begin + off, chunk);
    if (flip_bit != kNoFlip && flip_bit >= off && flip_bit < off + chunk) {
      v ^= std::uint64_t{1} << (flip_bit - off);
    }
    h = mix64(h ^ v);
  }
  return h;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> LshIndex::candidate_pairs(
    CandidateStats* stats) const {
  CandidateStats local;
  std::vector<std::uint64_t> packed;
  // Dedup floor for incremental compaction: once the collision buffer
  // outgrows 4x the last deduped size, sort + unique in place — peak
  // memory tracks the deduped candidate set, not tables x collisions
  // (near-duplicate profiles collide in every table).
  std::size_t unique_floor = 0;
  const auto compact = [&] {
    std::sort(packed.begin(), packed.end());
    packed.erase(std::unique(packed.begin(), packed.end()), packed.end());
    unique_floor = packed.size();
  };

  for (std::size_t t = 0; t < tables_; ++t) {
    const Table& table = tables_storage_[t];
    // Buckets are runs of equal keys; ids inside a run are ascending, so
    // emitted pairs are already (i < j)-ordered.
    std::size_t b = 0;
    while (b < count_) {
      std::size_t e = b + 1;
      while (e < count_ && table.keys[e] == table.keys[b]) ++e;
      ++local.buckets_probed;
      for (std::size_t x = b; x < e; ++x) {
        for (std::size_t y = x + 1; y < e; ++y) {
          packed.push_back(pack_pair(table.rows[x], table.rows[y]));
        }
      }
      local.candidates_generated += (e - b) * (e - b - 1) / 2;
      b = e;
    }
    // Multi-probe: each profile also looks up the buckets reached by
    // flipping its lowest-margin slice bits, one at a time.
    if (probes_ > 1) {
      const std::size_t per = probes_ - 1;
      for (std::size_t i = 0; i < count_; ++i) {
        const std::uint16_t* pb =
            probe_bits_.data() + (i * tables_ + t) * per;
        for (std::size_t p = 0; p < per; ++p) {
          const std::uint64_t key = slice_key(i, t, pb[p]);
          ++local.buckets_probed;
          const auto lo = std::lower_bound(table.keys.begin(),
                                           table.keys.end(), key);
          const auto hi = std::upper_bound(lo, table.keys.end(), key);
          for (auto it = lo; it != hi; ++it) {
            const std::uint32_t j =
                table.rows[static_cast<std::size_t>(it - table.keys.begin())];
            if (j == i) continue;
            packed.push_back(j < i
                                 ? pack_pair(j, static_cast<std::uint32_t>(i))
                                 : pack_pair(static_cast<std::uint32_t>(i), j));
            ++local.candidates_generated;
          }
        }
      }
    }
    if (packed.size() > std::max<std::size_t>(4096, 4 * unique_floor)) {
      compact();
    }
  }
  compact();

  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  pairs.reserve(packed.size());
  for (const std::uint64_t p : packed) {
    pairs.emplace_back(static_cast<std::uint32_t>(p >> 32),
                       static_cast<std::uint32_t>(p & 0xffffffffULL));
  }
  local.pairs = pairs.size();
  if (stats != nullptr) *stats = local;
  return pairs;
}

}  // namespace fv::sim
