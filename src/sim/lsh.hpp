// Random-hyperplane LSH signatures over the similarity engine's rows.
//
// Every exact path in sim is O(n²) pairs; bound pruning (top_k_neighbors
// kPruned) skips provably-losing tiles but the schedule itself still
// scales quadratically, capping practical n around 10⁴–10⁵. This layer is
// the sub-quadratic candidate generator: each profile's already-normalized
// row is projected onto a seeded bank of Gaussian hyperplanes and the
// projection signs pack into a `bits`-wide signature (uint64_t words). For
// unit vectors, P[sign(h·a) ≠ sign(h·b)] = θ(a,b)/π, so Hamming distance
// on signatures estimates angle — and on the engine's rows angle IS the
// metric (1 − cos θ is Pearson/uncentered/Spearman distance). Candidate
// pairs come from multi-probe bucket collisions over disjoint signature
// slices; consumers then rescore candidates through the exact kernels
// (SimilarityEngine::top_k_neighbors TopKStrategy::kApprox), so every
// *returned* distance is bit-identical to the exact path — only recall is
// approximate. See src/sim/README.md §approximate top-k.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "par/thread_pool.hpp"
#include "sim/engine_storage.hpp"
#include "sim/similarity_engine.hpp"

namespace fv::store {
class LshCodec;  // store/cached.hpp — persists signature banks verbatim
}  // namespace fv::store

namespace fv::sim {

/// Hamming distance between two packed bit rows of `words` uint64_t each.
/// Compiles to one POPCNT per word on x86-64 with -march=native (via
/// std::popcount); on ISAs without a population-count instruction the
/// compiler lowers the same intrinsic to SWAR arithmetic.
std::size_t hamming_words(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t words);

/// The explicit SWAR (shift-and-add) Hamming kernel: no popcount intrinsic
/// anywhere, so it pins the semantics hamming_words must match on every
/// platform (tests assert equivalence; the bench measures the gap).
std::size_t hamming_words_portable(const std::uint64_t* a,
                                   const std::uint64_t* b, std::size_t words);

/// LSH signature index over a similarity engine's profiles.
///
/// Construction is one pass: O(n · bits) hyperplane projections over the
/// engine's unit-norm rows (deterministic for a fixed LshParams::seed —
/// the hyperplane bank comes from fv::Rng, and per-row work is
/// schedule-independent, so any pool yields the same signatures), then
/// `tables` bucket tables, each keyed on a disjoint `bits/tables`-bit
/// signature slice (slices hash to 64-bit keys; hash collisions only ADD
/// candidates, never lose one, since equal slices always hash equal).
///
/// Honest failure modes, by construction:
///  * Rows with missing cells project their zero-filled normalized row —
///    the angle estimate degrades with missingness (rescoring stays
///    exact, so only recall suffers).
///  * Spearman rows with missing cells and degenerate (constant) rows
///    have all-zero normalized rows: every projection ties at 0, they all
///    share one signature and collide with each other — correct (their
///    mutual distances are 1) but a large such group rescans itself.
///  * Identical rows collide in every table; a bucket of B identical rows
///    honestly yields B(B−1)/2 candidates (they ARE mutual nearest
///    neighbors).
class LshIndex {
 public:
  /// Builds signatures for every profile of `engine` on `pool`. Requires
  /// a correlation metric (Euclidean rows are unnormalized — angle is not
  /// the metric); throws fv::InvalidArgument on that and on
  /// out-of-contract params (bits not a multiple of 64 or outside
  /// [64, 1024], tables outside [1, bits], probes outside
  /// [1, slice_bits + 1]). Needs only the engine's normalized rows, so
  /// any Precompute mode works; rescoring consumers add their own
  /// requirements.
  LshIndex(const SimilarityEngine& engine, const LshParams& params,
           par::ThreadPool& pool);

  std::size_t size() const noexcept { return count_; }   ///< profiles
  std::size_t bits() const noexcept { return bits_; }    ///< signature bits
  std::size_t words() const noexcept { return words_; }  ///< uint64s per row
  std::size_t slice_bits() const noexcept { return slice_bits_; }

  /// Where the signature bank and bucket tables live: kOwnedHeap for built
  /// or codec-copied indexes, kBorrowedMapped for indexes served as spans
  /// into a pinned artifact mapping (store::open_lsh_mapped). Candidate
  /// generation is identical in both modes.
  EngineStorage storage() const noexcept {
    return pin_ == nullptr ? EngineStorage::kOwnedHeap
                           : EngineStorage::kBorrowedMapped;
  }

  /// Profile i's packed signature (words() uint64_t).
  std::span<const std::uint64_t> signature(std::size_t i) const;

  /// Hamming distance between two profiles' signatures.
  std::size_t hamming(std::size_t i, std::size_t j) const;

  /// The signature-only distance estimate: 1 − cos(π · hamming/bits).
  /// Monotone in the Hamming distance; NOT exact — consumers that report
  /// distances must rescore through the engine's exact kernels.
  double estimated_distance(std::size_t i, std::size_t j) const;

  /// Counters of one candidate_pairs() sweep.
  struct CandidateStats {
    std::size_t buckets_probed = 0;  ///< bucket enumerations + probe lookups
    std::size_t candidates_generated = 0;  ///< collision pairs, pre-dedup
    std::size_t pairs = 0;                 ///< deduped pairs returned
  };

  /// Every unordered profile pair that collides in at least one table
  /// (same slice key, or reached via a multi-probe flipped key), deduped,
  /// as (i, j) with i < j, sorted — a deterministic function of the
  /// signatures alone. The transient collision buffer is compacted
  /// incrementally, so peak memory tracks the deduped result, not the
  /// tables × collisions product.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> candidate_pairs(
      CandidateStats* stats = nullptr) const;

 private:
  /// The artifact store's codec restores a persisted index through the
  /// default constructor + direct field access; a warm reopen must never
  /// re-project n × bits hyperplanes (that build cost is what it saves).
  friend class fv::store::LshCodec;

  LshIndex() = default;

  /// One bucket table: profile ids sorted by (slice key, id); a bucket is
  /// a run of equal keys, looked up by binary search. Sorted storage keeps
  /// iteration order deterministic (no unordered_map iteration order).
  /// ArrayRef so a warm reopen can serve each table as a borrowed slice of
  /// the persisted flat key/row banks instead of copying them.
  struct Table {
    ArrayRef<std::uint64_t> keys;  ///< sorted, one per profile
    ArrayRef<std::uint32_t> rows;  ///< profile ids, same order
  };

  std::uint64_t slice_key(std::size_t row, std::size_t table,
                          std::size_t flip_bit) const;

  std::size_t count_ = 0;
  std::size_t bits_ = 0;
  std::size_t words_ = 0;
  std::size_t slice_bits_ = 0;
  std::size_t tables_ = 0;
  std::size_t probes_ = 0;
  ArrayRef<std::uint64_t> signatures_;  ///< count x words
  std::vector<Table> tables_storage_;
  /// Per (row, table): the probes−1 slice-bit indices with the smallest
  /// projection margin, in flip order. Empty when probes == 1.
  ArrayRef<std::uint16_t> probe_bits_;
  /// Set only on borrowed-mapped indexes (store::open_lsh_mapped): keeps
  /// the artifact mapping alive as long as this index.
  std::shared_ptr<const EngineStoragePin> pin_;
};

}  // namespace fv::sim
