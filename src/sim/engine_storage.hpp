// Engine storage abstraction: owned-heap versus borrowed-mapped state.
//
// Every precomputed array the similarity spine reads (normalized rows,
// filled rows, missing bitmasks, segment norms, LSH signature banks) used
// to be a std::vector baked into its owner, which meant the only way to
// open a persisted engine was to copy the whole artifact back into
// anonymous heap — n stayed RAM-bound even though the artifact store
// already held the exact bytes on disk. ArrayRef<T> makes the storage mode
// a property of each array instead of the class: an OWNED ArrayRef is a
// std::vector with the usual mutating surface, a BORROWED one is a
// read-only span into a long-lived mapping (store::open_engine_mapped).
// Read paths (.data() const / operator[] const / span()) are identical in
// both modes — the tile kernels, top-k, pruned and LSH paths compile
// unchanged and produce bit-identical results either way. Mutations are
// owned-only by contract and fail loudly on a borrowed array.
//
// EngineStoragePin is the lifetime + residency contract of borrowed mode:
// whoever lends the spans (the artifact reader in store/cached.cpp) hands
// the engine a pin that (a) keeps the mapping alive at least as long as
// the engine, (b) can drop clean file-backed pages the streaming tile
// driver is done with (release_pages -> madvise(MADV_DONTNEED)), and
// (c) re-validates the backing file before compute phases touch unfaulted
// pages (check_backing -> fv::CorruptArtifactError on a shrunk file,
// instead of a mid-compute SIGBUS). Owned engines carry no pin and every
// hook is a no-op.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace fv::sim {

/// Which storage mode an engine's (or LSH index's) state arrays use.
enum class EngineStorage {
  kOwnedHeap,       ///< std::vector-backed; built or codec-copied state
  kBorrowedMapped,  ///< read-only spans into a pinned artifact mapping
};

/// Lifetime and page-residency contract a borrowed-mapped engine holds on
/// its backing mapping. Implemented by the artifact layer; sim only calls
/// through it. All methods are const: the pin is logically immutable
/// shared state (page residency is not object state).
class EngineStoragePin {
 public:
  virtual ~EngineStoragePin() = default;

  /// Tells the backing that [data, data + bytes) will not be read again
  /// soon: clean file-backed pages inside the range may leave this
  /// process's resident set (they refault on demand from the page cache).
  /// Ranges not page-aligned are shrunk inward; a best-effort hint, never
  /// an error.
  virtual void release_pages(const void* data, std::size_t bytes) const = 0;

  /// Re-validates the backing file before a compute phase walks pages
  /// that may not be faulted in yet. Throws fv::CorruptArtifactError if
  /// the file shrank under the mapping (reading past the new EOF would be
  /// SIGBUS, not an exception — this check is what turns that into a
  /// typed error at a defined point).
  virtual void check_backing() const = 0;
};

/// One engine state array: an owned std::vector<T> or a borrowed read-only
/// span, behind the subset of the vector interface the sim kernels use.
/// Reads never branch on the mode beyond one pointer select; mutations
/// require owned mode (FV_REQUIRE) — borrowed state is immutable by
/// construction, the artifact's checksum sealed it.
template <typename T>
class ArrayRef {
 public:
  ArrayRef() = default;

  // ---- mode -------------------------------------------------------------

  bool borrowed() const noexcept { return view_ != nullptr; }

  /// Borrows `values` without copying. The caller owns the lifetime
  /// contract (an EngineStoragePin on the enclosing object); any owned
  /// contents are dropped.
  void borrow(std::span<const T> values) {
    owned_.clear();
    owned_.shrink_to_fit();
    view_ = values.data();
    view_size_ = values.size();
  }

  // ---- reads (both modes) ----------------------------------------------

  const T* data() const noexcept {
    return view_ != nullptr ? view_ : owned_.data();
  }
  std::size_t size() const noexcept {
    return view_ != nullptr ? view_size_ : owned_.size();
  }
  bool empty() const noexcept { return size() == 0; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size(); }
  std::span<const T> span() const noexcept { return {data(), size()}; }

  // ---- mutations (owned mode only) -------------------------------------

  T* data() {
    require_owned();
    return owned_.data();
  }
  T& operator[](std::size_t i) {
    require_owned();
    return owned_[i];
  }
  void assign(std::size_t n, const T& value) {
    require_owned();
    owned_.assign(n, value);
  }
  template <typename It>
  void assign(It first, It last) {
    require_owned();
    owned_.assign(first, last);
  }
  void resize(std::size_t n) {
    require_owned();
    owned_.resize(n);
  }
  void clear() {
    require_owned();
    owned_.clear();
  }
  void push_back(const T& value) {
    require_owned();
    owned_.push_back(value);
  }
  /// Takes ownership of `values` (the codec's heap-restore path).
  ArrayRef& operator=(std::vector<T>&& values) {
    view_ = nullptr;
    view_size_ = 0;
    owned_ = std::move(values);
    return *this;
  }

 private:
  void require_owned() const {
    FV_REQUIRE(view_ == nullptr,
               "mutation of a borrowed-mapped engine array — borrowed "
               "state is immutable (it IS the checksummed artifact)");
  }

  std::vector<T> owned_;
  const T* view_ = nullptr;
  std::size_t view_size_ = 0;
};

}  // namespace fv::sim
