// Heatmap rasterization: the zoom view (one cell per measurement) and the
// global view (whole dataset downsampled to a strip) of each ForestView pane.
#pragma once

#include <span>

#include "expr/expression_matrix.hpp"
#include "render/colormap.hpp"
#include "render/framebuffer.hpp"

namespace fv::render {

/// Renders rows `row_order` of `matrix` as a cell grid with top-left corner
/// (x, y); each cell is cell_w x cell_h pixels. Rows/columns that would fall
/// outside the framebuffer are clipped.
void render_heatmap(Framebuffer& fb, const expr::ExpressionMatrix& matrix,
                    std::span<const std::size_t> row_order,
                    const ExpressionColormap& colormap, long x, long y,
                    int cell_w, int cell_h);

/// Renders the whole matrix (rows in `row_order`) scaled into a width x
/// height region at (x, y) — the pane's global view. Each output pixel
/// averages the present expression values it covers; pixels covering only
/// missing cells use the missing color.
void render_global_view(Framebuffer& fb, const expr::ExpressionMatrix& matrix,
                        std::span<const std::size_t> row_order,
                        const ExpressionColormap& colormap, long x, long y,
                        std::size_t width, std::size_t height);

}  // namespace fv::render
