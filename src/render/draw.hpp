// 2-D drawing primitives over Framebuffer: rectangles, Bresenham lines,
// bitmap text. These are the only operations the pane renderers and the
// display-wall command stream need.
#pragma once

#include <string_view>

#include "render/framebuffer.hpp"

namespace fv::render {

/// Filled axis-aligned rectangle, clipped to the framebuffer.
void fill_rect(Framebuffer& fb, long x, long y, long width, long height,
               Rgb8 color);

/// 1-pixel rectangle outline, clipped.
void draw_rect(Framebuffer& fb, long x, long y, long width, long height,
               Rgb8 color);

/// Bresenham line from (x0,y0) to (x1,y1), clipped per pixel.
void draw_line(Framebuffer& fb, long x0, long y0, long x1, long y1,
               Rgb8 color);

/// Horizontal / vertical fast paths (dendrograms are all axis-aligned).
void draw_hline(Framebuffer& fb, long x0, long x1, long y, Rgb8 color);
void draw_vline(Framebuffer& fb, long x, long y0, long y1, Rgb8 color);

/// Renders text with the 5x7 font at integer scale >= 1; (x, y) is the
/// top-left corner. Returns the x coordinate just past the rendered text.
long draw_text(Framebuffer& fb, long x, long y, std::string_view text,
               Rgb8 color, int scale = 1);

}  // namespace fv::render
