#include "render/dendrogram.hpp"

#include <algorithm>
#include <vector>

#include "render/draw.hpp"
#include "util/error.hpp"

namespace fv::render {

namespace {

/// Per-node layout info accumulated bottom-up: the coordinate of the node's
/// junction along the leaf axis, and its depth coordinate along the other.
struct NodePosition {
  double along_leaves = 0.0;
  double depth = 0.0;  // 0 at leaves, 1 at the shallowest similarity
};

/// Computes positions for every node id. Leaf k of the display order sits at
/// slot k; an internal node sits midway between its children with depth
/// scaled by (1 - similarity) normalized to the deepest merge in the tree.
/// On monotone trees the deepest merge IS the root; on inverted
/// (median/centroid) trees an interior node can lie below the root, and
/// normalizing by the true minimum similarity renders the inversion
/// proportionally — the parent's junction lands to the leaf side of its
/// child's — instead of clamping both onto the far edge.
std::vector<NodePosition> layout_tree(const expr::HierTree& tree,
                                      double slot_size) {
  std::vector<NodePosition> positions(tree.node_count());
  const auto order = tree.leaf_order();
  for (std::size_t slot = 0; slot < order.size(); ++slot) {
    positions[order[slot]].along_leaves =
        (static_cast<double>(slot) + 0.5) * slot_size;
    positions[order[slot]].depth = 0.0;
  }
  if (tree.internal_count() == 0) return positions;
  double min_similarity = tree.node(tree.root()).similarity;
  for (std::size_t id = tree.leaf_count(); id < tree.node_count(); ++id) {
    min_similarity =
        std::min(min_similarity, tree.node(static_cast<int>(id)).similarity);
  }
  // Depth normalization: similarity 1 -> 0, deepest merge -> 1. Guard the
  // degenerate case of all merges at similarity 1.
  const double range = std::max(1e-9, 1.0 - min_similarity);
  for (std::size_t id = tree.leaf_count(); id < tree.node_count(); ++id) {
    const auto& node = tree.node(static_cast<int>(id));
    const auto& left = positions[static_cast<std::size_t>(node.left)];
    const auto& right = positions[static_cast<std::size_t>(node.right)];
    positions[id].along_leaves =
        (left.along_leaves + right.along_leaves) / 2.0;
    positions[id].depth =
        std::clamp((1.0 - node.similarity) / range, 0.0, 1.0);
  }
  return positions;
}

}  // namespace

void draw_gene_dendrogram(Canvas& canvas, const expr::HierTree& tree, long x,
                          long y, long width, long total_height, Rgb8 color) {
  FV_REQUIRE(width >= 2 && total_height >= 2, "dendrogram area too small");
  if (tree.node_count() == 0) return;
  const double slot =
      static_cast<double>(total_height) /
      static_cast<double>(std::max<std::size_t>(tree.leaf_count(), 1));
  const auto positions = layout_tree(tree, slot);
  // depth 0 (leaves) renders at the right edge; depth 1 at the left edge.
  const auto depth_to_x = [&](double depth) {
    return x + width - 1 - static_cast<long>(depth * (width - 1));
  };
  for (std::size_t id = tree.leaf_count(); id < tree.node_count(); ++id) {
    const auto& node = tree.node(static_cast<int>(id));
    const auto& me = positions[id];
    const long junction_x = depth_to_x(me.depth);
    for (const int child : {node.left, node.right}) {
      const auto& c = positions[static_cast<std::size_t>(child)];
      const long child_y = y + static_cast<long>(c.along_leaves);
      // Horizontal run from the child's depth to the junction depth...
      canvas.hline(depth_to_x(c.depth), junction_x, child_y, color);
    }
    // ...joined by a vertical connector at the junction depth.
    const long y_left =
        y + static_cast<long>(
                positions[static_cast<std::size_t>(node.left)].along_leaves);
    const long y_right =
        y + static_cast<long>(
                positions[static_cast<std::size_t>(node.right)].along_leaves);
    canvas.vline(junction_x, y_left, y_right, color);
  }
}

void draw_array_dendrogram(Canvas& canvas, const expr::HierTree& tree,
                           long x, long y, long total_width, long height,
                           Rgb8 color) {
  FV_REQUIRE(height >= 2 && total_width >= 2, "dendrogram area too small");
  if (tree.node_count() == 0) return;
  const double slot =
      static_cast<double>(total_width) /
      static_cast<double>(std::max<std::size_t>(tree.leaf_count(), 1));
  const auto positions = layout_tree(tree, slot);
  // depth 0 (leaves) at the bottom edge (nearest the heatmap below).
  const auto depth_to_y = [&](double depth) {
    return y + height - 1 - static_cast<long>(depth * (height - 1));
  };
  for (std::size_t id = tree.leaf_count(); id < tree.node_count(); ++id) {
    const auto& node = tree.node(static_cast<int>(id));
    const auto& me = positions[id];
    const long junction_y = depth_to_y(me.depth);
    for (const int child : {node.left, node.right}) {
      const auto& c = positions[static_cast<std::size_t>(child)];
      const long child_x = x + static_cast<long>(c.along_leaves);
      canvas.vline(child_x, depth_to_y(c.depth), junction_y, color);
    }
    const long x_left =
        x + static_cast<long>(
                positions[static_cast<std::size_t>(node.left)].along_leaves);
    const long x_right =
        x + static_cast<long>(
                positions[static_cast<std::size_t>(node.right)].along_leaves);
    canvas.hline(x_left, x_right, junction_y, color);
  }
}

void draw_gene_dendrogram(Framebuffer& fb, const expr::HierTree& tree, long x,
                          long y, long width, int row_height, Rgb8 color) {
  FV_REQUIRE(row_height >= 1, "row height must be positive");
  FramebufferCanvas canvas(fb);
  draw_gene_dendrogram(canvas, tree, x, y, width,
                       row_height * static_cast<long>(tree.leaf_count()),
                       color);
}

void draw_array_dendrogram(Framebuffer& fb, const expr::HierTree& tree,
                           long x, long y, long height, int col_width,
                           Rgb8 color) {
  FV_REQUIRE(col_width >= 1, "column width must be positive");
  FramebufferCanvas canvas(fb);
  draw_array_dendrogram(canvas, tree, x, y,
                        col_width * static_cast<long>(tree.leaf_count()),
                        height, color);
}

}  // namespace fv::render
