// Drawing-surface abstraction.
//
// ForestView's frame renderer draws onto a Canvas so the same code path
// serves two backends: FramebufferCanvas rasterizes immediately (desktop
// mode), while the wall module's RecordingCanvas captures the primitives as
// a command stream that is shipped to per-tile render nodes — the way the
// display wall distributes drawing across its cluster. Replaying a recorded
// stream through a FramebufferCanvas is pixel-identical to direct drawing,
// which the tests rely on.
#pragma once

#include <string_view>

#include "render/draw.hpp"
#include "render/framebuffer.hpp"

namespace fv::render {

class Canvas {
 public:
  virtual ~Canvas() = default;

  virtual void fill_rect(long x, long y, long width, long height,
                         Rgb8 color) = 0;
  virtual void draw_rect(long x, long y, long width, long height,
                         Rgb8 color) = 0;
  virtual void hline(long x0, long x1, long y, Rgb8 color) = 0;
  virtual void vline(long x, long y0, long y1, Rgb8 color) = 0;
  virtual void line(long x0, long y0, long x1, long y1, Rgb8 color) = 0;
  virtual void text(long x, long y, std::string_view content, Rgb8 color,
                    int scale) = 0;

  /// Convenience overload with scale 1.
  void text(long x, long y, std::string_view content, Rgb8 color) {
    text(x, y, content, color, 1);
  }
};

/// Immediate-mode canvas rasterizing into a framebuffer.
class FramebufferCanvas final : public Canvas {
 public:
  explicit FramebufferCanvas(Framebuffer& fb) : fb_(&fb) {}

  void fill_rect(long x, long y, long width, long height,
                 Rgb8 color) override {
    render::fill_rect(*fb_, x, y, width, height, color);
  }
  void draw_rect(long x, long y, long width, long height,
                 Rgb8 color) override {
    render::draw_rect(*fb_, x, y, width, height, color);
  }
  void hline(long x0, long x1, long y, Rgb8 color) override {
    render::draw_hline(*fb_, x0, x1, y, color);
  }
  void vline(long x, long y0, long y1, Rgb8 color) override {
    render::draw_vline(*fb_, x, y0, y1, color);
  }
  void line(long x0, long y0, long x1, long y1, Rgb8 color) override {
    render::draw_line(*fb_, x0, y0, x1, y1, color);
  }
  void text(long x, long y, std::string_view content, Rgb8 color,
            int scale) override {
    render::draw_text(*fb_, x, y, content, color, scale);
  }

 private:
  Framebuffer* fb_;
};

}  // namespace fv::render
