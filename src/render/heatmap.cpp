#include "render/heatmap.hpp"

#include <algorithm>

#include "render/draw.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace fv::render {

void render_heatmap(Framebuffer& fb, const expr::ExpressionMatrix& matrix,
                    std::span<const std::size_t> row_order,
                    const ExpressionColormap& colormap, long x, long y,
                    int cell_w, int cell_h) {
  FV_REQUIRE(cell_w >= 1 && cell_h >= 1, "heatmap cells need positive size");
  for (std::size_t r = 0; r < row_order.size(); ++r) {
    const std::size_t row = row_order[r];
    FV_REQUIRE(row < matrix.rows(), "row order references missing row");
    const auto values = matrix.row(row);
    const long cell_y = y + static_cast<long>(r) * cell_h;
    if (cell_y >= static_cast<long>(fb.height())) break;  // rest is below
    for (std::size_t c = 0; c < values.size(); ++c) {
      const long cell_x = x + static_cast<long>(c) * cell_w;
      if (cell_x >= static_cast<long>(fb.width())) break;
      fill_rect(fb, cell_x, cell_y, cell_w, cell_h, colormap.map(values[c]));
    }
  }
}

void render_global_view(Framebuffer& fb, const expr::ExpressionMatrix& matrix,
                        std::span<const std::size_t> row_order,
                        const ExpressionColormap& colormap, long x, long y,
                        std::size_t width, std::size_t height) {
  FV_REQUIRE(width > 0 && height > 0, "global view needs positive size");
  if (row_order.empty() || matrix.cols() == 0) {
    fill_rect(fb, x, y, static_cast<long>(width), static_cast<long>(height),
              colors::kMissing);
    return;
  }
  const std::size_t rows = row_order.size();
  const std::size_t cols = matrix.cols();
  // Box-filter downsampling: output pixel (px, py) covers source rows
  // [py*rows/height, (py+1)*rows/height) and analogous columns.
  for (std::size_t py = 0; py < height; ++py) {
    const std::size_t r0 = py * rows / height;
    const std::size_t r1 = std::max(r0 + 1, (py + 1) * rows / height);
    for (std::size_t px = 0; px < width; ++px) {
      const std::size_t c0 = px * cols / width;
      const std::size_t c1 = std::max(c0 + 1, (px + 1) * cols / width);
      double sum = 0.0;
      std::size_t present = 0;
      for (std::size_t r = r0; r < r1 && r < rows; ++r) {
        const auto values = matrix.row(row_order[r]);
        for (std::size_t c = c0; c < c1 && c < cols; ++c) {
          if (stats::is_missing(values[c])) continue;
          sum += values[c];
          ++present;
        }
      }
      const float average =
          present > 0 ? static_cast<float>(sum / static_cast<double>(present))
                      : stats::missing_value();
      fb.set_clipped(x + static_cast<long>(px), y + static_cast<long>(py),
                     colormap.map(average));
    }
  }
}

}  // namespace fv::render
