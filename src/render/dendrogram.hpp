// Dendrogram rasterization for the gene/array tree gutters of a pane.
#pragma once

#include "expr/tree.hpp"
#include "render/canvas.hpp"
#include "render/framebuffer.hpp"

namespace fv::render {

/// Draws `tree` into the rectangle (x, y, width, height) with leaves laid
/// out vertically: leaf i of the display order is centered at
/// y + (i + 0.5) * slot, where slot = total_height / leaf_count (fractional
/// slots are fine — whole-genome trees squeeze into a global-view strip).
/// Depth (merge similarity) maps linearly onto the horizontal extent —
/// similarity 1 at the leaf edge (right), the tree's deepest merge at the
/// far left (the root on monotone trees; possibly an interior node on the
/// inverted trees median/centroid linkage produces, whose inversions render
/// proportionally rather than clamped). All segments are axis-aligned,
/// TreeView style.
void draw_gene_dendrogram(Canvas& canvas, const expr::HierTree& tree, long x,
                          long y, long width, long total_height, Rgb8 color);

/// Horizontal variant for the array (column) tree: leaves laid out left to
/// right above the heatmap, depth mapping onto the vertical extent (leaves
/// at the bottom edge).
void draw_array_dendrogram(Canvas& canvas, const expr::HierTree& tree,
                           long x, long y, long total_width, long height,
                           Rgb8 color);

/// Framebuffer convenience wrappers with explicit per-leaf cell sizes
/// (row_height / col_width pixels per leaf).
void draw_gene_dendrogram(Framebuffer& fb, const expr::HierTree& tree, long x,
                          long y, long width, int row_height, Rgb8 color);
void draw_array_dendrogram(Framebuffer& fb, const expr::HierTree& tree,
                           long x, long y, long height, int col_width,
                           Rgb8 color);

}  // namespace fv::render
