// 24-bit RGB color and the small palette ForestView uses.
#pragma once

#include <cstdint>

namespace fv::render {

struct Rgb8 {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  friend bool operator==(const Rgb8&, const Rgb8&) = default;
};

/// Linear interpolation between two colors; t is clamped to [0, 1].
Rgb8 lerp(Rgb8 a, Rgb8 b, double t);

namespace colors {
inline constexpr Rgb8 kBlack{0, 0, 0};
inline constexpr Rgb8 kWhite{255, 255, 255};
inline constexpr Rgb8 kRed{255, 0, 0};
inline constexpr Rgb8 kGreen{0, 255, 0};
inline constexpr Rgb8 kBlue{0, 0, 255};
inline constexpr Rgb8 kYellow{255, 255, 0};
inline constexpr Rgb8 kGray{128, 128, 128};
inline constexpr Rgb8 kDarkGray{64, 64, 64};
inline constexpr Rgb8 kLightGray{200, 200, 200};
/// Missing-value cells in heatmaps (TreeView convention: neutral gray).
inline constexpr Rgb8 kMissing{96, 96, 96};
/// Selection highlight used in global views.
inline constexpr Rgb8 kHighlight{255, 255, 255};
}  // namespace colors

}  // namespace fv::render
