#include "render/colormap.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace fv::render {

ExpressionColormap::ExpressionColormap(ColorScheme scheme, double contrast)
    : scheme_(scheme), contrast_(contrast) {
  FV_REQUIRE(contrast > 0.0, "colormap contrast must be positive");
}

Rgb8 ExpressionColormap::map(float value) const {
  if (stats::is_missing(value)) return colors::kMissing;
  const double t = std::clamp(static_cast<double>(value) / contrast_, -1.0,
                              1.0);
  const double magnitude = std::abs(t);
  switch (scheme_) {
    case ColorScheme::kRedGreen:
      return t >= 0.0 ? lerp(colors::kBlack, colors::kRed, magnitude)
                      : lerp(colors::kBlack, colors::kGreen, magnitude);
    case ColorScheme::kBlueYellow:
      return t >= 0.0 ? lerp(colors::kBlack, colors::kYellow, magnitude)
                      : lerp(colors::kBlack, colors::kBlue, magnitude);
    case ColorScheme::kGrayscale: {
      // -contrast -> black, 0 -> mid gray, +contrast -> white.
      return lerp(colors::kBlack, colors::kWhite, (t + 1.0) / 2.0);
    }
  }
  FV_ASSERT(false, "unhandled color scheme");
  return colors::kBlack;
}

ExpressionColormap ExpressionColormap::with_contrast(double contrast) const {
  return ExpressionColormap(scheme_, contrast);
}

}  // namespace fv::render
