#include "render/draw.hpp"

#include <algorithm>
#include <cstdlib>

#include "render/font.hpp"
#include "util/error.hpp"

namespace fv::render {

void fill_rect(Framebuffer& fb, long x, long y, long width, long height,
               Rgb8 color) {
  if (width <= 0 || height <= 0) return;
  const long x0 = std::max(x, 0L);
  const long y0 = std::max(y, 0L);
  const long x1 = std::min(x + width, static_cast<long>(fb.width()));
  const long y1 = std::min(y + height, static_cast<long>(fb.height()));
  for (long py = y0; py < y1; ++py) {
    for (long px = x0; px < x1; ++px) {
      fb.set(static_cast<std::size_t>(px), static_cast<std::size_t>(py),
             color);
    }
  }
}

void draw_rect(Framebuffer& fb, long x, long y, long width, long height,
               Rgb8 color) {
  if (width <= 0 || height <= 0) return;
  draw_hline(fb, x, x + width - 1, y, color);
  draw_hline(fb, x, x + width - 1, y + height - 1, color);
  draw_vline(fb, x, y, y + height - 1, color);
  draw_vline(fb, x + width - 1, y, y + height - 1, color);
}

void draw_hline(Framebuffer& fb, long x0, long x1, long y, Rgb8 color) {
  if (x0 > x1) std::swap(x0, x1);
  for (long x = x0; x <= x1; ++x) fb.set_clipped(x, y, color);
}

void draw_vline(Framebuffer& fb, long x, long y0, long y1, Rgb8 color) {
  if (y0 > y1) std::swap(y0, y1);
  for (long y = y0; y <= y1; ++y) fb.set_clipped(x, y, color);
}

void draw_line(Framebuffer& fb, long x0, long y0, long x1, long y1,
               Rgb8 color) {
  const long dx = std::labs(x1 - x0);
  const long dy = -std::labs(y1 - y0);
  const long sx = x0 < x1 ? 1 : -1;
  const long sy = y0 < y1 ? 1 : -1;
  long err = dx + dy;
  for (;;) {
    fb.set_clipped(x0, y0, color);
    if (x0 == x1 && y0 == y1) break;
    const long e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

long draw_text(Framebuffer& fb, long x, long y, std::string_view text,
               Rgb8 color, int scale) {
  FV_REQUIRE(scale >= 1, "text scale must be at least 1");
  long cursor = x;
  for (char c : text) {
    const auto& rows = glyph_rows(c);
    for (int gy = 0; gy < kGlyphHeight; ++gy) {
      const std::uint8_t bits = rows[static_cast<std::size_t>(gy)];
      for (int gx = 0; gx < kGlyphWidth; ++gx) {
        if ((bits & (1u << (kGlyphWidth - 1 - gx))) == 0) continue;
        // Each font pixel becomes a scale x scale block.
        for (int by = 0; by < scale; ++by) {
          for (int bx = 0; bx < scale; ++bx) {
            fb.set_clipped(cursor + gx * scale + bx, y + gy * scale + by,
                           color);
          }
        }
      }
    }
    cursor += static_cast<long>(kGlyphAdvance) * scale;
  }
  return cursor;
}

}  // namespace fv::render
