// Expression-value color mapping.
//
// Microarray log-ratios render on the classic red/green scale (red =
// induced, green = repressed, black = unchanged); the paper notes that
// "expression level colors can be adjusted independently for datasets", so
// the map carries a per-dataset contrast (saturation) setting and scheme.
#pragma once

#include "render/color.hpp"

namespace fv::render {

enum class ColorScheme {
  kRedGreen,    ///< TreeView default: green(-) / black(0) / red(+)
  kBlueYellow,  ///< colorblind-safe alternative: blue(-) / black / yellow(+)
  kGrayscale,   ///< black(-) .. white(+), for print
};

class ExpressionColormap {
 public:
  /// `contrast` is the |value| that saturates the scale; must be > 0.
  explicit ExpressionColormap(ColorScheme scheme = ColorScheme::kRedGreen,
                              double contrast = 2.0);

  /// Color for an expression log-ratio; missing (NaN) maps to the neutral
  /// missing-value gray.
  Rgb8 map(float value) const;

  ColorScheme scheme() const noexcept { return scheme_; }
  double contrast() const noexcept { return contrast_; }

  /// Returns a copy with a different contrast (per-dataset adjustment).
  ExpressionColormap with_contrast(double contrast) const;

 private:
  ColorScheme scheme_;
  double contrast_;
};

}  // namespace fv::render
