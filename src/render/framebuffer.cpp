#include "render/framebuffer.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/table_io.hpp"

namespace fv::render {

Rgb8 lerp(Rgb8 a, Rgb8 b, double t) {
  t = std::clamp(t, 0.0, 1.0);
  const auto mix = [t](std::uint8_t from, std::uint8_t to) {
    return static_cast<std::uint8_t>(
        std::clamp(static_cast<double>(from) +
                       t * (static_cast<double>(to) - from),
                   0.0, 255.0));
  };
  return Rgb8{mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b)};
}

Framebuffer::Framebuffer(std::size_t width, std::size_t height, Rgb8 fill)
    : width_(width), height_(height), pixels_(width * height, fill) {}

Rgb8 Framebuffer::at(std::size_t x, std::size_t y) const {
  FV_REQUIRE(x < width_ && y < height_, "pixel out of range");
  return pixels_[y * width_ + x];
}

void Framebuffer::set(std::size_t x, std::size_t y, Rgb8 color) {
  FV_REQUIRE(x < width_ && y < height_, "pixel out of range");
  pixels_[y * width_ + x] = color;
}

void Framebuffer::set_clipped(long x, long y, Rgb8 color) {
  if (x < 0 || y < 0 || static_cast<std::size_t>(x) >= width_ ||
      static_cast<std::size_t>(y) >= height_) {
    return;
  }
  pixels_[static_cast<std::size_t>(y) * width_ + static_cast<std::size_t>(x)] =
      color;
}

void Framebuffer::clear(Rgb8 color) {
  std::fill(pixels_.begin(), pixels_.end(), color);
}

void Framebuffer::blit(const Framebuffer& source, long x, long y) {
  for (std::size_t sy = 0; sy < source.height(); ++sy) {
    const long dy = y + static_cast<long>(sy);
    if (dy < 0 || static_cast<std::size_t>(dy) >= height_) continue;
    for (std::size_t sx = 0; sx < source.width(); ++sx) {
      const long dx = x + static_cast<long>(sx);
      if (dx < 0 || static_cast<std::size_t>(dx) >= width_) continue;
      pixels_[static_cast<std::size_t>(dy) * width_ +
              static_cast<std::size_t>(dx)] = source.pixels_[sy * source.width_ + sx];
    }
  }
}

Framebuffer Framebuffer::crop(long x, long y, std::size_t width,
                              std::size_t height) const {
  Framebuffer out(width, height);
  for (std::size_t oy = 0; oy < height; ++oy) {
    const long sy = y + static_cast<long>(oy);
    if (sy < 0 || static_cast<std::size_t>(sy) >= height_) continue;
    for (std::size_t ox = 0; ox < width; ++ox) {
      const long sx = x + static_cast<long>(ox);
      if (sx < 0 || static_cast<std::size_t>(sx) >= width_) continue;
      out.pixels_[oy * width + ox] =
          pixels_[static_cast<std::size_t>(sy) * width_ +
                  static_cast<std::size_t>(sx)];
    }
  }
  return out;
}

std::size_t Framebuffer::diff_count(const Framebuffer& other) const {
  FV_REQUIRE(width_ == other.width_ && height_ == other.height_,
             "framebuffer sizes differ");
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < pixels_.size(); ++i) {
    if (pixels_[i] != other.pixels_[i]) ++diffs;
  }
  return diffs;
}

std::string format_ppm(const Framebuffer& fb) {
  std::string out = "P6\n" + std::to_string(fb.width()) + " " +
                    std::to_string(fb.height()) + "\n255\n";
  out.reserve(out.size() + fb.pixel_count() * 3);
  for (const Rgb8& pixel : fb.pixels()) {
    out.push_back(static_cast<char>(pixel.r));
    out.push_back(static_cast<char>(pixel.g));
    out.push_back(static_cast<char>(pixel.b));
  }
  return out;
}

void write_ppm(const Framebuffer& fb, const std::string& path) {
  write_text_file(path, format_ppm(fb));
}

Framebuffer parse_ppm(const std::string& content) {
  // Minimal P6 parser: magic, whitespace-separated dims and maxval, then raw
  // pixel bytes. Comment lines (#) are allowed in the header.
  std::size_t pos = 0;
  const auto next_token = [&]() -> std::string {
    while (pos < content.size()) {
      if (content[pos] == '#') {
        while (pos < content.size() && content[pos] != '\n') ++pos;
      } else if (std::isspace(static_cast<unsigned char>(content[pos]))) {
        ++pos;
      } else {
        break;
      }
    }
    const std::size_t start = pos;
    while (pos < content.size() &&
           !std::isspace(static_cast<unsigned char>(content[pos]))) {
      ++pos;
    }
    if (start == pos) throw ParseError("truncated PPM header");
    return content.substr(start, pos - start);
  };

  if (next_token() != "P6") throw ParseError("not a binary PPM (P6) file");
  const unsigned long width = std::stoul(next_token());
  const unsigned long height = std::stoul(next_token());
  const unsigned long maxval = std::stoul(next_token());
  if (maxval != 255) throw ParseError("only maxval 255 PPM is supported");
  ++pos;  // single whitespace after maxval
  const std::size_t needed = width * height * 3;
  if (content.size() - pos < needed) {
    throw ParseError("PPM pixel data truncated");
  }
  Framebuffer fb(width, height);
  for (std::size_t i = 0; i < width * height; ++i) {
    const Rgb8 pixel{static_cast<std::uint8_t>(content[pos + 3 * i]),
                     static_cast<std::uint8_t>(content[pos + 3 * i + 1]),
                     static_cast<std::uint8_t>(content[pos + 3 * i + 2])};
    fb.set(i % width, i / width, pixel);
  }
  return fb;
}

Framebuffer read_ppm(const std::string& path) {
  return parse_ppm(read_text_file(path));
}

}  // namespace fv::render
