// Tiny 5x7 bitmap font for gene labels, condition headers and legends.
//
// Glyphs cover digits, uppercase letters and the punctuation that appears in
// gene/condition identifiers. Lowercase input is rendered with the uppercase
// shapes (TreeView labels are case-insensitive anyway); characters without a
// glyph render as a hollow box so missing coverage is visible, not silent.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace fv::render {

inline constexpr int kGlyphWidth = 5;
inline constexpr int kGlyphHeight = 7;
/// Horizontal advance between characters (glyph + 1px spacing).
inline constexpr int kGlyphAdvance = kGlyphWidth + 1;

/// Rows of the glyph for `c`, one byte per row, low 5 bits used,
/// bit 4 = leftmost pixel. Unknown characters return the hollow box.
const std::array<std::uint8_t, 7>& glyph_rows(char c);

/// True when the character has a real glyph (not the fallback box).
bool has_glyph(char c);

/// Pixel width of a string at scale 1 (no trailing spacing).
int text_width(std::string_view text);

}  // namespace fv::render
