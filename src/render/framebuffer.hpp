// In-memory RGB framebuffer with PPM (P6) input/output.
//
// All ForestView rendering — desktop panes and display-wall tiles alike —
// rasterizes into Framebuffers; the wall compositor stitches per-tile
// buffers into one frame, and tests compare buffers byte-exactly against a
// single-pass reference rendering.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "render/color.hpp"

namespace fv::render {

class Framebuffer {
 public:
  Framebuffer() = default;
  Framebuffer(std::size_t width, std::size_t height,
              Rgb8 fill = colors::kBlack);

  std::size_t width() const noexcept { return width_; }
  std::size_t height() const noexcept { return height_; }
  std::size_t pixel_count() const noexcept { return pixels_.size(); }

  /// Unclipped accessors; out-of-range indices throw.
  Rgb8 at(std::size_t x, std::size_t y) const;
  void set(std::size_t x, std::size_t y, Rgb8 color);

  /// Clipped write: silently ignores out-of-bounds coordinates (callers
  /// rasterizing primitives near edges rely on this).
  void set_clipped(long x, long y, Rgb8 color);

  void clear(Rgb8 color);

  /// Copies `source` with its top-left corner at (x, y); parts that fall
  /// outside are clipped.
  void blit(const Framebuffer& source, long x, long y);

  /// Extracts a sub-rectangle (clipped to bounds).
  Framebuffer crop(long x, long y, std::size_t width,
                   std::size_t height) const;

  const std::vector<Rgb8>& pixels() const noexcept { return pixels_; }

  friend bool operator==(const Framebuffer&, const Framebuffer&) = default;

  /// Number of pixels differing from `other` (sizes must match).
  std::size_t diff_count(const Framebuffer& other) const;

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<Rgb8> pixels_;
};

/// Serializes as binary PPM (P6).
std::string format_ppm(const Framebuffer& fb);
void write_ppm(const Framebuffer& fb, const std::string& path);

/// Parses binary PPM (P6, maxval 255). Throws ParseError on malformed input.
Framebuffer parse_ppm(const std::string& content);
Framebuffer read_ppm(const std::string& path);

}  // namespace fv::render
