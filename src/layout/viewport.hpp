// Scroll/zoom state of a zoom view: which slice of the (ordered) gene list
// is visible and at what cell size. This is the state the synchronization
// layer replicates across panes so every dataset shows "exactly the same
// order and same scroll position" (paper §2).
#pragma once

#include <cstddef>

#include "util/error.hpp"

namespace fv::layout {

class Viewport {
 public:
  Viewport() = default;

  /// `visible_pixels` is the pixel height of the zoom view; `cell_size` the
  /// pixel height of one gene row (zoom level).
  Viewport(long visible_pixels, int cell_size) { resize(visible_pixels, cell_size); }

  void resize(long visible_pixels, int cell_size) {
    FV_REQUIRE(visible_pixels >= 0, "viewport extent must be non-negative");
    FV_REQUIRE(cell_size >= 1, "cell size must be at least 1 pixel");
    visible_pixels_ = visible_pixels;
    cell_size_ = cell_size;
  }

  int cell_size() const noexcept { return cell_size_; }
  long visible_pixels() const noexcept { return visible_pixels_; }

  /// First visible item index.
  std::size_t scroll_offset() const noexcept { return scroll_offset_; }

  /// Number of item rows that fit (the last may be partial; rounded up).
  std::size_t visible_count() const noexcept {
    return static_cast<std::size_t>(
        (visible_pixels_ + cell_size_ - 1) / cell_size_);
  }

  /// Scrolls so that `first` is the top visible item, clamped such that the
  /// view never scrolls past the end of an `item_count`-item list.
  void scroll_to(std::size_t first, std::size_t item_count) {
    const std::size_t fit = visible_count();
    const std::size_t max_first = item_count > fit ? item_count - fit : 0;
    scroll_offset_ = std::min(first, max_first);
  }

  /// Zoom in/out by whole pixels per cell, keeping the top item stable.
  void set_zoom(int cell_size) {
    FV_REQUIRE(cell_size >= 1, "cell size must be at least 1 pixel");
    cell_size_ = cell_size;
  }

  /// Pixel y (relative to the view top) of item `index`, or negative when
  /// the item is above the current scroll position.
  long item_y(std::size_t index) const noexcept {
    return (static_cast<long>(index) - static_cast<long>(scroll_offset_)) *
           cell_size_;
  }

  /// Item index under relative pixel y.
  std::size_t item_at(long y) const noexcept {
    if (y < 0) return scroll_offset_;
    return scroll_offset_ + static_cast<std::size_t>(y / cell_size_);
  }

 private:
  long visible_pixels_ = 0;
  int cell_size_ = 8;
  std::size_t scroll_offset_ = 0;
};

}  // namespace fv::layout
