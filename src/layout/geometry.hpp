// Integer rectangle math used by the pane layout engine and the wall tiler.
#pragma once

#include <algorithm>

namespace fv::layout {

struct Rect {
  long x = 0;
  long y = 0;
  long width = 0;
  long height = 0;

  bool empty() const noexcept { return width <= 0 || height <= 0; }
  long right() const noexcept { return x + width; }    ///< exclusive
  long bottom() const noexcept { return y + height; }  ///< exclusive

  bool contains(long px, long py) const noexcept {
    return px >= x && px < right() && py >= y && py < bottom();
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// Intersection; empty Rect (width/height 0) when disjoint.
inline Rect intersect(const Rect& a, const Rect& b) {
  const long x0 = std::max(a.x, b.x);
  const long y0 = std::max(a.y, b.y);
  const long x1 = std::min(a.right(), b.right());
  const long y1 = std::min(a.bottom(), b.bottom());
  if (x1 <= x0 || y1 <= y0) return Rect{};
  return Rect{x0, y0, x1 - x0, y1 - y0};
}

inline bool overlaps(const Rect& a, const Rect& b) {
  return !intersect(a, b).empty();
}

/// Rect shrunk by `margin` on every side (may become empty).
inline Rect inset(const Rect& r, long margin) {
  return Rect{r.x + margin, r.y + margin, r.width - 2 * margin,
              r.height - 2 * margin};
}

}  // namespace fv::layout
