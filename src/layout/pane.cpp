#include "layout/pane.hpp"

#include <vector>

#include "util/error.hpp"

namespace fv::layout {

PaneLayout layout_pane(const Rect& pane, const PaneConfig& config) {
  PaneLayout out;
  out.pane = pane;
  if (pane.empty()) return out;

  const long pad = config.padding;
  long top = pane.y;

  // Header across the whole pane.
  if (config.header_height > 0 && pane.height > config.header_height) {
    out.header = Rect{pane.x, top, pane.width, config.header_height};
    top += config.header_height + pad;
  }

  const long body_height = pane.bottom() - top;
  if (body_height <= 0) return out;

  long left = pane.x;
  // Global view strip on the far left, full body height.
  if (config.global_width > 0 &&
      pane.width > config.global_width + 2 * pad) {
    out.global_view = Rect{left, top, config.global_width, body_height};
    left += config.global_width + pad;
  }
  // Gene tree gutter.
  if (config.tree_gutter > 0 &&
      pane.right() - left > config.tree_gutter + 2 * pad) {
    out.gene_tree = Rect{left, top, config.tree_gutter, body_height};
    left += config.tree_gutter + pad;
  }
  // Annotation column on the far right.
  long right = pane.right();
  if (config.annotation_width > 0 &&
      right - left > config.annotation_width + 2 * pad) {
    right -= config.annotation_width;
    out.annotations = Rect{right, top, config.annotation_width, body_height};
    right -= pad;
  }
  // Remaining center: array tree strip above the zoom view.
  const long center_width = right - left;
  if (center_width <= 0) return out;
  long zoom_top = top;
  if (config.array_tree_height > 0 &&
      body_height > config.array_tree_height + 2 * pad) {
    out.array_tree = Rect{left, zoom_top, center_width,
                          config.array_tree_height};
    zoom_top += config.array_tree_height + pad;
  }
  const long zoom_height = pane.bottom() - zoom_top;
  if (zoom_height > 0) {
    out.zoom_view = Rect{left, zoom_top, center_width, zoom_height};
  }
  // The gene tree and annotation columns should align with the zoom view
  // vertically (they describe its rows), so shrink them to match.
  if (!out.gene_tree.empty() && !out.zoom_view.empty()) {
    out.gene_tree.y = out.zoom_view.y;
    out.gene_tree.height = out.zoom_view.height;
  }
  if (!out.annotations.empty() && !out.zoom_view.empty()) {
    out.annotations.y = out.zoom_view.y;
    out.annotations.height = out.zoom_view.height;
  }
  return out;
}

std::vector<Rect> split_vertical_panes(long width, long height,
                                       std::size_t count, long gap) {
  FV_REQUIRE(count >= 1, "need at least one pane");
  FV_REQUIRE(width > 0 && height > 0, "canvas must be non-empty");
  FV_REQUIRE(gap >= 0, "gap must be non-negative");
  std::vector<Rect> panes;
  panes.reserve(count);
  const long total_gap = gap * static_cast<long>(count - 1);
  const long usable = width - total_gap;
  FV_REQUIRE(usable >= static_cast<long>(count),
             "canvas too narrow for the requested pane count");
  long cursor = 0;
  for (std::size_t i = 0; i < count; ++i) {
    // Distribute remainder pixels one per leading pane.
    const long base = usable / static_cast<long>(count);
    const long extra =
        static_cast<long>(i) < usable % static_cast<long>(count) ? 1 : 0;
    const long pane_width = base + extra;
    panes.push_back(Rect{cursor, 0, pane_width, height});
    cursor += pane_width + gap;
  }
  return panes;
}

}  // namespace fv::layout
