// Geometry of one dataset pane (paper Figure 2): header, global view strip,
// gene-tree gutter, zoom view, annotation column, and array-tree strip.
//
//   +--------------------------------------------------+
//   | header (dataset name)                             |
//   +------+--------+----------------------+-----------+
//   |      |        | array tree           |           |
//   | glo  | gene   +----------------------+ annot     |
//   | bal  | tree   | zoom view (heatmap)  | labels    |
//   | view | gutter |                      |           |
//   +------+--------+----------------------+-----------+
#pragma once

#include <cstddef>
#include <vector>

#include "layout/geometry.hpp"

namespace fv::layout {

/// Fixed pixel budgets for the non-heatmap parts of a pane.
struct PaneConfig {
  long header_height = 12;
  long global_width = 48;      ///< global-view strip width
  long tree_gutter = 40;       ///< gene dendrogram width
  long array_tree_height = 24; ///< array dendrogram height
  long annotation_width = 90;  ///< gene label column width
  long padding = 2;
};

/// Computed sub-rectangles of a pane.
struct PaneLayout {
  Rect pane;        ///< the full pane
  Rect header;
  Rect global_view;
  Rect gene_tree;
  Rect array_tree;
  Rect zoom_view;
  Rect annotations;
};

/// Splits `pane` into its parts. Degrades gracefully on small panes: parts
/// that do not fit come back empty (callers skip drawing empty rects).
PaneLayout layout_pane(const Rect& pane, const PaneConfig& config);

/// Splits a canvas of `width` x `height` pixels into `count` equal vertical
/// panes separated by `gap` pixels (paper: "display is divided into multiple
/// vertical panes, each pane displaying one dataset").
std::vector<Rect> split_vertical_panes(long width, long height,
                                       std::size_t count, long gap);

}  // namespace fv::layout
