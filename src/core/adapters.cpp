#include "core/adapters.hpp"

#include <algorithm>

namespace fv::core {

SpellIntegration apply_spell_search(Session& session,
                                    const std::vector<std::string>& query,
                                    std::size_t top_n) {
  const spell::SpellSearch search(session.datasets());
  spell::SpellOptions options;
  options.exclude_query_from_ranking = false;
  SpellIntegration integration;
  integration.result = search.search(query, options);

  // Reorder panes by descending dataset weight.
  std::vector<std::size_t> order;
  order.reserve(integration.result.dataset_ranking.size());
  for (const auto& score : integration.result.dataset_ranking) {
    order.push_back(score.dataset_index);
  }
  session.order_panes(order);

  // Select query genes plus the top-n ranked genes.
  std::vector<std::string> names = query;
  for (std::size_t i = 0;
       i < std::min(top_n, integration.result.gene_ranking.size()); ++i) {
    names.push_back(integration.result.gene_ranking[i].gene);
  }
  const auto ids = session.merged().find_genes_by_name(names);
  integration.genes_selected = ids.size();
  session.select_from_analysis(ids, "SPELL");
  return integration;
}

go::EnrichmentResult run_golem_on_selection(
    const Session& session, const go::AnnotationTable& annotations,
    const go::EnrichmentOptions& options) {
  std::vector<std::string> genes;
  genes.reserve(session.selection().size());
  for (const GeneId gene : session.selection().ordered()) {
    genes.push_back(session.merged().catalog().name(gene));
  }
  return go::enrich(annotations, genes, options);
}

}  // namespace fv::core
