// The Merged Dataset Interface — the central box of paper Figure 1.
//
// "A dataset interface is needed to manage access to all datasets and
//  present a simple three dimensional array interface that allows analysis
//  routines to easily access the data."
//
// Axes of the logical 3-D array: (dataset, gene, condition), where the gene
// axis is the catalog's unified GeneId space. Cells are optional: a gene may
// not be measured in a dataset, and measured cells may still be missing.
// On top of the array live the Figure-1 analysis routines: find genes by
// name, search annotations, order datasets, export gene lists and merged
// datasets.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "core/gene_catalog.hpp"
#include "expr/gmt_io.hpp"

namespace fv::core {

class MergedDatasetInterface {
 public:
  /// Holds a reference; `datasets` must outlive the interface. Call
  /// rebuild() after mutating the vector.
  explicit MergedDatasetInterface(const std::vector<expr::Dataset>* datasets);

  /// Re-derives the catalog after datasets were added/removed.
  void rebuild();

  const GeneCatalog& catalog() const noexcept { return catalog_; }
  std::size_t dataset_count() const noexcept { return datasets_->size(); }
  const expr::Dataset& dataset(std::size_t index) const;

  /// Total number of measured cells across the compendium (the paper's
  /// "millions of pieces of information").
  std::size_t total_measurements() const;

  /// The 3-D array accessor. nullopt when the gene is not measured in the
  /// dataset; NaN inside the optional when measured but missing.
  std::optional<float> value(std::size_t dataset, GeneId gene,
                             std::size_t condition) const;

  /// Full expression profile of `gene` in `dataset` (nullopt if absent).
  std::optional<std::span<const float>> profile(std::size_t dataset,
                                                GeneId gene) const;

  /// Per-dataset row of a gene (the horizontal scan of Figure 2).
  std::vector<std::optional<std::size_t>> rows_for(GeneId gene) const;

  // --- Figure-1 analysis routines ----------------------------------------

  /// "Find Genes by name": resolves names (systematic or common) to ids;
  /// unknown names are skipped.
  std::vector<GeneId> find_genes_by_name(
      const std::vector<std::string>& names) const;

  /// Annotation substring search across every dataset's gene annotations.
  std::vector<GeneId> search_annotation(std::string_view query) const;

  /// "Order Datasets": ranks datasets by relevance to a gene set — how many
  /// of the genes they measure and how coherently those genes co-express
  /// (mean pairwise correlation, clamped at 0). Descending relevance.
  std::vector<std::size_t> order_datasets(std::span<const GeneId> genes) const;

  /// "Export Gene List" (GMT entry).
  expr::GeneSet export_gene_list(std::span<const GeneId> genes,
                                 const std::string& set_name,
                                 const std::string& description) const;

  /// "Export Merged Dataset": one row per gene, columns are the union of
  /// all datasets' conditions labeled "dataset::condition"; cells where a
  /// gene is unmeasured are missing.
  expr::Dataset export_merged(std::span<const GeneId> genes,
                              const std::string& name) const;

 private:
  const std::vector<expr::Dataset>* datasets_;
  GeneCatalog catalog_;
};

}  // namespace fv::core
