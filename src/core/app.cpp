#include "core/app.hpp"

#include "util/error.hpp"

namespace fv::core {

ForestViewApp::ForestViewApp(Session* session) : session_(session) {
  FV_REQUIRE(session != nullptr, "app needs a session");
}

render::Framebuffer ForestViewApp::render_desktop(
    const FrameConfig& config) const {
  render::Framebuffer fb(static_cast<std::size_t>(config.width),
                         static_cast<std::size_t>(config.height));
  render::FramebufferCanvas canvas(fb);
  render_frame(*session_, canvas, config);
  return fb;
}

wall::CommandList ForestViewApp::record_frame(
    const FrameConfig& config) const {
  wall::RecordingCanvas canvas;
  render_frame(*session_, canvas, config);
  return canvas.take();
}

WallRender ForestViewApp::render_wall(
    const wall::WallSpec& spec, wall::Distribution distribution,
    std::size_t node_count, const layout::PaneConfig* pane_config) const {
  FrameConfig config;
  config.width = static_cast<long>(spec.total_width());
  config.height = static_cast<long>(spec.total_height());
  if (pane_config != nullptr) config.pane = *pane_config;
  const wall::CommandList commands = record_frame(config);
  auto result = wall::render_wall_frame(commands, spec, distribution,
                                        node_count);
  return WallRender{std::move(result.frame), result.stats, commands.size()};
}

}  // namespace fv::core
