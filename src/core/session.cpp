#include "core/session.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fv::core {

Session::Session(std::vector<expr::Dataset> datasets)
    : datasets_(std::move(datasets)),
      merged_(&datasets_),
      sync_(&merged_) {
  FV_REQUIRE(!datasets_.empty(), "session needs at least one dataset");
  pane_order_.resize(datasets_.size());
  for (std::size_t i = 0; i < pane_order_.size(); ++i) pane_order_[i] = i;
  prefs_.resize(datasets_.size());
}

Session::Session(std::shared_ptr<const std::vector<expr::Dataset>> shared)
    : shared_(std::move(shared)),
      merged_(shared_.get()),
      sync_(&merged_) {
  FV_REQUIRE(shared_ != nullptr && !shared_->empty(),
             "shared session needs a non-empty dataset vector");
  pane_order_.resize(shared_->size());
  for (std::size_t i = 0; i < pane_order_.size(); ++i) pane_order_[i] = i;
  prefs_.resize(shared_->size());
}

const expr::Dataset& Session::dataset(std::size_t index) const {
  FV_REQUIRE(index < data().size(), "dataset index out of range");
  return data()[index];
}

DisplayPrefs& Session::prefs(std::size_t dataset) {
  FV_REQUIRE(dataset < prefs_.size(), "dataset index out of range");
  return prefs_[dataset];
}

const DisplayPrefs& Session::prefs(std::size_t dataset) const {
  FV_REQUIRE(dataset < prefs_.size(), "dataset index out of range");
  return prefs_[dataset];
}

void Session::set_prefs_all(const DisplayPrefs& prefs) {
  for (DisplayPrefs& p : prefs_) p = prefs;
  log("set_prefs_all");
}

void Session::select_region(std::size_t dataset, std::size_t first,
                            std::size_t count) {
  FV_REQUIRE(dataset < data().size(), "dataset index out of range");
  const auto order = data()[dataset].display_order();
  FV_REQUIRE(first < order.size(), "selection start beyond dataset");
  const std::size_t end = std::min(first + count, order.size());
  std::vector<GeneId> genes;
  genes.reserve(end - first);
  for (std::size_t i = first; i < end; ++i) {
    genes.push_back(merged_.catalog().id_of_row(dataset, order[i]));
  }
  selection_.set(std::move(genes));
  sync_.scroll_to(0);
  log("select_region dataset=" + data()[dataset].name() + " first=" +
      std::to_string(first) + " count=" + std::to_string(end - first));
}

std::size_t Session::select_by_names(const std::vector<std::string>& names) {
  auto genes = merged_.find_genes_by_name(names);
  const std::size_t found = genes.size();
  selection_.set(std::move(genes));
  sync_.scroll_to(0);
  log("select_by_names requested=" + std::to_string(names.size()) +
      " found=" + std::to_string(found));
  return found;
}

std::size_t Session::select_by_annotation(std::string_view query) {
  auto genes = merged_.search_annotation(query);
  const std::size_t found = genes.size();
  selection_.set(std::move(genes));
  sync_.scroll_to(0);
  log("select_by_annotation query='" + std::string(query) + "' found=" +
      std::to_string(found));
  return found;
}

void Session::select_from_analysis(std::vector<GeneId> genes,
                                   std::string_view analysis_name) {
  selection_.set(std::move(genes));
  sync_.scroll_to(0);
  log("select_from_analysis source=" + std::string(analysis_name) +
      " genes=" + std::to_string(selection_.size()));
}

void Session::clear_selection() {
  selection_.clear();
  log("clear_selection");
}

void Session::toggle_sync() {
  sync_.set_synchronized(!sync_.synchronized());
  log(sync_.synchronized() ? "sync_on" : "sync_off");
}

void Session::scroll_to(std::size_t first) {
  sync_.scroll_to(first);
  log("scroll_to " + std::to_string(first));
}

void Session::order_panes(const std::vector<std::size_t>& order) {
  FV_REQUIRE(order.size() == data().size(),
             "pane order must cover every dataset exactly once");
  std::vector<bool> seen(data().size(), false);
  for (const std::size_t d : order) {
    FV_REQUIRE(d < data().size() && !seen[d],
               "pane order must be a permutation");
    seen[d] = true;
  }
  pane_order_ = order;
  log("order_panes");
}

expr::GeneSet Session::export_selection(const std::string& set_name) const {
  return merged_.export_gene_list(selection_.ordered(), set_name,
                                  "exported from ForestView");
}

expr::Dataset Session::export_merged_selection(
    const std::string& name) const {
  return merged_.export_merged(selection_.ordered(), name);
}

void Session::add_dataset(expr::Dataset dataset) {
  FV_REQUIRE(shared_ == nullptr,
             "a shared-compendium session is read-only; add_dataset is "
             "only valid on a session that owns its datasets");
  // Preserve the selection by name across the catalog rebuild.
  std::vector<std::string> selected_names;
  selected_names.reserve(selection_.size());
  for (const GeneId gene : selection_.ordered()) {
    selected_names.push_back(merged_.catalog().name(gene));
  }
  const std::string name = dataset.name();
  datasets_.push_back(std::move(dataset));
  merged_.rebuild();
  pane_order_.push_back(datasets_.size() - 1);
  prefs_.push_back(prefs_.empty() ? DisplayPrefs{} : prefs_.front());
  selection_.set(merged_.find_genes_by_name(selected_names));
  log("add_dataset " + name);
}

void Session::log(std::string entry) { log_.push_back(std::move(entry)); }

}  // namespace fv::core
