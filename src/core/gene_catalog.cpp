#include "core/gene_catalog.hpp"

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace fv::core {

GeneCatalog::GeneCatalog(const std::vector<expr::Dataset>& datasets) {
  // Pass 1: assign ids in first-seen order; systematic name is canonical,
  // common names are aliases (first binding wins on conflicts).
  for (const expr::Dataset& dataset : datasets) {
    for (std::size_t row = 0; row < dataset.gene_count(); ++row) {
      const expr::GeneInfo& gene = dataset.gene(row);
      const std::string key = str::to_lower(gene.systematic_name);
      FV_REQUIRE(!key.empty(), "dataset contains a gene without a name");
      if (id_by_alias_.find(key) == id_by_alias_.end()) {
        const auto id = static_cast<GeneId>(names_.size());
        id_by_alias_.emplace(key, id);
        names_.push_back(gene.systematic_name);
        if (!gene.common_name.empty()) {
          id_by_alias_.emplace(str::to_lower(gene.common_name), id);
        }
      } else if (!gene.common_name.empty()) {
        id_by_alias_.emplace(str::to_lower(gene.common_name),
                             id_by_alias_.at(key));
      }
    }
  }
  // Pass 2: per-dataset row maps.
  rows_by_gene_.assign(datasets.size(),
                       std::vector<std::uint32_t>(names_.size(), 0));
  ids_by_row_.resize(datasets.size());
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    ids_by_row_[d].resize(datasets[d].gene_count());
    for (std::size_t row = 0; row < datasets[d].gene_count(); ++row) {
      const GeneId id = id_by_alias_.at(
          str::to_lower(datasets[d].gene(row).systematic_name));
      ids_by_row_[d][row] = id;
      if (rows_by_gene_[d][id] == 0) {  // first row wins for duplicates
        rows_by_gene_[d][id] = static_cast<std::uint32_t>(row) + 1;
      }
    }
  }
}

const std::string& GeneCatalog::name(GeneId id) const {
  FV_REQUIRE(id < names_.size(), "gene id out of range");
  return names_[id];
}

std::optional<GeneId> GeneCatalog::find(std::string_view gene_name) const {
  const auto it = id_by_alias_.find(str::to_lower(str::trim(gene_name)));
  if (it == id_by_alias_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::size_t> GeneCatalog::row_in(std::size_t dataset,
                                               GeneId id) const {
  FV_REQUIRE(dataset < rows_by_gene_.size(), "dataset index out of range");
  FV_REQUIRE(id < names_.size(), "gene id out of range");
  const std::uint32_t stored = rows_by_gene_[dataset][id];
  if (stored == 0) return std::nullopt;
  return static_cast<std::size_t>(stored - 1);
}

GeneId GeneCatalog::id_of_row(std::size_t dataset, std::size_t row) const {
  FV_REQUIRE(dataset < ids_by_row_.size(), "dataset index out of range");
  FV_REQUIRE(row < ids_by_row_[dataset].size(), "row out of range");
  return ids_by_row_[dataset][row];
}

std::size_t GeneCatalog::datasets_measuring(GeneId id) const {
  FV_REQUIRE(id < names_.size(), "gene id out of range");
  std::size_t count = 0;
  for (std::size_t d = 0; d < rows_by_gene_.size(); ++d) {
    if (rows_by_gene_[d][id] != 0) ++count;
  }
  return count;
}

}  // namespace fv::core
