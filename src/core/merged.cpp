#include "core/merged.hpp"

#include <algorithm>
#include <span>
#include <unordered_set>
#include <vector>

#include "sim/similarity_engine.hpp"
#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace fv::core {

MergedDatasetInterface::MergedDatasetInterface(
    const std::vector<expr::Dataset>* datasets)
    : datasets_(datasets) {
  FV_REQUIRE(datasets != nullptr, "merged interface needs datasets");
  rebuild();
}

void MergedDatasetInterface::rebuild() {
  catalog_ = GeneCatalog(*datasets_);
}

const expr::Dataset& MergedDatasetInterface::dataset(
    std::size_t index) const {
  FV_REQUIRE(index < datasets_->size(), "dataset index out of range");
  return (*datasets_)[index];
}

std::size_t MergedDatasetInterface::total_measurements() const {
  std::size_t total = 0;
  for (const expr::Dataset& dataset : *datasets_) {
    total += dataset.values().size();
  }
  return total;
}

std::optional<float> MergedDatasetInterface::value(
    std::size_t dataset_index, GeneId gene, std::size_t condition) const {
  const auto row = catalog_.row_in(dataset_index, gene);
  if (!row.has_value()) return std::nullopt;
  const expr::Dataset& ds = dataset(dataset_index);
  FV_REQUIRE(condition < ds.condition_count(), "condition out of range");
  return ds.values().at(*row, condition);
}

std::optional<std::span<const float>> MergedDatasetInterface::profile(
    std::size_t dataset_index, GeneId gene) const {
  const auto row = catalog_.row_in(dataset_index, gene);
  if (!row.has_value()) return std::nullopt;
  return dataset(dataset_index).profile(*row);
}

std::vector<std::optional<std::size_t>> MergedDatasetInterface::rows_for(
    GeneId gene) const {
  std::vector<std::optional<std::size_t>> rows;
  rows.reserve(dataset_count());
  for (std::size_t d = 0; d < dataset_count(); ++d) {
    rows.push_back(catalog_.row_in(d, gene));
  }
  return rows;
}

std::vector<GeneId> MergedDatasetInterface::find_genes_by_name(
    const std::vector<std::string>& names) const {
  std::vector<GeneId> ids;
  std::unordered_set<GeneId> seen;
  for (const std::string& name : names) {
    const auto id = catalog_.find(name);
    if (id.has_value() && seen.insert(*id).second) ids.push_back(*id);
  }
  return ids;
}

std::vector<GeneId> MergedDatasetInterface::search_annotation(
    std::string_view query) const {
  std::vector<GeneId> ids;
  std::unordered_set<GeneId> seen;
  for (std::size_t d = 0; d < dataset_count(); ++d) {
    for (const std::size_t row : dataset(d).search_annotation(query)) {
      const GeneId id = catalog_.id_of_row(d, row);
      if (seen.insert(id).second) ids.push_back(id);
    }
  }
  return ids;
}

std::vector<std::size_t> MergedDatasetInterface::order_datasets(
    std::span<const GeneId> genes) const {
  struct Relevance {
    std::size_t dataset = 0;
    std::size_t measured = 0;
    double coherence = 0.0;
  };
  std::vector<Relevance> relevance(dataset_count());
  for (std::size_t d = 0; d < dataset_count(); ++d) {
    relevance[d].dataset = d;
    std::vector<std::size_t> rows;
    for (const GeneId gene : genes) {
      if (const auto row = catalog_.row_in(d, gene); row.has_value()) {
        rows.push_back(*row);
      }
    }
    relevance[d].measured = rows.size();
    if (rows.size() >= 2) {
      // Same streamed coherence as SPELL's dataset weighting: the shared
      // sub-engine helper runs the measured query rows through blocked
      // kernels instead of scalar per-pair Pearson — no pair matrix
      // materialized.
      std::vector<std::span<const float>> profiles;
      profiles.reserve(rows.size());
      for (const std::size_t row : rows) {
        profiles.push_back(dataset(d).profile(row));
      }
      relevance[d].coherence =
          sim::profile_coherence(profiles, dataset(d).condition_count());
    }
  }
  std::stable_sort(relevance.begin(), relevance.end(),
                   [](const Relevance& a, const Relevance& b) {
                     if (a.coherence != b.coherence) {
                       return a.coherence > b.coherence;
                     }
                     return a.measured > b.measured;
                   });
  std::vector<std::size_t> order;
  order.reserve(relevance.size());
  for (const Relevance& r : relevance) order.push_back(r.dataset);
  return order;
}

expr::GeneSet MergedDatasetInterface::export_gene_list(
    std::span<const GeneId> genes, const std::string& set_name,
    const std::string& description) const {
  expr::GeneSet set;
  set.name = set_name;
  set.description = description;
  for (const GeneId gene : genes) set.genes.push_back(catalog_.name(gene));
  return set;
}

expr::Dataset MergedDatasetInterface::export_merged(
    std::span<const GeneId> genes, const std::string& name) const {
  // Column layout: all conditions of dataset 0, then dataset 1, ...
  std::vector<std::string> conditions;
  std::vector<std::size_t> offsets;
  for (std::size_t d = 0; d < dataset_count(); ++d) {
    offsets.push_back(conditions.size());
    for (const std::string& condition : dataset(d).conditions()) {
      conditions.push_back(dataset(d).name() + "::" + condition);
    }
  }
  expr::ExpressionMatrix matrix(genes.size(), conditions.size());
  std::vector<expr::GeneInfo> gene_infos;
  gene_infos.reserve(genes.size());
  for (std::size_t g = 0; g < genes.size(); ++g) {
    // Use the richest available GeneInfo (first dataset measuring it).
    expr::GeneInfo info;
    info.systematic_name = catalog_.name(genes[g]);
    for (std::size_t d = 0; d < dataset_count(); ++d) {
      const auto row = catalog_.row_in(d, genes[g]);
      if (!row.has_value()) continue;
      if (info.common_name.empty()) {
        info = dataset(d).gene(*row);
      }
      const auto profile_span = dataset(d).profile(*row);
      for (std::size_t c = 0; c < profile_span.size(); ++c) {
        matrix.set(g, offsets[d] + c, profile_span[c]);
      }
    }
    gene_infos.push_back(std::move(info));
  }
  return expr::Dataset(name, std::move(gene_infos), std::move(conditions),
                       std::move(matrix));
}

}  // namespace fv::core
