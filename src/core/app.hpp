// ForestViewApp: couples a Session with the rendering backends — a desktop
// framebuffer or the simulated display wall ("scalable for use in both a
// desktop/laptop setting and … very large-format display devices", §2).
#pragma once

#include "core/frame.hpp"
#include "wall/wall_display.hpp"

namespace fv::core {

struct WallRender {
  render::Framebuffer frame;
  wall::FrameStats stats;
  std::size_t commands = 0;  ///< size of the recorded stream
};

class ForestViewApp {
 public:
  /// Holds a reference; the session must outlive the app.
  explicit ForestViewApp(Session* session);

  /// Renders directly into a framebuffer (desktop path).
  render::Framebuffer render_desktop(const FrameConfig& config) const;

  /// Records the frame as a command stream (what the wall master ships).
  wall::CommandList record_frame(const FrameConfig& config) const;

  /// Renders on the simulated wall: the frame is laid out at the wall's
  /// full resolution, recorded, distributed over mpx, rasterized per tile
  /// and composited.
  WallRender render_wall(const wall::WallSpec& spec,
                         wall::Distribution distribution =
                             wall::Distribution::kBroadcast,
                         std::size_t node_count = 0,
                         const layout::PaneConfig* pane_config =
                             nullptr) const;

 private:
  Session* session_;
};

}  // namespace fv::core
