// ForestView frame renderer: turns a Session into the multi-pane display of
// paper Figure 2 — one vertical pane per dataset, each with a header, a
// whole-genome global view with selection highlights, the gene dendrogram,
// the synchronized (or per-dataset-order) zoom view of the selection, and
// gene labels.
//
// The renderer draws through the Canvas interface, so the identical code
// path produces a desktop framebuffer (FramebufferCanvas) or a wall command
// stream (RecordingCanvas).
#pragma once

#include "core/session.hpp"
#include "layout/pane.hpp"
#include "render/canvas.hpp"

namespace fv::core {

struct FrameConfig {
  long width = 1600;
  long height = 1200;
  long pane_gap = 4;
  layout::PaneConfig pane;  ///< sub-rectangle budgets within each pane
};

struct FrameInfo {
  std::size_t panes_rendered = 0;
  std::size_t zoom_rows_rendered = 0;  ///< summed over panes
  std::size_t cells_rendered = 0;      ///< zoom-view heatmap cells
};

/// Renders one full frame of the session onto the canvas.
FrameInfo render_frame(const Session& session, render::Canvas& canvas,
                       const FrameConfig& config);

}  // namespace fv::core
