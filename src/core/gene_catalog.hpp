// Gene identity unification across datasets.
//
// Every dataset measures its own subset of the genome in its own row order
// and may use common names or systematic names. The catalog assigns one
// GeneId per distinct gene across the whole compendium and maps it to the
// row (if any) holding it in each dataset — the lookup the synchronization
// layer uses to show "the same gene" across panes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "expr/dataset.hpp"

namespace fv::core {

using GeneId = std::uint32_t;

class GeneCatalog {
 public:
  GeneCatalog() = default;
  explicit GeneCatalog(const std::vector<expr::Dataset>& datasets);

  /// Number of distinct genes in the union.
  std::size_t gene_count() const noexcept { return names_.size(); }
  std::size_t dataset_count() const noexcept { return rows_by_gene_.size(); }

  /// Canonical (systematic) name of a gene.
  const std::string& name(GeneId id) const;

  /// Lookup by systematic or common name, case-insensitive.
  std::optional<GeneId> find(std::string_view gene_name) const;

  /// Row of the gene in `dataset`, or nullopt when not measured there.
  std::optional<std::size_t> row_in(std::size_t dataset, GeneId id) const;

  /// GeneId of a dataset row.
  GeneId id_of_row(std::size_t dataset, std::size_t row) const;

  /// In how many datasets the gene is measured.
  std::size_t datasets_measuring(GeneId id) const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, GeneId> id_by_alias_;  // lower-cased
  /// [dataset][gene] -> row + 1, 0 = absent (compact, cache friendly).
  std::vector<std::vector<std::uint32_t>> rows_by_gene_;
  /// [dataset][row] -> GeneId.
  std::vector<std::vector<GeneId>> ids_by_row_;
};

}  // namespace fv::core
