// ForestView session: datasets + merged interface + selection + sync +
// per-dataset display preferences + the headless user-interface operations
// of paper Figure 1's "User Interface" box.
//
// Every operation appends to an event log; the integrated-workflow bench
// compares ForestView's operation counts against the baseline workflow the
// paper describes ("launch over a dozen independent instances and
// continually cut and paste selections between instances").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/merged.hpp"
#include "core/sync.hpp"
#include "render/colormap.hpp"

namespace fv::core {

/// Per-dataset display settings (paper: "the scaling of the global and zoom
/// view, the annotation information and the expression level colors can be
/// adjusted independently for datasets or applied to all datasets").
struct DisplayPrefs {
  render::ColorScheme scheme = render::ColorScheme::kRedGreen;
  double contrast = 2.0;
  bool show_annotations = true;
  int zoom_cell_height = 8;  ///< pixel height of a zoom-view row
};

class Session {
 public:
  explicit Session(std::vector<expr::Dataset> datasets);

  /// Shared-compendium session: the serving layer runs N concurrent
  /// sessions over ONE immutable dataset vector (typically reconstructed
  /// from a mapped engine artifact) instead of copying it per session.
  /// Per-session state (selection, sync, prefs, pane order, event log) is
  /// private as always; the dataset payload is aliased. add_dataset() is
  /// rejected on a shared session — the compendium is read-only by
  /// construction, which is also what makes concurrent read-only access
  /// from many sessions race-free.
  explicit Session(std::shared_ptr<const std::vector<expr::Dataset>> shared);

  // Not copyable/movable: the merged interface holds a stable pointer to
  // the dataset vector.
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Whether this session aliases a shared read-only compendium.
  bool shares_datasets() const noexcept { return shared_ != nullptr; }

  std::size_t dataset_count() const noexcept { return data().size(); }
  const expr::Dataset& dataset(std::size_t index) const;
  /// Whole dataset list, as consumed by analysis plug-ins (SPELL).
  const std::vector<expr::Dataset>& datasets() const noexcept {
    return data();
  }
  const MergedDatasetInterface& merged() const noexcept { return merged_; }
  const SelectionModel& selection() const noexcept { return selection_; }
  const SyncController& sync() const noexcept { return sync_; }

  /// Display order of panes (indices into datasets).
  const std::vector<std::size_t>& pane_order() const noexcept {
    return pane_order_;
  }

  DisplayPrefs& prefs(std::size_t dataset);
  const DisplayPrefs& prefs(std::size_t dataset) const;
  /// Applies one preference set to every dataset.
  void set_prefs_all(const DisplayPrefs& prefs);

  // --- user operations (each is logged) -----------------------------------

  /// Mouse selection in one pane's global view: genes at display-order
  /// positions [first, first+count) of that dataset. The other panes
  /// "search for occurrences of those genes" automatically via the catalog.
  void select_region(std::size_t dataset, std::size_t first,
                     std::size_t count);

  /// Selection by explicit name list; returns #genes found.
  std::size_t select_by_names(const std::vector<std::string>& names);

  /// Selection by annotation substring search; returns #genes found.
  std::size_t select_by_annotation(std::string_view query);

  /// Selection supplied by an analysis program (paper: "the most adaptive
  /// method is to provide selection information from an analysis
  /// application").
  void select_from_analysis(std::vector<GeneId> genes,
                            std::string_view analysis_name);

  void clear_selection();
  void toggle_sync();
  void scroll_to(std::size_t first);

  /// Reorders panes (e.g. by SPELL dataset relevance).
  void order_panes(const std::vector<std::size_t>& order);

  /// "Export Gene List".
  expr::GeneSet export_selection(const std::string& set_name) const;

  /// "Export Merged Dataset" restricted to the selection.
  expr::Dataset export_merged_selection(const std::string& name) const;

  /// Loads a new dataset into the session (paper: the exported subset "can
  /// also be loaded into the ForestView display as a dataset"). The
  /// selection is preserved by gene name across the catalog rebuild.
  /// Rejected (fv::InvalidArgument) on a shared-compendium session.
  void add_dataset(expr::Dataset dataset);

  // --- event log -----------------------------------------------------------

  const std::vector<std::string>& event_log() const noexcept { return log_; }
  std::size_t operation_count() const noexcept { return log_.size(); }

 private:
  void log(std::string entry);

  /// The dataset vector this session reads: its own copy, or the shared
  /// immutable compendium.
  const std::vector<expr::Dataset>& data() const noexcept {
    return shared_ != nullptr ? *shared_ : datasets_;
  }

  std::vector<expr::Dataset> datasets_;  ///< empty in shared mode
  std::shared_ptr<const std::vector<expr::Dataset>> shared_;
  MergedDatasetInterface merged_;
  SelectionModel selection_;
  SyncController sync_;
  std::vector<std::size_t> pane_order_;
  std::vector<DisplayPrefs> prefs_;
  std::vector<std::string> log_;
};

}  // namespace fv::core
