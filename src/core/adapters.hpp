// Integrations of the external analysis tools into ForestView (paper §3):
// SPELL searches reorder the panes by dataset relevance and select/highlight
// the top result genes; GOLEM runs functional enrichment on the current
// selection without the export/re-import round trip the paper complains
// about.
#pragma once

#include "core/session.hpp"
#include "go/golem.hpp"
#include "spell/spell.hpp"

namespace fv::core {

struct SpellIntegration {
  spell::SpellResult result;
  std::size_t genes_selected = 0;  ///< query + top-n placed in the selection
};

/// Runs SPELL over the session's datasets, reorders the panes by descending
/// dataset weight ("datasets returned can be displayed in decreasing order
/// of relevance to the query") and selects the query genes plus the top-n
/// ranked genes ("the top n genes can be selected and highlighted within
/// each dataset").
SpellIntegration apply_spell_search(Session& session,
                                    const std::vector<std::string>& query,
                                    std::size_t top_n = 20);

/// Runs GOLEM enrichment on the session's current selection. `annotations`
/// must be true-path propagated.
go::EnrichmentResult run_golem_on_selection(
    const Session& session, const go::AnnotationTable& annotations,
    const go::EnrichmentOptions& options = {});

}  // namespace fv::core
