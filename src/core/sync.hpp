// Selection model and visualization synchronization (paper §2).
//
// "When a set of genes is selected, the zoom view for each dataset shows the
//  gene expression data in exactly the same order and same scroll position…
//  If desired it is possible to turn off synchronous viewing in order to see
//  the selected subsets in the underlying gene order of each dataset."
#pragma once

#include <optional>
#include <unordered_set>
#include <vector>

#include "core/merged.hpp"

namespace fv::core {

/// Ordered set of selected genes (order = selection order, which becomes
/// the shared display order in synchronized mode).
class SelectionModel {
 public:
  void set(std::vector<GeneId> genes);
  void add(GeneId gene);
  void clear();

  bool contains(GeneId gene) const { return set_.count(gene) > 0; }
  const std::vector<GeneId>& ordered() const noexcept { return ordered_; }
  std::size_t size() const noexcept { return ordered_.size(); }
  bool empty() const noexcept { return ordered_.empty(); }

 private:
  std::vector<GeneId> ordered_;
  std::unordered_set<GeneId> set_;
};

/// One row of a pane's zoom view: the gene, and its row in that dataset
/// (nullopt = gene not measured there; synchronized mode renders a gap so
/// rows stay aligned across panes).
struct ZoomRow {
  GeneId gene = 0;
  std::optional<std::size_t> row;
};

class SyncController {
 public:
  explicit SyncController(const MergedDatasetInterface* merged);

  bool synchronized() const noexcept { return synchronized_; }
  void set_synchronized(bool on) noexcept { synchronized_ = on; }

  /// Shared scroll position (first visible zoom row) in synchronized mode.
  std::size_t scroll() const noexcept { return scroll_; }
  void scroll_to(std::size_t first) noexcept { scroll_ = first; }

  /// Zoom-view rows for one dataset pane under the current mode:
  ///  - synchronized: selection order, one entry per selected gene (gaps for
  ///    unmeasured genes) — identical length and gene sequence in every pane;
  ///  - unsynchronized: the dataset's own display order filtered to the
  ///    selection, measured genes only (no gaps).
  std::vector<ZoomRow> zoom_rows(std::size_t dataset,
                                 const SelectionModel& selection) const;

 private:
  const MergedDatasetInterface* merged_;
  bool synchronized_ = true;
  std::size_t scroll_ = 0;
};

}  // namespace fv::core
