#include "core/frame.hpp"

#include <algorithm>
#include <cmath>

#include "render/dendrogram.hpp"
#include "render/font.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace fv::core {

namespace {

using render::Canvas;
using render::Rgb8;

/// Background shade distinguishing pane chrome from data.
constexpr Rgb8 kPaneBackground{24, 24, 24};
constexpr Rgb8 kHeaderText{230, 230, 230};
constexpr Rgb8 kTreeColor{170, 170, 170};
constexpr Rgb8 kGapRow{40, 40, 48};  ///< "gene not measured here"

/// Draws the whole-genome global view into `rect` through the canvas,
/// batching same-color horizontal runs into single fill_rects so the wall
/// command stream stays compact.
void draw_global_view(Canvas& canvas, const expr::Dataset& dataset,
                      const std::vector<std::size_t>& order,
                      const render::ExpressionColormap& colormap,
                      const layout::Rect& rect) {
  const std::size_t rows = order.size();
  const std::size_t cols = dataset.condition_count();
  if (rows == 0 || cols == 0) {
    canvas.fill_rect(rect.x, rect.y, rect.width, rect.height,
                     render::colors::kMissing);
    return;
  }
  const auto width = static_cast<std::size_t>(rect.width);
  const auto height = static_cast<std::size_t>(rect.height);
  for (std::size_t py = 0; py < height; ++py) {
    const std::size_t r0 = py * rows / height;
    const std::size_t r1 = std::max(r0 + 1, (py + 1) * rows / height);
    // Run-length batching along the row.
    long run_start = 0;
    Rgb8 run_color{};
    bool run_open = false;
    for (std::size_t px = 0; px < width; ++px) {
      const std::size_t c0 = px * cols / width;
      const std::size_t c1 = std::max(c0 + 1, (px + 1) * cols / width);
      double sum = 0.0;
      std::size_t present = 0;
      for (std::size_t r = r0; r < r1 && r < rows; ++r) {
        const auto values = dataset.values().row(order[r]);
        for (std::size_t c = c0; c < c1 && c < cols; ++c) {
          if (stats::is_missing(values[c])) continue;
          sum += values[c];
          ++present;
        }
      }
      const float average =
          present > 0 ? static_cast<float>(sum / static_cast<double>(present))
                      : stats::missing_value();
      const Rgb8 color = colormap.map(average);
      if (!run_open) {
        run_open = true;
        run_start = static_cast<long>(px);
        run_color = color;
      } else if (!(color == run_color)) {
        canvas.fill_rect(rect.x + run_start, rect.y + static_cast<long>(py),
                         static_cast<long>(px) - run_start, 1, run_color);
        run_start = static_cast<long>(px);
        run_color = color;
      }
    }
    if (run_open) {
      canvas.fill_rect(rect.x + run_start, rect.y + static_cast<long>(py),
                       static_cast<long>(width) - run_start, 1, run_color);
    }
  }
}

/// Selection tick marks on the global view (the paper: other datasets
/// "highlight their position in the global view with a line").
void draw_selection_marks(Canvas& canvas, const Session& session,
                          std::size_t dataset_index,
                          const std::vector<std::size_t>& order,
                          const layout::Rect& rect) {
  if (order.empty() || session.selection().empty()) return;
  // Position of each display row in the strip.
  std::vector<std::size_t> position_of_row(
      session.dataset(dataset_index).gene_count(), 0);
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    position_of_row[order[pos]] = pos;
  }
  const auto& catalog = session.merged().catalog();
  for (const GeneId gene : session.selection().ordered()) {
    const auto row = catalog.row_in(dataset_index, gene);
    if (!row.has_value()) continue;
    const long y = rect.y + static_cast<long>(position_of_row[*row] *
                                              static_cast<std::size_t>(
                                                  rect.height) /
                                              order.size());
    canvas.hline(rect.x, rect.right() - 1, y, render::colors::kHighlight);
  }
}

struct PaneRenderStats {
  std::size_t zoom_rows = 0;
  std::size_t cells = 0;
};

PaneRenderStats render_pane(const Session& session, Canvas& canvas,
                            std::size_t dataset_index,
                            const layout::Rect& pane_rect,
                            const layout::PaneConfig& pane_config) {
  PaneRenderStats stats;
  const expr::Dataset& dataset = session.dataset(dataset_index);
  const DisplayPrefs& prefs = session.prefs(dataset_index);
  const render::ExpressionColormap colormap(prefs.scheme, prefs.contrast);
  const auto parts = layout::layout_pane(pane_rect, pane_config);

  canvas.fill_rect(pane_rect.x, pane_rect.y, pane_rect.width,
                   pane_rect.height, kPaneBackground);

  if (!parts.header.empty()) {
    canvas.text(parts.header.x + 2, parts.header.y + 2, dataset.name(),
                kHeaderText, 1);
  }

  const auto display_order = dataset.display_order();
  if (!parts.global_view.empty()) {
    draw_global_view(canvas, dataset, display_order, colormap,
                     parts.global_view);
    draw_selection_marks(canvas, session, dataset_index, display_order,
                         parts.global_view);
  }

  if (!parts.gene_tree.empty() && dataset.gene_tree().has_value() &&
      parts.gene_tree.width >= 2 && parts.gene_tree.height >= 2) {
    render::draw_gene_dendrogram(canvas, *dataset.gene_tree(),
                                 parts.gene_tree.x, parts.gene_tree.y,
                                 parts.gene_tree.width,
                                 parts.gene_tree.height, kTreeColor);
  }

  if (!parts.array_tree.empty() && dataset.array_tree().has_value() &&
      parts.array_tree.width >= 2 && parts.array_tree.height >= 2) {
    render::draw_array_dendrogram(canvas, *dataset.array_tree(),
                                  parts.array_tree.x, parts.array_tree.y,
                                  parts.array_tree.width,
                                  parts.array_tree.height, kTreeColor);
  }

  // Zoom view: the selection's rows under the sync controller's mode.
  if (!parts.zoom_view.empty() && !session.selection().empty()) {
    const auto rows =
        session.sync().zoom_rows(dataset_index, session.selection());
    const long cell_h = std::max(1, prefs.zoom_cell_height);
    const long cell_w = std::max<long>(
        1, parts.zoom_view.width /
               std::max<long>(1,
                              static_cast<long>(dataset.condition_count())));
    const std::size_t first = session.sync().scroll();
    const auto fit = static_cast<std::size_t>(parts.zoom_view.height / cell_h);
    for (std::size_t i = first; i < rows.size() && i - first < fit; ++i) {
      const long y =
          parts.zoom_view.y + static_cast<long>(i - first) * cell_h;
      ++stats.zoom_rows;
      if (!rows[i].row.has_value()) {
        // Gene not measured in this dataset: aligned gap row.
        canvas.fill_rect(parts.zoom_view.x, y, parts.zoom_view.width, cell_h,
                         kGapRow);
        continue;
      }
      const auto values = dataset.values().row(*rows[i].row);
      for (std::size_t c = 0; c < values.size(); ++c) {
        canvas.fill_rect(parts.zoom_view.x + static_cast<long>(c) * cell_w,
                         y, cell_w, cell_h, colormap.map(values[c]));
        ++stats.cells;
      }
      if (prefs.show_annotations && !parts.annotations.empty() &&
          cell_h >= render::kGlyphHeight) {
        canvas.text(parts.annotations.x + 2, y,
                    dataset.gene(*rows[i].row).label(), kHeaderText, 1);
      }
    }
  }
  return stats;
}

}  // namespace

FrameInfo render_frame(const Session& session, render::Canvas& canvas,
                       const FrameConfig& config) {
  FV_REQUIRE(config.width > 0 && config.height > 0,
             "frame needs a positive size");
  FrameInfo info;
  canvas.fill_rect(0, 0, config.width, config.height,
                   render::colors::kBlack);
  const auto panes = layout::split_vertical_panes(
      config.width, config.height, session.pane_order().size(),
      config.pane_gap);
  for (std::size_t p = 0; p < panes.size(); ++p) {
    const std::size_t dataset_index = session.pane_order()[p];
    const auto stats = render_pane(session, canvas, dataset_index, panes[p],
                                   config.pane);
    ++info.panes_rendered;
    info.zoom_rows_rendered += stats.zoom_rows;
    info.cells_rendered += stats.cells;
  }
  return info;
}

}  // namespace fv::core
