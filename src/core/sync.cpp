#include "core/sync.hpp"

#include "util/error.hpp"

namespace fv::core {

void SelectionModel::set(std::vector<GeneId> genes) {
  ordered_.clear();
  set_.clear();
  for (const GeneId gene : genes) add(gene);
}

void SelectionModel::add(GeneId gene) {
  if (set_.insert(gene).second) ordered_.push_back(gene);
}

void SelectionModel::clear() {
  ordered_.clear();
  set_.clear();
}

SyncController::SyncController(const MergedDatasetInterface* merged)
    : merged_(merged) {
  FV_REQUIRE(merged != nullptr, "sync controller needs a merged interface");
}

std::vector<ZoomRow> SyncController::zoom_rows(
    std::size_t dataset, const SelectionModel& selection) const {
  std::vector<ZoomRow> rows;
  if (synchronized_) {
    rows.reserve(selection.size());
    for (const GeneId gene : selection.ordered()) {
      rows.push_back(
          ZoomRow{gene, merged_->catalog().row_in(dataset, gene)});
    }
    return rows;
  }
  // Unsynchronized: the dataset's own ordering, measured genes only.
  const expr::Dataset& ds = merged_->dataset(dataset);
  for (const std::size_t row : ds.display_order()) {
    const GeneId gene = merged_->catalog().id_of_row(dataset, row);
    if (selection.contains(gene)) {
      rows.push_back(ZoomRow{gene, row});
    }
  }
  return rows;
}

}  // namespace fv::core
