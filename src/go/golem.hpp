// GOLEM enrichment analysis (paper §3): given a list of genes (typically a
// ForestView cluster selection), quantify the statistical functional
// enrichment of every GO term via the hypergeometric upper tail, with
// Bonferroni and Benjamini–Hochberg corrections.
#pragma once

#include <string>
#include <vector>

#include "go/annotations.hpp"

namespace fv::go {

struct EnrichmentOptions {
  /// Terms annotated to fewer genes than this (in the population) are
  /// skipped — tiny terms produce unstable statistics.
  std::size_t min_annotated = 2;
  /// Terms with no query gene are skipped (their p-value is 1 by definition).
  bool skip_empty_terms = true;
  /// If > 0, overrides the population size (otherwise: all annotated genes).
  std::size_t population_override = 0;
};

struct EnrichedTerm {
  TermIndex term = 0;
  std::size_t query_annotated = 0;       ///< k: query genes with the term
  std::size_t population_annotated = 0;  ///< K: population genes with it
  std::size_t query_size = 0;            ///< n: recognized query genes
  std::size_t population_size = 0;       ///< N
  double p_value = 1.0;
  double p_bonferroni = 1.0;
  double q_benjamini_hochberg = 1.0;
  double fold_enrichment = 0.0;  ///< (k/n) / (K/N)
};

struct EnrichmentResult {
  std::vector<EnrichedTerm> terms;      ///< ascending p-value
  std::size_t recognized_genes = 0;     ///< query genes found in the table
  std::vector<std::string> unknown_genes;  ///< query genes with no annotation
};

/// Runs the enrichment. `annotations` must already be propagated (true-path);
/// enrich() works on whatever counts it is given.
EnrichmentResult enrich(const AnnotationTable& annotations,
                        const std::vector<std::string>& query_genes,
                        const EnrichmentOptions& options = {});

}  // namespace fv::go
