// GOLEM's Local Exploration Map (paper Figure 5): the sub-hierarchy around a
// set of focus terms (typically the significantly enriched ones), laid out
// in layers for drawing. Includes a renderer producing the boxed-DAG view.
#pragma once

#include <optional>
#include <vector>

#include "go/golem.hpp"
#include "go/ontology.hpp"
#include "render/framebuffer.hpp"

namespace fv::go {

struct MapNode {
  TermIndex term = 0;
  std::size_t layer = 0;  ///< depth layer (0 = roots)
  std::size_t slot = 0;   ///< position within the layer after ordering
  bool focus = false;     ///< true for the requested (enriched) terms
  double p_value = 1.0;   ///< carried over for color coding (1 when unknown)
};

struct MapEdge {
  std::size_t parent_node = 0;  ///< indexes into LocalExplorationMap::nodes
  std::size_t child_node = 0;
};

struct LocalExplorationMap {
  std::vector<MapNode> nodes;
  std::vector<MapEdge> edges;
  std::size_t layer_count = 0;
  std::size_t max_layer_width = 0;
};

/// Builds the map: focus terms plus all of their ancestors, layered by DAG
/// depth, with barycenter ordering inside each layer to reduce crossings.
LocalExplorationMap build_local_map(const Ontology& ontology,
                                    const std::vector<TermIndex>& focus_terms);

/// Convenience: map of all terms with q-value <= threshold from an
/// enrichment result (p-values are attached to the nodes for coloring).
LocalExplorationMap build_local_map(const Ontology& ontology,
                                    const EnrichmentResult& enrichment,
                                    double max_q_value);

/// Rasterizes the map into `fb` inside the given rectangle: one box per
/// node (focus terms filled, ancestors outlined; fill saturation encodes
/// -log10 p), orthogonal edges between layers, term names inside boxes
/// where space allows.
void draw_local_map(render::Framebuffer& fb, const Ontology& ontology,
                    const LocalExplorationMap& map, long x, long y,
                    long width, long height);

}  // namespace fv::go
