#include "go/synth_ontology.hpp"

#include <memory>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fv::go {

namespace {

std::string accession(std::size_t number) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "GO:%07zu", number + 1);
  return buffer;
}

}  // namespace

SynthOntology make_synth_ontology(const expr::SynthGenome& genome,
                                  const SynthOntologySpec& spec) {
  FV_REQUIRE(spec.depth >= 1 && spec.branching >= 2,
             "ontology needs depth >= 1 and branching >= 2");
  FV_REQUIRE(spec.module_annotation_rate > 0.0 &&
                 spec.module_annotation_rate <= 1.0,
             "module_annotation_rate must lie in (0, 1]");
  Rng rng(spec.seed);

  auto ontology_ptr = std::make_shared<Ontology>();
  Ontology& ontology = *ontology_ptr;
  std::size_t next_accession = 0;
  const TermIndex root = ontology.add_term(
      Term{accession(next_accession++), "biological_process",
           Namespace::kBiologicalProcess, false});

  // Build a balanced tree layer by layer, then sprinkle cross edges.
  std::vector<std::vector<TermIndex>> layers{{root}};
  for (std::size_t d = 1; d <= spec.depth; ++d) {
    std::vector<TermIndex> layer;
    for (const TermIndex parent : layers.back()) {
      for (std::size_t b = 0; b < spec.branching; ++b) {
        const TermIndex child = ontology.add_term(
            Term{accession(next_accession++),
                 "process " + std::to_string(d) + "." +
                     std::to_string(layer.size()),
                 Namespace::kBiologicalProcess, false});
        ontology.add_is_a(child, parent);
        layer.push_back(child);
      }
    }
    // Cross edges: an extra parent from the same upper layer keeps the
    // graph acyclic while making it a genuine DAG, like real GO.
    for (const TermIndex child : layer) {
      if (rng.bernoulli(spec.extra_parent_rate) && layers.back().size() > 1) {
        const TermIndex extra = layers.back()[static_cast<std::size_t>(
            rng.uniform_u64(layers.back().size()))];
        ontology.add_is_a(child, extra);
      }
    }
    layers.push_back(std::move(layer));
  }

  // Pick one leaf-layer term per module and rename it after the module so
  // tests and demos read naturally.
  auto leaf_pool = layers.back();
  rng.shuffle(leaf_pool);
  FV_REQUIRE(leaf_pool.size() >= genome.module_names().size(),
             "ontology too small for the module count; increase depth or "
             "branching");

  AnnotationTable direct(ontology_ptr);
  std::unordered_map<std::string, TermIndex> module_terms;
  for (std::size_t m = 0; m < genome.module_names().size(); ++m) {
    module_terms.emplace(genome.module_names()[m], leaf_pool[m]);
    // Rename the planted term after its module so enrichment output reads
    // naturally ("ESR_UP program" instead of "process 4.197").
    ontology.set_term_name(leaf_pool[m],
                           genome.module_names()[m] + " program");
  }

  // Annotate module genes to their true term (with dropout), everyone to
  // random leaf terms as background, and every gene at least once.
  const auto& leaves = layers.back();
  for (std::size_t g = 0; g < genome.gene_count(); ++g) {
    const std::string& name = genome.gene(g).systematic_name;
    const int module = genome.module_of(g);
    bool annotated = false;
    if (module >= 0 &&
        rng.bernoulli(spec.module_annotation_rate)) {
      direct.annotate(
          name,
          module_terms.at(
              genome.module_names()[static_cast<std::size_t>(module)]));
      annotated = true;
    }
    for (std::size_t a = 0; a < spec.background_annotations; ++a) {
      // Background draws avoid module terms so planted signal stays clean.
      const TermIndex t = leaves[static_cast<std::size_t>(
          rng.uniform_u64(leaves.size()))];
      bool is_module_term = false;
      for (const auto& [unused, module_term] : module_terms) {
        if (t == module_term) {
          is_module_term = true;
          break;
        }
      }
      if (!is_module_term) {
        direct.annotate(name, t);
        annotated = true;
      }
    }
    if (!annotated) {
      // Guarantee population membership.
      direct.annotate(name, root);
    }
  }

  ontology.validate();
  AnnotationTable propagated = direct.propagated();
  SynthOntology result(ontology_ptr, std::move(direct),
                       std::move(propagated));
  result.module_terms = std::move(module_terms);
  return result;
}

}  // namespace fv::go
