#include "go/local_map.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "render/draw.hpp"
#include "render/font.hpp"
#include "util/error.hpp"

namespace fv::go {

LocalExplorationMap build_local_map(
    const Ontology& ontology, const std::vector<TermIndex>& focus_terms) {
  LocalExplorationMap map;
  if (focus_terms.empty()) return map;

  // Closure: focus terms plus all ancestors.
  std::unordered_set<TermIndex> included;
  std::unordered_set<TermIndex> focus_set;
  for (const TermIndex t : focus_terms) {
    FV_REQUIRE(t < ontology.term_count(), "focus term out of range");
    focus_set.insert(t);
    if (included.insert(t).second) {
      for (const TermIndex a : ontology.ancestors(t)) included.insert(a);
    }
  }

  // Layer = global DAG depth, so maps of different selections are
  // vertically comparable.
  const auto depths = ontology.depths();
  std::vector<TermIndex> terms(included.begin(), included.end());
  std::sort(terms.begin(), terms.end());  // deterministic base order

  std::unordered_map<TermIndex, std::size_t> node_of_term;
  for (const TermIndex t : terms) {
    MapNode node;
    node.term = t;
    node.layer = depths[t];
    node.focus = focus_set.count(t) > 0;
    node_of_term.emplace(t, map.nodes.size());
    map.nodes.push_back(node);
    map.layer_count = std::max(map.layer_count, node.layer + 1);
  }

  // Edges between included terms only.
  for (const TermIndex t : terms) {
    for (const TermIndex parent : ontology.parents(t)) {
      const auto it = node_of_term.find(parent);
      if (it == node_of_term.end()) continue;
      map.edges.push_back(MapEdge{it->second, node_of_term.at(t)});
    }
  }

  // Initial slots: order of appearance per layer.
  std::vector<std::vector<std::size_t>> layers(map.layer_count);
  for (std::size_t n = 0; n < map.nodes.size(); ++n) {
    layers[map.nodes[n].layer].push_back(n);
  }
  // Barycenter sweep (two passes) to reduce edge crossings: order each layer
  // by the mean slot of connected nodes in the previous layer processed.
  const auto sweep = [&](bool downward) {
    for (std::size_t step = 0; step < map.layer_count; ++step) {
      const std::size_t layer = downward ? step : map.layer_count - 1 - step;
      auto& nodes_in_layer = layers[layer];
      std::vector<double> barycenter(map.nodes.size(), 0.0);
      for (const std::size_t n : nodes_in_layer) {
        double sum = 0.0;
        std::size_t count = 0;
        for (const MapEdge& e : map.edges) {
          const std::size_t other = e.parent_node == n ? e.child_node
                                    : e.child_node == n ? e.parent_node
                                                        : map.nodes.size();
          if (other == map.nodes.size()) continue;
          sum += static_cast<double>(map.nodes[other].slot);
          ++count;
        }
        barycenter[n] = count > 0
                            ? sum / static_cast<double>(count)
                            : static_cast<double>(map.nodes[n].slot);
      }
      std::stable_sort(nodes_in_layer.begin(), nodes_in_layer.end(),
                       [&](std::size_t a, std::size_t b) {
                         return barycenter[a] < barycenter[b];
                       });
      for (std::size_t slot = 0; slot < nodes_in_layer.size(); ++slot) {
        map.nodes[nodes_in_layer[slot]].slot = slot;
      }
    }
  };
  // Seed slots, then two alternating sweeps.
  for (auto& layer : layers) {
    for (std::size_t slot = 0; slot < layer.size(); ++slot) {
      map.nodes[layer[slot]].slot = slot;
    }
    map.max_layer_width = std::max(map.max_layer_width, layer.size());
  }
  sweep(/*downward=*/true);
  sweep(/*downward=*/false);
  return map;
}

LocalExplorationMap build_local_map(const Ontology& ontology,
                                    const EnrichmentResult& enrichment,
                                    double max_q_value) {
  std::vector<TermIndex> focus;
  std::unordered_map<TermIndex, double> p_of_term;
  for (const EnrichedTerm& row : enrichment.terms) {
    if (row.q_benjamini_hochberg <= max_q_value) {
      focus.push_back(row.term);
      p_of_term.emplace(row.term, row.p_value);
    }
  }
  LocalExplorationMap map = build_local_map(ontology, focus);
  for (MapNode& node : map.nodes) {
    const auto it = p_of_term.find(node.term);
    if (it != p_of_term.end()) node.p_value = it->second;
  }
  return map;
}

void draw_local_map(render::Framebuffer& fb, const Ontology& ontology,
                    const LocalExplorationMap& map, long x, long y,
                    long width, long height) {
  using namespace render;
  FV_REQUIRE(width > 0 && height > 0, "map area must be non-empty");
  if (map.nodes.empty()) return;

  const long layer_height =
      height / static_cast<long>(std::max<std::size_t>(map.layer_count, 1));
  const long box_height = std::max<long>(8, layer_height * 3 / 5);

  // Node centers by (layer, slot).
  std::vector<std::size_t> layer_width(map.layer_count, 0);
  for (const MapNode& node : map.nodes) {
    layer_width[node.layer] =
        std::max(layer_width[node.layer], node.slot + 1);
  }
  const auto center_of = [&](const MapNode& node) {
    const long slots = static_cast<long>(layer_width[node.layer]);
    const long cx = x + (2 * static_cast<long>(node.slot) + 1) * width /
                            (2 * slots);
    const long cy = y + static_cast<long>(node.layer) * layer_height +
                    layer_height / 2;
    return std::pair<long, long>{cx, cy};
  };
  const long box_width =
      std::max<long>(16, width / static_cast<long>(map.max_layer_width) - 4);

  // Edges first (under the boxes): vertical drop, horizontal run, drop.
  for (const MapEdge& edge : map.edges) {
    const auto [px, py] = center_of(map.nodes[edge.parent_node]);
    const auto [cx, cy] = center_of(map.nodes[edge.child_node]);
    const long mid_y = (py + cy) / 2;
    draw_vline(fb, px, py, mid_y, colors::kLightGray);
    draw_hline(fb, px, cx, mid_y, colors::kLightGray);
    draw_vline(fb, cx, mid_y, cy, colors::kLightGray);
  }
  // Boxes and labels.
  for (const MapNode& node : map.nodes) {
    const auto [cx, cy] = center_of(node);
    const long bx = cx - box_width / 2;
    const long by = cy - box_height / 2;
    if (node.focus) {
      // Fill saturation encodes significance: p=1 -> dim, p<=1e-10 -> full.
      const double strength =
          std::clamp(-std::log10(std::max(node.p_value, 1e-10)) / 10.0, 0.1,
                     1.0);
      fill_rect(fb, bx, by, box_width, box_height,
                lerp(colors::kDarkGray, colors::kYellow, strength));
      draw_rect(fb, bx, by, box_width, box_height, colors::kWhite);
    } else {
      draw_rect(fb, bx, by, box_width, box_height, colors::kGray);
    }
    const std::string& name = ontology.term(node.term).name;
    const long max_chars = std::max<long>(0, (box_width - 4) / kGlyphAdvance);
    if (max_chars >= 3 && box_height >= kGlyphHeight + 2) {
      const std::string label =
          name.size() > static_cast<std::size_t>(max_chars)
              ? name.substr(0, static_cast<std::size_t>(max_chars))
              : name;
      draw_text(fb, bx + 2, cy - kGlyphHeight / 2, label,
                node.focus ? colors::kBlack : colors::kLightGray);
    }
  }
}

}  // namespace fv::go
