// Gene Ontology DAG model.
//
// GO is a rooted directed acyclic graph: terms with is_a edges to one or
// more parents, partitioned into three namespaces. GOLEM (paper §3) needs
// ancestor closure (the "true path rule"), depths for layered drawing, and
// subgraph extraction around enriched terms.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace fv::go {

/// Dense term handle (index into the ontology's term table).
using TermIndex = std::size_t;

enum class Namespace {
  kBiologicalProcess,
  kMolecularFunction,
  kCellularComponent,
};

struct Term {
  std::string id;    ///< accession, e.g. "GO:0006950"
  std::string name;  ///< human-readable, e.g. "response to stress"
  Namespace ns = Namespace::kBiologicalProcess;
  bool obsolete = false;
};

class Ontology {
 public:
  /// Adds a term; its accession must be unique. Returns the new index.
  TermIndex add_term(Term term);

  /// Adds an is_a edge child -> parent. Both must exist; self-loops are
  /// rejected immediately, larger cycles by validate().
  void add_is_a(TermIndex child, TermIndex parent);

  std::size_t term_count() const noexcept { return terms_.size(); }
  const Term& term(TermIndex index) const;

  /// Renames a term (accession stays fixed — it is the identity key).
  void set_term_name(TermIndex index, std::string name);

  /// Index lookup by accession; nullopt when unknown.
  std::optional<TermIndex> find(std::string_view accession) const;

  const std::vector<TermIndex>& parents(TermIndex index) const;
  const std::vector<TermIndex>& children(TermIndex index) const;

  /// Terms with no parents (per namespace there is usually exactly one).
  std::vector<TermIndex> roots() const;

  /// Throws ParseError if the graph has a cycle (called by the OBO parser;
  /// callers building programmatically should call it too).
  void validate() const;

  /// All ancestors of `index` (excluding itself), deduplicated.
  std::vector<TermIndex> ancestors(TermIndex index) const;

  /// All descendants of `index` (excluding itself), deduplicated.
  std::vector<TermIndex> descendants(TermIndex index) const;

  /// Longest-path depth from any root (roots have depth 0). Used as the
  /// layer assignment of the local exploration map.
  std::vector<std::size_t> depths() const;

  /// Topological order (parents before children).
  std::vector<TermIndex> topological_order() const;

 private:
  std::vector<Term> terms_;
  std::vector<std::vector<TermIndex>> parents_;
  std::vector<std::vector<TermIndex>> children_;
  std::unordered_map<std::string, TermIndex> index_by_id_;
};

}  // namespace fv::go
