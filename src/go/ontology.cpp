#include "go/ontology.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fv::go {

TermIndex Ontology::add_term(Term term) {
  FV_REQUIRE(!term.id.empty(), "term needs an accession id");
  FV_REQUIRE(index_by_id_.find(term.id) == index_by_id_.end(),
             "duplicate term accession: " + term.id);
  const TermIndex index = terms_.size();
  index_by_id_.emplace(term.id, index);
  terms_.push_back(std::move(term));
  parents_.emplace_back();
  children_.emplace_back();
  return index;
}

void Ontology::add_is_a(TermIndex child, TermIndex parent) {
  FV_REQUIRE(child < terms_.size() && parent < terms_.size(),
             "term index out of range");
  FV_REQUIRE(child != parent, "a term cannot be its own parent");
  // Duplicate edges are merged silently (OBO files repeat is_a lines).
  auto& existing = parents_[child];
  if (std::find(existing.begin(), existing.end(), parent) != existing.end()) {
    return;
  }
  existing.push_back(parent);
  children_[parent].push_back(child);
}

const Term& Ontology::term(TermIndex index) const {
  FV_REQUIRE(index < terms_.size(), "term index out of range");
  return terms_[index];
}

void Ontology::set_term_name(TermIndex index, std::string name) {
  FV_REQUIRE(index < terms_.size(), "term index out of range");
  terms_[index].name = std::move(name);
}

std::optional<TermIndex> Ontology::find(std::string_view accession) const {
  const auto it = index_by_id_.find(std::string(accession));
  if (it == index_by_id_.end()) return std::nullopt;
  return it->second;
}

const std::vector<TermIndex>& Ontology::parents(TermIndex index) const {
  FV_REQUIRE(index < terms_.size(), "term index out of range");
  return parents_[index];
}

const std::vector<TermIndex>& Ontology::children(TermIndex index) const {
  FV_REQUIRE(index < terms_.size(), "term index out of range");
  return children_[index];
}

std::vector<TermIndex> Ontology::roots() const {
  std::vector<TermIndex> result;
  for (TermIndex i = 0; i < terms_.size(); ++i) {
    if (parents_[i].empty()) result.push_back(i);
  }
  return result;
}

std::vector<TermIndex> Ontology::topological_order() const {
  // Kahn's algorithm over parent->child edges.
  std::vector<std::size_t> pending(terms_.size());
  for (TermIndex i = 0; i < terms_.size(); ++i) {
    pending[i] = parents_[i].size();
  }
  std::vector<TermIndex> queue = roots();
  std::vector<TermIndex> order;
  order.reserve(terms_.size());
  while (!queue.empty()) {
    const TermIndex current = queue.back();
    queue.pop_back();
    order.push_back(current);
    for (TermIndex child : children_[current]) {
      if (--pending[child] == 0) queue.push_back(child);
    }
  }
  return order;  // shorter than term_count() iff there is a cycle
}

void Ontology::validate() const {
  if (topological_order().size() != terms_.size()) {
    throw ParseError("ontology graph contains a cycle");
  }
}

namespace {

std::vector<TermIndex> reachable(const Ontology& ontology, TermIndex start,
                                 bool upward) {
  std::vector<bool> seen(ontology.term_count(), false);
  std::vector<TermIndex> stack{start};
  std::vector<TermIndex> found;
  seen[start] = true;
  while (!stack.empty()) {
    const TermIndex current = stack.back();
    stack.pop_back();
    const auto& next = upward ? ontology.parents(current)
                              : ontology.children(current);
    for (TermIndex n : next) {
      if (seen[n]) continue;
      seen[n] = true;
      found.push_back(n);
      stack.push_back(n);
    }
  }
  return found;
}

}  // namespace

std::vector<TermIndex> Ontology::ancestors(TermIndex index) const {
  FV_REQUIRE(index < terms_.size(), "term index out of range");
  return reachable(*this, index, /*upward=*/true);
}

std::vector<TermIndex> Ontology::descendants(TermIndex index) const {
  FV_REQUIRE(index < terms_.size(), "term index out of range");
  return reachable(*this, index, /*upward=*/false);
}

std::vector<std::size_t> Ontology::depths() const {
  const auto order = topological_order();
  FV_ASSERT(order.size() == terms_.size(), "depths() needs an acyclic graph");
  std::vector<std::size_t> depth(terms_.size(), 0);
  for (TermIndex t : order) {
    for (TermIndex child : children_[t]) {
      depth[child] = std::max(depth[child], depth[t] + 1);
    }
  }
  return depth;
}

}  // namespace fv::go
