// Gene-to-term annotation table with true-path propagation.
//
// GOLEM's enrichment statistics count, for every term, how many genes are
// annotated to it *or any of its descendants* — the GO "true path rule".
// The table stores direct annotations and can produce a propagated copy.
//
// Gene names are interned to dense ids on first annotation and every term's
// membership is a packed bitset over that id space, so enrichment counts
// are popcounted word intersections (64 genes per instruction) instead of
// the seed's per-term string-hash probes, and annotate()'s idempotence
// check is one bit test instead of an unordered_set<std::string> probe.
// (genes_of() still serves name lists, so genes_by_term_ keeps one string
// per (term, gene) — the bitset replaces the per-term hash set, not the
// name storage.)
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "go/ontology.hpp"

namespace fv::go {

class AnnotationTable {
 public:
  /// The table shares ownership of the ontology so that moving/copying
  /// tables (and the structs that bundle them) can never dangle.
  explicit AnnotationTable(std::shared_ptr<const Ontology> ontology);

  /// Annotates `gene` (by name) with a term. Idempotent.
  void annotate(std::string_view gene, TermIndex term);

  /// Number of distinct annotated genes.
  std::size_t gene_count() const noexcept { return genes_.size(); }

  /// Interned dense id of `gene` (assigned at first annotation), or
  /// nullopt for genes the table has never seen.
  std::optional<std::size_t> gene_id(std::string_view gene) const;

  /// Terms directly annotated to `gene` (empty for unknown genes).
  std::vector<TermIndex> terms_of(std::string_view gene) const;

  /// Genes annotated to `term`.
  const std::vector<std::string>& genes_of(TermIndex term) const;

  /// Number of genes annotated to `term` (a maintained popcount, O(1)).
  std::size_t annotation_count(TermIndex term) const;

  /// Packed membership bitset of `term` over interned gene ids: bit
  /// (64*w + b) of word w is set iff the gene with that id is annotated.
  /// Sized to the words its highest member id needs — intersect over
  /// min(sizes). This is what go::enrich popcounts against the query.
  std::span<const std::uint64_t> term_bits(TermIndex term) const;

  /// All annotated gene names (stable insertion order; position == id).
  const std::vector<std::string>& genes() const noexcept { return genes_; }

  /// Returns a new table where every gene is also annotated to all
  /// ancestors of its direct terms (true path rule).
  AnnotationTable propagated() const;

  const Ontology& ontology() const noexcept { return *ontology_; }
  const std::shared_ptr<const Ontology>& ontology_ptr() const noexcept {
    return ontology_;
  }

 private:
  std::shared_ptr<const Ontology> ontology_;
  std::vector<std::string> genes_;  ///< id -> name
  std::unordered_map<std::string, std::size_t> gene_index_;  ///< name -> id
  std::vector<std::vector<TermIndex>> terms_by_gene_;  ///< id -> direct terms
  std::vector<std::vector<std::string>> genes_by_term_;
  /// Per-term packed membership over gene ids; doubles as the idempotence
  /// check in annotate() (one bit test instead of a set probe).
  std::vector<std::vector<std::uint64_t>> term_bits_;
  std::vector<std::size_t> term_counts_;  ///< maintained popcounts
};

}  // namespace fv::go
