// Gene-to-term annotation table with true-path propagation.
//
// GOLEM's enrichment statistics count, for every term, how many genes are
// annotated to it *or any of its descendants* — the GO "true path rule".
// The table stores direct annotations and can produce a propagated copy.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "go/ontology.hpp"

namespace fv::go {

class AnnotationTable {
 public:
  /// The table shares ownership of the ontology so that moving/copying
  /// tables (and the structs that bundle them) can never dangle.
  explicit AnnotationTable(std::shared_ptr<const Ontology> ontology);

  /// Annotates `gene` (by name) with a term. Idempotent.
  void annotate(std::string_view gene, TermIndex term);

  /// Number of distinct annotated genes.
  std::size_t gene_count() const noexcept { return terms_by_gene_.size(); }

  /// Terms directly annotated to `gene` (empty for unknown genes).
  std::vector<TermIndex> terms_of(std::string_view gene) const;

  /// Genes annotated to `term`.
  const std::vector<std::string>& genes_of(TermIndex term) const;

  /// Number of genes annotated to `term`.
  std::size_t annotation_count(TermIndex term) const;

  /// All annotated gene names (stable insertion order).
  const std::vector<std::string>& genes() const noexcept { return genes_; }

  /// Returns a new table where every gene is also annotated to all
  /// ancestors of its direct terms (true path rule).
  AnnotationTable propagated() const;

  const Ontology& ontology() const noexcept { return *ontology_; }
  const std::shared_ptr<const Ontology>& ontology_ptr() const noexcept {
    return ontology_;
  }

 private:
  std::shared_ptr<const Ontology> ontology_;
  std::vector<std::string> genes_;
  std::unordered_map<std::string, std::size_t> gene_index_;
  std::unordered_map<std::string, std::unordered_set<TermIndex>>
      terms_by_gene_;
  std::vector<std::vector<std::string>> genes_by_term_;
  std::vector<std::unordered_set<std::string>> gene_set_by_term_;
};

}  // namespace fv::go
