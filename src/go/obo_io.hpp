// OBO 1.2 flat-file parsing/serialization — the format the GO Consortium
// ships and GOLEM loads ("the plain text format it is provided in", §3).
// Supported keys: [Term] stanzas with id, name, namespace, is_a, is_obsolete.
// Unknown keys and other stanza types are skipped, as GO tools convention.
#pragma once

#include <string>

#include "go/ontology.hpp"

namespace fv::go {

/// Parses OBO text into an Ontology (validated acyclic).
Ontology parse_obo(const std::string& content);

/// Serializes an ontology back to OBO text.
std::string format_obo(const Ontology& ontology);

/// File wrappers.
Ontology read_obo(const std::string& path);
void write_obo(const Ontology& ontology, const std::string& path);

}  // namespace fv::go
