#include "go/obo_io.hpp"

#include <sstream>
#include <vector>

#include "util/error.hpp"
#include "util/string_util.hpp"
#include "util/table_io.hpp"

namespace fv::go {

namespace {

Namespace parse_namespace(std::string_view text, std::size_t line) {
  if (text == "biological_process") return Namespace::kBiologicalProcess;
  if (text == "molecular_function") return Namespace::kMolecularFunction;
  if (text == "cellular_component") return Namespace::kCellularComponent;
  throw ParseError("unknown GO namespace '" + std::string(text) + "'", line);
}

std::string_view namespace_text(Namespace ns) {
  switch (ns) {
    case Namespace::kBiologicalProcess:
      return "biological_process";
    case Namespace::kMolecularFunction:
      return "molecular_function";
    case Namespace::kCellularComponent:
      return "cellular_component";
  }
  return "biological_process";
}

struct PendingTerm {
  Term term;
  std::vector<std::string> is_a;  // parent accessions, resolved later
  std::size_t line = 0;
};

}  // namespace

Ontology parse_obo(const std::string& content) {
  std::istringstream stream(content);
  std::string line;
  std::size_t line_no = 0;

  std::vector<PendingTerm> pending;
  bool in_term_stanza = false;

  while (std::getline(stream, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::string_view text = str::trim(line);
    if (text.empty()) continue;
    if (text.front() == '[') {
      in_term_stanza = (text == "[Term]");
      if (in_term_stanza) {
        pending.emplace_back();
        pending.back().line = line_no;
      }
      continue;
    }
    if (!in_term_stanza) continue;  // header or other stanza types

    const std::size_t colon = text.find(':');
    if (colon == std::string_view::npos) {
      throw ParseError("malformed OBO line (missing ':')", line_no);
    }
    const std::string_view key = str::trim(text.substr(0, colon));
    std::string_view value = str::trim(text.substr(colon + 1));
    // Strip trailing comments ("! comment").
    if (const std::size_t bang = value.find(" ! ");
        bang != std::string_view::npos) {
      value = str::trim(value.substr(0, bang));
    }
    PendingTerm& current = pending.back();
    if (key == "id") {
      current.term.id = std::string(value);
    } else if (key == "name") {
      current.term.name = std::string(value);
    } else if (key == "namespace") {
      current.term.ns = parse_namespace(value, line_no);
    } else if (key == "is_a") {
      // Value may be "GO:0008150 ! biological_process"; the comment part was
      // stripped above, but handle a bare trailing word defensively.
      const std::size_t space = value.find(' ');
      current.is_a.emplace_back(space == std::string_view::npos
                                    ? value
                                    : str::trim(value.substr(0, space)));
    } else if (key == "is_obsolete") {
      current.term.obsolete = str::iequals(value, "true");
    }
    // Other keys (def, synonym, xref, ...) are intentionally skipped.
  }

  Ontology ontology;
  for (PendingTerm& p : pending) {
    if (p.term.id.empty()) {
      throw ParseError("[Term] stanza without an id", p.line);
    }
    ontology.add_term(p.term);
  }
  for (const PendingTerm& p : pending) {
    const auto child = ontology.find(p.term.id);
    for (const std::string& parent_id : p.is_a) {
      const auto parent = ontology.find(parent_id);
      if (!parent.has_value()) {
        throw ParseError("is_a references unknown term '" + parent_id + "'",
                         p.line);
      }
      ontology.add_is_a(*child, *parent);
    }
  }
  ontology.validate();
  return ontology;
}

std::string format_obo(const Ontology& ontology) {
  std::string out = "format-version: 1.2\n";
  for (TermIndex i = 0; i < ontology.term_count(); ++i) {
    const Term& term = ontology.term(i);
    out += "\n[Term]\nid: " + term.id + "\nname: " + term.name +
           "\nnamespace: " + std::string(namespace_text(term.ns)) + "\n";
    if (term.obsolete) out += "is_obsolete: true\n";
    for (TermIndex parent : ontology.parents(i)) {
      out += "is_a: " + ontology.term(parent).id + " ! " +
             ontology.term(parent).name + "\n";
    }
  }
  return out;
}

Ontology read_obo(const std::string& path) {
  return parse_obo(read_text_file(path));
}

void write_obo(const Ontology& ontology, const std::string& path) {
  write_text_file(path, format_obo(ontology));
}

}  // namespace fv::go
