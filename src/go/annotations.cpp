#include "go/annotations.hpp"

#include "util/error.hpp"

namespace fv::go {

AnnotationTable::AnnotationTable(std::shared_ptr<const Ontology> ontology)
    : ontology_(std::move(ontology)) {
  FV_REQUIRE(ontology_ != nullptr, "annotation table needs an ontology");
  genes_by_term_.resize(ontology_->term_count());
  gene_set_by_term_.resize(ontology_->term_count());
}

void AnnotationTable::annotate(std::string_view gene, TermIndex term) {
  FV_REQUIRE(term < ontology_->term_count(), "term index out of range");
  FV_REQUIRE(!gene.empty(), "gene name must be non-empty");
  const std::string name(gene);
  if (gene_index_.find(name) == gene_index_.end()) {
    gene_index_.emplace(name, genes_.size());
    genes_.push_back(name);
  }
  auto& terms = terms_by_gene_[name];
  if (!terms.insert(term).second) return;  // already annotated
  if (gene_set_by_term_[term].insert(name).second) {
    genes_by_term_[term].push_back(name);
  }
}

std::vector<TermIndex> AnnotationTable::terms_of(std::string_view gene) const {
  const auto it = terms_by_gene_.find(std::string(gene));
  if (it == terms_by_gene_.end()) return {};
  return std::vector<TermIndex>(it->second.begin(), it->second.end());
}

const std::vector<std::string>& AnnotationTable::genes_of(
    TermIndex term) const {
  FV_REQUIRE(term < genes_by_term_.size(), "term index out of range");
  return genes_by_term_[term];
}

std::size_t AnnotationTable::annotation_count(TermIndex term) const {
  FV_REQUIRE(term < genes_by_term_.size(), "term index out of range");
  return genes_by_term_[term].size();
}

AnnotationTable AnnotationTable::propagated() const {
  AnnotationTable out(ontology_);
  // Ancestor sets are shared across genes annotated to the same term, so
  // compute each term's ancestor list once.
  std::vector<std::vector<TermIndex>> ancestor_cache(ontology_->term_count());
  std::vector<bool> cached(ontology_->term_count(), false);
  for (const std::string& gene : genes_) {
    for (const TermIndex term : terms_by_gene_.at(gene)) {
      out.annotate(gene, term);
      if (!cached[term]) {
        ancestor_cache[term] = ontology_->ancestors(term);
        cached[term] = true;
      }
      for (const TermIndex ancestor : ancestor_cache[term]) {
        out.annotate(gene, ancestor);
      }
    }
  }
  return out;
}

}  // namespace fv::go
