#include "go/annotations.hpp"

#include "util/error.hpp"

namespace fv::go {

AnnotationTable::AnnotationTable(std::shared_ptr<const Ontology> ontology)
    : ontology_(std::move(ontology)) {
  FV_REQUIRE(ontology_ != nullptr, "annotation table needs an ontology");
  genes_by_term_.resize(ontology_->term_count());
  term_bits_.resize(ontology_->term_count());
  term_counts_.assign(ontology_->term_count(), 0);
}

void AnnotationTable::annotate(std::string_view gene, TermIndex term) {
  FV_REQUIRE(term < ontology_->term_count(), "term index out of range");
  FV_REQUIRE(!gene.empty(), "gene name must be non-empty");
  std::string name(gene);
  std::size_t id;
  if (const auto it = gene_index_.find(name); it != gene_index_.end()) {
    id = it->second;
  } else {
    id = genes_.size();
    gene_index_.emplace(name, id);
    genes_.push_back(std::move(name));
    terms_by_gene_.emplace_back();
  }
  const std::size_t word = id / 64;
  const std::uint64_t bit = std::uint64_t{1} << (id % 64);
  auto& bits = term_bits_[term];
  if (word >= bits.size()) {
    bits.resize(word + 1, 0);
  } else if ((bits[word] & bit) != 0) {
    return;  // already annotated
  }
  bits[word] |= bit;
  ++term_counts_[term];
  terms_by_gene_[id].push_back(term);
  genes_by_term_[term].push_back(genes_[id]);
}

std::optional<std::size_t> AnnotationTable::gene_id(
    std::string_view gene) const {
  const auto it = gene_index_.find(std::string(gene));
  if (it == gene_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<TermIndex> AnnotationTable::terms_of(std::string_view gene) const {
  const auto id = gene_id(gene);
  if (!id.has_value()) return {};
  return terms_by_gene_[*id];
}

const std::vector<std::string>& AnnotationTable::genes_of(
    TermIndex term) const {
  FV_REQUIRE(term < genes_by_term_.size(), "term index out of range");
  return genes_by_term_[term];
}

std::size_t AnnotationTable::annotation_count(TermIndex term) const {
  FV_REQUIRE(term < term_counts_.size(), "term index out of range");
  return term_counts_[term];
}

std::span<const std::uint64_t> AnnotationTable::term_bits(
    TermIndex term) const {
  FV_REQUIRE(term < term_bits_.size(), "term index out of range");
  return term_bits_[term];
}

AnnotationTable AnnotationTable::propagated() const {
  AnnotationTable out(ontology_);
  // Ancestor sets are shared across genes annotated to the same term, so
  // compute each term's ancestor list once.
  std::vector<std::vector<TermIndex>> ancestor_cache(ontology_->term_count());
  std::vector<bool> cached(ontology_->term_count(), false);
  for (std::size_t id = 0; id < genes_.size(); ++id) {
    const std::string& gene = genes_[id];
    for (const TermIndex term : terms_by_gene_[id]) {
      out.annotate(gene, term);
      if (!cached[term]) {
        ancestor_cache[term] = ontology_->ancestors(term);
        cached[term] = true;
      }
      for (const TermIndex ancestor : ancestor_cache[term]) {
        out.annotate(gene, ancestor);
      }
    }
  }
  return out;
}

}  // namespace fv::go
