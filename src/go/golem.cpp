#include "go/golem.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <unordered_set>

#include "stats/multiple_testing.hpp"
#include "stats/special.hpp"
#include "util/error.hpp"

namespace fv::go {

EnrichmentResult enrich(const AnnotationTable& annotations,
                        const std::vector<std::string>& query_genes,
                        const EnrichmentOptions& options) {
  EnrichmentResult result;
  const Ontology& ontology = annotations.ontology();

  // Deduplicate the query, split known from unknown genes, and pack the
  // recognized ones into a bitset over the table's interned gene ids: each
  // term's query count below is then a popcounted word intersection with
  // the term's membership bits (64 genes per instruction) instead of a
  // string-hash probe per annotated gene per term.
  std::vector<std::uint64_t> query_bits(
      (annotations.gene_count() + 63) / 64, 0);
  std::unordered_set<std::string> query_set;
  for (const std::string& gene : query_genes) {
    if (!query_set.insert(gene).second) continue;
    const auto id = annotations.gene_id(gene);
    if (!id.has_value()) {
      result.unknown_genes.push_back(gene);
    } else {
      query_bits[*id / 64] |= std::uint64_t{1} << (*id % 64);
      ++result.recognized_genes;
    }
  }
  const std::size_t n = result.recognized_genes;
  const std::size_t N = options.population_override > 0
                            ? options.population_override
                            : annotations.gene_count();
  FV_REQUIRE(n <= N, "query has more recognized genes than the population");
  if (n == 0) return result;

  // Per-term counts.
  std::vector<EnrichedTerm> rows;
  for (TermIndex t = 0; t < ontology.term_count(); ++t) {
    const std::size_t K = annotations.annotation_count(t);
    if (K < options.min_annotated || K > N) continue;
    const auto term_bits = annotations.term_bits(t);
    const std::size_t words = std::min(term_bits.size(), query_bits.size());
    std::size_t k = 0;
    for (std::size_t w = 0; w < words; ++w) {
      k += static_cast<std::size_t>(
          std::popcount(term_bits[w] & query_bits[w]));
    }
    if (k == 0 && options.skip_empty_terms) continue;
    EnrichedTerm row;
    row.term = t;
    row.query_annotated = k;
    row.population_annotated = K;
    row.query_size = n;
    row.population_size = N;
    row.p_value = stats::hypergeometric_upper_tail(k, N, K, n);
    row.fold_enrichment =
        (static_cast<double>(k) / static_cast<double>(n)) /
        (static_cast<double>(K) / static_cast<double>(N));
    rows.push_back(row);
  }

  // Multiple-testing corrections over the tested family.
  std::vector<double> p_values;
  p_values.reserve(rows.size());
  for (const EnrichedTerm& row : rows) p_values.push_back(row.p_value);
  const auto bonferroni = stats::bonferroni(p_values);
  const auto bh = stats::benjamini_hochberg(p_values);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i].p_bonferroni = bonferroni[i];
    rows[i].q_benjamini_hochberg = bh[i];
  }

  std::stable_sort(rows.begin(), rows.end(),
                   [](const EnrichedTerm& a, const EnrichedTerm& b) {
                     return a.p_value < b.p_value;
                   });
  result.terms = std::move(rows);
  return result;
}

}  // namespace fv::go
