// Synthetic Gene Ontology aligned with the synthetic genome's planted
// modules.
//
// The real GO + SGD annotations are not available offline, so this builds a
// structurally GO-like DAG (configurable depth/fan-out, occasional multiple
// parents) and annotates the synthetic genome onto it such that each planted
// expression module maps to one specific "true" term (plus noise). GOLEM run
// on a module's genes must therefore recover that term — giving the Figure 5
// reproduction a measurable ground truth.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "expr/synth.hpp"
#include "go/annotations.hpp"
#include "go/ontology.hpp"

namespace fv::go {

struct SynthOntologySpec {
  std::size_t depth = 4;           ///< layers below the root
  std::size_t branching = 4;       ///< children per internal term
  double extra_parent_rate = 0.1;  ///< chance of a second (cross) parent
  /// Fraction of each module's genes annotated to the module's true term
  /// (the rest of the module is "unannotated biology", as in real GO).
  double module_annotation_rate = 0.9;
  /// Random annotations per background gene (draws with replacement).
  std::size_t background_annotations = 2;
  std::uint64_t seed = 7;
};

struct SynthOntology {
  std::shared_ptr<const Ontology> ontology;
  AnnotationTable direct;      ///< direct annotations (not propagated)
  AnnotationTable propagated;  ///< true-path propagated copy
  /// Module name -> the term planted for it.
  std::unordered_map<std::string, TermIndex> module_terms;

  SynthOntology(std::shared_ptr<const Ontology> o, AnnotationTable d,
                AnnotationTable p)
      : ontology(std::move(o)),
        direct(std::move(d)),
        propagated(std::move(p)) {}
};

/// Builds the ontology + annotations for a genome. Every gene of the genome
/// is annotated at least once so the enrichment population equals the
/// genome size.
SynthOntology make_synth_ontology(const expr::SynthGenome& genome,
                                  const SynthOntologySpec& spec = {});

}  // namespace fv::go
