#include "par/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "util/error.hpp"

namespace fv::par {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { stop(); }

void ThreadPool::stop() {
  {
    std::unique_lock lock(mutex_);
    if (stopping_) return;  // idempotent (destructor after explicit stop)
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void ThreadPool::submit(std::function<void()> task) {
  FV_REQUIRE(task != nullptr, "cannot submit an empty task");
  {
    std::unique_lock lock(mutex_);
    // Submitting once stop() has begun would otherwise be a silent race:
    // a task enqueued after the workers saw `stopping_` would never run.
    FV_REQUIRE(!stopping_, "cannot submit to a stopped/stopping pool");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::size_t ThreadPool::pending() const {
  std::scoped_lock lock(mutex_);
  return queue_.size() + active_;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();  // task wrappers below capture exceptions; plain submits may not
    {
      std::unique_lock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

namespace {

struct ChunkRange {
  std::size_t begin, end;
};

std::vector<ChunkRange> make_chunks(std::size_t begin, std::size_t end,
                                    std::size_t grain,
                                    std::size_t max_chunks) {
  std::vector<ChunkRange> chunks;
  if (begin >= end) return chunks;
  const std::size_t total = end - begin;
  const std::size_t min_grain = std::max<std::size_t>(grain, 1);
  std::size_t count = std::min(max_chunks, (total + min_grain - 1) / min_grain);
  count = std::max<std::size_t>(count, 1);
  const std::size_t base = total / count;
  std::size_t remainder = total % count;
  std::size_t cursor = begin;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t size = base + (i < remainder ? 1 : 0);
    chunks.push_back({cursor, cursor + size});
    cursor += size;
  }
  return chunks;
}

/// Submits `count` tasks running body(index) and blocks until all finish;
/// rethrows the first exception (by task index) raised by any task.
void submit_and_wait(ThreadPool& pool, std::size_t count,
                     const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t remaining = count;
  std::vector<std::exception_ptr> errors(count);

  for (std::size_t t = 0; t < count; ++t) {
    pool.submit([&, t] {
      try {
        body(t);
      } catch (...) {
        errors[t] = std::current_exception();
      }
      {
        std::unique_lock lock(done_mutex);
        --remaining;
        // Notify under the lock: done_cv lives on the waiter's stack, and
        // an unlocked notify could race its destruction once the waiter
        // observes remaining == 0.
        done_cv.notify_one();
      }
    });
  }
  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining == 0; });
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

/// Runs one callable per chunk on the pool and blocks; rethrows the first
/// exception (by chunk order) raised by any chunk.
void run_chunks(ThreadPool& pool, const std::vector<ChunkRange>& chunks,
                const std::function<void(std::size_t, std::size_t,
                                         std::size_t)>& body) {
  submit_and_wait(pool, chunks.size(), [&](std::size_t c) {
    body(chunks[c].begin, chunks[c].end, c);
  });
}

}  // namespace

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t)>& fn) {
  // 4 chunks per worker gives decent load balance without tiny tasks.
  const auto chunks = make_chunks(begin, end, grain, pool.thread_count() * 4);
  run_chunks(pool, chunks,
             [&](std::size_t chunk_begin, std::size_t chunk_end, std::size_t) {
               for (std::size_t i = chunk_begin; i < chunk_end; ++i) fn(i);
             });
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for(ThreadPool::shared(), begin, end, 1, fn);
}

void parallel_dynamic(ThreadPool& pool, std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t workers = std::min(pool.thread_count(), end - begin);
  std::atomic<std::size_t> next{begin};
  submit_and_wait(pool, workers, [&](std::size_t) {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < end; i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  });
}

double parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end,
                       std::size_t grain,
                       const std::function<double(std::size_t, std::size_t)>& map,
                       const std::function<double(double, double)>& combine,
                       double identity) {
  const auto chunks = make_chunks(begin, end, grain, pool.thread_count() * 4);
  std::vector<double> partials(chunks.size(), identity);
  run_chunks(pool, chunks,
             [&](std::size_t chunk_begin, std::size_t chunk_end,
                 std::size_t index) {
               partials[index] = map(chunk_begin, chunk_end);
             });
  double result = identity;
  for (double partial : partials) result = combine(result, partial);
  return result;
}

}  // namespace fv::par
