// Shared-memory parallelism substrate: a fixed thread pool plus blocking
// parallel_for / parallel_reduce helpers.
//
// ForestView uses this for distance-matrix construction, per-pane rendering
// and SPELL's per-dataset scoring. The pool is deliberately simple (mutex +
// condition variable work queue): workloads here are coarse-grained chunks,
// so queue overhead is irrelevant, and determinism of *results* is preserved
// because chunks write disjoint output ranges.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fv::par {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, minimum 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins the workers (via stop()).
  ~ThreadPool();

  /// Drains outstanding work, joins the workers, and rejects all further
  /// submits. Idempotent; safe to race with submit() from other threads —
  /// a submit that loses the race throws instead of being silently dropped.
  void stop();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a task. Tasks must not block on other tasks in the same pool.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

  /// Tasks not yet finished: queued plus currently executing. A snapshot —
  /// by the time the caller reads it, work may have drained or arrived.
  /// Admission control (the serving layer's job queue) uses it as a load
  /// signal, never as a synchronization primitive.
  std::size_t pending() const;

  /// Process-wide pool for callers that do not manage their own.
  static ThreadPool& shared();

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [begin, end) across the pool, blocking until done.
/// Work is split into contiguous chunks of at least `grain` iterations.
/// The first exception thrown by any chunk is rethrown here.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain, const std::function<void(std::size_t)>& fn);

/// Convenience overload using the shared pool and an automatic grain.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// Dynamically scheduled parallel loop: workers pull the next index from a
/// shared atomic counter, so per-index cost may vary wildly (e.g. distance
/// tiles whose rows hit the masked slow path) without idling any worker.
/// Use parallel_for when iterations are uniform — static chunks touch the
/// counter once per chunk instead of once per index.
/// The first exception thrown by any worker is rethrown here.
void parallel_dynamic(ThreadPool& pool, std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& fn);

/// Chunked parallel reduction: `map` produces a partial result for a chunk
/// [chunk_begin, chunk_end); partials are combined left-to-right in chunk
/// order, so the result is deterministic for associative `combine`.
double parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end,
                       std::size_t grain,
                       const std::function<double(std::size_t, std::size_t)>& map,
                       const std::function<double(double, double)>& combine,
                       double identity);

}  // namespace fv::par
