#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "stats/ranking.hpp"
#include "util/error.hpp"

namespace fv::stats {

namespace {

struct PairAccumulator {
  std::size_t n = 0;
  double sum_a = 0, sum_b = 0, sum_aa = 0, sum_bb = 0, sum_ab = 0;

  void add(double a, double b) {
    ++n;
    sum_a += a;
    sum_b += b;
    sum_aa += a * a;
    sum_bb += b * b;
    sum_ab += a * b;
  }
};

double finish_centered(const PairAccumulator& acc) {
  if (acc.n < kMinCompletePairs) return 0.0;
  const double n = static_cast<double>(acc.n);
  const double cov = acc.sum_ab - acc.sum_a * acc.sum_b / n;
  const double var_a = acc.sum_aa - acc.sum_a * acc.sum_a / n;
  const double var_b = acc.sum_bb - acc.sum_b * acc.sum_b / n;
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  const double r = cov / std::sqrt(var_a * var_b);
  return std::clamp(r, -1.0, 1.0);
}

}  // namespace

double pearson(std::span<const float> a, std::span<const float> b) {
  FV_REQUIRE(a.size() == b.size(), "pearson requires equal-length profiles");
  PairAccumulator acc;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (is_missing(a[i]) || is_missing(b[i])) continue;
    acc.add(a[i], b[i]);
  }
  return finish_centered(acc);
}

double uncentered_pearson(std::span<const float> a, std::span<const float> b) {
  FV_REQUIRE(a.size() == b.size(),
             "uncentered_pearson requires equal-length profiles");
  PairAccumulator acc;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (is_missing(a[i]) || is_missing(b[i])) continue;
    acc.add(a[i], b[i]);
  }
  if (acc.n < kMinCompletePairs) return 0.0;
  if (acc.sum_aa <= 0.0 || acc.sum_bb <= 0.0) return 0.0;
  const double r = acc.sum_ab / std::sqrt(acc.sum_aa * acc.sum_bb);
  return std::clamp(r, -1.0, 1.0);
}

double spearman(std::span<const float> a, std::span<const float> b) {
  FV_REQUIRE(a.size() == b.size(), "spearman requires equal-length profiles");
  // Collect pairwise-complete observations, then correlate their mid-ranks.
  std::vector<float> xa, xb;
  xa.reserve(a.size());
  xb.reserve(b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (is_missing(a[i]) || is_missing(b[i])) continue;
    xa.push_back(a[i]);
    xb.push_back(b[i]);
  }
  if (xa.size() < kMinCompletePairs) return 0.0;
  const std::vector<double> ra = midranks(xa);
  const std::vector<double> rb = midranks(xb);
  PairAccumulator acc;
  for (std::size_t i = 0; i < ra.size(); ++i) acc.add(ra[i], rb[i]);
  return finish_centered(acc);
}

std::size_t z_normalize(std::span<float> values) {
  const Moments m = moments(values);
  if (m.count == 0) return 0;
  const double sd = m.stddev();
  for (float& v : values) {
    if (is_missing(v)) continue;
    v = sd > 0.0 ? static_cast<float>((v - m.mean) / sd) : 0.0f;
  }
  return m.count;
}

ZProfile ZProfile::from(std::span<const float> values) {
  ZProfile profile;
  profile.z.assign(values.begin(), values.end());
  profile.present = z_normalize(profile.z);
  for (float& v : profile.z) {
    if (is_missing(v)) v = 0.0f;
  }
  return profile;
}

double zdot(const ZProfile& a, const ZProfile& b) {
  FV_REQUIRE(a.z.size() == b.z.size(), "zdot requires equal-length profiles");
  const std::size_t n = std::min(a.present, b.present);
  if (n < kMinCompletePairs) return 0.0;
  double dot = 0.0;
  for (std::size_t i = 0; i < a.z.size(); ++i) {
    dot += static_cast<double>(a.z[i]) * static_cast<double>(b.z[i]);
  }
  const double r = dot / static_cast<double>(n - 1);
  return std::clamp(r, -1.0, 1.0);
}

}  // namespace fv::stats
