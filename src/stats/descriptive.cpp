#include "stats/descriptive.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace fv::stats {

Moments moments(std::span<const float> values) {
  Moments m;
  double m2 = 0.0;
  for (float v : values) {
    if (is_missing(v)) continue;
    ++m.count;
    const double delta = static_cast<double>(v) - m.mean;
    m.mean += delta / static_cast<double>(m.count);
    m2 += delta * (static_cast<double>(v) - m.mean);
  }
  if (m.count >= 2) {
    m.variance = m2 / static_cast<double>(m.count - 1);
  }
  if (m.count == 0) m.mean = std::numeric_limits<double>::quiet_NaN();
  return m;
}

double mean(std::span<const float> values) { return moments(values).mean; }

double variance(std::span<const float> values) {
  return moments(values).variance;
}

double median(std::span<const float> values) {
  std::vector<float> present;
  present.reserve(values.size());
  for (float v : values) {
    if (!is_missing(v)) present.push_back(v);
  }
  if (present.empty()) return std::numeric_limits<double>::quiet_NaN();
  const std::size_t mid = present.size() / 2;
  std::nth_element(present.begin(), present.begin() + static_cast<long>(mid),
                   present.end());
  const double upper = present[mid];
  if (present.size() % 2 == 1) return upper;
  const auto lower_it =
      std::max_element(present.begin(), present.begin() + static_cast<long>(mid));
  return (static_cast<double>(*lower_it) + upper) / 2.0;
}

double min_present(std::span<const float> values) {
  double best = std::numeric_limits<double>::quiet_NaN();
  for (float v : values) {
    if (is_missing(v)) continue;
    if (std::isnan(best) || v < best) best = v;
  }
  return best;
}

double max_present(std::span<const float> values) {
  double best = std::numeric_limits<double>::quiet_NaN();
  for (float v : values) {
    if (is_missing(v)) continue;
    if (std::isnan(best) || v > best) best = v;
  }
  return best;
}

std::size_t present_count(std::span<const float> values) {
  std::size_t n = 0;
  for (float v : values) {
    if (!is_missing(v)) ++n;
  }
  return n;
}

}  // namespace fv::stats
