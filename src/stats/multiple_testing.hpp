// Multiple-hypothesis corrections applied to GOLEM's per-term p-values.
#pragma once

#include <span>
#include <vector>

namespace fv::stats {

/// Bonferroni-adjusted p-values: min(1, p * m).
std::vector<double> bonferroni(std::span<const double> p_values);

/// Benjamini–Hochberg FDR-adjusted p-values (step-up, with the cumulative
/// minimum applied so the output is monotone in the input order statistics).
std::vector<double> benjamini_hochberg(std::span<const double> p_values);

}  // namespace fv::stats
