// Descriptive statistics over expression vectors.
//
// Expression values are stored as float with missing measurements encoded as
// quiet NaN (microarray files leave those cells empty). All reductions here
// accumulate in double and skip missing values, reporting how many values
// actually contributed.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>

namespace fv::stats {

/// True when the stored expression value is a missing measurement.
inline bool is_missing(float value) { return std::isnan(value); }

/// Sentinel used to encode a missing measurement.
inline float missing_value() { return std::nanf(""); }

/// Result of a single-pass moment computation over present values.
struct Moments {
  std::size_t count = 0;   ///< number of non-missing values
  double mean = 0.0;       ///< arithmetic mean of present values
  double variance = 0.0;   ///< unbiased sample variance (0 when count < 2)

  double stddev() const { return variance > 0.0 ? std::sqrt(variance) : 0.0; }
};

/// Computes count/mean/sample-variance in one numerically stable pass
/// (Welford). Missing values are skipped.
Moments moments(std::span<const float> values);

/// Mean of present values; NaN when every value is missing.
double mean(std::span<const float> values);

/// Unbiased sample variance of present values; 0 when fewer than 2 present.
double variance(std::span<const float> values);

/// Median of present values; NaN when every value is missing.
double median(std::span<const float> values);

/// Minimum over present values; NaN when every value is missing.
double min_present(std::span<const float> values);

/// Maximum over present values; NaN when every value is missing.
double max_present(std::span<const float> values);

/// Number of non-missing entries.
std::size_t present_count(std::span<const float> values);

}  // namespace fv::stats
