// Similarity measures between expression profiles.
//
// Pearson correlation (centered and uncentered, as in Eisen's Cluster 3.0)
// and Spearman rank correlation, all with pairwise-complete handling of
// missing values. SPELL and the clustering substrate are built on these.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fv::stats {

/// Correlations over fewer complete pairs than this are reported as 0
/// (uninformative). Shared by the scalar kernels here and the blocked
/// sim::SimilarityEngine so both paths agree on degenerate inputs.
inline constexpr std::size_t kMinCompletePairs = 3;

/// Pearson correlation over pairwise-complete observations.
/// Returns 0 when fewer than 3 pairs are complete or either side is
/// constant (the convention used by microarray clustering tools, which
/// treat degenerate profiles as uninformative rather than undefined).
double pearson(std::span<const float> a, std::span<const float> b);

/// Uncentered Pearson (cosine around zero) over pairwise-complete
/// observations — Cluster 3.0's "uncentered correlation". Same degenerate
/// conventions as pearson().
double uncentered_pearson(std::span<const float> a, std::span<const float> b);

/// Spearman rank correlation: Pearson over mid-ranks of the pairwise-complete
/// observations (average ranks for ties).
double spearman(std::span<const float> a, std::span<const float> b);

/// Z-normalizes in place: subtract mean, divide by sample stddev, both over
/// present values. Missing values stay missing; a constant vector becomes
/// all zeros. Returns the number of present values.
std::size_t z_normalize(std::span<float> values);

/// Pre-normalized profile for fast repeated correlation: missing values are
/// replaced by 0 after z-scoring, so a plain dot product divided by
/// (count-1) equals Pearson on complete data.
struct ZProfile {
  std::vector<float> z;     ///< z-scored values, 0 where missing
  std::size_t present = 0;  ///< number of present values

  static ZProfile from(std::span<const float> values);
};

/// Fast approximate Pearson between two ZProfiles of equal length:
/// exact when neither profile has missing values; with missing values it
/// treats absent cells as mean-valued (the standard compendium-search
/// approximation used so profiles can be normalized once, not per pair).
double zdot(const ZProfile& a, const ZProfile& b);

}  // namespace fv::stats
