#include "stats/ranking.hpp"

#include <algorithm>
#include <numeric>

namespace fv::stats {

std::vector<std::size_t> argsort(std::span<const float> values) {
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return values[a] < values[b];
                   });
  return order;
}

std::vector<std::size_t> argsort_descending(std::span<const double> values) {
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return values[a] > values[b];
                   });
  return order;
}

std::vector<double> midranks(std::span<const float> values) {
  const std::vector<std::size_t> order = argsort(values);
  std::vector<double> ranks(values.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    // Ranks are 1-based; a tie block spanning sorted positions [i, j] gets
    // the average rank (i + j) / 2 + 1.
    const double rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace fv::stats
