#include "stats/special.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fv::stats {

double log_gamma(double x) {
  FV_REQUIRE(x > 0.0, "log_gamma requires x > 0");
  // Lanczos approximation with g = 7, n = 9 coefficients.
  static constexpr double kCoefficients[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula keeps accuracy for small x.
    return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = kCoefficients[0];
  for (int i = 1; i < 9; ++i) {
    sum += kCoefficients[i] / (z + static_cast<double>(i));
  }
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
         std::log(sum);
}

double log_choose(std::uint64_t n, std::uint64_t k) {
  FV_REQUIRE(k <= n, "log_choose requires k <= n");
  if (k == 0 || k == n) return 0.0;
  return log_gamma(static_cast<double>(n) + 1.0) -
         log_gamma(static_cast<double>(k) + 1.0) -
         log_gamma(static_cast<double>(n - k) + 1.0);
}

namespace {

void check_hypergeometric_args(std::uint64_t N, std::uint64_t K,
                               std::uint64_t n) {
  FV_REQUIRE(K <= N, "annotated count K must not exceed population N");
  FV_REQUIRE(n <= N, "sample size n must not exceed population N");
}

}  // namespace

double hypergeometric_pmf(std::uint64_t k, std::uint64_t N, std::uint64_t K,
                          std::uint64_t n) {
  check_hypergeometric_args(N, K, n);
  // Support: max(0, n - (N - K)) <= k <= min(n, K).
  const std::uint64_t lo = (n > N - K) ? n - (N - K) : 0;
  const std::uint64_t hi = std::min(n, K);
  if (k < lo || k > hi) return 0.0;
  const double log_p = log_choose(K, k) + log_choose(N - K, n - k) -
                       log_choose(N, n);
  return std::exp(log_p);
}

double hypergeometric_upper_tail(std::uint64_t k, std::uint64_t N,
                                 std::uint64_t K, std::uint64_t n) {
  check_hypergeometric_args(N, K, n);
  if (k == 0) return 1.0;
  const std::uint64_t hi = std::min(n, K);
  if (k > hi) return 0.0;
  // Sum the PMF over [k, hi]; summing the (shorter) upper tail directly is
  // stable because terms decay geometrically past the mode.
  double total = 0.0;
  for (std::uint64_t i = k; i <= hi; ++i) {
    total += hypergeometric_pmf(i, N, K, n);
  }
  return std::min(total, 1.0);
}

double hypergeometric_lower_tail(std::uint64_t k, std::uint64_t N,
                                 std::uint64_t K, std::uint64_t n) {
  check_hypergeometric_args(N, K, n);
  const std::uint64_t hi = std::min(n, K);
  const std::uint64_t upper = std::min(k, hi);
  double total = 0.0;
  for (std::uint64_t i = 0; i <= upper; ++i) {
    total += hypergeometric_pmf(i, N, K, n);
  }
  return std::min(total, 1.0);
}

double fisher_exact_enrichment(std::uint64_t in_set_annotated,
                               std::uint64_t in_set_total,
                               std::uint64_t population_annotated,
                               std::uint64_t population_total) {
  FV_REQUIRE(in_set_annotated <= in_set_total,
             "set annotation count exceeds set size");
  FV_REQUIRE(in_set_total <= population_total,
             "set size exceeds population size");
  FV_REQUIRE(population_annotated <= population_total,
             "population annotation count exceeds population size");
  return hypergeometric_upper_tail(in_set_annotated, population_total,
                                   population_annotated, in_set_total);
}

}  // namespace fv::stats
