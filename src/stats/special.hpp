// Special functions and exact tests used by GOLEM's enrichment analysis.
//
// Everything works in log space so that compendium-scale parameters
// (N ≈ 6000 genes, K up to thousands of annotations) stay finite.
#pragma once

#include <cstdint>

namespace fv::stats {

/// Natural log of the gamma function (Lanczos approximation, |err| < 1e-10
/// for x > 0).
double log_gamma(double x);

/// log(n choose k); requires 0 <= k <= n.
double log_choose(std::uint64_t n, std::uint64_t k);

/// Hypergeometric PMF: probability of drawing exactly k annotated genes when
/// sampling n genes without replacement from a population of N genes of
/// which K are annotated.
double hypergeometric_pmf(std::uint64_t k, std::uint64_t N, std::uint64_t K,
                          std::uint64_t n);

/// Upper-tail hypergeometric probability P[X >= k] — the classic
/// over-representation ("enrichment") p-value used by GOLEM / GO term
/// finders. Returns 1 when k == 0.
double hypergeometric_upper_tail(std::uint64_t k, std::uint64_t N,
                                 std::uint64_t K, std::uint64_t n);

/// Lower-tail hypergeometric probability P[X <= k] (depletion).
double hypergeometric_lower_tail(std::uint64_t k, std::uint64_t N,
                                 std::uint64_t K, std::uint64_t n);

/// One-sided Fisher exact test for enrichment of the 2x2 table
///   [in_set & annotated, in_set & not] / [out & annotated, out & not].
/// Identical to hypergeometric_upper_tail with the matching parameters.
double fisher_exact_enrichment(std::uint64_t in_set_annotated,
                               std::uint64_t in_set_total,
                               std::uint64_t population_annotated,
                               std::uint64_t population_total);

}  // namespace fv::stats
