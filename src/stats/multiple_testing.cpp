#include "stats/multiple_testing.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace fv::stats {

std::vector<double> bonferroni(std::span<const double> p_values) {
  const double m = static_cast<double>(p_values.size());
  std::vector<double> adjusted;
  adjusted.reserve(p_values.size());
  for (double p : p_values) {
    FV_REQUIRE(p >= 0.0 && p <= 1.0, "p-values must lie in [0, 1]");
    adjusted.push_back(std::min(1.0, p * m));
  }
  return adjusted;
}

std::vector<double> benjamini_hochberg(std::span<const double> p_values) {
  const std::size_t m = p_values.size();
  std::vector<double> adjusted(m, 0.0);
  if (m == 0) return adjusted;

  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return p_values[a] < p_values[b];
                   });

  // Walk from the largest p downward, applying q_i = p_i * m / rank and the
  // running minimum that makes the adjusted values monotone.
  double running_min = 1.0;
  for (std::size_t i = m; i-- > 0;) {
    const double p = p_values[order[i]];
    FV_REQUIRE(p >= 0.0 && p <= 1.0, "p-values must lie in [0, 1]");
    const double q =
        p * static_cast<double>(m) / static_cast<double>(i + 1);
    running_min = std::min(running_min, q);
    adjusted[order[i]] = std::min(running_min, 1.0);
  }
  return adjusted;
}

}  // namespace fv::stats
