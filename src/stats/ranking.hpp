// Ranking utilities: argsort and mid-ranks (used by Spearman correlation and
// by SPELL's rank-combined gene ordering).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fv::stats {

/// Indices that would sort `values` ascending (stable for ties).
std::vector<std::size_t> argsort(std::span<const float> values);

/// Indices that would sort `values` descending (stable for ties).
std::vector<std::size_t> argsort_descending(std::span<const double> values);

/// Mid-ranks (1-based; ties get the average of their rank range).
std::vector<double> midranks(std::span<const float> values);

}  // namespace fv::stats
