#include "cluster/hclust.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>
#include <utility>

namespace fv::cluster {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

/// Full Lance–Williams update: the distance from the merged cluster A∪B to
/// a third cluster K, as α_a·d(A,K) + α_b·d(B,K) + β·d(A,B) + γ·|d(A,K) −
/// d(B,K)|. Ward/centroid/median operate on squared Euclidean distances;
/// their β (and Ward's size-dependent α) terms are what makes them need
/// d(A,B) — the reducible trio never reads it.
double lance_williams(Linkage linkage, double d_ak, double d_bk, double d_ab,
                      std::size_t size_a, std::size_t size_b,
                      std::size_t size_k) {
  const double na = static_cast<double>(size_a);
  const double nb = static_cast<double>(size_b);
  const double nk = static_cast<double>(size_k);
  switch (linkage) {
    case Linkage::kSingle:
      return std::min(d_ak, d_bk);
    case Linkage::kComplete:
      return std::max(d_ak, d_bk);
    case Linkage::kAverage:
      return (na * d_ak + nb * d_bk) / (na + nb);
    case Linkage::kWard:
      return ((na + nk) * d_ak + (nb + nk) * d_bk - nk * d_ab) /
             (na + nb + nk);
    case Linkage::kCentroid:
      return (na * d_ak + nb * d_bk) / (na + nb) -
             na * nb * d_ab / ((na + nb) * (na + nb));
    case Linkage::kMedian:
      return 0.5 * d_ak + 0.5 * d_bk - 0.25 * d_ab;
  }
  FV_ASSERT(false, "unhandled linkage");
  return 0.0;
}

/// Precomputed condensed row bases: offset(i, j) for i < j is
/// row_base[i] + (j - i - 1), so hot scans are adds only.
std::vector<std::size_t> condensed_row_bases(std::size_t n) {
  std::vector<std::size_t> row_base(n, 0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    row_base[i] = condensed_index(i, i + 1, n);
  }
  return row_base;
}

std::vector<Merge> nn_chain_agglomerate(DistanceMatrix& distances,
                                        Linkage linkage) {
  const std::size_t n = distances.size();
  std::vector<Merge> merges;
  merges.reserve(n - 1);

  const std::span<float> v = distances.condensed();
  const std::vector<std::size_t> row_base = condensed_row_bases(n);
  const auto cell = [&](std::size_t i, std::size_t j) -> float& {
    return i < j ? v[row_base[i] + (j - i - 1)] : v[row_base[j] + (i - j - 1)];
  };

  std::vector<std::uint8_t> active(n, 1);
  std::vector<std::size_t> cluster_size(n, 1);
  std::vector<int> node_id(n);
  std::iota(node_id.begin(), node_id.end(), 0);

  // The nearest-neighbor chain: d(chain[t], chain[t+1]) is non-increasing
  // in t, so the chain can never cycle and its tip always reaches a
  // reciprocal nearest-neighbor pair. Merging an RNN pair is correct for
  // reducible linkages (single/complete/average/Ward): a merge elsewhere
  // can never bring two clusters closer together, so the surviving chain
  // prefix stays valid and is resumed, not rebuilt. Every loop iteration
  // either grows the chain (each cluster enters at most once between
  // merges) or merges, giving O(n) scans of O(n) each between consecutive
  // merges amortized — O(n²) total.
  std::vector<std::size_t> chain;
  chain.reserve(n);
  std::size_t lowest_active = 0;  // restart hint; only ever moves forward

  for (std::size_t step = 0; step + 1 < n; ++step) {
    if (chain.empty()) {
      while (active[lowest_active] == 0) ++lowest_active;
      chain.push_back(lowest_active);
    }
    for (;;) {
      const std::size_t x = chain.back();
      // Nearest active neighbor of x. The previous chain element seeds the
      // scan and only a strictly smaller distance displaces it: on ties the
      // chain turns back into a reciprocal pair instead of wandering along
      // an equal-distance plateau forever.
      std::size_t best_j = n;
      float best = kInf;
      if (chain.size() >= 2) {
        best_j = chain[chain.size() - 2];
        best = cell(x, best_j);
      }
      // Column sweep j < x (descending stride), then the contiguous row
      // segment j > x.
      for (std::size_t j = 0; j < x; ++j) {
        if (active[j] == 0) continue;
        const float d = v[row_base[j] + (x - j - 1)];
        if (d < best) {
          best = d;
          best_j = j;
        }
      }
      const float* row = v.data() + row_base[x];
      for (std::size_t j = x + 1; j < n; ++j) {
        if (active[j] == 0) continue;
        const float d = row[j - x - 1];
        if (d < best) {
          best = d;
          best_j = j;
        }
      }
      FV_ASSERT(best_j < n, "no active neighbor found");
      if (chain.size() >= 2 && best_j == chain[chain.size() - 2]) {
        // Reciprocal pair (x, best_j): merge, keeping slot x.
        chain.pop_back();
        chain.pop_back();
        const std::size_t a = x;
        const std::size_t b = best_j;
        merges.push_back(
            Merge{node_id[a], node_id[b], static_cast<double>(best)});
        for (std::size_t k = 0; k < n; ++k) {
          if (active[k] == 0 || k == a || k == b) continue;
          const double updated = lance_williams(
              linkage, cell(a, k), cell(b, k), best, cluster_size[a],
              cluster_size[b], cluster_size[k]);
          cell(a, k) = static_cast<float>(updated);
        }
        active[b] = 0;
        cluster_size[a] += cluster_size[b];
        node_id[a] = static_cast<int>(n + step);
        break;
      }
      chain.push_back(best_j);
    }
  }
  return merges;
}

/// Indexed binary min-heap over cluster slots keyed by (distance, slot) —
/// the slot tiebreak makes pops deterministic under equal keys. Supports
/// update-key (up or down) and remove by slot id, the two operations the
/// lazy-repair loop of the generic agglomerator needs.
class CandidateHeap {
 public:
  /// Builds over slots 0..n-1 with the given keys (O(n) heapify).
  explicit CandidateHeap(std::vector<float> keys)
      : keys_(std::move(keys)), heap_(keys_.size()), pos_(keys_.size()) {
    std::iota(heap_.begin(), heap_.end(), 0u);
    std::iota(pos_.begin(), pos_.end(), 0u);
    for (std::size_t h = heap_.size() / 2; h-- > 0;) sift_down(h);
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t top() const { return heap_.front(); }
  float key(std::size_t slot) const { return keys_[slot]; }

  void update(std::size_t slot, float key) {
    keys_[slot] = key;
    const std::size_t h = pos_[slot];
    if (!sift_up(h)) sift_down(h);
  }

  void remove(std::size_t slot) {
    const std::size_t h = pos_[slot];
    const std::size_t last = heap_.size() - 1;
    if (h != last) {
      move(heap_[last], h);
      heap_.pop_back();
      if (!sift_up(h)) sift_down(h);
    } else {
      heap_.pop_back();
    }
  }

 private:
  bool less(std::size_t a, std::size_t b) const {
    return keys_[a] < keys_[b] || (keys_[a] == keys_[b] && a < b);
  }
  void move(std::size_t slot, std::size_t h) {
    heap_[h] = static_cast<std::uint32_t>(slot);
    pos_[slot] = static_cast<std::uint32_t>(h);
  }
  bool sift_up(std::size_t h) {
    const std::size_t slot = heap_[h];
    bool moved = false;
    while (h > 0) {
      const std::size_t parent = (h - 1) / 2;
      if (!less(slot, heap_[parent])) break;
      move(heap_[parent], h);
      h = parent;
      moved = true;
    }
    move(slot, h);
    return moved;
  }
  void sift_down(std::size_t h) {
    const std::size_t slot = heap_[h];
    for (;;) {
      std::size_t child = 2 * h + 1;
      if (child >= heap_.size()) break;
      if (child + 1 < heap_.size() && less(heap_[child + 1], heap_[child])) {
        ++child;
      }
      if (!less(heap_[child], slot)) break;
      move(heap_[child], h);
      h = child;
    }
    move(slot, h);
  }

  std::vector<float> keys_;
  std::vector<std::uint32_t> heap_;  ///< heap position -> slot
  std::vector<std::uint32_t> pos_;   ///< slot -> heap position
};

/// Generic heap agglomerator (Müllner's generic_linkage shape): each slot i
/// keeps a *candidate* nearest neighbor nn[i] among slots j > i with cached
/// distance key[i], all in an indexed min-heap. The key invariant is that
/// key[i] is always a LOWER BOUND on the true minimum of row i:
///
///  * merges only rewrite cells of the surviving row; when a rewritten cell
///    (k, new) drops below key[k] for an owner row k < new, key[k] is
///    lowered on the spot, and the surviving row is rescanned exactly;
///  * cells that grow or disappear (their cluster died) leave key[i]
///    stale-LOW, never stale-high.
///
/// So when the heap minimum's cached pair is still live and its cell still
/// equals the cached key, that pair is a true global minimum and is merged;
/// otherwise the popped slot's row is rescanned (lazy deletion / repair)
/// and the loop retries. Non-reducible linkages (centroid/median) are
/// exactly the case where cells can shrink after a merge — the decrease
/// hook above is what the NN-chain fundamentally lacks. O(n²) typical
/// (every repair is paid for by a stale candidate), O(n³) adversarial
/// worst case, O(n) memory beyond the condensed matrix.
std::vector<Merge> heap_agglomerate(DistanceMatrix& distances,
                                    Linkage linkage) {
  const std::size_t n = distances.size();
  std::vector<Merge> merges;
  merges.reserve(n - 1);

  const std::span<float> v = distances.condensed();
  const std::vector<std::size_t> row_base = condensed_row_bases(n);
  const auto cell = [&](std::size_t i, std::size_t j) -> float& {
    return i < j ? v[row_base[i] + (j - i - 1)] : v[row_base[j] + (i - j - 1)];
  };

  std::vector<std::uint8_t> active(n, 1);
  std::vector<std::size_t> cluster_size(n, 1);
  std::vector<int> node_id(n);
  std::iota(node_id.begin(), node_id.end(), 0);
  std::vector<std::uint32_t> nn(n, 0);

  // Exact nearest neighbor of row i among active slots j > i; kInf when no
  // such slot remains (the row then owns no pairs and never merges as an
  // owner).
  const auto rescan_row = [&](std::size_t i) -> float {
    float best = kInf;
    std::uint32_t best_j = static_cast<std::uint32_t>(n);
    const float* row = v.data() + row_base[i];
    for (std::size_t j = i + 1; j < n; ++j) {
      if (active[j] == 0) continue;
      const float d = row[j - i - 1];
      if (d < best) {
        best = d;
        best_j = static_cast<std::uint32_t>(j);
      }
    }
    nn[i] = best_j;
    return best;
  };

  std::vector<float> keys(n, kInf);
  for (std::size_t i = 0; i + 1 < n; ++i) keys[i] = rescan_row(i);
  CandidateHeap heap(std::move(keys));

  for (std::size_t step = 0; step + 1 < n; ++step) {
    // Pop-and-repair until the heap minimum's candidate is live and its
    // cached distance matches the current cell.
    std::size_t a, b;
    for (;;) {
      a = heap.top();
      b = nn[a];
      const float cached = heap.key(a);
      if (b < n && active[b] != 0 && cell(a, b) == cached) break;
      heap.update(a, rescan_row(a));
    }
    const double d_ab = static_cast<double>(heap.key(a));
    merges.push_back(Merge{node_id[a], node_id[b], d_ab});

    // The merged cluster lives in slot b (the larger index), so every
    // remaining row k < b can still point at it as a candidate.
    for (std::size_t k = 0; k < n; ++k) {
      if (active[k] == 0 || k == a || k == b) continue;
      const double updated =
          lance_williams(linkage, cell(a, k), cell(b, k), d_ab,
                         cluster_size[a], cluster_size[b], cluster_size[k]);
      const float d = static_cast<float>(updated);
      cell(b, k) = d;
      // Keep the lower-bound invariant when a cell shrinks below its owner
      // row's cached key (only possible for non-reducible linkages).
      if (k < b && d < heap.key(k)) {
        nn[k] = static_cast<std::uint32_t>(b);
        heap.update(k, d);
      }
    }
    active[a] = 0;
    heap.remove(a);
    cluster_size[b] += cluster_size[a];
    node_id[b] = static_cast<int>(n + step);
    heap.update(b, rescan_row(b));
  }
  return merges;
}

}  // namespace

std::vector<Merge> agglomerate(DistanceMatrix distances, Linkage linkage,
                               Agglomerator algorithm) {
  const std::size_t n = distances.size();
  FV_REQUIRE(n >= 1, "cannot cluster an empty set");
  if (n == 1) return {};

  if (algorithm == Agglomerator::kAuto) {
    algorithm = linkage_is_reducible(linkage) ? Agglomerator::kNNChain
                                              : Agglomerator::kHeap;
  }
  FV_REQUIRE(
      algorithm == Agglomerator::kHeap || linkage_is_reducible(linkage),
      "NN-chain requires a reducible linkage (single/complete/average/Ward); "
      "median/centroid need the heap agglomerator");

  std::vector<Merge> merges = algorithm == Agglomerator::kHeap
                                  ? heap_agglomerate(distances, linkage)
                                  : nn_chain_agglomerate(distances, linkage);

  if (linkage_uses_squared_distances(linkage)) {
    // The recurrence ran on squared Euclidean distances; report heights in
    // plain distance units. Rounding can leave a merge cost a hair below
    // zero on near-coincident points — clamp before the root. sqrt is
    // monotone, so canonical ordering is unaffected.
    for (Merge& merge : merges) {
      merge.distance = std::sqrt(std::max(merge.distance, 0.0));
    }
  }

  // Both paths emit merges out of height order (a deep chain merges its
  // tightest tail pair first; the heap interleaves repair). Restore the
  // canonical relabeled form every consumer expects — carrying, not
  // clamping, the genuine inversions median/centroid produce.
  return canonicalize_merges(std::move(merges), n,
                             linkage_can_invert(linkage)
                                 ? HeightOrder::kAllowInversions
                                 : HeightOrder::kMonotone);
}

std::vector<Merge> canonicalize_merges(std::vector<Merge> merges,
                                       std::size_t leaf_count,
                                       HeightOrder order) {
  const std::size_t n = leaf_count;
  const std::size_t m = merges.size();
  // pending[k]: internal children of merge k not yet emitted.
  // consumer[k]: index of the merge that consumes node n+k, or -1 (root).
  std::vector<int> pending(m, 0);
  std::vector<int> consumer(m, -1);
  for (std::size_t k = 0; k < m; ++k) {
    for (const int child : {merges[k].left, merges[k].right}) {
      FV_REQUIRE(child >= 0 && static_cast<std::size_t>(child) < n + k,
                 "merge child must be a leaf or an earlier merge");
      if (static_cast<std::size_t>(child) >= n) {
        const std::size_t c = static_cast<std::size_t>(child) - n;
        FV_REQUIRE(consumer[c] < 0, "merge node used as a child twice");
        consumer[c] = static_cast<int>(k);
        ++pending[k];
      }
    }
  }

  // Dependency-aware ordering: repeatedly emit the lowest merge whose
  // children are already emitted. For exact monotone heights this is plain
  // sort-by-height; the dependency gate additionally keeps children ahead
  // of parents when heights dip — the ~1 ulp inversions average linkage can
  // produce (clamped under kMonotone) and the genuine inversions of
  // median/centroid (preserved under kAllowInversions). Ties fall back to
  // emission order, so already-canonical input passes through unchanged.
  using Entry = std::pair<double, std::size_t>;  // (height, emission index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> ready;
  for (std::size_t k = 0; k < m; ++k) {
    if (pending[k] == 0) ready.push({merges[k].distance, k});
  }
  std::vector<Merge> out;
  out.reserve(m);
  std::vector<int> new_id(m, -1);
  while (!ready.empty()) {
    const std::size_t k = ready.top().second;
    ready.pop();
    Merge merge = merges[k];
    if (merge.left >= static_cast<int>(n)) {
      merge.left = new_id[static_cast<std::size_t>(merge.left) - n];
    }
    if (merge.right >= static_cast<int>(n)) {
      merge.right = new_id[static_cast<std::size_t>(merge.right) - n];
    }
    if (order == HeightOrder::kMonotone && !out.empty() &&
        merge.distance < out.back().distance) {
      // A dependency-forced dip. Legal monotone inputs only produce these
      // at float rounding magnitude; clamp so the emitted sequence is
      // non-decreasing.
      FV_REQUIRE(out.back().distance - merge.distance <=
                     1e-3 * std::max(1.0, std::abs(out.back().distance)),
                 "merge heights invert beyond rounding noise — input is not "
                 "a monotone hierarchy (use HeightOrder::kAllowInversions "
                 "for median/centroid merge lists)");
      merge.distance = out.back().distance;
    }
    new_id[k] = static_cast<int>(n + out.size());
    out.push_back(merge);
    if (consumer[k] >= 0 && --pending[consumer[k]] == 0) {
      ready.push({merges[consumer[k]].distance,
                  static_cast<std::size_t>(consumer[k])});
    }
  }
  FV_REQUIRE(out.size() == m, "merge list contains an unreachable cycle");
  return out;
}

expr::HierTree merges_to_tree(const std::vector<Merge>& merges,
                              std::size_t leaf_count,
                              double (*similarity_from_distance)(double),
                              HeightOrder order) {
  FV_REQUIRE(leaf_count >= 1, "tree needs at least one leaf");
  FV_REQUIRE(merges.size() + 1 == leaf_count,
             "merge count must be leaf_count - 1");
  const std::vector<Merge> canonical =
      canonicalize_merges(merges, leaf_count, order);
  expr::HierTree tree(leaf_count);
  for (const Merge& merge : canonical) {
    tree.add_node(merge.left, merge.right,
                  similarity_from_distance(merge.distance));
  }
  FV_ASSERT(tree.is_complete(), "agglomeration produced a broken tree");
  return tree;
}

double correlation_similarity(double distance) { return 1.0 - distance; }
double negated_similarity(double distance) { return -distance; }

namespace {

double (*similarity_converter(Metric metric, Linkage linkage))(double) {
  return metric == Metric::kEuclidean ||
                 linkage_uses_squared_distances(linkage)
             ? negated_similarity
             : correlation_similarity;
}

HeightOrder tree_order(Linkage linkage) {
  return linkage_can_invert(linkage) ? HeightOrder::kAllowInversions
                                     : HeightOrder::kMonotone;
}

DistanceMatrix distances_for_linkage(const expr::ExpressionMatrix& matrix,
                                     Metric metric, Linkage linkage,
                                     bool columns, par::ThreadPool& pool) {
  if (linkage_uses_squared_distances(linkage)) {
    FV_REQUIRE(metric == Metric::kEuclidean,
               "Ward/centroid/median linkages operate on squared Euclidean "
               "distances; use Metric::kEuclidean");
    return columns ? column_squared_distances(matrix, pool)
                   : row_squared_distances(matrix, pool);
  }
  return columns ? column_distances(matrix, metric, pool)
                 : row_distances(matrix, metric, pool);
}

}  // namespace

std::vector<Merge> cluster_genes(expr::Dataset& dataset, Metric metric,
                                 Linkage linkage, par::ThreadPool& pool) {
  auto merges = agglomerate(
      distances_for_linkage(dataset.values(), metric, linkage, false, pool),
      linkage);
  dataset.attach_gene_tree(merges_to_tree(merges, dataset.gene_count(),
                                          similarity_converter(metric, linkage),
                                          tree_order(linkage)));
  return merges;
}

std::vector<Merge> cluster_arrays(expr::Dataset& dataset, Metric metric,
                                  Linkage linkage, par::ThreadPool& pool) {
  auto merges = agglomerate(
      distances_for_linkage(dataset.values(), metric, linkage, true, pool),
      linkage);
  dataset.attach_array_tree(merges_to_tree(
      merges, dataset.condition_count(), similarity_converter(metric, linkage),
      tree_order(linkage)));
  return merges;
}

std::vector<std::vector<std::size_t>> cut_tree_at_similarity(
    const expr::HierTree& tree, double min_similarity) {
  FV_REQUIRE(tree.node_count() > 0, "cannot cut an empty tree");
  // Subtree minimum similarity per internal node, computable in one forward
  // pass (children always precede parents in id order). On monotone trees
  // this equals the node's own similarity; on inverted (median/centroid)
  // trees it is what the "ALL internal merges clear the threshold" contract
  // actually needs — a node can sit above the threshold while a merge
  // beneath it dips below.
  const std::size_t leaves = tree.leaf_count();
  std::vector<double> subtree_min(tree.node_count(),
                                  std::numeric_limits<double>::infinity());
  for (std::size_t id = leaves; id < tree.node_count(); ++id) {
    const expr::HierTreeNode& node = tree.node(static_cast<int>(id));
    double low = node.similarity;
    for (const int child : {node.left, node.right}) {
      if (!tree.is_leaf(child)) {
        low = std::min(low, subtree_min[static_cast<std::size_t>(child)]);
      }
    }
    subtree_min[id] = low;
  }
  std::vector<std::vector<std::size_t>> clusters;
  std::vector<int> stack{tree.root()};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (tree.is_leaf(id)) {
      clusters.push_back({static_cast<std::size_t>(id)});
      continue;
    }
    if (subtree_min[static_cast<std::size_t>(id)] >= min_similarity) {
      clusters.push_back(tree.leaves_under(id));
    } else {
      const expr::HierTreeNode& node = tree.node(id);
      stack.push_back(node.right);
      stack.push_back(node.left);
    }
  }
  return clusters;
}

std::vector<std::vector<std::size_t>> cut_tree_k(const expr::HierTree& tree,
                                                 std::size_t k) {
  FV_REQUIRE(k >= 1 && k <= tree.leaf_count(),
             "cluster count must lie in [1, leaf_count]");
  // The last k-1 merges (highest node ids) are undone. Children precede
  // parents in id order, so the id set >= boundary is closed under parents
  // — the traversal below always yields exactly k clusters, monotone
  // heights or not; on monotone trees "last k-1 ids" is also "highest k-1
  // merges".
  const std::size_t boundary = tree.node_count() - (k - 1);
  std::vector<std::vector<std::size_t>> clusters;
  std::vector<int> stack{tree.root()};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (!tree.is_leaf(id) && static_cast<std::size_t>(id) >= boundary) {
      const expr::HierTreeNode& node = tree.node(id);
      stack.push_back(node.right);
      stack.push_back(node.left);
    } else {
      clusters.push_back(tree.leaves_under(id));
    }
  }
  return clusters;
}

}  // namespace fv::cluster
