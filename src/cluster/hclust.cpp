#include "cluster/hclust.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>
#include <utility>

namespace fv::cluster {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

double lance_williams(Linkage linkage, double d_ak, double d_bk,
                      std::size_t size_a, std::size_t size_b) {
  switch (linkage) {
    case Linkage::kSingle:
      return std::min(d_ak, d_bk);
    case Linkage::kComplete:
      return std::max(d_ak, d_bk);
    case Linkage::kAverage:
      return (static_cast<double>(size_a) * d_ak +
              static_cast<double>(size_b) * d_bk) /
             static_cast<double>(size_a + size_b);
  }
  FV_ASSERT(false, "unhandled linkage");
  return 0.0;
}

}  // namespace

std::vector<Merge> agglomerate(DistanceMatrix distances, Linkage linkage) {
  const std::size_t n = distances.size();
  FV_REQUIRE(n >= 1, "cannot cluster an empty set");
  std::vector<Merge> merges;
  if (n == 1) return merges;
  merges.reserve(n - 1);

  // Hot-path condensed addressing: offset(i, j) for i < j is
  // row_base[i] + (j - i - 1), so with the bases precomputed every access
  // in the scans below is adds only — no per-access multiply/divide.
  const std::span<float> v = distances.condensed();
  std::vector<std::size_t> row_base(n, 0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    row_base[i] = condensed_index(i, i + 1, n);
  }
  const auto cell = [&](std::size_t i, std::size_t j) -> float& {
    return i < j ? v[row_base[i] + (j - i - 1)] : v[row_base[j] + (i - j - 1)];
  };

  std::vector<std::uint8_t> active(n, 1);
  std::vector<std::size_t> cluster_size(n, 1);
  std::vector<int> node_id(n);
  std::iota(node_id.begin(), node_id.end(), 0);

  // The nearest-neighbor chain: d(chain[t], chain[t+1]) is non-increasing
  // in t, so the chain can never cycle and its tip always reaches a
  // reciprocal nearest-neighbor pair. Merging an RNN pair is correct for
  // reducible linkages (Lance–Williams single/complete/average): a merge
  // elsewhere can never bring two clusters closer together, so the
  // surviving chain prefix stays valid and is resumed, not rebuilt. Every
  // loop iteration either grows the chain (each cluster enters at most
  // once between merges) or merges, giving O(n) scans of O(n) each between
  // consecutive merges amortized — O(n²) total.
  std::vector<std::size_t> chain;
  chain.reserve(n);
  std::size_t lowest_active = 0;  // restart hint; only ever moves forward

  for (std::size_t step = 0; step + 1 < n; ++step) {
    if (chain.empty()) {
      while (active[lowest_active] == 0) ++lowest_active;
      chain.push_back(lowest_active);
    }
    for (;;) {
      const std::size_t x = chain.back();
      // Nearest active neighbor of x. The previous chain element seeds the
      // scan and only a strictly smaller distance displaces it: on ties the
      // chain turns back into a reciprocal pair instead of wandering along
      // an equal-distance plateau forever.
      std::size_t best_j = n;
      float best = kInf;
      if (chain.size() >= 2) {
        best_j = chain[chain.size() - 2];
        best = cell(x, best_j);
      }
      // Column sweep j < x (descending stride), then the contiguous row
      // segment j > x.
      for (std::size_t j = 0; j < x; ++j) {
        if (active[j] == 0) continue;
        const float d = v[row_base[j] + (x - j - 1)];
        if (d < best) {
          best = d;
          best_j = j;
        }
      }
      const float* row = v.data() + row_base[x];
      for (std::size_t j = x + 1; j < n; ++j) {
        if (active[j] == 0) continue;
        const float d = row[j - x - 1];
        if (d < best) {
          best = d;
          best_j = j;
        }
      }
      FV_ASSERT(best_j < n, "no active neighbor found");
      if (chain.size() >= 2 && best_j == chain[chain.size() - 2]) {
        // Reciprocal pair (x, best_j): merge, keeping slot x.
        chain.pop_back();
        chain.pop_back();
        const std::size_t a = x;
        const std::size_t b = best_j;
        merges.push_back(
            Merge{node_id[a], node_id[b], static_cast<double>(best)});
        for (std::size_t k = 0; k < n; ++k) {
          if (active[k] == 0 || k == a || k == b) continue;
          const double updated =
              lance_williams(linkage, cell(a, k), cell(b, k),
                             cluster_size[a], cluster_size[b]);
          cell(a, k) = static_cast<float>(updated);
        }
        active[b] = 0;
        cluster_size[a] += cluster_size[b];
        node_id[a] = static_cast<int>(n + step);
        break;
      }
      chain.push_back(best_j);
    }
  }
  // Chain merges emerge out of height order (a deep chain merges its
  // tightest tail pair first); restore the canonical sorted/relabeled form
  // every consumer expects.
  return canonicalize_merges(std::move(merges), n);
}

std::vector<Merge> canonicalize_merges(std::vector<Merge> merges,
                                       std::size_t leaf_count) {
  const std::size_t n = leaf_count;
  const std::size_t m = merges.size();
  // pending[k]: internal children of merge k not yet emitted.
  // consumer[k]: index of the merge that consumes node n+k, or -1 (root).
  std::vector<int> pending(m, 0);
  std::vector<int> consumer(m, -1);
  for (std::size_t k = 0; k < m; ++k) {
    for (const int child : {merges[k].left, merges[k].right}) {
      FV_REQUIRE(child >= 0 && static_cast<std::size_t>(child) < n + k,
                 "merge child must be a leaf or an earlier merge");
      if (static_cast<std::size_t>(child) >= n) {
        const std::size_t c = static_cast<std::size_t>(child) - n;
        FV_REQUIRE(consumer[c] < 0, "merge node used as a child twice");
        consumer[c] = static_cast<int>(k);
        ++pending[k];
      }
    }
  }

  // Dependency-aware ordering: repeatedly emit the lowest merge whose
  // children are already emitted. For exact reducible-linkage heights this
  // is plain sort-by-height; the dependency gate additionally absorbs the
  // rounding-level inversions average linkage can produce (its updates are
  // order-sensitive at ~1 ulp), where a bare sort could order a parent
  // before its child. Ties fall back to emission order, so already-
  // canonical input passes through unchanged.
  using Entry = std::pair<double, std::size_t>;  // (height, emission index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> ready;
  for (std::size_t k = 0; k < m; ++k) {
    if (pending[k] == 0) ready.push({merges[k].distance, k});
  }
  std::vector<Merge> out;
  out.reserve(m);
  std::vector<int> new_id(m, -1);
  while (!ready.empty()) {
    const std::size_t k = ready.top().second;
    ready.pop();
    Merge merge = merges[k];
    if (merge.left >= static_cast<int>(n)) {
      merge.left = new_id[static_cast<std::size_t>(merge.left) - n];
    }
    if (merge.right >= static_cast<int>(n)) {
      merge.right = new_id[static_cast<std::size_t>(merge.right) - n];
    }
    if (!out.empty() && merge.distance < out.back().distance) {
      // A dependency-forced dip. Legal inputs only produce these at float
      // rounding magnitude; clamp so the emitted sequence is monotone (the
      // contract cut_tree_k's id-order cut relies on).
      FV_REQUIRE(out.back().distance - merge.distance <=
                     1e-3 * std::max(1.0, std::abs(out.back().distance)),
                 "merge heights invert beyond rounding noise — input is not "
                 "a reducible-linkage hierarchy");
      merge.distance = out.back().distance;
    }
    new_id[k] = static_cast<int>(n + out.size());
    out.push_back(merge);
    if (consumer[k] >= 0 && --pending[consumer[k]] == 0) {
      ready.push({merges[consumer[k]].distance,
                  static_cast<std::size_t>(consumer[k])});
    }
  }
  FV_REQUIRE(out.size() == m, "merge list contains an unreachable cycle");
  return out;
}

expr::HierTree merges_to_tree(const std::vector<Merge>& merges,
                              std::size_t leaf_count,
                              double (*similarity_from_distance)(double)) {
  FV_REQUIRE(leaf_count >= 1, "tree needs at least one leaf");
  FV_REQUIRE(merges.size() + 1 == leaf_count,
             "merge count must be leaf_count - 1");
  const std::vector<Merge> canonical = canonicalize_merges(merges, leaf_count);
  expr::HierTree tree(leaf_count);
  for (const Merge& merge : canonical) {
    tree.add_node(merge.left, merge.right,
                  similarity_from_distance(merge.distance));
  }
  FV_ASSERT(tree.is_complete(), "agglomeration produced a broken tree");
  return tree;
}

double correlation_similarity(double distance) { return 1.0 - distance; }
double negated_similarity(double distance) { return -distance; }

namespace {

double (*similarity_converter(Metric metric))(double) {
  return metric == Metric::kEuclidean ? negated_similarity
                                      : correlation_similarity;
}

}  // namespace

std::vector<Merge> cluster_genes(expr::Dataset& dataset, Metric metric,
                                 Linkage linkage, par::ThreadPool& pool) {
  auto merges =
      agglomerate(row_distances(dataset.values(), metric, pool), linkage);
  dataset.attach_gene_tree(merges_to_tree(merges, dataset.gene_count(),
                                          similarity_converter(metric)));
  return merges;
}

std::vector<Merge> cluster_arrays(expr::Dataset& dataset, Metric metric,
                                  Linkage linkage, par::ThreadPool& pool) {
  auto merges =
      agglomerate(column_distances(dataset.values(), metric, pool), linkage);
  dataset.attach_array_tree(merges_to_tree(merges, dataset.condition_count(),
                                           similarity_converter(metric)));
  return merges;
}

std::vector<std::vector<std::size_t>> cut_tree_at_similarity(
    const expr::HierTree& tree, double min_similarity) {
  FV_REQUIRE(tree.node_count() > 0, "cannot cut an empty tree");
  std::vector<std::vector<std::size_t>> clusters;
  // Canonical trees have monotone merge heights: once a node's similarity
  // clears the threshold, so do all merges beneath it.
  std::vector<int> stack{tree.root()};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (tree.is_leaf(id)) {
      clusters.push_back({static_cast<std::size_t>(id)});
      continue;
    }
    const expr::HierTreeNode& node = tree.node(id);
    if (node.similarity >= min_similarity) {
      clusters.push_back(tree.leaves_under(id));
    } else {
      stack.push_back(node.right);
      stack.push_back(node.left);
    }
  }
  return clusters;
}

std::vector<std::vector<std::size_t>> cut_tree_k(const expr::HierTree& tree,
                                                 std::size_t k) {
  FV_REQUIRE(k >= 1 && k <= tree.leaf_count(),
             "cluster count must lie in [1, leaf_count]");
  // The last k-1 merges (highest node ids — canonical trees order ids by
  // height, ties by emission) are undone; every node below the boundary
  // roots one cluster.
  const std::size_t boundary = tree.node_count() - (k - 1);
  std::vector<std::vector<std::size_t>> clusters;
  std::vector<int> stack{tree.root()};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (!tree.is_leaf(id) && static_cast<std::size_t>(id) >= boundary) {
      const expr::HierTreeNode& node = tree.node(id);
      stack.push_back(node.right);
      stack.push_back(node.left);
    } else {
      clusters.push_back(tree.leaves_under(id));
    }
  }
  return clusters;
}

}  // namespace fv::cluster
