#include "cluster/hclust.hpp"

#include <algorithm>
#include <limits>

namespace fv::cluster {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

double lance_williams(Linkage linkage, double d_ak, double d_bk,
                      std::size_t size_a, std::size_t size_b) {
  switch (linkage) {
    case Linkage::kSingle:
      return std::min(d_ak, d_bk);
    case Linkage::kComplete:
      return std::max(d_ak, d_bk);
    case Linkage::kAverage:
      return (static_cast<double>(size_a) * d_ak +
              static_cast<double>(size_b) * d_bk) /
             static_cast<double>(size_a + size_b);
  }
  FV_ASSERT(false, "unhandled linkage");
  return 0.0;
}

}  // namespace

std::vector<Merge> agglomerate(DistanceMatrix distances, Linkage linkage) {
  const std::size_t n = distances.size();
  FV_REQUIRE(n >= 1, "cannot cluster an empty set");
  std::vector<Merge> merges;
  if (n == 1) return merges;
  merges.reserve(n - 1);

  std::vector<bool> active(n, true);
  std::vector<std::size_t> cluster_size(n, 1);
  std::vector<int> node_id(n);
  for (std::size_t i = 0; i < n; ++i) node_id[i] = static_cast<int>(i);

  // Nearest-neighbor cache per active slot.
  std::vector<std::size_t> nn(n, 0);
  std::vector<float> nn_dist(n, kInf);
  const auto recompute_nn = [&](std::size_t i) {
    float best = kInf;
    std::size_t best_j = i;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i || !active[j]) continue;
      const float d = distances.at(i, j);
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    nn[i] = best_j;
    nn_dist[i] = best;
  };
  for (std::size_t i = 0; i < n; ++i) recompute_nn(i);

  for (std::size_t step = 0; step + 1 < n; ++step) {
    // Globally closest pair (a, nn[a]); caches are kept exact below.
    std::size_t a = n;
    float best = kInf;
    for (std::size_t i = 0; i < n; ++i) {
      if (active[i] && nn_dist[i] < best) {
        best = nn_dist[i];
        a = i;
      }
    }
    FV_ASSERT(a < n, "no active pair found");
    const std::size_t b = nn[a];
    FV_ASSERT(active[b] && b != a, "nearest-neighbor cache corrupt");

    merges.push_back(Merge{node_id[a], node_id[b],
                           static_cast<double>(distances.at(a, b))});

    // Fold cluster b into slot a via Lance–Williams.
    for (std::size_t k = 0; k < n; ++k) {
      if (!active[k] || k == a || k == b) continue;
      const double updated =
          lance_williams(linkage, distances.at(a, k), distances.at(b, k),
                         cluster_size[a], cluster_size[b]);
      distances.set(a, k, static_cast<float>(updated));
    }
    active[b] = false;
    cluster_size[a] += cluster_size[b];
    node_id[a] = static_cast<int>(n + step);

    recompute_nn(a);
    for (std::size_t k = 0; k < n; ++k) {
      if (!active[k] || k == a) continue;
      if (nn[k] == a || nn[k] == b) {
        // Cached target merged away or its distance changed; rescan.
        recompute_nn(k);
      } else if (distances.at(k, a) < nn_dist[k]) {
        nn[k] = a;
        nn_dist[k] = distances.at(k, a);
      }
    }
  }
  return merges;
}

expr::HierTree merges_to_tree(const std::vector<Merge>& merges,
                              std::size_t leaf_count,
                              double (*similarity_from_distance)(double)) {
  FV_REQUIRE(leaf_count >= 1, "tree needs at least one leaf");
  FV_REQUIRE(merges.size() + 1 == leaf_count,
             "merge count must be leaf_count - 1");
  expr::HierTree tree(leaf_count);
  for (const Merge& merge : merges) {
    tree.add_node(merge.left, merge.right,
                  similarity_from_distance(merge.distance));
  }
  FV_ASSERT(tree.is_complete(), "agglomeration produced a broken tree");
  return tree;
}

double correlation_similarity(double distance) { return 1.0 - distance; }
double negated_similarity(double distance) { return -distance; }

namespace {

double (*similarity_converter(Metric metric))(double) {
  return metric == Metric::kEuclidean ? negated_similarity
                                      : correlation_similarity;
}

}  // namespace

std::vector<Merge> cluster_genes(expr::Dataset& dataset, Metric metric,
                                 Linkage linkage, par::ThreadPool& pool) {
  auto merges =
      agglomerate(row_distances(dataset.values(), metric, pool), linkage);
  dataset.attach_gene_tree(merges_to_tree(merges, dataset.gene_count(),
                                          similarity_converter(metric)));
  return merges;
}

std::vector<Merge> cluster_arrays(expr::Dataset& dataset, Metric metric,
                                  Linkage linkage, par::ThreadPool& pool) {
  auto merges =
      agglomerate(column_distances(dataset.values(), metric, pool), linkage);
  dataset.attach_array_tree(merges_to_tree(merges, dataset.condition_count(),
                                           similarity_converter(metric)));
  return merges;
}

std::vector<std::vector<std::size_t>> cut_tree_at_similarity(
    const expr::HierTree& tree, double min_similarity) {
  FV_REQUIRE(tree.node_count() > 0, "cannot cut an empty tree");
  std::vector<std::vector<std::size_t>> clusters;
  // Monotone merge heights mean: once a node's similarity clears the
  // threshold, so do all merges beneath it.
  std::vector<int> stack{tree.root()};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (tree.is_leaf(id)) {
      clusters.push_back({static_cast<std::size_t>(id)});
      continue;
    }
    const expr::HierTreeNode& node = tree.node(id);
    if (node.similarity >= min_similarity) {
      clusters.push_back(tree.leaves_under(id));
    } else {
      stack.push_back(node.right);
      stack.push_back(node.left);
    }
  }
  return clusters;
}

std::vector<std::vector<std::size_t>> cut_tree_k(const expr::HierTree& tree,
                                                 std::size_t k) {
  FV_REQUIRE(k >= 1 && k <= tree.leaf_count(),
             "cluster count must lie in [1, leaf_count]");
  // The last k-1 merges (highest node ids, since heights are monotone) are
  // undone; every node below the boundary roots one cluster.
  const std::size_t boundary = tree.node_count() - (k - 1);
  std::vector<std::vector<std::size_t>> clusters;
  std::vector<int> stack{tree.root()};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (!tree.is_leaf(id) && static_cast<std::size_t>(id) >= boundary) {
      const expr::HierTreeNode& node = tree.node(id);
      stack.push_back(node.right);
      stack.push_back(node.left);
    } else {
      clusters.push_back(tree.leaves_under(id));
    }
  }
  return clusters;
}

}  // namespace fv::cluster
