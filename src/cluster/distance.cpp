#include "cluster/distance.hpp"

#include <cmath>

#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"

namespace fv::cluster {

double profile_distance(std::span<const float> a, std::span<const float> b,
                        Metric metric) {
  switch (metric) {
    case Metric::kPearson:
      return 1.0 - stats::pearson(a, b);
    case Metric::kUncenteredPearson:
      return 1.0 - stats::uncentered_pearson(a, b);
    case Metric::kSpearman:
      return 1.0 - stats::spearman(a, b);
    case Metric::kEuclidean: {
      double sum = 0.0;
      std::size_t pairs = 0;
      FV_REQUIRE(a.size() == b.size(), "profiles must have equal length");
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (stats::is_missing(a[i]) || stats::is_missing(b[i])) continue;
        const double diff = static_cast<double>(a[i]) - b[i];
        sum += diff * diff;
        ++pairs;
      }
      if (pairs == 0) return 0.0;
      // Scale by coverage so profiles with many missing cells are not
      // artificially close (Cluster 3.0 uses the same convention).
      return std::sqrt(sum * static_cast<double>(a.size()) /
                       static_cast<double>(pairs));
    }
  }
  FV_ASSERT(false, "unhandled metric");
  return 0.0;
}

namespace {

DistanceMatrix all_pairs(const sim::SimilarityEngine& engine,
                         par::ThreadPool& pool) {
  DistanceMatrix distances(engine.size());
  engine.condensed_distances(distances.condensed(), pool);
  return distances;
}

}  // namespace

DistanceMatrix row_distances(const expr::ExpressionMatrix& matrix,
                             Metric metric, par::ThreadPool& pool) {
  return all_pairs(sim::SimilarityEngine::from_rows(matrix, metric), pool);
}

DistanceMatrix row_distances(const expr::ExpressionMatrix& matrix,
                             Metric metric) {
  return row_distances(matrix, metric, par::ThreadPool::shared());
}

DistanceMatrix column_distances(const expr::ExpressionMatrix& matrix,
                                Metric metric, par::ThreadPool& pool) {
  return all_pairs(sim::SimilarityEngine::from_columns(matrix, metric), pool);
}

namespace {

DistanceMatrix all_squared_pairs(const sim::SimilarityEngine& engine,
                                 par::ThreadPool& pool) {
  DistanceMatrix distances(engine.size());
  engine.condensed_squared_distances(distances.condensed(), pool);
  return distances;
}

}  // namespace

DistanceMatrix row_squared_distances(const expr::ExpressionMatrix& matrix,
                                     par::ThreadPool& pool) {
  return all_squared_pairs(
      sim::SimilarityEngine::from_rows(matrix, Metric::kEuclidean), pool);
}

DistanceMatrix column_squared_distances(const expr::ExpressionMatrix& matrix,
                                        par::ThreadPool& pool) {
  return all_squared_pairs(
      sim::SimilarityEngine::from_columns(matrix, Metric::kEuclidean), pool);
}

}  // namespace fv::cluster
