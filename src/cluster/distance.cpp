#include "cluster/distance.hpp"

#include <cmath>

#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"

namespace fv::cluster {

double profile_distance(std::span<const float> a, std::span<const float> b,
                        Metric metric) {
  switch (metric) {
    case Metric::kPearson:
      return 1.0 - stats::pearson(a, b);
    case Metric::kUncenteredPearson:
      return 1.0 - stats::uncentered_pearson(a, b);
    case Metric::kSpearman:
      return 1.0 - stats::spearman(a, b);
    case Metric::kEuclidean: {
      double sum = 0.0;
      std::size_t pairs = 0;
      FV_REQUIRE(a.size() == b.size(), "profiles must have equal length");
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (stats::is_missing(a[i]) || stats::is_missing(b[i])) continue;
        const double diff = static_cast<double>(a[i]) - b[i];
        sum += diff * diff;
        ++pairs;
      }
      if (pairs == 0) return 0.0;
      // Scale by coverage so profiles with many missing cells are not
      // artificially close (Cluster 3.0 uses the same convention).
      return std::sqrt(sum * static_cast<double>(a.size()) /
                       static_cast<double>(pairs));
    }
  }
  FV_ASSERT(false, "unhandled metric");
  return 0.0;
}

namespace {

DistanceMatrix pairwise(std::size_t n,
                        const std::function<std::span<const float>(std::size_t)>&
                            profile,
                        Metric metric, par::ThreadPool& pool) {
  DistanceMatrix distances(n);
  // Each task owns one row i and fills d(i, j) for j > i; writes are
  // disjoint per (i, j) pair so no synchronization is needed.
  par::parallel_for(pool, 0, n, 1, [&](std::size_t i) {
    const auto row_i = profile(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      distances.set(i, j,
                    static_cast<float>(profile_distance(row_i, profile(j),
                                                        metric)));
    }
  });
  return distances;
}

}  // namespace

DistanceMatrix row_distances(const expr::ExpressionMatrix& matrix,
                             Metric metric, par::ThreadPool& pool) {
  return pairwise(matrix.rows(),
                  [&](std::size_t r) { return matrix.row(r); }, metric, pool);
}

DistanceMatrix row_distances(const expr::ExpressionMatrix& matrix,
                             Metric metric) {
  return row_distances(matrix, metric, par::ThreadPool::shared());
}

DistanceMatrix column_distances(const expr::ExpressionMatrix& matrix,
                                Metric metric, par::ThreadPool& pool) {
  // Materialize columns once; column extraction inside the pair loop would
  // be quadratic in copies.
  std::vector<std::vector<float>> columns(matrix.cols());
  for (std::size_t c = 0; c < matrix.cols(); ++c) {
    columns[c] = matrix.column(c);
  }
  return pairwise(matrix.cols(),
                  [&](std::size_t c) {
                    return std::span<const float>(columns[c]);
                  },
                  metric, pool);
}

}  // namespace fv::cluster
