#include "cluster/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/similarity_engine.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace fv::cluster {

namespace {

/// Squared Euclidean over pairwise-present coordinates, coverage-scaled.
double row_centroid_distance(std::span<const float> row,
                             const std::vector<float>& centroid) {
  double sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (stats::is_missing(row[i])) continue;
    const double diff = static_cast<double>(row[i]) - centroid[i];
    sum += diff * diff;
    ++pairs;
  }
  if (pairs == 0) return 0.0;
  return sum * static_cast<double>(row.size()) / static_cast<double>(pairs);
}

}  // namespace

KMeansResult kmeans_rows(const expr::ExpressionMatrix& matrix, std::size_t k,
                         Rng& rng, std::size_t max_iterations) {
  const std::size_t rows = matrix.rows();
  const std::size_t cols = matrix.cols();
  FV_REQUIRE(k >= 1 && k <= rows, "k must lie in [1, rows]");
  FV_REQUIRE(max_iterations >= 1, "need at least one iteration");

  KMeansResult result;
  result.assignment.assign(rows, 0);
  result.centroids.assign(k, std::vector<float>(cols, 0.0f));

  // k-means++ seeding: first centroid uniform, then proportional to squared
  // distance to the nearest chosen centroid. Every candidate centroid here
  // IS a data row, so the seeding sweep reuses the similarity engine's
  // precomputed rows and vectorized Euclidean kernel instead of re-scanning
  // the matrix per seed. (For rows with missing cells this is the engine's
  // pairwise-complete distance; the seed path zero-filled the chosen row's
  // holes and counted them as present — dense rows agree exactly.)
  const auto engine =
      sim::SimilarityEngine::from_rows(matrix, sim::Metric::kEuclidean);
  std::vector<std::size_t> seeds;
  seeds.push_back(static_cast<std::size_t>(rng.uniform_u64(rows)));
  std::vector<double> nearest(rows, std::numeric_limits<double>::infinity());
  std::vector<float> latest_filled(cols, 0.0f);
  while (seeds.size() < k) {
    const std::size_t latest = seeds.back();
    const auto latest_row = matrix.row(latest);
    for (std::size_t c = 0; c < cols; ++c) {
      latest_filled[c] =
          stats::is_missing(latest_row[c]) ? 0.0f : latest_row[c];
    }
    double total = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
      double d2;
      if (r == latest) {
        d2 = 0.0;
      } else {
        const float d = engine.distance(r, latest);
        if (d == 0.0f && (engine.row_has_missing(r) ||
                          engine.row_has_missing(latest))) {
          // The engine reports 0 for pairs with no shared present column —
          // exactly the rows that are least represented by this seed, so 0
          // would wrongly zero their sampling weight forever. Fall back to
          // the centroid convention (seed row's holes as 0, scored over the
          // candidate's present cells) for this rare case.
          d2 = row_centroid_distance(matrix.row(r), latest_filled);
        } else {
          d2 = static_cast<double>(d) * d;
        }
      }
      nearest[r] = std::min(nearest[r], d2);
      total += nearest[r];
    }
    if (total <= 0.0) {
      // Degenerate data (all rows identical): fall back to distinct indices.
      seeds.push_back(seeds.size() % rows);
      continue;
    }
    double pick = rng.uniform() * total;
    std::size_t chosen = rows - 1;
    for (std::size_t r = 0; r < rows; ++r) {
      pick -= nearest[r];
      if (pick <= 0.0) {
        chosen = r;
        break;
      }
    }
    seeds.push_back(chosen);
  }
  for (std::size_t j = 0; j < k; ++j) {
    const auto row = matrix.row(seeds[j]);
    for (std::size_t c = 0; c < cols; ++c) {
      result.centroids[j][c] = stats::is_missing(row[c]) ? 0.0f : row[c];
    }
  }

  std::vector<double> sums(k * cols);
  std::vector<std::size_t> counts(k * cols);
  for (std::size_t iteration = 0; iteration < max_iterations; ++iteration) {
    result.iterations = iteration + 1;
    // Assign.
    bool changed = false;
    result.inertia = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
      double best = std::numeric_limits<double>::infinity();
      int best_j = 0;
      for (std::size_t j = 0; j < k; ++j) {
        const double d = row_centroid_distance(matrix.row(r),
                                               result.centroids[j]);
        if (d < best) {
          best = d;
          best_j = static_cast<int>(j);
        }
      }
      if (result.assignment[r] != best_j) {
        result.assignment[r] = best_j;
        changed = true;
      }
      result.inertia += best;
    }
    if (!changed && iteration > 0) break;
    // Update (present values only).
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), std::size_t{0});
    for (std::size_t r = 0; r < rows; ++r) {
      const auto row = matrix.row(r);
      const auto j = static_cast<std::size_t>(result.assignment[r]);
      for (std::size_t c = 0; c < cols; ++c) {
        if (stats::is_missing(row[c])) continue;
        sums[j * cols + c] += row[c];
        ++counts[j * cols + c];
      }
    }
    for (std::size_t j = 0; j < k; ++j) {
      for (std::size_t c = 0; c < cols; ++c) {
        if (counts[j * cols + c] > 0) {
          result.centroids[j][c] = static_cast<float>(
              sums[j * cols + c] /
              static_cast<double>(counts[j * cols + c]));
        }
      }
    }
  }
  return result;
}

}  // namespace fv::cluster
