// Hierarchical agglomerative clustering.
//
// Produces the gene/array dendrograms that ForestView panes display and the
// GTR/ATR files store. Two agglomerators share the condensed DistanceMatrix
// and the full Lance–Williams update table:
//
//  * NN-chain — follow nearest-neighbor links until a reciprocal pair
//    appears, merge it, resume from the surviving chain. Guaranteed O(n²),
//    but only correct for *reducible* linkages (single / complete / average
//    / Ward), where a merge elsewhere can never bring two clusters closer.
//  * Generic heap — a lazy-deletion indexed min-heap of per-cluster
//    nearest-neighbor candidates, repaired on pop. Handles the
//    non-reducible linkages (median / centroid), whose updates can pull
//    third clusters closer and produce genuine height inversions; O(n²)
//    typical, O(n³) adversarial worst case, O(n) memory beyond the matrix.
//
// agglomerate() dispatches reducible -> NN-chain, non-reducible -> heap
// (overridable via Agglomerator). Chain merges emerge out of height order
// and heap merges can invert legitimately; canonicalize_merges restores the
// child-before-parent relabeled form — clamping rounding-level dips for
// monotone linkages, carrying real inversions for median/centroid.
#pragma once

#include <vector>

#include "cluster/distance.hpp"
#include "expr/dataset.hpp"
#include "expr/tree.hpp"

namespace fv::cluster {

enum class Linkage {
  kSingle,    ///< min pairwise distance between clusters
  kComplete,  ///< max pairwise distance
  kAverage,   ///< UPGMA: size-weighted mean distance
  kWard,      ///< minimum within-cluster variance increase (squared input)
  kCentroid,  ///< UPGMC: distance between centroids (squared input)
  kMedian,    ///< WPGMC: distance between midpoints (squared input)
};

/// Reducible linkages (single / complete / average / Ward) satisfy
/// d(A∪B, C) >= min(d(A,C), d(B,C)) and are safe for the NN-chain path;
/// median/centroid are not and dispatch to the heap agglomerator.
constexpr bool linkage_is_reducible(Linkage linkage) {
  return linkage == Linkage::kSingle || linkage == Linkage::kComplete ||
         linkage == Linkage::kAverage || linkage == Linkage::kWard;
}

/// Ward / centroid / median run their Lance–Williams recurrences on
/// *squared* Euclidean distances; agglomerate() expects the input matrix in
/// that form (see row_squared_distances) and reports merge heights as the
/// square root of the merge cost, back in distance units.
constexpr bool linkage_uses_squared_distances(Linkage linkage) {
  return linkage == Linkage::kWard || linkage == Linkage::kCentroid ||
         linkage == Linkage::kMedian;
}

/// Median/centroid hierarchies are not monotone: a parent merge can sit
/// *below* its children (a genuine height inversion, not rounding noise).
/// Downstream stages carry these through instead of clamping.
constexpr bool linkage_can_invert(Linkage linkage) {
  return linkage == Linkage::kCentroid || linkage == Linkage::kMedian;
}

/// Which agglomeration algorithm agglomerate() runs. kAuto picks NN-chain
/// for reducible linkages and the heap for the rest; forcing kHeap on a
/// reducible linkage is valid (equivalence tests and benches do) while
/// forcing kNNChain on a non-reducible one is rejected.
enum class Agglomerator {
  kAuto,
  kNNChain,
  kHeap,
};

/// How canonicalize_merges treats height inversions. kMonotone (the
/// reducible-linkage contract) clamps rounding-level dips to the running
/// maximum and rejects anything larger; kAllowInversions emits heights
/// exactly as given — ordering is still dependency-gated (children before
/// parents, lowest ready merge first), but the emitted sequence may dip.
enum class HeightOrder {
  kMonotone,
  kAllowInversions,
};

/// One agglomeration step. Node ids follow the HierTree convention:
/// leaves are 0..n-1, the k-th merge creates node n+k.
struct Merge {
  int left = -1;
  int right = -1;
  double distance = 0.0;
};

/// Runs agglomerative clustering over a (consumed) condensed distance
/// matrix. For Ward/centroid/median the input must hold *squared* Euclidean
/// distances (see linkage_uses_squared_distances); merge heights come back
/// square-rooted, in plain distance units. Returns the n-1 merges in
/// canonical order (children before parents, already passed through
/// canonicalize_merges — non-decreasing distance except for the genuine
/// inversions median/centroid produce, which are preserved).
std::vector<Merge> agglomerate(DistanceMatrix distances, Linkage linkage,
                               Agglomerator algorithm = Agglomerator::kAuto);

/// Reorders a merge list into canonical dendrogram order — every child
/// emitted before its parent, lowest ready merge first — and relabels node
/// ids to match the new positions. Accepts chain-emission order (heights
/// out of order) as produced inside the NN-chain; requires a valid forest
/// in the input's own emission convention (the k-th element creates node
/// leaf_count + k, children refer to leaves or earlier elements, each node
/// consumed at most once). Under HeightOrder::kMonotone (default) height
/// inversions must not exceed rounding noise — they are clamped, larger
/// ones rejected; under kAllowInversions heights pass through untouched.
/// Idempotent on already-canonical input.
std::vector<Merge> canonicalize_merges(
    std::vector<Merge> merges, std::size_t leaf_count,
    HeightOrder order = HeightOrder::kMonotone);

/// Converts merges to the HierTree file model. `similarity_from_distance`
/// maps merge heights into the GTR similarity column; for correlation
/// distances use `correlation_similarity` (1 - d). Input may be in any
/// emission order (it is canonicalized first under `order`), so raw chain
/// output works. Pass HeightOrder::kAllowInversions for median/centroid
/// merge lists so their inversions reach the tree unclamped.
expr::HierTree merges_to_tree(const std::vector<Merge>& merges,
                              std::size_t leaf_count,
                              double (*similarity_from_distance)(double),
                              HeightOrder order = HeightOrder::kMonotone);

/// Similarity conversions for merges_to_tree.
double correlation_similarity(double distance);  ///< 1 - d
double negated_similarity(double distance);      ///< -d (Euclidean trees)

/// Clusters the dataset's genes and attaches the resulting tree.
/// Returns the merge list for callers that need the heights.
/// Ward/centroid/median linkages require Metric::kEuclidean (their
/// Lance–Williams recurrences are only meaningful on squared Euclidean
/// distances) and build the squared condensed matrix internally.
std::vector<Merge> cluster_genes(expr::Dataset& dataset, Metric metric,
                                 Linkage linkage, par::ThreadPool& pool);

/// Clusters the dataset's arrays (columns) and attaches the tree.
std::vector<Merge> cluster_arrays(expr::Dataset& dataset, Metric metric,
                                  Linkage linkage, par::ThreadPool& pool);

/// Cuts a tree at a similarity threshold: returns the leaf sets of the
/// maximal subtrees whose internal merges all have similarity >= threshold.
/// Singletons are included, so the result is a partition of all leaves.
/// A single-leaf tree yields one singleton cluster. Correct on inverted
/// (non-monotone) trees too: the "all internal merges" contract is checked
/// against a precomputed subtree minimum, not just the root of a subtree.
std::vector<std::vector<std::size_t>> cut_tree_at_similarity(
    const expr::HierTree& tree, double min_similarity);

/// Cuts a tree into exactly k clusters (k in [1, leaf_count]) by undoing
/// the last k-1 merges. Requires a canonical tree (children before parents
/// in node-id order, as merges_to_tree builds); the cut undoes merges in
/// reverse emission order, which equals reverse height order for monotone
/// trees and stays a well-defined k-partition on inverted ones. Under tied
/// heights the cut is deterministic — the tie at the boundary is broken by
/// node id.
std::vector<std::vector<std::size_t>> cut_tree_k(const expr::HierTree& tree,
                                                 std::size_t k);

}  // namespace fv::cluster
