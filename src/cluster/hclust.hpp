// Hierarchical agglomerative clustering.
//
// Produces the gene/array dendrograms that ForestView panes display and the
// GTR/ATR files store. The algorithm is the classic nearest-neighbor-cached
// agglomeration over a mutable distance matrix with Lance–Williams updates:
// every step merges the globally closest pair, so merge heights are
// monotone for the reducible linkages offered here.
#pragma once

#include <vector>

#include "cluster/distance.hpp"
#include "expr/dataset.hpp"
#include "expr/tree.hpp"

namespace fv::cluster {

enum class Linkage {
  kSingle,    ///< min pairwise distance between clusters
  kComplete,  ///< max pairwise distance
  kAverage,   ///< UPGMA: size-weighted mean distance
};

/// One agglomeration step. Node ids follow the HierTree convention:
/// leaves are 0..n-1, the k-th merge creates node n+k.
struct Merge {
  int left = -1;
  int right = -1;
  double distance = 0.0;
};

/// Runs agglomerative clustering over a (consumed) distance matrix.
/// Returns the n-1 merges in execution order (non-decreasing distance).
std::vector<Merge> agglomerate(DistanceMatrix distances, Linkage linkage);

/// Converts merges to the HierTree file model. `similarity_from_distance`
/// maps merge heights into the GTR similarity column; for correlation
/// distances use `correlation_similarity` (1 - d).
expr::HierTree merges_to_tree(const std::vector<Merge>& merges,
                              std::size_t leaf_count,
                              double (*similarity_from_distance)(double));

/// Similarity conversions for merges_to_tree.
double correlation_similarity(double distance);  ///< 1 - d
double negated_similarity(double distance);      ///< -d (Euclidean trees)

/// Clusters the dataset's genes and attaches the resulting tree.
/// Returns the merge list for callers that need the heights.
std::vector<Merge> cluster_genes(expr::Dataset& dataset, Metric metric,
                                 Linkage linkage, par::ThreadPool& pool);

/// Clusters the dataset's arrays (columns) and attaches the tree.
std::vector<Merge> cluster_arrays(expr::Dataset& dataset, Metric metric,
                                  Linkage linkage, par::ThreadPool& pool);

/// Cuts a tree at a similarity threshold: returns the leaf sets of the
/// maximal subtrees whose internal merges all have similarity >= threshold.
/// Singletons are included, so the result is a partition of all leaves.
std::vector<std::vector<std::size_t>> cut_tree_at_similarity(
    const expr::HierTree& tree, double min_similarity);

/// Cuts a tree into exactly k clusters (k in [1, leaf_count]) by undoing
/// the last k-1 merges.
std::vector<std::vector<std::size_t>> cut_tree_k(const expr::HierTree& tree,
                                                 std::size_t k);

}  // namespace fv::cluster
