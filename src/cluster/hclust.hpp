// Hierarchical agglomerative clustering.
//
// Produces the gene/array dendrograms that ForestView panes display and the
// GTR/ATR files store. The agglomerator is the NN-chain algorithm over the
// condensed DistanceMatrix: follow nearest-neighbor links until a reciprocal
// pair appears, merge it, and continue from the surviving chain. For the
// reducible linkages offered here (single / complete / average under
// Lance–Williams updates) every reciprocal pair is safe to merge
// immediately, which bounds total work at O(n²) — the seed's
// nearest-neighbor-cached agglomeration degraded to O(n³) when many slots
// shared a merged neighbor (exactly what module-structured expression data
// produces). Chain merges emerge out of height order; canonicalize_merges
// restores the sorted, relabeled form before anything downstream sees them.
#pragma once

#include <vector>

#include "cluster/distance.hpp"
#include "expr/dataset.hpp"
#include "expr/tree.hpp"

namespace fv::cluster {

enum class Linkage {
  kSingle,    ///< min pairwise distance between clusters
  kComplete,  ///< max pairwise distance
  kAverage,   ///< UPGMA: size-weighted mean distance
};

/// One agglomeration step. Node ids follow the HierTree convention:
/// leaves are 0..n-1, the k-th merge creates node n+k.
struct Merge {
  int left = -1;
  int right = -1;
  double distance = 0.0;
};

/// Runs NN-chain agglomerative clustering over a (consumed) condensed
/// distance matrix. Returns the n-1 merges in canonical order
/// (non-decreasing distance, children before parents — already passed
/// through canonicalize_merges).
std::vector<Merge> agglomerate(DistanceMatrix distances, Linkage linkage);

/// Reorders a merge list into canonical dendrogram order — non-decreasing
/// height with every child emitted before its parent — and relabels node
/// ids to match the new positions. Accepts chain-emission order (heights
/// out of order) as produced inside the NN-chain; requires a valid forest
/// in the input's own emission convention (the k-th element creates node
/// leaf_count + k, children refer to leaves or earlier elements, each node
/// consumed at most once) whose height inversions do not exceed rounding
/// noise — the monotone-hierarchy contract of reducible linkages.
/// Idempotent on already-canonical input.
std::vector<Merge> canonicalize_merges(std::vector<Merge> merges,
                                       std::size_t leaf_count);

/// Converts merges to the HierTree file model. `similarity_from_distance`
/// maps merge heights into the GTR similarity column; for correlation
/// distances use `correlation_similarity` (1 - d). Input may be in any
/// emission order (it is canonicalized first), so raw chain output works.
expr::HierTree merges_to_tree(const std::vector<Merge>& merges,
                              std::size_t leaf_count,
                              double (*similarity_from_distance)(double));

/// Similarity conversions for merges_to_tree.
double correlation_similarity(double distance);  ///< 1 - d
double negated_similarity(double distance);      ///< -d (Euclidean trees)

/// Clusters the dataset's genes and attaches the resulting tree.
/// Returns the merge list for callers that need the heights.
std::vector<Merge> cluster_genes(expr::Dataset& dataset, Metric metric,
                                 Linkage linkage, par::ThreadPool& pool);

/// Clusters the dataset's arrays (columns) and attaches the tree.
std::vector<Merge> cluster_arrays(expr::Dataset& dataset, Metric metric,
                                  Linkage linkage, par::ThreadPool& pool);

/// Cuts a tree at a similarity threshold: returns the leaf sets of the
/// maximal subtrees whose internal merges all have similarity >= threshold.
/// Singletons are included, so the result is a partition of all leaves.
/// A single-leaf tree yields one singleton cluster.
std::vector<std::vector<std::size_t>> cut_tree_at_similarity(
    const expr::HierTree& tree, double min_similarity);

/// Cuts a tree into exactly k clusters (k in [1, leaf_count]) by undoing
/// the last k-1 merges. Requires a canonical tree (node ids ordered by
/// merge height, as merges_to_tree builds); under tied heights the cut is
/// deterministic — the tie at the boundary is broken by node id.
std::vector<std::vector<std::size_t>> cut_tree_k(const expr::HierTree& tree,
                                                 std::size_t k);

}  // namespace fv::cluster
