// Pairwise distance computation for hierarchical clustering.
//
// TreeView-lineage tools cluster genes on correlation-based dissimilarity
// (1 - r); Euclidean distance is provided for array (column) clustering and
// comparisons. The full symmetric matrix is materialized because the
// agglomeration algorithm mutates rows in place.
//
// All-pairs construction goes through sim::SimilarityEngine: profiles are
// normalized once, pairs are answered by blocked dot-product kernels, and
// work is scheduled as balanced tiles rather than the triangular
// row-per-task split. profile_distance() remains the scalar reference the
// engine is tested against (and the right call for one-off pairs).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "expr/expression_matrix.hpp"
#include "par/thread_pool.hpp"
#include "sim/similarity_engine.hpp"

namespace fv::cluster {

/// Distance metric; canonical definition lives with the engine.
using Metric = sim::Metric;

/// Distance between two expression profiles under the metric (scalar
/// reference implementation; pairwise-complete over missing values).
double profile_distance(std::span<const float> a, std::span<const float> b,
                        Metric metric);

/// Full symmetric distance matrix with a mutable view, as consumed by
/// hierarchical clustering.
class DistanceMatrix {
 public:
  DistanceMatrix() = default;
  explicit DistanceMatrix(std::size_t n) : n_(n), values_(n * n, 0.0f) {}

  std::size_t size() const noexcept { return n_; }

  float at(std::size_t i, std::size_t j) const {
    FV_REQUIRE(i < n_ && j < n_, "distance index out of range");
    return values_[i * n_ + j];
  }

  void set(std::size_t i, std::size_t j, float d) {
    FV_REQUIRE(i < n_ && j < n_, "distance index out of range");
    values_[i * n_ + j] = d;
    values_[j * n_ + i] = d;
  }

  /// Row-major n x n backing storage; bulk writers (the similarity engine)
  /// fill this directly. Writers must keep the matrix symmetric.
  std::span<float> raw() noexcept { return values_; }
  std::span<const float> raw() const noexcept { return values_; }

 private:
  std::size_t n_ = 0;
  std::vector<float> values_;
};

/// Computes all pairwise row distances of `matrix` in parallel.
DistanceMatrix row_distances(const expr::ExpressionMatrix& matrix,
                             Metric metric, par::ThreadPool& pool);

/// Convenience overload using the shared pool.
DistanceMatrix row_distances(const expr::ExpressionMatrix& matrix,
                             Metric metric);

/// Distances between columns (arrays); used for the array dendrogram.
DistanceMatrix column_distances(const expr::ExpressionMatrix& matrix,
                                Metric metric, par::ThreadPool& pool);

}  // namespace fv::cluster
