// Pairwise distance computation for hierarchical clustering.
//
// TreeView-lineage tools cluster genes on correlation-based dissimilarity
// (1 - r); Euclidean distance is provided for array (column) clustering and
// comparisons. The full symmetric matrix is materialized because the
// agglomeration algorithm mutates rows in place.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "expr/expression_matrix.hpp"
#include "par/thread_pool.hpp"

namespace fv::cluster {

enum class Metric {
  kPearson,            ///< 1 - Pearson correlation (pairwise complete)
  kUncenteredPearson,  ///< 1 - uncentered correlation
  kSpearman,           ///< 1 - Spearman rank correlation
  kEuclidean,          ///< Euclidean over pairwise-complete coordinates
};

/// Distance between two expression profiles under the metric.
double profile_distance(std::span<const float> a, std::span<const float> b,
                        Metric metric);

/// Full symmetric distance matrix with a mutable view, as consumed by
/// hierarchical clustering.
class DistanceMatrix {
 public:
  DistanceMatrix() = default;
  explicit DistanceMatrix(std::size_t n) : n_(n), values_(n * n, 0.0f) {}

  std::size_t size() const noexcept { return n_; }

  float at(std::size_t i, std::size_t j) const {
    FV_REQUIRE(i < n_ && j < n_, "distance index out of range");
    return values_[i * n_ + j];
  }

  void set(std::size_t i, std::size_t j, float d) {
    FV_REQUIRE(i < n_ && j < n_, "distance index out of range");
    values_[i * n_ + j] = d;
    values_[j * n_ + i] = d;
  }

 private:
  std::size_t n_ = 0;
  std::vector<float> values_;
};

/// Computes all pairwise row distances of `matrix` in parallel.
DistanceMatrix row_distances(const expr::ExpressionMatrix& matrix,
                             Metric metric, par::ThreadPool& pool);

/// Serial convenience overload using the shared pool.
DistanceMatrix row_distances(const expr::ExpressionMatrix& matrix,
                             Metric metric);

/// Distances between columns (arrays); used for the array dendrogram.
DistanceMatrix column_distances(const expr::ExpressionMatrix& matrix,
                                Metric metric, par::ThreadPool& pool);

}  // namespace fv::cluster
