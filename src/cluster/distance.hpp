// Pairwise distance computation for hierarchical clustering.
//
// TreeView-lineage tools cluster genes on correlation-based dissimilarity
// (1 - r); Euclidean distance is provided for array (column) clustering and
// comparisons. Distances are stored condensed: only the strict upper
// triangle (n(n-1)/2 floats) is materialized, halving memory versus the
// dense n x n layout the seed used and removing the set()/at() symmetry
// hazard by construction — there is no redundant mirror cell for a bulk
// writer to leave stale. The NN-chain agglomerator mutates this storage in
// place via Lance–Williams updates.
//
// All-pairs construction goes through sim::SimilarityEngine: profiles are
// normalized once, pairs are answered by blocked dot-product kernels, and
// tiles are emitted directly into the condensed layout (no dense staging
// buffer). profile_distance() remains the scalar reference the engine is
// tested against (and the right call for one-off pairs).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "expr/expression_matrix.hpp"
#include "par/thread_pool.hpp"
#include "sim/similarity_engine.hpp"
#include "util/triangular.hpp"

namespace fv::cluster {

/// Distance metric; canonical definition lives with the engine.
using Metric = sim::Metric;

/// Distance between two expression profiles under the metric (scalar
/// reference implementation; pairwise-complete over missing values).
double profile_distance(std::span<const float> a, std::span<const float> b,
                        Metric metric);

/// Symmetric distance matrix in condensed (packed strict-upper-triangle)
/// storage, as consumed by hierarchical clustering. The diagonal is an
/// implicit 0; off-diagonal pairs are stored exactly once, so writers
/// cannot break symmetry.
class DistanceMatrix {
 public:
  DistanceMatrix() = default;
  explicit DistanceMatrix(std::size_t n)
      : n_(n), values_(condensed_size(n), 0.0f) {}

  std::size_t size() const noexcept { return n_; }

  /// Symmetric read; accepts (i, j) in either order, i == j reads the
  /// implicit zero diagonal. Hot loops (the NN-chain) address condensed()
  /// directly with precomputed row bases instead of going through here.
  float at(std::size_t i, std::size_t j) const {
    FV_REQUIRE(i < n_ && j < n_, "distance index out of range");
    if (i == j) return 0.0f;
    return i < j ? values_[condensed_index(i, j, n_)]
                 : values_[condensed_index(j, i, n_)];
  }

  /// Symmetric write; i must differ from j (the diagonal is fixed at 0).
  void set(std::size_t i, std::size_t j, float d) {
    FV_REQUIRE(i < n_ && j < n_ && i != j,
               "distance write requires two distinct in-range indices");
    values_[i < j ? condensed_index(i, j, n_) : condensed_index(j, i, n_)] = d;
  }

  /// Condensed backing storage (n(n-1)/2 floats, SciPy pdist layout); bulk
  /// writers (the similarity engine's condensed tile writer) fill this
  /// directly. Symmetry holds by construction.
  std::span<float> condensed() noexcept { return values_; }
  std::span<const float> condensed() const noexcept { return values_; }

 private:
  std::size_t n_ = 0;
  std::vector<float> values_;
};

/// Computes all pairwise row distances of `matrix` in parallel.
DistanceMatrix row_distances(const expr::ExpressionMatrix& matrix,
                             Metric metric, par::ThreadPool& pool);

/// Convenience overload using the shared pool.
DistanceMatrix row_distances(const expr::ExpressionMatrix& matrix,
                             Metric metric);

/// Distances between columns (arrays); used for the array dendrogram.
DistanceMatrix column_distances(const expr::ExpressionMatrix& matrix,
                                Metric metric, par::ThreadPool& pool);

/// Squared Euclidean row distances — the input form the Lance–Williams
/// recurrences of Ward/centroid/median linkage operate on. Same condensed
/// layout and O(n(n-1)/2) memory as row_distances; values are exactly the
/// squares of the Metric::kEuclidean distances (including the Cluster 3.0
/// missing-coverage scaling), emitted by the engine's squared condensed
/// tile writer with no dense staging buffer.
DistanceMatrix row_squared_distances(const expr::ExpressionMatrix& matrix,
                                     par::ThreadPool& pool);

/// Squared Euclidean column distances; see row_squared_distances.
DistanceMatrix column_squared_distances(const expr::ExpressionMatrix& matrix,
                                        par::ThreadPool& pool);

}  // namespace fv::cluster
