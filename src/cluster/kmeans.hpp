// K-means over expression rows — the non-hierarchical baseline used by the
// benchmark harness for comparisons and by examples that need quick gene
// groupings without a full dendrogram.
#pragma once

#include <cstddef>
#include <vector>

#include "expr/expression_matrix.hpp"
#include "util/rng.hpp"

namespace fv::cluster {

struct KMeansResult {
  std::vector<int> assignment;                 ///< cluster id per row
  std::vector<std::vector<float>> centroids;   ///< k centroids
  double inertia = 0.0;                        ///< sum of squared distances
  std::size_t iterations = 0;                  ///< iterations until stable
};

/// Lloyd's algorithm with k-means++ style seeding. Missing cells are skipped
/// in distance computation and centroid updates (pairwise-complete).
/// Seeding distances run on a sim::SimilarityEngine built over the rows
/// (every candidate centroid is a data row), so the k-means++ sweep uses
/// the same vectorized pairwise-complete Euclidean kernel as clustering.
/// Requires 1 <= k <= rows.
KMeansResult kmeans_rows(const expr::ExpressionMatrix& matrix, std::size_t k,
                         Rng& rng, std::size_t max_iterations = 100);

}  // namespace fv::cluster
