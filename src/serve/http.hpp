// Embedded HTTP front end of the analysis server.
//
// Deliberately minimal, in the spirit of the embedded servers that made
// interactive omics exploration practical (an accept loop, per-connection
// handling, Content-Length bodies): the serving logic lives in
// AnalysisService, which is plain request-in/response-out and is what the
// tests and the many-user bench drive directly. This layer only adds the
// wire: request parsing with hard size bounds, response formatting, and a
// loopback TCP listener with a clean-shutdown path.
//
// Protocol subset: HTTP/1.0-and-1.1 requests with optional Content-Length
// bodies; every response carries Content-Length and Connection: close (one
// request per connection — long-running work goes through the async job
// queue, so connections never need to be held open).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace fv::serve {

struct HttpRequest {
  std::string method;                          ///< "GET", "POST", "DELETE"
  std::string path;                            ///< target path, no query
  std::map<std::string, std::string> query;    ///< decoded query params
  std::map<std::string, std::string> headers;  ///< lower-cased names
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string body;                            ///< JSON payload
  std::string content_type = "application/json";
};

/// Reason phrase of the status codes the service emits ("OK", "Bad
/// Request", ...); "Unknown" otherwise.
const char* http_status_reason(int status);

/// Parses one request from raw bytes: request line, headers, and exactly
/// Content-Length body bytes. Throws fv::ParseError on a malformed or
/// oversized (`max_bytes`) request. The parser is byte-complete: it is
/// given the full buffered request, framing is the listener's job.
HttpRequest parse_http_request(std::string_view raw,
                               std::size_t max_bytes = 1 << 20);

/// Serializes a response with Content-Length and Connection: close.
std::string format_http_response(const HttpResponse& response);

/// A blocking loopback TCP listener: accept loop on its own thread, each
/// connection read-to-completion, handed to `handler`, answered, closed.
/// Concurrency lives in the service's job queue, not in connection count —
/// request handling itself is cheap (submit/poll/fetch), so connections
/// are served one at a time per listener thread, bounded and predictable.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    std::uint16_t port = 0;        ///< 0 = kernel-assigned (tests)
    std::size_t max_request_bytes = 1 << 20;
    std::size_t listener_threads = 1;
  };

  /// Binds 127.0.0.1:<port> and starts the accept loop. Throws fv::IoError
  /// when the socket cannot be created or bound.
  HttpServer(Handler handler, const Options& options);
  explicit HttpServer(Handler handler) : HttpServer(std::move(handler), Options{}) {}

  /// Stops accepting, joins the listener threads, closes the socket.
  ~HttpServer();

  void stop();

  /// The bound port (the kernel's pick when Options::port was 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Requests fully served since start.
  std::uint64_t requests_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void listener_loop();
  void serve_connection(int fd);

  Handler handler_;
  Options options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> served_{0};
  std::vector<std::thread> listeners_;
};

/// Test/tool helper: one blocking HTTP exchange against 127.0.0.1:port.
/// Returns the raw response bytes. Throws fv::IoError on socket failure.
std::string http_exchange(std::uint16_t port, std::string_view raw_request);

}  // namespace fv::serve
