#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "cluster/distance.hpp"
#include "cluster/hclust.hpp"
#include "util/fault_hash.hpp"
#include "util/triangular.hpp"

namespace fv::serve {

namespace {

HttpResponse json_response(int status, const JsonValue& body) {
  HttpResponse response;
  response.status = status;
  response.body = body.dump();
  return response;
}

HttpResponse error_response(int status, const std::string& message) {
  JsonValue body = JsonValue::object();
  body["error"] = message;
  return json_response(status, body);
}

HttpResponse not_found(const std::string& what) {
  return error_response(404, "no such " + what);
}

HttpResponse method_not_allowed() {
  return error_response(405, "method not allowed on this endpoint");
}

/// Splits "/sessions/s1/jobs" into {"sessions", "s1", "jobs"}.
std::vector<std::string> path_segments(const std::string& path) {
  std::vector<std::string> segments;
  std::size_t cursor = 0;
  while (cursor < path.size()) {
    if (path[cursor] == '/') {
      ++cursor;
      continue;
    }
    const std::size_t next = path.find('/', cursor);
    segments.emplace_back(
        path.substr(cursor, next == std::string::npos ? next : next - cursor));
    if (next == std::string::npos) break;
    cursor = next;
  }
  return segments;
}

// --- request field helpers: client mistakes are InvalidArgument (400) ---

const JsonValue& require_field(const JsonValue& body, const char* key) {
  const JsonValue* field = body.find(key);
  FV_REQUIRE(field != nullptr,
             std::string("missing required field \"") + key + "\"");
  return *field;
}

std::string string_field(const JsonValue& body, const char* key) {
  const JsonValue& field = require_field(body, key);
  FV_REQUIRE(field.type() == JsonValue::Type::kString,
             std::string("field \"") + key + "\" must be a string");
  return field.as_string();
}

double number_field_or(const JsonValue& body, const char* key,
                       double fallback) {
  const JsonValue* field = body.find(key);
  if (field == nullptr) return fallback;
  FV_REQUIRE(field->type() == JsonValue::Type::kNumber,
             std::string("field \"") + key + "\" must be a number");
  return field->as_number();
}

std::size_t index_field_or(const JsonValue& body, const char* key,
                           std::size_t fallback) {
  const double value = number_field_or(body, key,
                                       static_cast<double>(fallback));
  FV_REQUIRE(value >= 0 && value == std::nearbyint(value),
             std::string("field \"") + key +
                 "\" must be a non-negative integer");
  return static_cast<std::size_t>(value);
}

std::vector<std::string> string_list_field(const JsonValue& body,
                                           const char* key) {
  const JsonValue& field = require_field(body, key);
  FV_REQUIRE(field.type() == JsonValue::Type::kArray,
             std::string("field \"") + key + "\" must be an array");
  std::vector<std::string> out;
  out.reserve(field.items().size());
  for (const JsonValue& item : field.items()) {
    FV_REQUIRE(item.type() == JsonValue::Type::kString,
               std::string("field \"") + key +
                   "\" must contain only strings");
    out.push_back(item.as_string());
  }
  return out;
}

cluster::Linkage linkage_from_name(const std::string& name) {
  if (name == "single") return cluster::Linkage::kSingle;
  if (name == "complete") return cluster::Linkage::kComplete;
  if (name == "average") return cluster::Linkage::kAverage;
  if (name == "ward") return cluster::Linkage::kWard;
  if (name == "centroid") return cluster::Linkage::kCentroid;
  if (name == "median") return cluster::Linkage::kMedian;
  throw InvalidArgument("unknown linkage \"" + name + "\"");
}

sim::TopKStrategy strategy_from_name(const std::string& name) {
  if (name == "auto") return sim::TopKStrategy::kAuto;
  if (name == "exact") return sim::TopKStrategy::kExact;
  if (name == "pruned") return sim::TopKStrategy::kPruned;
  if (name == "approx") return sim::TopKStrategy::kApprox;
  throw InvalidArgument("unknown top-k strategy \"" + name + "\"");
}

}  // namespace

SharedCompendium make_shared_compendium(
    std::shared_ptr<const sim::SimilarityEngine> engine,
    std::shared_ptr<const std::vector<expr::Dataset>> datasets,
    std::shared_ptr<const spell::SpellSearch> spell) {
  SharedCompendium compendium;
  compendium.engine = std::move(engine);
  compendium.datasets = std::move(datasets);
  compendium.spell = std::move(spell);
  if (compendium.engine != nullptr) {
    compendium.engine_content_key =
        store::EngineCodec::content_key(*compendium.engine);
  }
  if (compendium.datasets != nullptr) {
    compendium.spell_content_key =
        store::SpellCodec::content_key(*compendium.datasets);
  }
  return compendium;
}

SharedCompendium open_shared_compendium(
    store::ArtifactStore& store, store::ArtifactKey input_key,
    const std::function<expr::ExpressionMatrix()>& load_matrix,
    std::shared_ptr<const std::vector<expr::Dataset>> datasets,
    sim::Metric metric, par::ThreadPool& pool) {
  auto engine =
      std::make_shared<sim::SimilarityEngine>(store::open_or_build_engine_mapped(
          store, input_key, load_matrix, metric));
  std::shared_ptr<const spell::SpellSearch> spell;
  if (datasets != nullptr) {
    spell = std::make_shared<spell::SpellSearch>(
        store::open_or_build_spell(store, *datasets, pool));
  }
  return make_shared_compendium(std::move(engine), std::move(datasets),
                                std::move(spell));
}

int error_http_status(const Error& error) {
  if (dynamic_cast<const InvalidArgument*>(&error) != nullptr ||
      dynamic_cast<const ParseError*>(&error) != nullptr) {
    return 400;
  }
  if (dynamic_cast<const OverloadedError*>(&error) != nullptr) return 503;
  if (dynamic_cast<const TimeoutError*>(&error) != nullptr) return 504;
  if (dynamic_cast<const CorruptArtifactError*>(&error) != nullptr ||
      dynamic_cast<const CorruptMessageError*>(&error) != nullptr ||
      dynamic_cast<const StaleArtifactError*>(&error) != nullptr) {
    return 502;
  }
  return 500;
}

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
  }
  return "unknown";
}

AnalysisService::AnalysisService(SharedCompendium compendium,
                                 par::ThreadPool& compute_pool,
                                 Options options)
    : compendium_(std::move(compendium)),
      compute_pool_(compute_pool),
      options_(options),
      job_pool_(options.job_workers) {
  FV_REQUIRE(compendium_.engine != nullptr,
             "AnalysisService needs a similarity engine");
  FV_REQUIRE(compendium_.datasets != nullptr && !compendium_.datasets->empty(),
             "AnalysisService needs a non-empty shared dataset vector");
  FV_REQUIRE(options_.job_workers >= 1, "job queue needs at least one worker");
  FV_REQUIRE(options_.max_active_jobs >= 1,
             "job admission bound must be at least 1");
}

AnalysisService::~AnalysisService() {
  // Jobs hold shared_ptr<JobRecord>, not map iterators, so they survive map
  // teardown — but they also read the compendium and the cache, so the pool
  // must drain first. job_pool_ is the last member (destroyed first); the
  // explicit wait keeps the invariant visible.
  job_pool_.wait_idle();
}

HttpResponse AnalysisService::handle(const HttpRequest& request) {
  const std::uint64_t tick = request_tick_.fetch_add(1) + 1;
  stats_.requests.fetch_add(1, std::memory_order_relaxed);

  // Deterministic request-path faults: decided by (seed, stream, tick), so
  // a seeded run rejects/delays the exact same request set every time, no
  // matter how client threads interleave.
  const ServeFaultSpec& faults = options_.faults;
  if (faults.reject_rate > 0.0 &&
      fault_uniform(fault_hash(faults.seed, kServeRejectStream, {tick})) <
          faults.reject_rate) {
    stats_.injected_rejects.fetch_add(1, std::memory_order_relaxed);
    JsonValue body = JsonValue::object();
    body["error"] = "injected overload";
    body["injected"] = true;
    return json_response(503, body);
  }
  if (faults.delay_rate > 0.0 &&
      fault_uniform(fault_hash(faults.seed, kServeDelayStream, {tick})) <
          faults.delay_rate) {
    stats_.injected_delays.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(faults.delay_ms));
  }

  try {
    return dispatch(request, tick);
  } catch (const Error& error) {
    return error_response(error_http_status(error), error.what());
  }
}

HttpResponse AnalysisService::dispatch(const HttpRequest& request,
                                       std::uint64_t tick) {
  const std::vector<std::string> seg = path_segments(request.path);
  if (seg.size() == 1 && seg[0] == "healthz") {
    if (request.method != "GET") return method_not_allowed();
    JsonValue body = JsonValue::object();
    body["status"] = "ok";
    return json_response(200, body);
  }
  if (seg.size() == 1 && seg[0] == "stats") {
    if (request.method != "GET") return method_not_allowed();
    return handle_stats();
  }
  if (!seg.empty() && seg[0] == "sessions") {
    if (seg.size() == 1) {
      if (request.method == "POST") return handle_session_create(request, tick);
      if (request.method == "GET") return handle_session_list();
      return method_not_allowed();
    }
    if (seg.size() == 2) {
      if (request.method == "GET") return handle_session_get(seg[1]);
      if (request.method == "DELETE") return handle_session_delete(seg[1]);
      return method_not_allowed();
    }
    if (seg.size() == 3 && seg[2] == "select") {
      if (request.method != "POST") return method_not_allowed();
      return handle_select(seg[1], request);
    }
    if (seg.size() == 3 && seg[2] == "jobs") {
      if (request.method != "POST") return method_not_allowed();
      return handle_job_submit(seg[1], request, tick);
    }
    if (seg.size() == 4 && seg[2] == "jobs") {
      if (request.method != "GET") return method_not_allowed();
      return handle_job_status(seg[1], seg[3], request, tick);
    }
    if (seg.size() == 5 && seg[2] == "jobs" && seg[4] == "result") {
      if (request.method != "GET") return method_not_allowed();
      return handle_job_result(seg[1], seg[3], tick);
    }
  }
  return not_found("endpoint");
}

HttpResponse AnalysisService::handle_session_create(const HttpRequest& request,
                                                    std::uint64_t tick) {
  // Body is optional; when present it must at least be valid JSON.
  if (!request.body.empty()) parse_json(request.body);
  std::scoped_lock lock(mutex_);
  if (sessions_.size() >= options_.max_sessions) {
    throw OverloadedError("session table full (" +
                          std::to_string(options_.max_sessions) +
                          " sessions); retry later");
  }
  auto serve_session = std::make_shared<ServeSession>();
  serve_session->id = "s" + std::to_string(++session_seq_);
  serve_session->session = std::make_unique<core::Session>(compendium_.datasets);
  serve_session->created_tick = tick;
  sessions_[serve_session->id] = serve_session;
  JsonValue body = JsonValue::object();
  body["session"] = serve_session->id;
  body["datasets"] = serve_session->session->dataset_count();
  return json_response(201, body);
}

HttpResponse AnalysisService::handle_session_list() const {
  std::scoped_lock lock(mutex_);
  JsonValue list = JsonValue::array();
  for (const auto& [id, session] : sessions_) list.push(id);
  JsonValue body = JsonValue::object();
  body["count"] = sessions_.size();
  body["sessions"] = std::move(list);
  return json_response(200, body);
}

HttpResponse AnalysisService::handle_session_get(const std::string& id) const {
  const std::shared_ptr<ServeSession> serve_session = find_session(id);
  if (serve_session == nullptr) return not_found("session");
  JsonValue body = JsonValue::object();
  {
    std::scoped_lock session_lock(serve_session->mutex);
    body["id"] = serve_session->id;
    body["created"] = serve_session->created_tick;
    body["datasets"] = serve_session->session->dataset_count();
    body["selection"] = serve_session->session->selection().size();
    body["operations"] = serve_session->session->operation_count();
    JsonValue jobs = JsonValue::array();
    for (const std::string& job_id : serve_session->job_ids) jobs.push(job_id);
    body["jobs"] = std::move(jobs);
  }
  return json_response(200, body);
}

HttpResponse AnalysisService::handle_session_delete(const std::string& id) {
  std::scoped_lock lock(mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return not_found("session");
  // Drop the session's job records too: polls for them 404 from here on.
  // Running jobs finish harmlessly on their own shared_ptr.
  std::size_t jobs_dropped = 0;
  for (auto job_it = jobs_.begin(); job_it != jobs_.end();) {
    if (job_it->second->session_id == id) {
      job_it = jobs_.erase(job_it);
      ++jobs_dropped;
    } else {
      ++job_it;
    }
  }
  sessions_.erase(it);
  JsonValue body = JsonValue::object();
  body["deleted"] = id;
  body["jobs_dropped"] = jobs_dropped;
  return json_response(200, body);
}

HttpResponse AnalysisService::handle_select(const std::string& id,
                                            const HttpRequest& request) {
  const std::shared_ptr<ServeSession> serve_session = find_session(id);
  if (serve_session == nullptr) return not_found("session");
  const JsonValue params = parse_json(request.body);
  const std::vector<std::string> names = string_list_field(params, "names");
  std::size_t found = 0;
  std::size_t selected = 0;
  {
    std::scoped_lock session_lock(serve_session->mutex);
    found = serve_session->session->select_by_names(names);
    selected = serve_session->session->selection().size();
  }
  JsonValue body = JsonValue::object();
  body["found"] = found;
  body["selection"] = selected;
  return json_response(200, body);
}

store::ArtifactKey AnalysisService::job_cache_key(
    const std::string& type, const JsonValue& params) const {
  store::KeyBuilder builder;
  builder.string("serve.job.v1")
      .value(compendium_.engine_content_key)
      .value(compendium_.spell_content_key)
      .string(type)
      .string(params.dump());
  return builder.key();
}

HttpResponse AnalysisService::handle_job_submit(const std::string& session_id,
                                                const HttpRequest& request,
                                                std::uint64_t tick) {
  const std::shared_ptr<ServeSession> serve_session = find_session(session_id);
  if (serve_session == nullptr) return not_found("session");
  const JsonValue body = parse_json(request.body);
  const std::string type = string_field(body, "type");

  // Validate and CANONICALIZE params up front: a bad request fails here,
  // synchronously, as a 400 — never as a failed job. Canonical params
  // (recognized fields only, defaults materialized) also make the cache
  // key insensitive to field order and to spelled-out defaults.
  JsonValue params = JsonValue::object();
  const sim::SimilarityEngine& engine = *compendium_.engine;
  if (type == "cluster") {
    const JsonValue* linkage_field = body.find("linkage");
    const std::string linkage_name =
        linkage_field != nullptr ? linkage_field->as_string() : "average";
    const cluster::Linkage linkage = linkage_from_name(linkage_name);
    FV_REQUIRE(!cluster::linkage_uses_squared_distances(linkage) ||
                   engine.metric() == sim::Metric::kEuclidean,
               "linkage \"" + linkage_name +
                   "\" needs squared Euclidean distances; this compendium's "
                   "engine uses a correlation metric");
    params["linkage"] = linkage_name;
  } else if (type == "topk") {
    const std::size_t k = index_field_or(body, "k", 10);
    FV_REQUIRE(k >= 1, "field \"k\" must be at least 1");
    const JsonValue* strategy_field = body.find("strategy");
    const std::string strategy_name =
        strategy_field != nullptr ? strategy_field->as_string() : "auto";
    strategy_from_name(strategy_name);  // validates
    params["k"] = k;
    params["min_common"] = index_field_or(body, "min_common", 0);
    params["strategy"] = strategy_name;
    params["rows"] = index_field_or(body, "rows", engine.size());
  } else if (type == "spell") {
    FV_REQUIRE(compendium_.spell != nullptr,
               "this server has no SPELL banks; spell jobs are disabled");
    const std::vector<std::string> query = string_list_field(body, "query");
    FV_REQUIRE(!query.empty(), "field \"query\" must not be empty");
    JsonValue query_json = JsonValue::array();
    for (const std::string& gene : query) query_json.push(gene);
    params["query"] = std::move(query_json);
    params["limit"] = index_field_or(body, "limit", 50);
  } else {
    throw InvalidArgument("unknown job type \"" + type +
                          "\" (expected cluster, topk or spell)");
  }

  const store::ArtifactKey key = job_cache_key(type, params);

  std::shared_ptr<JobRecord> job;
  bool submit = false;
  {
    std::scoped_lock lock(mutex_);
    reap_locked(tick);

    job = std::make_shared<JobRecord>();
    job->id = "j" + std::to_string(++job_seq_);
    job->session_id = session_id;
    job->type = type;
    job->params = params;
    job->cache_key = key;
    job->last_touch = tick;

    if (const auto hit = cache_.find(key); hit != cache_.end()) {
      // Memory cache hit: the job is born done, serving the SAME bytes the
      // cold compute produced — no admission check, no queueing.
      job->state = JobState::kDone;
      job->cached = true;
      job->result = hit->second;
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      if (active_jobs_ >= options_.max_active_jobs) {
        stats_.jobs_rejected.fetch_add(1, std::memory_order_relaxed);
        throw OverloadedError(
            "job queue full (" + std::to_string(options_.max_active_jobs) +
            " active jobs); retry later");
      }
      ++active_jobs_;
      submit = true;
    }
    stats_.jobs_submitted.fetch_add(1, std::memory_order_relaxed);
    jobs_[job->id] = job;
  }
  {
    std::scoped_lock session_lock(serve_session->mutex);
    serve_session->job_ids.push_back(job->id);
  }
  if (submit) {
    job_pool_.submit([this, job] { run_job(job); });
  }

  // Answer from the admission decision, not from job->state — the worker
  // may already be mutating the record.
  const bool cached = !submit;
  JsonValue response = JsonValue::object();
  response["job"] = job->id;
  response["state"] = cached ? "done" : "queued";
  response["cached"] = cached;
  return json_response(cached ? 200 : 202, response);
}

std::string AnalysisService::compute_job(const std::string& type,
                                         const JsonValue& params) {
  const sim::SimilarityEngine& engine = *compendium_.engine;
  JsonValue out = JsonValue::object();
  out["type"] = type;
  if (type == "cluster") {
    const cluster::Linkage linkage =
        linkage_from_name(params.find("linkage")->as_string());
    cluster::DistanceMatrix distances(engine.size());
    if (cluster::linkage_uses_squared_distances(linkage)) {
      engine.condensed_squared_distances(distances.condensed(), compute_pool_);
    } else {
      engine.condensed_distances(distances.condensed(), compute_pool_);
    }
    const std::vector<cluster::Merge> merges =
        cluster::agglomerate(std::move(distances), linkage);
    out["linkage"] = params.find("linkage")->as_string();
    out["n"] = engine.size();
    JsonValue list = JsonValue::array();
    for (const cluster::Merge& merge : merges) {
      JsonValue row = JsonValue::array();
      row.push(merge.left);
      row.push(merge.right);
      row.push(merge.distance);
      list.push(std::move(row));
    }
    out["merges"] = std::move(list);
  } else if (type == "topk") {
    const std::size_t k =
        static_cast<std::size_t>(params.find("k")->as_number());
    const std::size_t min_common =
        static_cast<std::size_t>(params.find("min_common")->as_number());
    const sim::TopKStrategy strategy =
        strategy_from_name(params.find("strategy")->as_string());
    const std::size_t rows = std::min(
        engine.size(),
        static_cast<std::size_t>(params.find("rows")->as_number()));
    const sim::NeighborTable table =
        engine.top_k_neighbors(k, compute_pool_, min_common, strategy);
    out["k"] = table.k;
    out["count"] = table.count;
    out["rows"] = rows;
    JsonValue neighbors = JsonValue::array();
    JsonValue distances = JsonValue::array();
    for (std::size_t i = 0; i < rows; ++i) {
      JsonValue n_row = JsonValue::array();
      JsonValue d_row = JsonValue::array();
      for (std::size_t j = 0; j < table.neighbor_count(i); ++j) {
        n_row.push(static_cast<std::size_t>(table.neighbors(i)[j]));
        d_row.push(static_cast<double>(table.neighbor_distances(i)[j]));
      }
      neighbors.push(std::move(n_row));
      distances.push(std::move(d_row));
    }
    out["neighbors"] = std::move(neighbors);
    out["distances"] = std::move(distances);
  } else if (type == "spell") {
    FV_REQUIRE(compendium_.spell != nullptr, "spell jobs are disabled");
    std::vector<std::string> query;
    for (const JsonValue& gene : params.find("query")->items()) {
      query.push_back(gene.as_string());
    }
    const std::size_t limit =
        static_cast<std::size_t>(params.find("limit")->as_number());
    const spell::SpellResult result =
        compendium_.spell->search(query, spell::SpellOptions{}, compute_pool_);
    out["recognized"] = result.query_genes_recognized;
    JsonValue datasets = JsonValue::array();
    for (const spell::DatasetScore& score : result.dataset_ranking) {
      JsonValue row = JsonValue::array();
      row.push(score.dataset_index);
      row.push(score.weight);
      row.push(score.query_genes_found);
      datasets.push(std::move(row));
    }
    out["datasets"] = std::move(datasets);
    JsonValue genes = JsonValue::array();
    const std::size_t gene_count = std::min(limit, result.gene_ranking.size());
    for (std::size_t i = 0; i < gene_count; ++i) {
      const spell::GeneScore& score = result.gene_ranking[i];
      JsonValue row = JsonValue::array();
      row.push(score.gene);
      row.push(score.score);
      row.push(score.support);
      genes.push(std::move(row));
    }
    out["genes"] = std::move(genes);
  } else {
    throw LogicError("compute_job on unvalidated type \"" + type + "\"");
  }
  return out.dump();
}

void AnalysisService::run_job(std::shared_ptr<JobRecord> job) {
  {
    std::scoped_lock lock(mutex_);
    job->state = JobState::kRunning;
  }
  job_cv_.notify_all();

  std::shared_ptr<const std::string> result;
  std::string error;
  int error_status = 500;
  bool was_cached = false;
  try {
    // Persistent warm path first: a restarted server finds the blob a
    // previous process committed and serves its exact bytes.
    if (options_.store != nullptr) {
      if (std::optional<std::string> blob =
              store::load_blob(*options_.store, job->cache_key)) {
        result = std::make_shared<const std::string>(*std::move(blob));
        stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
        was_cached = true;
      }
    }
    if (result == nullptr) {
      result = std::make_shared<const std::string>(
          compute_job(job->type, job->params));
      stats_.computes.fetch_add(1, std::memory_order_relaxed);
      if (options_.store != nullptr) {
        // Best-effort persist, exactly like load_or_compute's cold path: an
        // IoError (disk full, unwritable dir) degrades to memory-only
        // caching. StoreCrashed is NOT caught here — a simulated process
        // death mid-commit must fail the job and leave the store for fsck.
        try {
          store::put_blob(*options_.store, job->cache_key, *result);
        } catch (const IoError&) {
        }
      }
    }
  } catch (const Error& e) {
    error = e.what();
    error_status = error_http_status(e);
  } catch (const store::StoreCrashed& crash) {
    // Simulated process death mid-persist (deliberately not an fv::Error,
    // and not even a std::exception — it must be caught by name): the job
    // fails, the service carries on, and the store is left exactly as the
    // "dead process" left it — fsck's problem, as the chaos suite proves.
    // The computed result is dropped: a process that died mid-commit never
    // answered its client either.
    result = nullptr;
    error = "store crashed at op " + std::to_string(crash.op) +
            " persisting the result";
    error_status = 500;
  } catch (const std::exception& e) {
    error = e.what();
    error_status = 500;
  }

  {
    std::scoped_lock lock(mutex_);
    if (result != nullptr) {
      job->state = JobState::kDone;
      job->cached = was_cached;
      job->result = result;
      if (cache_.emplace(job->cache_key, result).second) {
        cache_order_.push_back(job->cache_key);
        while (cache_.size() > options_.result_cache_entries) {
          cache_.erase(cache_order_.front());
          cache_order_.erase(cache_order_.begin());
        }
      }
    } else {
      job->state = JobState::kFailed;
      job->error = error;
      job->error_status = error_status;
      stats_.jobs_failed.fetch_add(1, std::memory_order_relaxed);
    }
    --active_jobs_;
  }
  job_cv_.notify_all();
}

HttpResponse AnalysisService::handle_job_status(const std::string& session_id,
                                                const std::string& job_id,
                                                const HttpRequest& request,
                                                std::uint64_t tick) {
  std::uint32_t wait_ms = 0;
  if (const auto it = request.query.find("wait_ms");
      it != request.query.end()) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(it->second.c_str(), &end, 10);
    FV_REQUIRE(end != it->second.c_str() && *end == '\0' && value <= 60'000,
               "wait_ms must be an integer between 0 and 60000");
    wait_ms = static_cast<std::uint32_t>(value);
  }

  std::unique_lock lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second->session_id != session_id) {
    return not_found("job");
  }
  const std::shared_ptr<JobRecord> job = it->second;
  job->last_touch = tick;
  if (wait_ms > 0) {
    // Bounded long-poll: waits for a terminal state, never indefinitely.
    // Expiry is NOT an error — the current state is the answer.
    job_cv_.wait_for(lock, std::chrono::milliseconds(wait_ms), [&] {
      return job->state == JobState::kDone || job->state == JobState::kFailed;
    });
  }
  JsonValue body = JsonValue::object();
  body["job"] = job->id;
  body["session"] = job->session_id;
  body["jobtype"] = job->type;
  body["params"] = job->params;
  body["state"] = job_state_name(job->state);
  body["cached"] = job->cached;
  if (job->state == JobState::kFailed) {
    body["error"] = job->error;
    body["error_status"] = job->error_status;
  }
  return json_response(200, body);
}

HttpResponse AnalysisService::handle_job_result(const std::string& session_id,
                                                const std::string& job_id,
                                                std::uint64_t tick) {
  std::scoped_lock lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second->session_id != session_id) {
    return not_found("job");
  }
  const std::shared_ptr<JobRecord> job = it->second;
  job->last_touch = tick;
  switch (job->state) {
    case JobState::kDone: {
      // The response body IS the cached byte string — result fetches are
      // bit-identical across cold, concurrent and cached serves.
      HttpResponse response;
      response.body = *job->result;
      return response;
    }
    case JobState::kFailed:
      return error_response(job->error_status, job->error);
    case JobState::kQueued:
    case JobState::kRunning: {
      HttpResponse response = error_response(409, "job not finished");
      return response;
    }
  }
  return error_response(500, "unreachable job state");
}

HttpResponse AnalysisService::handle_stats() const {
  JsonValue body = JsonValue::object();
  {
    std::scoped_lock lock(mutex_);
    body["sessions"] = sessions_.size();
    body["jobs"] = jobs_.size();
    body["active_jobs"] = active_jobs_;
    body["cache_entries"] = cache_.size();
  }
  body["requests"] = stats_.requests.load(std::memory_order_relaxed);
  body["jobs_submitted"] = stats_.jobs_submitted.load(std::memory_order_relaxed);
  body["jobs_rejected"] = stats_.jobs_rejected.load(std::memory_order_relaxed);
  body["computes"] = stats_.computes.load(std::memory_order_relaxed);
  body["cache_hits"] = stats_.cache_hits.load(std::memory_order_relaxed);
  body["jobs_failed"] = stats_.jobs_failed.load(std::memory_order_relaxed);
  body["jobs_reaped"] = stats_.jobs_reaped.load(std::memory_order_relaxed);
  body["injected_rejects"] =
      stats_.injected_rejects.load(std::memory_order_relaxed);
  body["injected_delays"] =
      stats_.injected_delays.load(std::memory_order_relaxed);
  body["engine_profiles"] = compendium_.engine->size();
  return json_response(200, body);
}

void AnalysisService::wait_job(const std::string& job_id,
                               std::chrono::milliseconds deadline) {
  std::unique_lock lock(mutex_);
  const auto it = jobs_.find(job_id);
  FV_REQUIRE(it != jobs_.end(), "no such job \"" + job_id + "\"");
  const std::shared_ptr<JobRecord> job = it->second;
  const bool done = job_cv_.wait_for(lock, deadline, [&] {
    return job->state == JobState::kDone || job->state == JobState::kFailed;
  });
  if (!done) {
    throw TimeoutError("job \"" + job_id + "\" still " +
                       job_state_name(job->state) + " after bounded wait");
  }
}

std::size_t AnalysisService::reap_locked(std::uint64_t now) {
  if (options_.job_ttl_requests == 0) return 0;
  std::size_t reaped = 0;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    const JobRecord& job = *it->second;
    if (job.last_touch + options_.job_ttl_requests < now) {
      // Client abandoned it: no poll or fetch for TTL logical ticks. A
      // still-running body finishes on its own shared_ptr and is dropped.
      const std::string job_id = it->first;
      const std::string session_id = job.session_id;
      it = jobs_.erase(it);
      ++reaped;
      if (const auto session_it = sessions_.find(session_id);
          session_it != sessions_.end()) {
        std::scoped_lock session_lock(session_it->second->mutex);
        auto& ids = session_it->second->job_ids;
        ids.erase(std::remove(ids.begin(), ids.end(), job_id), ids.end());
      }
    } else {
      ++it;
    }
  }
  stats_.jobs_reaped.fetch_add(reaped, std::memory_order_relaxed);
  return reaped;
}

std::size_t AnalysisService::reap_abandoned() {
  std::scoped_lock lock(mutex_);
  return reap_locked(request_tick_.load(std::memory_order_relaxed));
}

std::size_t AnalysisService::session_count() const {
  std::scoped_lock lock(mutex_);
  return sessions_.size();
}

std::size_t AnalysisService::active_jobs() const {
  std::scoped_lock lock(mutex_);
  return active_jobs_;
}

std::shared_ptr<AnalysisService::ServeSession> AnalysisService::find_session(
    const std::string& id) const {
  std::scoped_lock lock(mutex_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

std::shared_ptr<AnalysisService::JobRecord> AnalysisService::find_job(
    const std::string& session_id, const std::string& job_id) const {
  std::scoped_lock lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second->session_id != session_id) return nullptr;
  return it->second;
}

}  // namespace fv::serve
