// AnalysisService — ForestView sessions as a service.
//
// The paper's merged interface and display wall are multi-user systems;
// this is the front door. One process holds ONE shared read-only
// compendium (datasets + a similarity engine, ideally borrowed-mapped from
// the artifact store so N sessions — and N processes — share one page-cache
// mapping) and serves N concurrent sessions over it:
//
//  * sessions   — per-user core::Session state (selection, pane order,
//                 prefs, event log) keyed by session id, created/read/
//                 deleted over HTTP, each serialized by its own mutex;
//  * jobs       — long-running analyses (hierarchical clustering, top-k
//                 neighbors, SPELL search) submitted asynchronously:
//                 submit → poll → fetch result. Jobs execute on a bounded
//                 par::ThreadPool; admission beyond the bound is a typed
//                 fv::OverloadedError (HTTP 503), never an unbounded queue;
//  * result cache — every job's response body is a pure function of
//                 (compendium content, job params), so it is cached under a
//                 store::KeyBuilder content key chained off the engine/
//                 SPELL content keys. Identical requests — same user or
//                 not — are served the SAME BYTES without recompute, and
//                 optionally persist as kBlob artifacts so a restarted
//                 server stays warm.
//
// Robustness follows the mpx/store patterns: every wait is bounded, every
// failure is a typed fv::Error mapped to an HTTP status
// (error_http_status), request-path fault injection is deterministic on
// the shared fv::fault_hash chain, and a simulated mid-job process crash
// (store::StoreCrashed during result persist) fails ONLY that job while
// the artifact store stays fsck-repairable — proven by the chaos suite.
//
// Response bodies are byte-deterministic (serve/json.hpp): the same
// request yields bit-identical bytes whether computed cold, concurrently
// with 7 other users, or served from the cache. Tests and bench_serve
// assert this, and the content-addressed cache depends on it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "par/thread_pool.hpp"
#include "serve/http.hpp"
#include "serve/json.hpp"
#include "sim/similarity_engine.hpp"
#include "spell/spell.hpp"
#include "store/cached.hpp"

namespace fv::serve {

/// The one read-only compendium every session reads. All members are
/// immutable after construction — that immutability (plus the engine's
/// storage-blind const query paths) is what makes concurrent sessions
/// race-free without a compendium lock.
struct SharedCompendium {
  /// Datasets for SPELL and per-session core::Session views.
  std::shared_ptr<const std::vector<expr::Dataset>> datasets;
  /// Gene-profile engine for clustering / top-k jobs. Borrowed-mapped when
  /// opened through open_shared_compendium, so sessions share one mapping.
  std::shared_ptr<const sim::SimilarityEngine> engine;
  /// Prebuilt SPELL banks (null disables spell jobs).
  std::shared_ptr<const spell::SpellSearch> spell;
  /// Content keys the result cache chains from (0 when the part is absent).
  store::ArtifactKey engine_content_key = 0;
  store::ArtifactKey spell_content_key = 0;
};

/// Computes the content keys and assembles a compendium from parts the
/// caller already has (storeless tests, fixtures).
SharedCompendium make_shared_compendium(
    std::shared_ptr<const sim::SimilarityEngine> engine,
    std::shared_ptr<const std::vector<expr::Dataset>> datasets = nullptr,
    std::shared_ptr<const spell::SpellSearch> spell = nullptr);

/// Opens the compendium through the artifact store: the engine via
/// open_or_build_engine_mapped (zero-copy shared mapping on every path
/// where a trustworthy artifact exists), the SPELL banks via
/// open_or_build_spell when `datasets` is given. `input_key` and
/// `load_matrix` are as in open_or_build_engine.
SharedCompendium open_shared_compendium(
    store::ArtifactStore& store, store::ArtifactKey input_key,
    const std::function<expr::ExpressionMatrix()>& load_matrix,
    std::shared_ptr<const std::vector<expr::Dataset>> datasets,
    sim::Metric metric, par::ThreadPool& pool);

/// Deterministic request-path fault injection: per request index, decided
/// on the shared fv::fault_hash chain (streams below), so a seed replays
/// the exact same rejected/delayed request set under any interleaving of
/// client threads — the chaos suite's determinism hook.
struct ServeFaultSpec {
  std::uint64_t seed = 0;
  double reject_rate = 0.0;   ///< P(request answered 503, body flags injected)
  double delay_rate = 0.0;    ///< P(request handling sleeps delay_ms first)
  std::uint32_t delay_ms = 0;

  bool any() const noexcept { return reject_rate > 0.0 || delay_rate > 0.0; }
};

/// fault_hash stream ids of the request-path decisions.
inline constexpr std::uint64_t kServeRejectStream = 0x5e21;
inline constexpr std::uint64_t kServeDelayStream = 0x5e22;

/// HTTP status of a typed failure — the one mapping table, used by the
/// request dispatcher and pinned by tests:
///   InvalidArgument / ParseError → 400   (caller's request is wrong)
///   OverloadedError              → 503   (retry later, nothing happened)
///   TimeoutError                 → 504   (bounded wait expired)
///   CorruptArtifact/Message,
///   StaleArtifact                → 502   (backing data failed integrity)
///   IoError / LogicError / other → 500
int error_http_status(const Error& error);

enum class JobState { kQueued, kRunning, kDone, kFailed };
const char* job_state_name(JobState state);

/// Service counters (relaxed atomics, mpx::FaultStats convention).
struct ServiceStats {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> jobs_submitted{0};
  std::atomic<std::uint64_t> jobs_rejected{0};   ///< OverloadedError admissions
  std::atomic<std::uint64_t> computes{0};        ///< job bodies actually run
  std::atomic<std::uint64_t> cache_hits{0};      ///< memory or blob cache
  std::atomic<std::uint64_t> jobs_failed{0};
  std::atomic<std::uint64_t> jobs_reaped{0};
  std::atomic<std::uint64_t> injected_rejects{0};
  std::atomic<std::uint64_t> injected_delays{0};
};

class AnalysisService {
 public:
  struct Options {
    /// Worker threads of the job pool: the job-level concurrency of the
    /// server. Compute *inside* a job uses the compute pool passed to the
    /// constructor (a job task must never block on its own pool).
    std::size_t job_workers = 2;
    /// Sessions beyond this are refused with OverloadedError (503).
    std::size_t max_sessions = 64;
    /// Queued + running jobs beyond this are refused with OverloadedError
    /// (503) — graceful saturation, not an unbounded queue.
    std::size_t max_active_jobs = 8;
    /// In-memory result-cache entries (oldest-inserted evicted beyond it).
    std::size_t result_cache_entries = 256;
    /// Logical-time TTL for reaping: a job untouched (no poll/fetch) for
    /// more than this many requests is considered client-abandoned and
    /// reaped on the next submit (and by reap_abandoned()). 0 = never.
    std::uint64_t job_ttl_requests = 0;
    ServeFaultSpec faults;
    /// Optional persistent result cache: job response bodies are stored as
    /// kBlob artifacts here and served back bit-identically after restart.
    store::ArtifactStore* store = nullptr;
  };

  /// `compendium.engine` is required (cluster/topk jobs); datasets are
  /// required for session views; spell may be null. `compute_pool` runs
  /// the parallel phases inside jobs and must NOT be the job pool.
  AnalysisService(SharedCompendium compendium, par::ThreadPool& compute_pool,
                  Options options);
  AnalysisService(SharedCompendium compendium, par::ThreadPool& compute_pool)
      : AnalysisService(std::move(compendium), compute_pool, Options{}) {}
  ~AnalysisService();

  AnalysisService(const AnalysisService&) = delete;
  AnalysisService& operator=(const AnalysisService&) = delete;

  /// The request dispatcher — thread-safe, one call per HTTP request.
  /// Endpoints (all JSON): see src/serve/README.md for the contract table.
  HttpResponse handle(const HttpRequest& request);

  /// Blocks until job `job_id` reaches a terminal state or the deadline
  /// expires — bounded wait, throws fv::TimeoutError on expiry and
  /// fv::InvalidArgument on an unknown job id.
  void wait_job(const std::string& job_id, std::chrono::milliseconds deadline);

  /// Removes jobs whose last client touch is older than job_ttl_requests
  /// logical ticks; returns how many were reaped. No-op when TTL is 0.
  std::size_t reap_abandoned();

  ServiceStats& stats() noexcept { return stats_; }
  std::size_t session_count() const;
  std::size_t active_jobs() const;
  const SharedCompendium& compendium() const noexcept { return compendium_; }

 private:
  struct ServeSession {
    std::string id;
    std::unique_ptr<core::Session> session;
    std::uint64_t created_tick = 0;
    std::vector<std::string> job_ids;
    mutable std::mutex mutex;  ///< serializes session mutations
  };

  struct JobRecord {
    std::string id;
    std::string session_id;
    std::string type;
    JsonValue params;  ///< validated request params (for status echoes)
    JobState state = JobState::kQueued;
    bool cached = false;
    store::ArtifactKey cache_key = 0;
    std::shared_ptr<const std::string> result;  ///< JSON bytes when kDone
    std::string error;                          ///< message when kFailed
    int error_status = 500;                     ///< status when kFailed
    std::uint64_t last_touch = 0;               ///< logical request tick
  };

  HttpResponse dispatch(const HttpRequest& request, std::uint64_t tick);

  HttpResponse handle_session_create(const HttpRequest& request,
                                     std::uint64_t tick);
  HttpResponse handle_session_list() const;
  HttpResponse handle_session_get(const std::string& id) const;
  HttpResponse handle_session_delete(const std::string& id);
  HttpResponse handle_select(const std::string& id,
                             const HttpRequest& request);
  HttpResponse handle_job_submit(const std::string& session_id,
                                 const HttpRequest& request,
                                 std::uint64_t tick);
  HttpResponse handle_job_status(const std::string& session_id,
                                 const std::string& job_id,
                                 const HttpRequest& request,
                                 std::uint64_t tick);
  HttpResponse handle_job_result(const std::string& session_id,
                                 const std::string& job_id,
                                 std::uint64_t tick);
  HttpResponse handle_stats() const;

  /// Computes one job's response body — the pure function the cache keys.
  std::string compute_job(const std::string& type, const JsonValue& params);
  /// Derives the content-addressed cache key of (type, params).
  store::ArtifactKey job_cache_key(const std::string& type,
                                   const JsonValue& params) const;
  void run_job(std::shared_ptr<JobRecord> job);
  std::size_t reap_locked(std::uint64_t now);

  std::shared_ptr<ServeSession> find_session(const std::string& id) const;
  std::shared_ptr<JobRecord> find_job(const std::string& session_id,
                                      const std::string& job_id) const;

  SharedCompendium compendium_;
  par::ThreadPool& compute_pool_;
  Options options_;

  mutable std::mutex mutex_;
  std::condition_variable job_cv_;
  std::map<std::string, std::shared_ptr<ServeSession>> sessions_;
  std::map<std::string, std::shared_ptr<JobRecord>> jobs_;
  /// Insertion-ordered in-memory result cache (key → body bytes).
  std::map<store::ArtifactKey, std::shared_ptr<const std::string>> cache_;
  std::vector<store::ArtifactKey> cache_order_;
  std::size_t session_seq_ = 0;
  std::size_t job_seq_ = 0;
  std::size_t active_jobs_ = 0;

  std::atomic<std::uint64_t> request_tick_{0};
  mutable ServiceStats stats_;

  /// Declared last so it is destroyed FIRST: its destructor joins the job
  /// workers, guaranteeing no job task can touch the maps above while they
  /// are being torn down.
  par::ThreadPool job_pool_;
};

}  // namespace fv::serve
