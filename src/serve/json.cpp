#include "serve/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace fv::serve {

namespace {

/// Maximum array/object nesting the parser accepts. Deep enough for any
/// real request, shallow enough that a hostile body cannot exhaust the
/// stack before the bound trips.
constexpr std::size_t kMaxDepth = 64;

[[noreturn]] void parse_fail(std::string_view what, std::size_t at) {
  throw ParseError("JSON: " + std::string(what) + " at byte " +
                   std::to_string(at));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) parse_fail("trailing characters", pos_);
    return value;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) parse_fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      parse_fail(std::string("expected '") + c + "'", pos_);
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxDepth) parse_fail("nesting too deep", pos_);
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        parse_fail("bad literal", pos_);
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        parse_fail("bad literal", pos_);
      case 'n':
        if (consume_literal("null")) return JsonValue();
        parse_fail("bad literal", pos_);
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{');
    JsonValue object = JsonValue::object();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      if (peek() != '"') parse_fail("expected object key string", pos_);
      std::string key = parse_string();
      expect(':');
      object[key] = parse_value(depth + 1);
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return object;
      }
      parse_fail("expected ',' or '}'", pos_);
    }
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[');
    JsonValue array = JsonValue::array();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.push(parse_value(depth + 1));
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return array;
      }
      parse_fail("expected ',' or ']'", pos_);
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) parse_fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        parse_fail("raw control character in string", pos_ - 1);
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) parse_fail("unterminated escape", pos_);
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) parse_fail("short \\u escape", pos_);
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else parse_fail("bad \\u hex digit", pos_ - 1);
          }
          // BMP only; surrogate pairs are rejected rather than silently
          // mangled (no handler emits them, so a request carrying one is
          // better refused than half-decoded).
          if (code >= 0xD800 && code <= 0xDFFF) {
            parse_fail("surrogate \\u escapes unsupported", pos_);
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          parse_fail("bad escape character", pos_ - 1);
      }
    }
  }

  JsonValue parse_number() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) parse_fail("expected a value", start);
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      parse_fail("bad number", start);
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_value(std::string& out, const JsonValue& value) {
  switch (value.type()) {
    case JsonValue::Type::kNull:
      out += "null";
      return;
    case JsonValue::Type::kBool:
      out += value.as_bool() ? "true" : "false";
      return;
    case JsonValue::Type::kNumber:
      out += format_json_number(value.as_number());
      return;
    case JsonValue::Type::kString:
      append_escaped(out, value.as_string());
      return;
    case JsonValue::Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& item : value.items()) {
        if (!first) out.push_back(',');
        first = false;
        append_value(out, item);
      }
      out.push_back(']');
      return;
    }
    case JsonValue::Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, member] : value.members()) {
        if (!first) out.push_back(',');
        first = false;
        append_escaped(out, key);
        out.push_back(':');
        append_value(out, member);
      }
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

bool JsonValue::as_bool() const {
  FV_REQUIRE(type_ == Type::kBool, "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  FV_REQUIRE(type_ == Type::kNumber, "JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  FV_REQUIRE(type_ == Type::kString, "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  FV_REQUIRE(type_ == Type::kArray, "JSON value is not an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::members() const {
  FV_REQUIRE(type_ == Type::kObject, "JSON value is not an object");
  return object_;
}

JsonValue& JsonValue::operator[](const std::string& key) {
  FV_REQUIRE(type_ == Type::kObject, "JSON value is not an object");
  return object_[key];
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

void JsonValue::push(JsonValue value) {
  FV_REQUIRE(type_ == Type::kArray, "JSON value is not an array");
  array_.push_back(std::move(value));
}

std::string JsonValue::dump() const {
  std::string out;
  append_value(out, *this);
  return out;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::string format_json_number(double value) {
  // Integers (job counts, sizes, indices) print exactly; everything else
  // prints with %.17g — enough digits for a bit-exact double round trip,
  // and locale-free ('.' decimal point) under the "C" printf family.
  if (std::nearbyint(value) == value && std::abs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace fv::serve
