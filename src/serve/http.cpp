#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "serve/json.hpp"

namespace fv::serve {

namespace {

[[noreturn]] void io_fail(const char* what) {
  throw IoError(std::string("http: ") + what + ": " + std::strerror(errno));
}

/// %XX decoding for query parameter names/values ('+' is a space).
std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size()) {
      const auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi < 0 || lo < 0) throw ParseError("http: bad %-escape in query");
      out.push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

/// Reads until the buffer holds a complete request (headers + declared
/// body) or the peer closes. Returns false on overflow of `max_bytes`.
bool read_request(int fd, std::size_t max_bytes, std::string& buffer) {
  char chunk[4096];
  std::size_t need = std::string::npos;  ///< total bytes once known
  while (buffer.size() < max_bytes) {
    if (need == std::string::npos) {
      const std::size_t header_end = buffer.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        std::size_t content_length = 0;
        const std::string lowered = lower(buffer.substr(0, header_end));
        const std::size_t cl = lowered.find("content-length:");
        if (cl != std::string::npos) {
          content_length = static_cast<std::size_t>(
              std::strtoull(lowered.c_str() + cl + 15, nullptr, 10));
        }
        need = header_end + 4 + content_length;
      }
    }
    if (need != std::string::npos && buffer.size() >= need) return true;
    const ssize_t got = ::recv(fd, chunk, sizeof chunk, 0);
    if (got == 0) return need != std::string::npos && buffer.size() >= need;
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(got));
  }
  return false;
}

void write_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer went away; nothing useful to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

const char* http_status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

HttpRequest parse_http_request(std::string_view raw, std::size_t max_bytes) {
  if (raw.size() > max_bytes) throw ParseError("http: request too large");
  const std::size_t line_end = raw.find("\r\n");
  if (line_end == std::string_view::npos) {
    throw ParseError("http: missing request line");
  }
  const std::string_view line = raw.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    throw ParseError("http: malformed request line");
  }
  HttpRequest request;
  request.method = std::string(line.substr(0, sp1));
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (version.substr(0, 5) != "HTTP/") {
    throw ParseError("http: bad protocol version");
  }
  const std::size_t qmark = target.find('?');
  if (qmark != std::string_view::npos) {
    std::string_view qs = target.substr(qmark + 1);
    while (!qs.empty()) {
      const std::size_t amp = qs.find('&');
      const std::string_view pair = qs.substr(0, amp);
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        request.query[url_decode(pair)] = "";
      } else {
        request.query[url_decode(pair.substr(0, eq))] =
            url_decode(pair.substr(eq + 1));
      }
      if (amp == std::string_view::npos) break;
      qs.remove_prefix(amp + 1);
    }
    target = target.substr(0, qmark);
  }
  request.path = url_decode(target);
  if (request.path.empty() || request.path[0] != '/') {
    throw ParseError("http: target must be an absolute path");
  }

  std::size_t cursor = line_end + 2;
  const std::size_t headers_end = raw.find("\r\n\r\n", line_end);
  if (headers_end == std::string_view::npos) {
    throw ParseError("http: missing header terminator");
  }
  while (cursor < headers_end) {
    const std::size_t eol = raw.find("\r\n", cursor);
    const std::string_view header = raw.substr(cursor, eol - cursor);
    const std::size_t colon = header.find(':');
    if (colon == std::string_view::npos) {
      throw ParseError("http: malformed header line");
    }
    std::string_view value = header.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    request.headers[lower(header.substr(0, colon))] = std::string(value);
    cursor = eol + 2;
  }

  std::size_t content_length = 0;
  if (const auto it = request.headers.find("content-length");
      it != request.headers.end()) {
    char* end = nullptr;
    content_length =
        static_cast<std::size_t>(std::strtoull(it->second.c_str(), &end, 10));
    if (end == it->second.c_str()) {
      throw ParseError("http: bad Content-Length");
    }
  }
  const std::string_view body = raw.substr(headers_end + 4);
  if (body.size() < content_length) {
    throw ParseError("http: body shorter than Content-Length");
  }
  request.body = std::string(body.substr(0, content_length));
  return request;
}

std::string format_http_response(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    http_status_reason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

HttpServer::HttpServer(Handler handler, const Options& options)
    : handler_(std::move(handler)), options_(options) {
  FV_REQUIRE(handler_ != nullptr, "HttpServer needs a handler");
  FV_REQUIRE(options_.listener_threads >= 1,
             "HttpServer needs at least one listener thread");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) io_fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    io_fail("bind");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    io_fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    io_fail("listen");
  }
  listeners_.reserve(options_.listener_threads);
  for (std::size_t i = 0; i < options_.listener_threads; ++i) {
    listeners_.emplace_back([this] { listener_loop(); });
  }
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  if (stopping_.exchange(true)) {
    for (std::thread& t : listeners_) {
      if (t.joinable()) t.join();
    }
    return;
  }
  for (std::thread& t : listeners_) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::listener_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    // Bounded poll so the stop flag is observed promptly; accept never
    // blocks indefinitely.
    const int ready = ::poll(&pfd, 1, 50);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    serve_connection(fd);
    ::close(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  std::string buffer;
  HttpResponse response;
  if (!read_request(fd, options_.max_request_bytes, buffer)) {
    response.status = 413;
    JsonValue error = JsonValue::object();
    error["error"] = "request too large or truncated";
    response.body = error.dump();
    write_all(fd, format_http_response(response));
    return;
  }
  try {
    const HttpRequest request =
        parse_http_request(buffer, options_.max_request_bytes);
    response = handler_(request);
  } catch (const ParseError& error) {
    response.status = 400;
    JsonValue body = JsonValue::object();
    body["error"] = std::string(error.what());
    response.body = body.dump();
  } catch (const std::exception& error) {
    // The handler (AnalysisService) maps typed errors itself; anything
    // that still escapes is a server bug answered as 500, never a dropped
    // connection.
    response.status = 500;
    JsonValue body = JsonValue::object();
    body["error"] = std::string(error.what());
    response.body = body.dump();
  }
  served_.fetch_add(1, std::memory_order_relaxed);
  write_all(fd, format_http_response(response));
}

std::string http_exchange(std::uint16_t port, std::string_view raw_request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) io_fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    io_fail("connect");
  }
  write_all(fd, raw_request);
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char chunk[4096];
  while (true) {
    const ssize_t got = ::recv(fd, chunk, sizeof chunk, 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;
    response.append(chunk, static_cast<std::size_t>(got));
  }
  ::close(fd);
  return response;
}

}  // namespace fv::serve
