// Minimal JSON value, parser and writer for the serving layer.
//
// The server's contract is *byte-deterministic* responses: the same request
// against the same compendium must produce the same bytes, whether computed
// cold, served from the result cache, or produced by a different worker
// thread — tests and the many-user bench assert bit-identity, and the
// content-addressed cache depends on it. That rules out any JSON library
// with unordered maps or locale-dependent number formatting, and is why
// this one exists:
//  * objects keep keys in std::map order (sorted, stable),
//  * numbers print via a fixed locale-free format (integers exactly,
//    doubles with round-trip precision),
//  * dump() has exactly one spelling of every construct (no whitespace
//    options).
//
// The parser is a strict recursive-descent JSON subset reader (UTF-8 pass
// through, \uXXXX escapes decoded for BMP code points) with a nesting-depth
// bound so hostile request bodies cannot blow the stack. Malformed input is
// a typed fv::ParseError, which the HTTP layer maps to 400.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace fv::serve {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  ///< null
  JsonValue(bool value) : type_(Type::kBool), bool_(value) {}
  JsonValue(double value) : type_(Type::kNumber), number_(value) {}
  JsonValue(int value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(std::size_t value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(std::string value)
      : type_(Type::kString), string_(std::move(value)) {}
  JsonValue(const char* value) : JsonValue(std::string(value)) {}

  static JsonValue array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }

  /// Typed reads; wrong-type access is the caller's bug (fv::InvalidArgument
  /// — the request handlers turn it into 400 via field helpers instead of
  /// calling these raw on client input).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;
  const std::map<std::string, JsonValue>& members() const;

  /// Object field access, inserting null for a missing key (object only).
  JsonValue& operator[](const std::string& key);
  /// Pointer to a member, or nullptr when absent / not an object.
  const JsonValue* find(const std::string& key) const;

  /// Appends to an array (array only).
  void push(JsonValue value);

  /// Serializes deterministically (see header comment). Objects emit keys
  /// in sorted order; arrays in insertion order.
  std::string dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one JSON document (the whole string must be consumed, trailing
/// whitespace allowed). Throws fv::ParseError on malformed input or on
/// nesting deeper than an internal bound.
JsonValue parse_json(std::string_view text);

/// Formats a double exactly as dump() does — shared so handlers composing
/// response fragments by hand stay byte-compatible with JsonValue output.
std::string format_json_number(double value);

}  // namespace fv::serve
