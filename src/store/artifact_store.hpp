// Crash-consistent, content-addressed artifact store.
//
// The expensive spine products — normalized compendium rows + missing
// bitmasks, condensed distance triangles, neighbor tables, LSH signature
// banks, SPELL dot banks, merge lists — are pure functions of (inputs,
// params). This store persists them keyed by a content hash of exactly
// that, so the thousandth process start reopens in milliseconds what the
// first one computed.
//
// Every artifact is one file:
//
//   [ ArtifactHeader, 64 bytes ]   magic, format version, kind, key,
//                                  payload byte count, XXH64 payload
//                                  checksum, section count, XXH64 header
//                                  checksum
//   [ section table ]              section_count x u64 byte lengths
//   [ sections ]                   raw bytes, each 8-byte aligned
//
// committed ONLY via write-tmp -> sync -> atomic-rename -> sync-dir, so a
// crash at any instant leaves either the old artifact or none — never a
// half-written file under the final name. Whatever the medium does to the
// bytes afterwards (torn writes, truncation, rot) is caught at open by
// the checksums and surfaces as typed fv::CorruptArtifactError /
// fv::StaleArtifactError, which the load_or_compute helper turns into the
// degradation ladder: quarantine -> recompute bit-identically -> re-persist
// (self-healing) -> serve. Wrong data is never served; the worst outcome
// of any storage fault is the cold-compute cost.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "store/fault.hpp"
#include "store/mapped_file.hpp"
#include "util/error.hpp"
#include "util/xxhash.hpp"

namespace fv::store {

inline constexpr char kArtifactMagic[8] = {'F', 'V', 'A', 'R',
                                           'T', 'I', 'F', '1'};
inline constexpr std::uint32_t kArtifactFormatVersion = 1;
/// Extension of committed artifacts; in-flight temporaries add ".tmp".
inline constexpr const char* kArtifactExtension = ".fva";

/// What a persisted artifact holds. Part of the sealed header: opening an
/// artifact as the wrong kind is a typed StaleArtifactError, not garbage.
enum class ArtifactKind : std::uint32_t {
  kEngine = 1,              ///< full SimilarityEngine state (normalized
                            ///< rows, missing bitmasks, segment norms, …)
  kCondensedDistances = 2,  ///< condensed n(n-1)/2 distance triangle
  kNeighborTable = 3,       ///< n x k top-k neighbor table
  kLshIndex = 4,            ///< LSH signature bank + bucket tables
  kMerges = 5,              ///< agglomeration merge list
  kBlob = 6,                ///< untyped bytes (tests, tooling)
};

/// File-name stem of a kind ("engine", "distances", ...).
const char* artifact_kind_name(ArtifactKind kind);

/// Content-hash key: 64-bit XXH64 chain over (inputs, params).
using ArtifactKey = std::uint64_t;

/// Builds an ArtifactKey by chaining XXH64 over typed fields. Same fields
/// in the same order => same key, on every platform the store supports.
class KeyBuilder {
 public:
  KeyBuilder& bytes(std::span<const std::byte> data) {
    hash_ = xxhash64(data, hash_);
    return *this;
  }

  template <typename T>
  KeyBuilder& value(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return bytes(std::as_bytes(std::span<const T>(&v, 1)));
  }

  template <typename T>
  KeyBuilder& span(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    // Fold the length first so ("ab","c") and ("a","bc") differ.
    value(static_cast<std::uint64_t>(values.size()));
    return bytes(std::as_bytes(values));
  }

  KeyBuilder& string(std::string_view s) {
    return span(std::span<const char>(s.data(), s.size()));
  }

  ArtifactKey key() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0x5eedf00dULL;
};

/// 64-byte sealed artifact header.
struct ArtifactHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t kind;
  std::uint64_t key;
  std::uint64_t payload_bytes;      ///< section table + sections
  std::uint64_t payload_checksum;   ///< XXH64 of the payload bytes
  std::uint64_t section_count;
  std::uint64_t reserved;           ///< zero
  std::uint64_t header_checksum;    ///< XXH64 of the 56 bytes above
};
static_assert(sizeof(ArtifactHeader) == 64);
static_assert(std::is_trivially_copyable_v<ArtifactHeader>);

/// Accumulates an artifact's sections before commit. Sections are opaque
/// byte runs, 8-byte aligned in the file; the typed span<> helpers are the
/// convention every codec uses.
class ArtifactWriter {
 public:
  void section_bytes(std::span<const std::byte> data) {
    sections_.emplace_back(data.begin(), data.end());
  }

  template <typename T>
  void section(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(alignof(T) <= 8, "sections are 8-byte aligned");
    section_bytes(std::as_bytes(values));
  }

  template <typename T>
  void section(const std::vector<T>& values) {
    section(std::span<const T>(values));
  }

  template <typename T>
  void scalar(const T& v) {
    section(std::span<const T>(&v, 1));
  }

  std::size_t section_count() const noexcept { return sections_.size(); }

 private:
  friend class ArtifactStore;
  std::vector<std::vector<std::byte>> sections_;
};

/// How an artifact open treats page residency.
enum class PageResidency {
  /// Prefault the whole mapping and checksum it in one pass — the warm
  /// path for artifacts that will be copied out wholesale anyway.
  kPrefault,
  /// Map on demand and checksum in bounded chunks, releasing each chunk's
  /// pages after hashing: validation is still complete (every payload
  /// byte is hashed before any section is served) but peak residency is
  /// one chunk, not the artifact. The open mode behind out-of-core
  /// borrowed-mapped engines (store::open_engine_mapped).
  kOnDemand,
};

/// A validated, read-only view of one committed artifact. Sections are
/// spans directly over the mapping — zero copies; the reader owns the
/// mapping, so spans live as long as the reader.
class ArtifactReader {
 public:
  ArtifactKind kind() const noexcept {
    return static_cast<ArtifactKind>(header_.kind);
  }
  ArtifactKey key() const noexcept { return header_.key; }
  std::size_t section_count() const noexcept { return offsets_.size(); }
  std::size_t file_bytes() const noexcept { return file_.size(); }
  const std::string& path() const noexcept { return file_.path(); }

  std::span<const std::byte> section_bytes(std::size_t i) const {
    FV_REQUIRE(i < offsets_.size(), "artifact section index out of range");
    return {file_.data() + offsets_[i].first, offsets_[i].second};
  }

  template <typename T>
  std::span<const T> section(std::size_t i) const {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(alignof(T) <= 8, "sections are 8-byte aligned");
    const auto bytes = section_bytes(i);
    if (bytes.size() % sizeof(T) != 0) {
      throw CorruptArtifactError(
          "artifact '" + file_.path() + "' section " + std::to_string(i) +
          " holds " + std::to_string(bytes.size()) + " bytes, not a "
          "multiple of the expected " + std::to_string(sizeof(T)) +
          "-byte element");
    }
    return {reinterpret_cast<const T*>(bytes.data()),
            bytes.size() / sizeof(T)};
  }

  template <typename T>
  T scalar(std::size_t i) const {
    const auto values = section<T>(i);
    if (values.size() != 1) {
      throw CorruptArtifactError("artifact '" + file_.path() +
                                 "' section " + std::to_string(i) +
                                 " is not a single scalar");
    }
    return values[0];
  }

  template <typename T>
  std::vector<T> vector(std::size_t i) const {
    const auto values = section<T>(i);
    return {values.begin(), values.end()};
  }

  /// Re-validates the mapping's backing file: throws CorruptArtifactError
  /// if the file shrank after open (a foreign truncate), in which case a
  /// read of any span past the new EOF would be SIGBUS, not an exception.
  /// Borrowed-mapped engines call this through their EngineStoragePin
  /// before every compute phase that walks unfaulted pages.
  void check_backing() const {
    if (file_.disk_size() < file_.size()) {
      throw CorruptArtifactError(
          "artifact '" + file_.path() + "' shrank under its mapping (" +
          std::to_string(file_.disk_size()) + " bytes on disk, " +
          std::to_string(file_.size()) + " mapped) — the backing file was "
          "truncated after open");
    }
  }

  /// Drops clean pages of [data, data + bytes) from this process's
  /// resident set when the pointer lies inside this reader's mapping
  /// (madvise MADV_DONTNEED; refault on next touch). Pointers outside the
  /// mapping are ignored — a best-effort residency hint, never an error.
  void release_pages(const void* data, std::size_t bytes) const noexcept {
    const auto* p = static_cast<const std::byte*>(data);
    if (p < file_.data() || p >= file_.data() + file_.size()) return;
    file_.advise_dont_need(static_cast<std::size_t>(p - file_.data()),
                           bytes);
  }

 private:
  friend ArtifactReader open_artifact_file(const std::string& path,
                                           PageResidency residency);
  MappedFile file_;
  ArtifactHeader header_{};
  std::vector<std::pair<std::size_t, std::size_t>> offsets_;  ///< off, len
};

/// Opens and fully validates one artifact file: magic/header checksum ->
/// CorruptArtifactError, format version -> StaleArtifactError, payload
/// checksum / truncation / section-table overrun -> CorruptArtifactError.
/// Used by ArtifactStore::open and by fsck. kOnDemand performs the same
/// complete validation but streams the payload checksum in bounded chunks
/// (dropping each chunk's pages after hashing) so opening an artifact much
/// larger than RAM never faults the whole file resident.
ArtifactReader open_artifact_file(
    const std::string& path,
    PageResidency residency = PageResidency::kPrefault);

/// Counters of one store's lifetime (relaxed atomics).
struct StoreStats {
  std::atomic<std::uint64_t> warm_opens{0};   ///< valid artifact served
  std::atomic<std::uint64_t> recomputes{0};   ///< compute path taken
  std::atomic<std::uint64_t> corrupt{0};      ///< CorruptArtifactError seen
  std::atomic<std::uint64_t> stale{0};        ///< StaleArtifactError seen
  std::atomic<std::uint64_t> quarantined{0};  ///< files moved aside
  std::atomic<std::uint64_t> persists{0};     ///< successful commits
  std::atomic<std::uint64_t> persist_failures{0};  ///< commits that failed
};

class ArtifactStore {
 public:
  /// Opens (creating if needed) a store directory. The FaultSpec installs
  /// deterministic storage fault injection on every write-side I/O op;
  /// the default spec injects nothing.
  explicit ArtifactStore(std::string directory, FaultSpec faults = {});

  const std::string& directory() const noexcept { return directory_; }
  FaultInjector& faults() noexcept { return faults_; }
  StoreStats& stats() noexcept { return stats_; }

  /// Final path of (kind, key): <dir>/<kind>-<16-hex-key>.fva.
  std::string artifact_path(ArtifactKind kind, ArtifactKey key) const;

  bool contains(ArtifactKind kind, ArtifactKey key) const;

  /// Commits an artifact: `fill` provides the sections, then the bytes go
  /// through write-tmp -> sync -> atomic-rename -> sync-dir. On any
  /// fv::Error (injected ENOSPC, real I/O failure) the temporary is
  /// removed and the error rethrown — the store still holds the old
  /// artifact or none. StoreCrashed (simulated process death) is NOT
  /// cleaned up after, by design.
  ///
  /// Cross-process exclusion: each commit holds an advisory flock(2)
  /// LOCK_EX on the store directory for its duration, so two PROCESSES
  /// committing into the same directory serialize instead of interleaving
  /// on the shared .tmp path (within a process, commit_mutex_ serializes
  /// first — the flock never self-deadlocks). Readers take no lock; the
  /// rename-based protocol already guarantees they see old or new bytes,
  /// never a mix.
  void put(ArtifactKind kind, ArtifactKey key,
           const std::function<void(ArtifactWriter&)>& fill);

  /// Opens an artifact. nullopt when absent; CorruptArtifactError /
  /// StaleArtifactError when present but not trustworthy (see
  /// open_artifact_file); the header's kind and key must also match the
  /// request (else StaleArtifactError — the file is not what its name
  /// claims). kOnDemand opens validate identically but keep page
  /// residency bounded (out-of-core consumers).
  std::optional<ArtifactReader> open(
      ArtifactKind kind, ArtifactKey key,
      PageResidency residency = PageResidency::kPrefault) const;

  /// Moves a damaged artifact into <dir>/quarantine/ for post-mortem (the
  /// degradation path never deletes evidence). Best effort, never throws.
  void quarantine(ArtifactKind kind, ArtifactKey key) noexcept;

  /// Removes an artifact (stale files are safe to delete). Best effort.
  void remove(ArtifactKind kind, ArtifactKey key) noexcept;

 private:
  std::string directory_;
  FaultInjector faults_;
  mutable StoreStats stats_;
  /// Serializes commits within this process: concurrent puts of the same
  /// key would interleave on the shared .tmp path. Cross-process writers
  /// are the store's documented single-writer-per-directory assumption
  /// (README); readers are always safe — that is what the commit protocol
  /// guarantees.
  std::mutex commit_mutex_;
};

namespace detail {
/// One stderr line per recovery event; the degradation ladder never
/// degrades silently.
void log_artifact_recovery(const std::string& path, const char* verdict,
                           const char* why, const char* action);
}  // namespace detail

/// How a load_or_compute call was served.
struct OpenStats {
  bool warm = false;       ///< a valid artifact was served, no compute
  bool recovered = false;  ///< a damaged artifact was detected and healed
  bool persisted = false;  ///< the computed value was committed
};

/// The recompute-or-repair degradation ladder shared by every cached
/// consumer:
///
///   1. try the artifact — valid  -> serve it (warm, milliseconds);
///   2. corrupt          -> quarantine, log, fall through;
///      stale            -> remove, log, fall through;
///      unreadable       -> log, fall through;
///   3. recompute from inputs (bit-identical to what a fresh process
///      computes — the artifact is pure function output);
///   4. re-persist best-effort (self-healing; a failed commit only costs
///      the next process the same recompute, never correctness).
///
/// StoreCrashed propagates untouched: a simulated dead process must not
/// recover itself. Everything else ends in a correct value or a typed
/// fv::Error from the compute itself — never silently wrong data.
template <typename T>
T load_or_compute(ArtifactStore& store, ArtifactKind kind, ArtifactKey key,
                  const std::function<T(const ArtifactReader&)>& load,
                  const std::function<T()>& compute,
                  const std::function<void(ArtifactWriter&, const T&)>& save,
                  OpenStats* open_stats = nullptr) {
  bool recovered = false;
  try {
    if (auto reader = store.open(kind, key)) {
      T value = load(*reader);
      store.stats().warm_opens.fetch_add(1, std::memory_order_relaxed);
      if (open_stats != nullptr) open_stats->warm = true;
      return value;
    }
  } catch (const CorruptArtifactError& error) {
    store.stats().corrupt.fetch_add(1, std::memory_order_relaxed);
    detail::log_artifact_recovery(store.artifact_path(kind, key),
                                  "corrupt", error.what(), "quarantined");
    store.quarantine(kind, key);
    recovered = true;
  } catch (const StaleArtifactError& error) {
    store.stats().stale.fetch_add(1, std::memory_order_relaxed);
    detail::log_artifact_recovery(store.artifact_path(kind, key), "stale",
                                  error.what(), "removed");
    store.remove(kind, key);
    recovered = true;
  } catch (const IoError& error) {
    detail::log_artifact_recovery(store.artifact_path(kind, key),
                                  "unreadable", error.what(), "ignored");
    recovered = true;
  }
  T value = compute();
  store.stats().recomputes.fetch_add(1, std::memory_order_relaxed);
  try {
    store.put(kind, key, [&](ArtifactWriter& w) { save(w, value); });
    store.stats().persists.fetch_add(1, std::memory_order_relaxed);
    if (open_stats != nullptr) open_stats->persisted = true;
  } catch (const Error& error) {
    store.stats().persist_failures.fetch_add(1, std::memory_order_relaxed);
    detail::log_artifact_recovery(store.artifact_path(kind, key),
                                  "persist-failed", error.what(),
                                  "serving computed value");
  }
  if (open_stats != nullptr) open_stats->recovered = recovered;
  return value;
}

}  // namespace fv::store
