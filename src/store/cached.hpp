// Cached spine products: the artifact store wired into the consumers.
//
// Everything expensive on the ForestView spine is a pure function of
// (inputs, params): the normalized compendium rows + missing bitmasks live
// in a SimilarityEngine, condensed distance triangles feed agglomeration,
// neighbor tables feed kNN imputation, LSH signature banks feed
// approximate top-k, SPELL dot banks feed query scoring. This header gives
// each of them a content-hash key, a codec (byte-exact save/load of the
// computed state), and an open_or_* entry point built on
// store::load_or_compute — warm when a valid artifact exists, recompute +
// self-heal otherwise, never wrong data.
//
// Warm opens restore BIT-IDENTICAL state: the codecs copy the computed
// float/double arrays verbatim (no re-derivation, no text round-trip), so
// a warm consumer is indistinguishable from a cold one — tests assert
// exact equality, not tolerance.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/distance.hpp"
#include "cluster/hclust.hpp"
#include "expr/dataset.hpp"
#include "par/thread_pool.hpp"
#include "sim/lsh.hpp"
#include "sim/similarity_engine.hpp"
#include "spell/spell.hpp"
#include "store/artifact_store.hpp"

namespace fv::store {

// ---- content-hash keys -------------------------------------------------

/// Key of a matrix's raw content: dimensions + every cell byte (NaN
/// patterns included — a missing cell is content).
ArtifactKey matrix_key(const expr::ExpressionMatrix& matrix);

/// Key of an on-disk compendium: every regular file in `directory`, sorted
/// by name, hashed as (name, bytes). This is how a warm session keys the
/// engine artifact WITHOUT parsing a single PCL line — byte-hashing the
/// files is I/O-bound, parsing them is not.
ArtifactKey compendium_files_key(const std::string& directory);

/// Engine key: input content + the build parameters that change the state.
ArtifactKey engine_key(ArtifactKey input_key, sim::Metric metric,
                       sim::Precompute precompute, sim::DenseKernel kernel);

/// Key of a condensed distance matrix's content (n + every cell).
ArtifactKey distances_key(const cluster::DistanceMatrix& distances);

ArtifactKey lsh_key(ArtifactKey engine_content, const sim::LshParams& params);

ArtifactKey neighbors_key(ArtifactKey engine_content, std::size_t k,
                          std::size_t min_common, sim::TopKStrategy strategy,
                          const sim::LshParams& lsh);

ArtifactKey merges_key(ArtifactKey distances_content,
                       cluster::Linkage linkage,
                       cluster::Agglomerator algorithm);

// ---- codecs ------------------------------------------------------------
//
// Each codec appends a fixed number of sections to an ArtifactWriter and
// reads them back from an ArtifactReader at a caller-tracked section
// cursor (so codecs nest: SpellCodec stores one engine bank after
// another). The friend declarations in sim/ and spell/ let them move
// private state without widening any public API.

class EngineCodec {
 public:
  static constexpr std::size_t kSections = 14;

  /// Self-contained content key of a BUILT engine: input content (filled
  /// rows + missing masks + dims) and build params, independent of where
  /// the input came from. Derived artifacts (distances, neighbors, LSH)
  /// chain from this, so they never need the original files.
  static ArtifactKey content_key(const sim::SimilarityEngine& engine);

  static void save(ArtifactWriter& writer,
                   const sim::SimilarityEngine& engine);
  static sim::SimilarityEngine load(const ArtifactReader& reader,
                                    std::size_t& section);

  /// Zero-copy restore: the returned engine's state arrays are read-only
  /// spans directly into `reader`'s mapping (EngineStorage::kBorrowedMapped)
  /// and the reader is pinned inside the engine, so the mapping outlives
  /// every span. Same section layout and the same structural checks as
  /// load() — the two restores are bit-identical in every query. Open the
  /// reader with PageResidency::kOnDemand or the mapping arrives fully
  /// faulted and the point of borrowing is lost.
  static sim::SimilarityEngine load_mapped(
      std::shared_ptr<const ArtifactReader> reader, std::size_t& section);
};

class LshCodec {
 public:
  static constexpr std::size_t kSections = 5;
  static void save(ArtifactWriter& writer, const sim::LshIndex& index);
  static sim::LshIndex load(const ArtifactReader& reader,
                            std::size_t& section);

  /// Zero-copy restore of a signature index: the bank and each bucket
  /// table's per-table slice of the flat key/row sections are borrowed
  /// from `reader`'s mapping, which the index pins. Candidate generation
  /// is identical to a load()ed or freshly built index.
  static sim::LshIndex load_mapped(
      std::shared_ptr<const ArtifactReader> reader, std::size_t& section);
};

class SpellCodec {
 public:
  static ArtifactKey content_key(const std::vector<expr::Dataset>& datasets);
  static void save(ArtifactWriter& writer, const spell::SpellSearch& search);
  /// `datasets` must be the same compendium the persisted search was built
  /// over (the key guarantees it when the caller goes through
  /// open_or_build_spell); the restored search references it.
  static spell::SpellSearch load(const ArtifactReader& reader,
                                 const std::vector<expr::Dataset>& datasets);
};

/// NeighborTable and DistanceMatrix are public-state types; their codecs
/// need no friends but follow the same section discipline.
class NeighborCodec {
 public:
  static constexpr std::size_t kSections = 4;
  static void save(ArtifactWriter& writer, const sim::NeighborTable& table);
  static sim::NeighborTable load(const ArtifactReader& reader,
                                 std::size_t& section);
};

class DistanceCodec {
 public:
  static constexpr std::size_t kSections = 2;
  static void save(ArtifactWriter& writer,
                   const cluster::DistanceMatrix& distances);
  static cluster::DistanceMatrix load(const ArtifactReader& reader,
                                      std::size_t& section);
};

// ---- cached consumers --------------------------------------------------
//
// Every open_or_* call lands in exactly one of two states:
//  * warm — a valid artifact was mapped and copied out (milliseconds);
//  * cold — computed from inputs (bit-identical to a storeless build),
//    then persisted best-effort.
// Damaged artifacts are quarantined/removed on the way (see
// load_or_compute); `stats` reports which path ran.

/// The engine over a compendium/matrix, keyed by `input_key` (use
/// matrix_key or compendium_files_key). `load_matrix` is only invoked on
/// the cold path — a warm open never parses input files.
sim::SimilarityEngine open_or_build_engine(
    ArtifactStore& store, ArtifactKey input_key,
    const std::function<expr::ExpressionMatrix()>& load_matrix,
    sim::Metric metric,
    sim::Precompute precompute = sim::Precompute::kAllPairs,
    sim::DenseKernel kernel = sim::DenseKernel::kAuto,
    OpenStats* stats = nullptr);

/// Opens a persisted engine artifact WITHOUT copying its state to the
/// heap: the artifact is validated chunk-streamed (PageResidency::
/// kOnDemand), then served as a borrowed-mapped engine whose arrays are
/// read-only spans into the pinned mapping. Every query and tile path is
/// bit-identical to the heap engine the artifact was saved from; what
/// changes is residency — pages fault in as the tile schedule touches
/// them, and the serial streaming driver releases them behind its cursor,
/// so the distance phase runs at n whose dense engine state exceeds RAM.
/// `key` is the full engine artifact key (engine_key(...)). nullopt when
/// absent; CorruptArtifactError / StaleArtifactError propagate (callers
/// wanting the degradation ladder use open_or_build_engine_mapped).
std::optional<sim::SimilarityEngine> open_engine_mapped(ArtifactStore& store,
                                                        ArtifactKey key);

/// open_or_build_engine with a borrowed-mapped warm path: a valid artifact
/// is served mapped (see open_engine_mapped); a missing or damaged one is
/// rebuilt on the heap, persisted, and the COMMITTED artifact is then
/// reopened mapped — so the returned engine is mapped on every path where
/// a trustworthy artifact exists, and falls back to the heap build only
/// when persisting failed (degradation, never an error). Damage handling
/// (quarantine / remove / log, StoreCrashed untouched) matches
/// load_or_compute exactly.
sim::SimilarityEngine open_or_build_engine_mapped(
    ArtifactStore& store, ArtifactKey input_key,
    const std::function<expr::ExpressionMatrix()>& load_matrix,
    sim::Metric metric,
    sim::Precompute precompute = sim::Precompute::kAllPairs,
    sim::DenseKernel kernel = sim::DenseKernel::kAuto,
    OpenStats* stats = nullptr);

/// The condensed pairwise distance triangle of `engine`'s profiles.
cluster::DistanceMatrix open_or_compute_condensed(
    ArtifactStore& store, const sim::SimilarityEngine& engine,
    par::ThreadPool& pool, OpenStats* stats = nullptr);

/// The LSH signature index over `engine` under `params`. A warm open
/// skips the O(n·bits) hyperplane projection pass entirely.
sim::LshIndex open_or_build_lsh(ArtifactStore& store,
                                const sim::SimilarityEngine& engine,
                                const sim::LshParams& params,
                                par::ThreadPool& pool,
                                OpenStats* stats = nullptr);

/// Opens a persisted LSH index over `engine` as a borrowed-mapped index
/// (signature bank + bucket tables served as spans into the pinned
/// artifact mapping — no copy, no O(n·bits) rebuild). nullopt when absent;
/// typed errors propagate like open_engine_mapped.
std::optional<sim::LshIndex> open_lsh_mapped(ArtifactStore& store,
                                             const sim::SimilarityEngine& engine,
                                             const sim::LshParams& params);

/// The top-k neighbor table of `engine`. Under TopKStrategy::kApprox the
/// LSH index itself is ALSO cached (open_or_build_lsh) and handed to
/// top_k_neighbors prebuilt — so even a cold neighbor table reuses warm
/// signatures.
sim::NeighborTable open_or_compute_top_k(
    ArtifactStore& store, const sim::SimilarityEngine& engine, std::size_t k,
    par::ThreadPool& pool, std::size_t min_common = 0,
    sim::TopKStrategy strategy = sim::TopKStrategy::kAuto,
    const sim::LshParams& lsh = sim::LshParams{}, OpenStats* stats = nullptr);

/// The agglomeration merge list of a condensed distance matrix.
std::vector<cluster::Merge> open_or_compute_merges(
    ArtifactStore& store, const cluster::DistanceMatrix& distances,
    cluster::Linkage linkage,
    cluster::Agglomerator algorithm = cluster::Agglomerator::kAuto,
    OpenStats* stats = nullptr);

/// The SPELL search (per-dataset dot banks) over a compendium.
spell::SpellSearch open_or_build_spell(
    ArtifactStore& store, const std::vector<expr::Dataset>& datasets,
    par::ThreadPool& pool, OpenStats* stats = nullptr);

// ---- opaque result blobs -----------------------------------------------
//
// The serving layer's content-addressed result cache persists rendered
// response payloads (JSON bytes) under ArtifactKind::kBlob so a restarted
// server answers repeat requests warm. A blob is one single-section
// artifact; the payload is returned verbatim, so a warm response is
// bit-identical to the one that was cached.

/// Commits `bytes` under (kBlob, key). Throws like ArtifactStore::put.
void put_blob(ArtifactStore& store, ArtifactKey key, std::string_view bytes);

/// Opens the blob at (kBlob, key). nullopt when absent — and also on
/// damage, after the usual ladder housekeeping (corrupt → quarantine,
/// stale → remove, unreadable → ignore), because a cache consumer's only
/// recovery is recomputing the response anyway. Never throws typed
/// artifact errors.
std::optional<std::string> load_blob(ArtifactStore& store, ArtifactKey key);

}  // namespace fv::store
