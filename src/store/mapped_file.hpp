// Memory-mapped file primitive (the ExpressionMatrix2 MemoryMappedVector
// lineage): file-backed storage that opens in milliseconds because opening
// IS the mmap — no parse, no copy, and a read-only reopen shares pages
// with every other process mapping the same file.
//
// MappedFile owns one fd + one mapping. Writable mappings grow in place
// (ftruncate + mremap); read-only mappings are immutable views. All fault
// injection happens ABOVE this class through store::FaultInjector hooks in
// the callers that copy bytes into mappings — except sync(), whose
// truncate-instead-of-flush fault has to act on the file itself, so sync
// takes the injector directly.
#pragma once

#include <cstddef>
#include <string>

#include "store/fault.hpp"
#include "util/error.hpp"

namespace fv::store {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Creates (truncating any existing file) a read-write file of `bytes`
  /// bytes, zero-filled, and maps it shared. `bytes` must be >= 1. The
  /// injector, when given, gates the allocation (ENOSPC / crash).
  static MappedFile create(const std::string& path, std::size_t bytes,
                           FaultInjector* faults = nullptr);

  /// Maps an existing file read-only. A zero-length file yields a valid
  /// object with size() == 0 and no mapping (callers decide what an empty
  /// file means). Throws fv::IoError when the file cannot be opened.
  /// `populate` prefaults every page in one syscall (MAP_POPULATE) — right
  /// for whole-file streaming reads (checksum passes dominate open cost);
  /// pass false for out-of-core consumers whose resident set must stay a
  /// fraction of the file (pages then fault in on first touch only).
  static MappedFile open_read_only(const std::string& path,
                                   bool populate = true);

  /// Maps an existing file read-write at its current size.
  static MappedFile open_read_write(const std::string& path,
                                    FaultInjector* faults = nullptr);

  bool is_open() const noexcept { return fd_ >= 0; }
  bool read_only() const noexcept { return read_only_; }
  std::size_t size() const noexcept { return size_; }
  const std::string& path() const noexcept { return path_; }

  std::byte* data() noexcept { return data_; }
  const std::byte* data() const noexcept { return data_; }

  /// Grows (or shrinks) the file and remaps in place (mremap on Linux —
  /// the mapping address may move, so callers must not hold raw pointers
  /// across a resize). Writable mappings only. The injector, when given,
  /// gates the allocation.
  void resize(std::size_t bytes, FaultInjector* faults = nullptr);

  /// Flushes the mapping (msync) and the file (fsync) to the medium.
  /// Under an injected truncation fault the file is chopped instead —
  /// the caller believes its data is durable, the tail is gone.
  void sync(FaultInjector* faults = nullptr);

  /// Unmaps and closes. Idempotent; the destructor calls it. Does NOT
  /// sync — writable callers that need durability sync first (the commit
  /// protocol does), which keeps "crash before sync" states reachable.
  void close() noexcept;

  /// The file's CURRENT on-disk byte count (fstat), as opposed to size(),
  /// which is the byte count sealed into the mapping at open time. A
  /// foreign truncate(2) makes disk_size() < size(); reading the mapping
  /// past the new EOF is then SIGBUS — out-of-core consumers compare the
  /// two before walking unfaulted pages (EngineStoragePin::check_backing).
  std::size_t disk_size() const;

  /// Hints that [offset, offset + bytes) of the mapping will not be read
  /// again soon (madvise MADV_DONTNEED): clean file-backed pages leave
  /// this process's resident set and refault from the page cache on the
  /// next touch. The range is shrunk inward to page boundaries — partial
  /// pages stay resident, so the hint can never discard bytes a
  /// neighboring consumer still reads. Best effort, never throws.
  void advise_dont_need(std::size_t offset, std::size_t bytes)
      const noexcept;

  /// Atomically replaces `to` with `from` (POSIX rename: readers of `to`
  /// see the old bytes or the new bytes, never a mix). The injector op
  /// gates the crash point.
  static void atomic_rename(const std::string& from, const std::string& to,
                            FaultInjector* faults = nullptr);

  /// fsyncs a directory so a preceding rename survives power loss.
  static void sync_directory(const std::string& directory,
                             FaultInjector* faults = nullptr);

  /// Removes a file if it exists (best effort, never throws) — commit
  /// abort cleanup.
  static void remove_quiet(const std::string& path) noexcept;

 private:
  MappedFile(std::string path, int fd, std::byte* data, std::size_t size,
             bool read_only)
      : path_(std::move(path)), fd_(fd), data_(data), size_(size),
        read_only_(read_only) {}

  void map(std::size_t bytes, bool populate = true);

  std::string path_;
  int fd_ = -1;
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool read_only_ = true;
};

}  // namespace fv::store
