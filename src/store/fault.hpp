// Deterministic storage fault injection for the artifact store.
//
// The disk is the second unreliable medium this codebase models (mpx's
// FaultPlan covers the first, the network). A FaultInjector sits between
// the artifact store's commit protocol and the filesystem: every I/O
// operation (allocate, copy-into-mapping, sync, rename, directory sync)
// passes through one hook that counts the operation and consults a pure
// hash of (seed, path, op index) — the same shared chain mpx decisions use
// (util/fault_hash.hpp) — so a given seed reproduces exactly the same torn
// writes, truncations, bit flips, ENOSPC failures and crash points on
// every run, regardless of thread interleaving.
//
// Fault model:
//  * torn write    — a copy persists only a prefix of its bytes (a lost
//                    sector write); the commit "succeeds", detection is
//                    the reader's checksum job.
//  * bit flip      — one byte of a copy is flipped (storage rot at write
//                    time); again the checksum's job.
//  * truncation    — a sync chops the file tail instead of flushing it
//                    (data lost while metadata survived a crash).
//  * ENOSPC        — an allocation fails; surfaces as fv::IoError and the
//                    commit aborts cleanly (tmp removed, old-or-none).
//  * crash-at-op-N — the N-th I/O operation never happens: StoreCrashed is
//                    thrown and deliberately NOT cleaned up after, leaving
//                    the on-disk state exactly as a killed process would.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "util/error.hpp"

namespace fv::store {

struct FaultSpec {
  std::uint64_t seed = 0;       ///< reproducibility key for all decisions
  double torn_write_rate = 0.0;  ///< P(a copy persists only a prefix)
  double bitflip_rate = 0.0;     ///< P(one byte of a copy is flipped)
  double truncate_rate = 0.0;    ///< P(a sync truncates instead of flushing)
  double enospc_rate = 0.0;      ///< P(an allocation fails with ENOSPC)

  /// 1-based global I/O-operation index at which the process "dies"
  /// (StoreCrashed thrown before the op runs); <= 0 disables. Ops are
  /// counted across the whole injector, so a commit's ops are 1..M and a
  /// chaos test can crash at every point of the protocol.
  std::int64_t crash_at_op = -1;

  /// True when installing this spec would change any behavior.
  bool any() const noexcept {
    return torn_write_rate > 0.0 || bitflip_rate > 0.0 ||
           truncate_rate > 0.0 || enospc_rate > 0.0 || crash_at_op > 0;
  }
};

/// Counts of injected faults (relaxed atomics, same convention as
/// mpx::FaultStats).
struct FaultStats {
  std::atomic<std::uint64_t> torn_writes{0};
  std::atomic<std::uint64_t> bitflips{0};
  std::atomic<std::uint64_t> truncations{0};
  std::atomic<std::uint64_t> enospc{0};
  std::atomic<std::uint64_t> crashes{0};
};

/// Thrown to simulate the process dying mid-I/O. Deliberately NOT an
/// fv::Error: recovery code catching fv::Error must not "survive" a crash
/// — the commit protocol leaves the disk exactly as it was at the crash
/// point, and only a fresh open (the next process) may look at it.
struct StoreCrashed {
  std::string path;       ///< file the fatal op addressed
  std::uint64_t op = 0;   ///< 1-based op index that never ran
};

class FaultInjector {
 public:
  /// Validates rates: torn + bitflip partition one copy draw (sum <= 1);
  /// truncate and enospc each in [0, 1].
  explicit FaultInjector(FaultSpec spec);

  const FaultSpec& spec() const noexcept { return spec_; }
  FaultStats& stats() const noexcept { return stats_; }
  /// Total I/O operations counted so far (chaos tests probe this after a
  /// clean run to enumerate every crash point of a protocol).
  std::uint64_t ops() const noexcept {
    return ops_.load(std::memory_order_relaxed);
  }

  /// One allocation op (file create / grow). Throws StoreCrashed at the
  /// crash point, fv::IoError on an injected ENOSPC.
  void on_allocate(const std::string& path, std::size_t bytes);

  /// One copy op: memcpy `n` bytes from `src` to `dst`, possibly torn
  /// (prefix only) or with one byte flipped, per the (seed, path, op)
  /// draw. Throws StoreCrashed at the crash point (nothing copied).
  void copy(const std::string& path, std::byte* dst, const std::byte* src,
            std::size_t n);

  /// One sync op for a file currently `bytes` long. Returns the size to
  /// truncate the file to INSTEAD of syncing (injected tail loss), or
  /// nullopt to sync normally. Throws StoreCrashed at the crash point.
  std::optional<std::size_t> on_sync(const std::string& path,
                                     std::size_t bytes);

  /// One metadata op (rename, directory sync, unlink): crash gate only.
  void on_op(const std::string& path);

 private:
  /// Counts the op, fires the crash point; returns the 1-based op index.
  std::uint64_t begin_op(const std::string& path);
  double draw(const std::string& path, std::uint64_t op,
              std::uint64_t stream) const;
  std::uint64_t derive(const std::string& path, std::uint64_t op,
                       std::uint64_t stream) const;

  FaultSpec spec_;
  mutable FaultStats stats_;
  std::atomic<std::uint64_t> ops_{0};
};

}  // namespace fv::store
