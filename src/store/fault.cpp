#include "store/fault.hpp"

#include <cstring>

#include "util/fault_hash.hpp"
#include "util/xxhash.hpp"

namespace fv::store {

namespace {

// Decision streams: each fault family draws from an independent hash
// stream so e.g. raising the torn rate never changes which ops get bit
// flips. Streams 1 (action) mirrors mpx's convention; the mpx layer uses
// only stream 1, so the higher streams are free here.
constexpr std::uint64_t kStreamCopy = 11;      ///< torn/bitflip action draw
constexpr std::uint64_t kStreamTearLen = 12;   ///< torn prefix length
constexpr std::uint64_t kStreamFlipIdx = 13;   ///< flipped byte index
constexpr std::uint64_t kStreamSync = 14;      ///< truncate-instead-of-sync
constexpr std::uint64_t kStreamTruncLen = 15;  ///< truncated length
constexpr std::uint64_t kStreamAlloc = 16;     ///< ENOSPC draw

std::uint64_t path_hash(const std::string& path) {
  return xxhash64(std::as_bytes(std::span<const char>(path.data(),
                                                      path.size())));
}

}  // namespace

FaultInjector::FaultInjector(FaultSpec spec) : spec_(spec) {
  const double copy_sum = spec_.torn_write_rate + spec_.bitflip_rate;
  FV_REQUIRE(spec_.torn_write_rate >= 0.0 && spec_.bitflip_rate >= 0.0 &&
                 copy_sum <= 1.0 + 1e-12,
             "torn + bitflip rates partition one copy draw; each must be "
             ">= 0 and their sum <= 1");
  FV_REQUIRE(spec_.truncate_rate >= 0.0 && spec_.truncate_rate <= 1.0,
             "truncate_rate must lie in [0, 1]");
  FV_REQUIRE(spec_.enospc_rate >= 0.0 && spec_.enospc_rate <= 1.0,
             "enospc_rate must lie in [0, 1]");
}

std::uint64_t FaultInjector::begin_op(const std::string& path) {
  const std::uint64_t op = ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (spec_.crash_at_op > 0 &&
      op == static_cast<std::uint64_t>(spec_.crash_at_op)) {
    stats_.crashes.fetch_add(1, std::memory_order_relaxed);
    throw StoreCrashed{path, op};
  }
  return op;
}

std::uint64_t FaultInjector::derive(const std::string& path, std::uint64_t op,
                                    std::uint64_t stream) const {
  return fault_hash(spec_.seed, stream, {path_hash(path), op});
}

double FaultInjector::draw(const std::string& path, std::uint64_t op,
                           std::uint64_t stream) const {
  return fault_uniform(derive(path, op, stream));
}

void FaultInjector::on_allocate(const std::string& path, std::size_t bytes) {
  const std::uint64_t op = begin_op(path);
  if (spec_.enospc_rate > 0.0 &&
      draw(path, op, kStreamAlloc) < spec_.enospc_rate) {
    stats_.enospc.fetch_add(1, std::memory_order_relaxed);
    throw IoError("injected ENOSPC: cannot allocate " +
                  std::to_string(bytes) + " bytes for " + path);
  }
}

void FaultInjector::copy(const std::string& path, std::byte* dst,
                         const std::byte* src, std::size_t n) {
  const std::uint64_t op = begin_op(path);
  if (n == 0) return;
  const double u = draw(path, op, kStreamCopy);
  if (u < spec_.torn_write_rate) {
    // Torn write: only a prefix of the bytes reach the medium. The commit
    // carries on believing it wrote everything — exactly the failure a
    // lost sector write produces — so detection is entirely on the
    // reader's checksum.
    const std::size_t kept = derive(path, op, kStreamTearLen) % n;
    std::memcpy(dst, src, kept);
    stats_.torn_writes.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::memcpy(dst, src, n);
  if (u < spec_.torn_write_rate + spec_.bitflip_rate) {
    dst[derive(path, op, kStreamFlipIdx) % n] ^= std::byte{0x20};
    stats_.bitflips.fetch_add(1, std::memory_order_relaxed);
  }
}

std::optional<std::size_t> FaultInjector::on_sync(const std::string& path,
                                                  std::size_t bytes) {
  const std::uint64_t op = begin_op(path);
  if (spec_.truncate_rate > 0.0 &&
      draw(path, op, kStreamSync) < spec_.truncate_rate && bytes > 0) {
    stats_.truncations.fetch_add(1, std::memory_order_relaxed);
    // Lose at least one byte of tail; metadata (the file) survives.
    return derive(path, op, kStreamTruncLen) % bytes;
  }
  return std::nullopt;
}

void FaultInjector::on_op(const std::string& path) { begin_op(path); }

}  // namespace fv::store
