#include "store/artifact_store.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace fv::store {

namespace {

/// Rounds a byte offset up to the 8-byte section alignment.
std::size_t align8(std::size_t bytes) { return (bytes + 7) & ~std::size_t{7}; }

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

void ensure_directory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    throw IoError("cannot create store directory '" + path +
                  "': " + std::strerror(errno));
  }
}

std::uint64_t header_checksum(const ArtifactHeader& header) {
  // The checksum seals everything above itself: the first 56 bytes.
  const auto bytes = std::as_bytes(
      std::span<const ArtifactHeader>(&header, 1));
  return xxhash64(bytes.first(offsetof(ArtifactHeader, header_checksum)));
}

/// Payload checksum for an on-demand open: hash in bounded chunks and drop
/// each chunk's pages behind the cursor, so validating an artifact larger
/// than RAM peaks at one chunk of residency instead of the whole payload.
/// Bit-identical to the one-shot xxhash64 of the same bytes.
std::uint64_t streamed_payload_checksum(const MappedFile& file,
                                        std::size_t payload_offset,
                                        std::size_t payload_bytes) {
  constexpr std::size_t kChunk = std::size_t{4} << 20;  // 4 MiB
  Xxh64Stream stream;
  for (std::size_t done = 0; done < payload_bytes;) {
    const std::size_t take = std::min(kChunk, payload_bytes - done);
    stream.update({file.data() + payload_offset + done, take});
    file.advise_dont_need(payload_offset + done, take);
    done += take;
  }
  return stream.digest();
}

/// Advisory cross-process writer lock on the store directory, held for one
/// commit. flock is per open-file-description: a fresh fd per commit means
/// release is exactly fd close, including during exception unwind, and a
/// crashed process's lock dies with its fds — no stale-lock recovery
/// needed. Within a process commit_mutex_ serializes first, so the
/// blocking LOCK_EX below never waits on its own process.
class DirectoryLock {
 public:
  explicit DirectoryLock(const std::string& directory) {
    fd_ = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd_ < 0) {
      throw IoError("cannot open store directory '" + directory +
                    "' for locking: " + std::strerror(errno));
    }
    if (::flock(fd_, LOCK_EX) != 0) {
      const int saved = errno;
      ::close(fd_);
      throw IoError("cannot lock store directory '" + directory +
                    "': " + std::strerror(saved));
    }
  }
  ~DirectoryLock() {
    if (fd_ >= 0) ::close(fd_);
  }
  DirectoryLock(const DirectoryLock&) = delete;
  DirectoryLock& operator=(const DirectoryLock&) = delete;

 private:
  int fd_ = -1;
};

}  // namespace

const char* artifact_kind_name(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kEngine: return "engine";
    case ArtifactKind::kCondensedDistances: return "distances";
    case ArtifactKind::kNeighborTable: return "neighbors";
    case ArtifactKind::kLshIndex: return "lsh";
    case ArtifactKind::kMerges: return "merges";
    case ArtifactKind::kBlob: return "blob";
  }
  return "unknown";
}

ArtifactReader open_artifact_file(const std::string& path,
                                  PageResidency residency) {
  ArtifactReader reader;
  reader.file_ = MappedFile::open_read_only(
      path, /*populate=*/residency == PageResidency::kPrefault);
  const MappedFile& file = reader.file_;
  if (file.size() < sizeof(ArtifactHeader)) {
    throw CorruptArtifactError("artifact '" + path +
                               "' is shorter than its 64-byte header");
  }
  ArtifactHeader header;
  std::memcpy(&header, file.data(), sizeof(header));
  if (std::memcmp(header.magic, kArtifactMagic, 8) != 0) {
    throw CorruptArtifactError("artifact '" + path +
                               "' has a foreign or damaged magic");
  }
  if (header.header_checksum != header_checksum(header)) {
    throw CorruptArtifactError("artifact '" + path +
                               "' fails its header checksum");
  }
  // Below here the header bytes are trusted — mismatches are semantic
  // (written by a different format), not bit rot.
  if (header.version != kArtifactFormatVersion) {
    throw StaleArtifactError(
        "artifact '" + path + "' has format version " +
        std::to_string(header.version) + ", reader expects " +
        std::to_string(kArtifactFormatVersion));
  }
  if (file.size() < sizeof(header) + header.payload_bytes) {
    throw CorruptArtifactError(
        "artifact '" + path + "' declares " +
        std::to_string(header.payload_bytes) + " payload bytes but the "
        "file holds fewer (truncated)");
  }
  const std::byte* payload = file.data() + sizeof(header);
  const auto payload_bytes = static_cast<std::size_t>(header.payload_bytes);
  const std::uint64_t payload_sum =
      residency == PageResidency::kOnDemand
          ? streamed_payload_checksum(file, sizeof(header), payload_bytes)
          : xxhash64({payload, payload_bytes});
  if (header.payload_checksum != payload_sum) {
    throw CorruptArtifactError("artifact '" + path +
                               "' fails its payload checksum");
  }
  // Rebuild section offsets from the length table at the payload head.
  const auto section_count = static_cast<std::size_t>(header.section_count);
  const std::size_t table_bytes = section_count * sizeof(std::uint64_t);
  if (header.payload_bytes < table_bytes) {
    throw CorruptArtifactError("artifact '" + path +
                               "' section table overruns its payload");
  }
  std::vector<std::uint64_t> lengths(section_count);
  std::memcpy(lengths.data(), payload, table_bytes);
  std::size_t offset = sizeof(header) + align8(table_bytes);
  const std::size_t end = sizeof(header) +
                          static_cast<std::size_t>(header.payload_bytes);
  reader.offsets_.reserve(section_count);
  for (std::size_t i = 0; i < section_count; ++i) {
    const auto len = static_cast<std::size_t>(lengths[i]);
    if (offset + len > end) {
      throw CorruptArtifactError("artifact '" + path + "' section " +
                                 std::to_string(i) +
                                 " overruns its payload");
    }
    reader.offsets_.emplace_back(offset, len);
    offset += align8(len);
  }
  reader.header_ = header;
  return reader;
}

ArtifactStore::ArtifactStore(std::string directory, FaultSpec faults)
    : directory_(std::move(directory)), faults_(faults) {
  ensure_directory(directory_);
}

std::string ArtifactStore::artifact_path(ArtifactKind kind,
                                         ArtifactKey key) const {
  return directory_ + "/" + artifact_kind_name(kind) + "-" + hex16(key) +
         kArtifactExtension;
}

bool ArtifactStore::contains(ArtifactKind kind, ArtifactKey key) const {
  return file_exists(artifact_path(kind, key));
}

void ArtifactStore::put(ArtifactKind kind, ArtifactKey key,
                        const std::function<void(ArtifactWriter&)>& fill) {
  ArtifactWriter writer;
  fill(writer);
  const auto& sections = writer.sections_;

  // Assemble the payload: section length table, then 8-byte-aligned
  // section bytes. Zero padding keeps checksums deterministic.
  std::vector<std::uint64_t> lengths;
  lengths.reserve(sections.size());
  std::size_t payload_bytes = align8(sections.size() * sizeof(std::uint64_t));
  for (const auto& s : sections) {
    lengths.push_back(s.size());
    payload_bytes += align8(s.size());
  }
  std::vector<std::byte> payload(payload_bytes, std::byte{0});
  std::memcpy(payload.data(), lengths.data(),
              lengths.size() * sizeof(std::uint64_t));
  std::size_t offset = align8(lengths.size() * sizeof(std::uint64_t));
  for (const auto& s : sections) {
    std::memcpy(payload.data() + offset, s.data(), s.size());
    offset += align8(s.size());
  }

  ArtifactHeader header{};
  std::memcpy(header.magic, kArtifactMagic, 8);
  header.version = kArtifactFormatVersion;
  header.kind = static_cast<std::uint32_t>(kind);
  header.key = key;
  header.payload_bytes = payload.size();
  header.payload_checksum = xxhash64(payload);
  header.section_count = sections.size();
  header.header_checksum = header_checksum(header);

  // Commit protocol — the write-side I/O ops in order, each a potential
  // crash point for the chaos suite:
  //   1 allocate tmp   2 copy header   3 copy payload
  //   4 sync tmp       5 rename onto final   6 sync directory
  // Interrupt anywhere and the final name still holds the old artifact or
  // nothing; only a stray .tmp can be left behind (fsck sweeps those).
  const std::string final_path = artifact_path(kind, key);
  const std::string tmp_path = final_path + ".tmp";
  const std::lock_guard<std::mutex> commit_lock(commit_mutex_);
  // Advisory cross-process exclusion: a second PROCESS committing into
  // this directory blocks here instead of racing the .tmp path (the
  // in-process mutex above cannot see it). Released on every exit path
  // when the lock's fd closes — including StoreCrashed unwind, matching
  // what the kernel does to a genuinely dead process's locks.
  const DirectoryLock dir_lock(directory_);
  try {
    MappedFile tmp = MappedFile::create(
        tmp_path, sizeof(header) + payload.size(), &faults_);
    faults_.copy(tmp_path, tmp.data(),
                 reinterpret_cast<const std::byte*>(&header),
                 sizeof(header));
    faults_.copy(tmp_path, tmp.data() + sizeof(header), payload.data(),
                 payload.size());
    tmp.sync(&faults_);
    tmp.close();
    MappedFile::atomic_rename(tmp_path, final_path, &faults_);
    MappedFile::sync_directory(directory_, &faults_);
  } catch (const Error&) {
    // Clean abort (ENOSPC, real I/O failure): drop the temporary and
    // rethrow. The final name is untouched. StoreCrashed deliberately
    // skips this handler — a dead process cleans up nothing.
    MappedFile::remove_quiet(tmp_path);
    throw;
  }
}

std::optional<ArtifactReader> ArtifactStore::open(
    ArtifactKind kind, ArtifactKey key, PageResidency residency) const {
  const std::string path = artifact_path(kind, key);
  if (!file_exists(path)) return std::nullopt;
  ArtifactReader reader = open_artifact_file(path, residency);
  if (reader.kind() != kind || reader.key() != key) {
    throw StaleArtifactError(
        "artifact '" + path + "' holds kind=" +
        std::to_string(static_cast<std::uint32_t>(reader.kind())) +
        " key=" + hex16(reader.key()) + ", not the requested kind=" +
        std::to_string(static_cast<std::uint32_t>(kind)) + " key=" +
        hex16(key) + " — the file is not what its name claims");
  }
  return reader;
}

void ArtifactStore::quarantine(ArtifactKind kind, ArtifactKey key) noexcept {
  const std::string path = artifact_path(kind, key);
  const std::string qdir = directory_ + "/quarantine";
  // Best effort throughout: quarantine runs inside recovery, and recovery
  // must never throw over the recompute that follows it.
  if (::mkdir(qdir.c_str(), 0755) != 0 && errno != EEXIST) {
    MappedFile::remove_quiet(path);
    stats_.quarantined.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::string dst = qdir + "/" + artifact_kind_name(kind) + "-" +
                          hex16(key) + kArtifactExtension;
  if (::rename(path.c_str(), dst.c_str()) != 0) {
    MappedFile::remove_quiet(path);
  }
  stats_.quarantined.fetch_add(1, std::memory_order_relaxed);
}

void ArtifactStore::remove(ArtifactKind kind, ArtifactKey key) noexcept {
  MappedFile::remove_quiet(artifact_path(kind, key));
}

namespace detail {

void log_artifact_recovery(const std::string& path, const char* verdict,
                           const char* why, const char* action) {
  std::fprintf(stderr, "[fv::store] %s artifact %s (%s); %s, recomputing\n",
               verdict, path.c_str(), why, action);
}

}  // namespace detail

}  // namespace fv::store
