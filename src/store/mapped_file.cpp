#include "store/mapped_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace fv::store {

namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw IoError(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

MappedFile::~MappedFile() { close(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : path_(std::move(other.path_)), fd_(other.fd_), data_(other.data_),
      size_(other.size_), read_only_(other.read_only_) {
  other.fd_ = -1;
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    data_ = other.data_;
    size_ = other.size_;
    read_only_ = other.read_only_;
    other.fd_ = -1;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MappedFile::map(std::size_t bytes, bool populate) {
  if (bytes == 0) {
    data_ = nullptr;
    size_ = 0;
    return;
  }
  // Populated read-only opens stream the whole payload (checksum pass),
  // so prefault the page tables in one syscall instead of taking a soft
  // fault per 4 KiB — on warm artifacts this is most of the open cost.
  // Out-of-core opens pass populate = false: their whole point is that
  // only the pages the tile schedule touches ever become resident.
  int flags = MAP_SHARED;
#ifdef MAP_POPULATE
  if (read_only_ && populate) flags |= MAP_POPULATE;
#else
  (void)populate;
#endif
  void* addr = ::mmap(nullptr, bytes,
                      read_only_ ? PROT_READ : PROT_READ | PROT_WRITE,
                      flags, fd_, 0);
  if (addr == MAP_FAILED) throw_errno("mmap failed for", path_);
  data_ = static_cast<std::byte*>(addr);
  size_ = bytes;
}

MappedFile MappedFile::create(const std::string& path, std::size_t bytes,
                              FaultInjector* faults) {
  FV_REQUIRE(bytes >= 1, "MappedFile::create needs at least one byte");
  if (faults != nullptr) faults->on_allocate(path, bytes);
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (fd < 0) throw_errno("cannot create", path);
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("cannot size", path);
  }
  MappedFile file(path, fd, nullptr, 0, /*read_only=*/false);
  file.map(bytes);
  return file;
}

MappedFile MappedFile::open_read_only(const std::string& path,
                                      bool populate) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_errno("cannot open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("cannot stat", path);
  }
  MappedFile file(path, fd, nullptr, 0, /*read_only=*/true);
  file.map(static_cast<std::size_t>(st.st_size), populate);
  return file;
}

std::size_t MappedFile::disk_size() const {
  FV_REQUIRE(is_open(), "disk_size needs an open file");
  struct stat st{};
  if (::fstat(fd_, &st) != 0) throw_errno("cannot stat", path_);
  return static_cast<std::size_t>(st.st_size);
}

void MappedFile::advise_dont_need(std::size_t offset,
                                  std::size_t bytes) const noexcept {
#ifdef MADV_DONTNEED
  if (data_ == nullptr || offset >= size_) return;
  bytes = std::min(bytes, size_ - offset);
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  // Shrink inward: releasing a partial page would also evict the bytes
  // sharing it that some other range still needs resident.
  const std::size_t begin = (offset + page - 1) & ~(page - 1);
  const std::size_t end = (offset + bytes) & ~(page - 1);
  if (end <= begin) return;
  ::madvise(data_ + begin, end - begin, MADV_DONTNEED);
#else
  (void)offset;
  (void)bytes;
#endif
}

MappedFile MappedFile::open_read_write(const std::string& path,
                                       FaultInjector* faults) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) throw_errno("cannot open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("cannot stat", path);
  }
  if (faults != nullptr) {
    faults->on_allocate(path, static_cast<std::size_t>(st.st_size));
  }
  MappedFile file(path, fd, nullptr, 0, /*read_only=*/false);
  file.map(static_cast<std::size_t>(st.st_size));
  return file;
}

void MappedFile::resize(std::size_t bytes, FaultInjector* faults) {
  FV_REQUIRE(is_open() && !read_only_,
             "resize needs an open writable mapping");
  FV_REQUIRE(bytes >= 1, "resize needs at least one byte");
  if (faults != nullptr) faults->on_allocate(path_, bytes);
  if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) {
    throw_errno("cannot resize", path_);
  }
  if (data_ == nullptr) {
    map(bytes);
    return;
  }
#ifdef __linux__
  void* addr = ::mremap(data_, size_, bytes, MREMAP_MAYMOVE);
  if (addr == MAP_FAILED) throw_errno("mremap failed for", path_);
  data_ = static_cast<std::byte*>(addr);
  size_ = bytes;
#else
  ::munmap(data_, size_);
  data_ = nullptr;
  size_ = 0;
  map(bytes);
#endif
}

void MappedFile::sync(FaultInjector* faults) {
  FV_REQUIRE(is_open(), "sync needs an open mapping");
  if (faults != nullptr) {
    if (const auto cut = faults->on_sync(path_, size_); cut.has_value()) {
      // Injected tail loss: the medium kept only *cut bytes. Chop the
      // file (the next reader sees the short payload) but report success
      // — the writer must not learn its data is gone, that is the point.
      if (::ftruncate(fd_, static_cast<off_t>(*cut)) != 0) {
        throw_errno("cannot truncate", path_);
      }
      return;
    }
  }
  if (data_ != nullptr && ::msync(data_, size_, MS_SYNC) != 0) {
    throw_errno("msync failed for", path_);
  }
  if (::fsync(fd_) != 0) throw_errno("fsync failed for", path_);
}

void MappedFile::close() noexcept {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void MappedFile::atomic_rename(const std::string& from, const std::string& to,
                               FaultInjector* faults) {
  if (faults != nullptr) faults->on_op(to);
  if (::rename(from.c_str(), to.c_str()) != 0) {
    throw_errno("cannot rename '" + from + "' onto", to);
  }
}

void MappedFile::sync_directory(const std::string& directory,
                                FaultInjector* faults) {
  if (faults != nullptr) faults->on_op(directory);
  const int fd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw_errno("cannot open directory", directory);
  const int rc = ::fsync(fd);
  const int saved = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved;
    throw_errno("fsync failed for directory", directory);
  }
}

void MappedFile::remove_quiet(const std::string& path) noexcept {
  ::unlink(path.c_str());
}

}  // namespace fv::store
