// MappedVector<T> — a typed, growable array living in a memory-mapped file
// (the ExpressionMatrix2 MemoryMappedVector shape): append on the write
// side grows the file in place (geometric ftruncate + mremap), reopen on
// the read side is one mmap — milliseconds regardless of element count —
// and any number of processes can share the same read-only pages.
//
// Crash-consistency contract: the element count lives in the header and is
// published only by sync(). A crash between appends leaves the previously
// synced count intact — readers see a consistent prefix, never a torn
// tail. (The artifact store layers checksummed, atomically-renamed
// artifacts on top for the stronger sealed-or-absent guarantee; a bare
// MappedVector is the mutable primitive underneath.)
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>

#include "store/mapped_file.hpp"
#include "util/error.hpp"

namespace fv::store {

/// On-disk MappedVector header, 64 bytes, followed directly by the
/// elements. `count` is the sync-published element count; bytes past
/// header + count * elem_size are unpublished garbage by contract.
struct MappedVectorHeader {
  char magic[8];                ///< "FVMMVEC1"
  std::uint32_t version;        ///< kMappedVectorVersion
  std::uint32_t elem_size;      ///< sizeof(T) sealed at create time
  std::uint64_t count;          ///< published element count
  std::uint64_t reserved[5];    ///< zero; pads the header to 64 bytes
};
static_assert(sizeof(MappedVectorHeader) == 64);
static_assert(std::is_trivially_copyable_v<MappedVectorHeader>);

inline constexpr char kMappedVectorMagic[8] = {'F', 'V', 'M', 'M',
                                               'V', 'E', 'C', '1'};
inline constexpr std::uint32_t kMappedVectorVersion = 1;

template <typename T>
class MappedVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "MappedVector stores raw bytes; T must be trivially "
                "copyable");
  static_assert(alignof(T) <= 64,
                "elements start 64 bytes into the mapping");

 public:
  MappedVector() = default;

  /// Creates (truncating any existing file) an empty writable vector.
  /// The injector, when given, is consulted on every allocation and
  /// append copy — the chaos suite drives torn/short writes through it.
  static MappedVector create(const std::string& path,
                             FaultInjector* faults = nullptr) {
    MappedVector v;
    v.faults_ = faults;
    v.capacity_ = kInitialCapacity;
    v.file_ = MappedFile::create(path, byte_size(v.capacity_), faults);
    MappedVectorHeader header{};
    std::memcpy(header.magic, kMappedVectorMagic, 8);
    header.version = kMappedVectorVersion;
    header.elem_size = sizeof(T);
    header.count = 0;
    std::memcpy(v.file_.data(), &header, sizeof(header));
    v.count_ = 0;
    return v;
  }

  /// Maps an existing vector read-only, validating the header: bad magic,
  /// a wrong element size, or a published count that does not fit the
  /// file raise fv::CorruptArtifactError; a newer format version raises
  /// fv::StaleArtifactError. Reopen cost is one mmap + 64 header bytes.
  ///
  /// `populate` prefaults every page (MAP_POPULATE) — the right default
  /// for vectors the consumer will scan densely. Pass false for the
  /// out-of-core mode: pages then fault in only as span() elements are
  /// touched, and release_elements() can drop them behind a streaming
  /// cursor, so resident set tracks the consumer's window rather than
  /// the file size.
  static MappedVector open_read_only(const std::string& path,
                                     bool populate = true) {
    MappedVector v;
    v.file_ = MappedFile::open_read_only(path, populate);
    if (v.file_.size() < sizeof(MappedVectorHeader)) {
      throw CorruptArtifactError("mapped vector '" + path +
                                 "' is shorter than its header");
    }
    MappedVectorHeader header;
    std::memcpy(&header, v.file_.data(), sizeof(header));
    if (std::memcmp(header.magic, kMappedVectorMagic, 8) != 0) {
      throw CorruptArtifactError("mapped vector '" + path +
                                 "' has a foreign or damaged magic");
    }
    if (header.version != kMappedVectorVersion) {
      throw StaleArtifactError(
          "mapped vector '" + path + "' has format version " +
          std::to_string(header.version) + ", reader expects " +
          std::to_string(kMappedVectorVersion));
    }
    if (header.elem_size != sizeof(T)) {
      throw CorruptArtifactError(
          "mapped vector '" + path + "' holds " +
          std::to_string(header.elem_size) + "-byte elements, reader "
          "expects " + std::to_string(sizeof(T)) + "-byte elements");
    }
    if (byte_size(header.count) > v.file_.size()) {
      throw CorruptArtifactError(
          "mapped vector '" + path + "' publishes " +
          std::to_string(header.count) + " elements but the file holds "
          "fewer bytes (truncated)");
    }
    v.count_ = static_cast<std::size_t>(header.count);
    v.capacity_ = v.count_;
    return v;
  }

  bool is_open() const noexcept { return file_.is_open(); }
  bool read_only() const noexcept { return file_.read_only(); }
  const std::string& path() const noexcept { return file_.path(); }
  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  std::size_t capacity() const noexcept { return capacity_; }

  const T* data() const noexcept {
    return reinterpret_cast<const T*>(file_.data() +
                                      sizeof(MappedVectorHeader));
  }

  const T& operator[](std::size_t i) const {
    FV_REQUIRE(i < count_, "mapped vector index out of range");
    return data()[i];
  }

  /// The published elements, directly over the mapping — zero copies.
  std::span<const T> span() const noexcept { return {data(), count_}; }

  /// Drops the resident pages backing elements [first, first + count) of a
  /// read-only mapping (madvise(MADV_DONTNEED), rounded inward to whole
  /// pages — partially covered pages stay resident, so neighbors of the
  /// released window are never harmed). The elements remain addressable;
  /// touching them again refaults from the file. No-op when out of range.
  void release_elements(std::size_t first, std::size_t count) const noexcept {
    if (first >= count_ || count == 0) return;
    const std::size_t end = first + std::min(count, count_ - first);
    file_.advise_dont_need(byte_size(first),
                           (end - first) * sizeof(T));
  }

  /// Guards a long-lived read-only mapping against the backing file being
  /// truncated after open (the one damage mmap cannot surface as a typed
  /// error on its own — touching an evaporated page is SIGBUS). Streaming
  /// consumers call this at window granularity; throws
  /// fv::CorruptArtifactError when the file on disk no longer covers the
  /// mapping.
  void check_backing() const {
    if (file_.disk_size() < file_.size()) {
      throw CorruptArtifactError(
          "mapped vector '" + file_.path() +
          "' shrank under its mapping — the backing file was truncated "
          "after open");
    }
  }

  /// Appends `values`, growing the file geometrically as needed. The
  /// count is NOT published until sync().
  void append(std::span<const T> values) {
    FV_REQUIRE(is_open() && !read_only(),
               "append needs a writable mapped vector");
    if (values.empty()) return;
    reserve(count_ + values.size());
    std::byte* dst = file_.data() + byte_size(count_);
    const auto src = std::as_bytes(values);
    if (faults_ != nullptr) {
      faults_->copy(file_.path(), dst, src.data(), src.size());
    } else {
      std::memcpy(dst, src.data(), src.size());
    }
    count_ += values.size();
  }

  void push_back(const T& value) { append(std::span<const T>(&value, 1)); }

  /// Ensures capacity for `n` elements (grow-in-place; the mapping may
  /// move, so spans obtained earlier are invalidated).
  void reserve(std::size_t n) {
    FV_REQUIRE(is_open() && !read_only(),
               "reserve needs a writable mapped vector");
    if (n <= capacity_) return;
    std::size_t grown = capacity_ < kInitialCapacity ? kInitialCapacity
                                                     : capacity_;
    while (grown < n) grown += grown / 2 + kInitialCapacity;
    file_.resize(byte_size(grown), faults_);
    capacity_ = grown;
  }

  /// Publishes the current count into the header and flushes everything
  /// to the medium. After sync() returns, a crash loses nothing.
  void sync() {
    FV_REQUIRE(is_open() && !read_only(),
               "sync needs a writable mapped vector");
    std::uint64_t published = count_;
    std::memcpy(file_.data() + offsetof(MappedVectorHeader, count),
                &published, sizeof(published));
    file_.sync(faults_);
  }

  void close() noexcept { file_.close(); }

 private:
  static constexpr std::size_t kInitialCapacity = 64;

  static std::size_t byte_size(std::uint64_t elements) noexcept {
    return sizeof(MappedVectorHeader) +
           static_cast<std::size_t>(elements) * sizeof(T);
  }

  MappedFile file_;
  std::size_t count_ = 0;
  std::size_t capacity_ = 0;
  FaultInjector* faults_ = nullptr;
};

}  // namespace fv::store
