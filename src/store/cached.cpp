#include "store/cached.hpp"

#include <dirent.h>

#include <algorithm>
#include <cstring>

#include "store/mapped_file.hpp"
#include "util/xxhash.hpp"

namespace fv::store {

namespace {

/// Fixed-size engine metadata, one scalar section. Everything else in the
/// engine is one of its 13 state vectors.
struct EngineMeta {
  std::uint32_t metric;
  std::uint32_t precompute;
  std::uint32_t float_kernel;
  float prune_slack;
  std::uint64_t count;
  std::uint64_t length;
  std::uint64_t stride;
  std::uint64_t mask_words;
  std::uint64_t seg_count;
};
static_assert(std::is_trivially_copyable_v<EngineMeta>);

struct LshMeta {
  std::uint64_t count;
  std::uint64_t bits;
  std::uint64_t words;
  std::uint64_t slice_bits;
  std::uint64_t tables;
  std::uint64_t probes;
};
static_assert(std::is_trivially_copyable_v<LshMeta>);

struct NeighborMeta {
  std::uint64_t count;
  std::uint64_t k;
};
static_assert(std::is_trivially_copyable_v<NeighborMeta>);

void check_section_size(const ArtifactReader& reader, std::size_t section,
                        std::size_t actual, std::size_t expected,
                        const char* what) {
  if (actual != expected) {
    throw CorruptArtifactError(
        "artifact '" + reader.path() + "' section " +
        std::to_string(section) + " (" + what + ") holds " +
        std::to_string(actual) + " elements, expected " +
        std::to_string(expected));
  }
}

/// The EngineStoragePin behind every borrowed-mapped engine and LSH index:
/// a shared_ptr keeps the validated reader (and so the mapping under every
/// borrowed span) alive exactly as long as any consumer; the residency and
/// backing hooks delegate to the reader's mapping.
class MappedArtifactPin final : public sim::EngineStoragePin {
 public:
  explicit MappedArtifactPin(std::shared_ptr<const ArtifactReader> reader)
      : reader_(std::move(reader)) {}

  void release_pages(const void* data, std::size_t bytes) const override {
    reader_->release_pages(data, bytes);
  }
  void check_backing() const override { reader_->check_backing(); }

 private:
  std::shared_ptr<const ArtifactReader> reader_;
};

}  // namespace

// ---- keys --------------------------------------------------------------

ArtifactKey matrix_key(const expr::ExpressionMatrix& matrix) {
  return KeyBuilder{}
      .string("matrix")
      .value(static_cast<std::uint64_t>(matrix.rows()))
      .value(static_cast<std::uint64_t>(matrix.cols()))
      .span(matrix.data())
      .key();
}

ArtifactKey compendium_files_key(const std::string& directory) {
  DIR* dir = ::opendir(directory.c_str());
  if (dir == nullptr) {
    throw IoError("cannot open compendium directory '" + directory + "'");
  }
  std::vector<std::string> names;
  while (const dirent* ent = ::readdir(dir)) {
    const std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  KeyBuilder builder;
  builder.string("compendium-files");
  for (const auto& name : names) {
    MappedFile file;
    try {
      file = MappedFile::open_read_only(directory + "/" + name);
    } catch (const IoError&) {
      continue;  // subdirectories and unreadable entries are not content
    }
    builder.string(name);
    builder.value(static_cast<std::uint64_t>(file.size()));
    if (file.size() > 0) builder.bytes({file.data(), file.size()});
  }
  return builder.key();
}

ArtifactKey engine_key(ArtifactKey input_key, sim::Metric metric,
                       sim::Precompute precompute,
                       sim::DenseKernel kernel) {
  return KeyBuilder{}
      .string("engine")
      .value(input_key)
      .value(static_cast<std::uint32_t>(metric))
      .value(static_cast<std::uint32_t>(precompute))
      .value(static_cast<std::uint32_t>(kernel))
      .key();
}

ArtifactKey distances_key(const cluster::DistanceMatrix& distances) {
  return KeyBuilder{}
      .string("distances")
      .value(static_cast<std::uint64_t>(distances.size()))
      .span(distances.condensed())
      .key();
}

ArtifactKey lsh_key(ArtifactKey engine_content,
                    const sim::LshParams& params) {
  return KeyBuilder{}
      .string("lsh")
      .value(engine_content)
      .value(static_cast<std::uint64_t>(params.bits))
      .value(static_cast<std::uint64_t>(params.tables))
      .value(static_cast<std::uint64_t>(params.probes))
      .value(params.seed)
      .key();
}

ArtifactKey neighbors_key(ArtifactKey engine_content, std::size_t k,
                          std::size_t min_common,
                          sim::TopKStrategy strategy,
                          const sim::LshParams& lsh) {
  KeyBuilder builder;
  builder.string("neighbors")
      .value(engine_content)
      .value(static_cast<std::uint64_t>(k))
      .value(static_cast<std::uint64_t>(min_common))
      .value(static_cast<std::uint32_t>(strategy));
  if (strategy == sim::TopKStrategy::kApprox) {
    // LSH parameters change the (approximate) result, so they are key
    // material — but only under the strategy that uses them, so exact
    // callers share artifacts regardless of the defaulted lsh argument.
    builder.value(static_cast<std::uint64_t>(lsh.bits))
        .value(static_cast<std::uint64_t>(lsh.tables))
        .value(static_cast<std::uint64_t>(lsh.probes))
        .value(lsh.seed);
  }
  return builder.key();
}

ArtifactKey merges_key(ArtifactKey distances_content,
                       cluster::Linkage linkage,
                       cluster::Agglomerator algorithm) {
  return KeyBuilder{}
      .string("merges")
      .value(distances_content)
      .value(static_cast<std::uint32_t>(linkage))
      .value(static_cast<std::uint32_t>(algorithm))
      .key();
}

// ---- EngineCodec -------------------------------------------------------

ArtifactKey EngineCodec::content_key(const sim::SimilarityEngine& engine) {
  // Input content + the params that shape derived state; derived vectors
  // are NOT hashed — they are a function of these. kAllPairs engines carry
  // their input verbatim (filled rows + masks); kDotBank engines keep only
  // derived state, so their content is keyed by normalized rows + present
  // counts instead (filled_/mask_ are legitimately empty there, and
  // hashing empty spans would collide distinct compendia).
  KeyBuilder builder;
  builder.string("engine-content")
      .value(static_cast<std::uint32_t>(engine.metric_))
      .value(static_cast<std::uint32_t>(engine.precompute_))
      .value(static_cast<std::uint32_t>(engine.float_kernel_ ? 1 : 0))
      .value(static_cast<std::uint64_t>(engine.count_))
      .value(static_cast<std::uint64_t>(engine.length_));
  if (engine.precompute_ == sim::Precompute::kAllPairs) {
    builder.span(engine.filled_.span()).span(engine.mask_.span());
  } else {
    builder.span(engine.normalized_.span()).span(engine.present_.span());
  }
  return builder.key();
}

void EngineCodec::save(ArtifactWriter& writer,
                       const sim::SimilarityEngine& engine) {
  EngineMeta meta{};
  meta.metric = static_cast<std::uint32_t>(engine.metric_);
  meta.precompute = static_cast<std::uint32_t>(engine.precompute_);
  meta.float_kernel = engine.float_kernel_ ? 1 : 0;
  meta.prune_slack = engine.prune_slack_;
  meta.count = engine.count_;
  meta.length = engine.length_;
  meta.stride = engine.stride_;
  meta.mask_words = engine.mask_words_;
  meta.seg_count = engine.seg_count_;
  writer.scalar(meta);
  writer.section(engine.raw_.span());
  writer.section(engine.filled_.span());
  writer.section(engine.normalized_.span());
  writer.section(engine.mask_.span());
  writer.section(engine.present_.span());
  writer.section(engine.has_missing_.span());
  writer.section(engine.degenerate_.span());
  writer.section(engine.zscale_.span());
  writer.section(engine.missing_idx_.span());
  writer.section(engine.missing_begin_.span());
  writer.section(engine.own_sum_.span());
  writer.section(engine.own_sumsq_.span());
  writer.section(engine.seg_norms_.span());
}

sim::SimilarityEngine EngineCodec::load(const ArtifactReader& reader,
                                        std::size_t& section) {
  const auto meta = reader.scalar<EngineMeta>(section++);
  sim::SimilarityEngine engine;
  engine.metric_ = static_cast<sim::Metric>(meta.metric);
  engine.precompute_ = static_cast<sim::Precompute>(meta.precompute);
  engine.float_kernel_ = meta.float_kernel != 0;
  engine.prune_slack_ = meta.prune_slack;
  engine.count_ = static_cast<std::size_t>(meta.count);
  engine.length_ = static_cast<std::size_t>(meta.length);
  engine.stride_ = static_cast<std::size_t>(meta.stride);
  engine.mask_words_ = static_cast<std::size_t>(meta.mask_words);
  engine.seg_count_ = static_cast<std::size_t>(meta.seg_count);
  engine.raw_ = reader.vector<float>(section++);
  engine.filled_ = reader.vector<float>(section++);
  engine.normalized_ = reader.vector<float>(section++);
  engine.mask_ = reader.vector<std::uint64_t>(section++);
  engine.present_ = reader.vector<std::uint32_t>(section++);
  engine.has_missing_ = reader.vector<std::uint8_t>(section++);
  engine.degenerate_ = reader.vector<std::uint8_t>(section++);
  engine.zscale_ = reader.vector<float>(section++);
  engine.missing_idx_ = reader.vector<std::uint32_t>(section++);
  engine.missing_begin_ = reader.vector<std::uint32_t>(section++);
  engine.own_sum_ = reader.vector<double>(section++);
  engine.own_sumsq_ = reader.vector<double>(section++);
  engine.seg_norms_ = reader.vector<float>(section++);
  // The vectors whose sizes are fully determined by the meta are checked
  // here; checksums catch bit damage, this catches a codec/meta mismatch.
  // kDotBank engines legitimately persist empty pairwise-only state
  // (filled rows, masks) — see SimilarityEngine::build.
  const bool all_pairs =
      engine.precompute_ == sim::Precompute::kAllPairs;
  check_section_size(reader, section - 12, engine.filled_.size(),
                     all_pairs ? engine.count_ * engine.stride_ : 0,
                     "filled rows");
  check_section_size(reader, section - 10, engine.mask_.size(),
                     all_pairs ? engine.count_ * engine.mask_words_ : 0,
                     "missing masks");
  check_section_size(reader, section - 9, engine.present_.size(),
                     engine.count_, "present counts");
  return engine;
}

sim::SimilarityEngine EngineCodec::load_mapped(
    std::shared_ptr<const ArtifactReader> reader, std::size_t& section) {
  const auto meta = reader->scalar<EngineMeta>(section++);
  sim::SimilarityEngine engine;
  engine.metric_ = static_cast<sim::Metric>(meta.metric);
  engine.precompute_ = static_cast<sim::Precompute>(meta.precompute);
  engine.float_kernel_ = meta.float_kernel != 0;
  engine.prune_slack_ = meta.prune_slack;
  engine.count_ = static_cast<std::size_t>(meta.count);
  engine.length_ = static_cast<std::size_t>(meta.length);
  engine.stride_ = static_cast<std::size_t>(meta.stride);
  engine.mask_words_ = static_cast<std::size_t>(meta.mask_words);
  engine.seg_count_ = static_cast<std::size_t>(meta.seg_count);
  // Same sections, same order as load() — borrowed instead of copied. The
  // spans point into the reader's mapping, which the pin below keeps alive
  // for the engine's whole lifetime (and any engine copied/moved from it:
  // shared_ptr semantics).
  engine.raw_.borrow(reader->section<float>(section++));
  engine.filled_.borrow(reader->section<float>(section++));
  engine.normalized_.borrow(reader->section<float>(section++));
  engine.mask_.borrow(reader->section<std::uint64_t>(section++));
  engine.present_.borrow(reader->section<std::uint32_t>(section++));
  engine.has_missing_.borrow(reader->section<std::uint8_t>(section++));
  engine.degenerate_.borrow(reader->section<std::uint8_t>(section++));
  engine.zscale_.borrow(reader->section<float>(section++));
  engine.missing_idx_.borrow(reader->section<std::uint32_t>(section++));
  engine.missing_begin_.borrow(reader->section<std::uint32_t>(section++));
  engine.own_sum_.borrow(reader->section<double>(section++));
  engine.own_sumsq_.borrow(reader->section<double>(section++));
  engine.seg_norms_.borrow(reader->section<float>(section++));
  const bool all_pairs =
      engine.precompute_ == sim::Precompute::kAllPairs;
  check_section_size(*reader, section - 12, engine.filled_.size(),
                     all_pairs ? engine.count_ * engine.stride_ : 0,
                     "filled rows");
  check_section_size(*reader, section - 10, engine.mask_.size(),
                     all_pairs ? engine.count_ * engine.mask_words_ : 0,
                     "missing masks");
  check_section_size(*reader, section - 9, engine.present_.size(),
                     engine.count_, "present counts");
  engine.pin_ = std::make_shared<MappedArtifactPin>(std::move(reader));
  return engine;
}

// ---- LshCodec ----------------------------------------------------------

void LshCodec::save(ArtifactWriter& writer, const sim::LshIndex& index) {
  LshMeta meta{};
  meta.count = index.count_;
  meta.bits = index.bits_;
  meta.words = index.words_;
  meta.slice_bits = index.slice_bits_;
  meta.tables = index.tables_;
  meta.probes = index.probes_;
  writer.scalar(meta);
  writer.section(index.signatures_.span());
  // Each bucket table holds exactly count_ (key, row) entries; flatten
  // them table-major so the whole bank is two sections.
  std::vector<std::uint64_t> keys;
  std::vector<std::uint32_t> rows;
  keys.reserve(index.tables_ * index.count_);
  rows.reserve(index.tables_ * index.count_);
  for (const auto& table : index.tables_storage_) {
    keys.insert(keys.end(), table.keys.begin(), table.keys.end());
    rows.insert(rows.end(), table.rows.begin(), table.rows.end());
  }
  writer.section(keys);
  writer.section(rows);
  writer.section(index.probe_bits_.span());
}

sim::LshIndex LshCodec::load(const ArtifactReader& reader,
                             std::size_t& section) {
  const auto meta = reader.scalar<LshMeta>(section++);
  sim::LshIndex index;
  index.count_ = static_cast<std::size_t>(meta.count);
  index.bits_ = static_cast<std::size_t>(meta.bits);
  index.words_ = static_cast<std::size_t>(meta.words);
  index.slice_bits_ = static_cast<std::size_t>(meta.slice_bits);
  index.tables_ = static_cast<std::size_t>(meta.tables);
  index.probes_ = static_cast<std::size_t>(meta.probes);
  index.signatures_ = reader.vector<std::uint64_t>(section++);
  const auto keys = reader.section<std::uint64_t>(section++);
  const auto rows = reader.section<std::uint32_t>(section++);
  index.probe_bits_ = reader.vector<std::uint16_t>(section++);
  check_section_size(reader, section - 4, index.signatures_.size(),
                     index.count_ * index.words_, "signatures");
  check_section_size(reader, section - 3, keys.size(),
                     index.tables_ * index.count_, "bucket keys");
  check_section_size(reader, section - 2, rows.size(),
                     index.tables_ * index.count_, "bucket rows");
  index.tables_storage_.resize(index.tables_);
  for (std::size_t t = 0; t < index.tables_; ++t) {
    auto& table = index.tables_storage_[t];
    const std::size_t begin = t * index.count_;
    table.keys.assign(keys.begin() + begin,
                      keys.begin() + begin + index.count_);
    table.rows.assign(rows.begin() + begin,
                      rows.begin() + begin + index.count_);
  }
  return index;
}

sim::LshIndex LshCodec::load_mapped(
    std::shared_ptr<const ArtifactReader> reader, std::size_t& section) {
  const auto meta = reader->scalar<LshMeta>(section++);
  sim::LshIndex index;
  index.count_ = static_cast<std::size_t>(meta.count);
  index.bits_ = static_cast<std::size_t>(meta.bits);
  index.words_ = static_cast<std::size_t>(meta.words);
  index.slice_bits_ = static_cast<std::size_t>(meta.slice_bits);
  index.tables_ = static_cast<std::size_t>(meta.tables);
  index.probes_ = static_cast<std::size_t>(meta.probes);
  index.signatures_.borrow(reader->section<std::uint64_t>(section++));
  const auto keys = reader->section<std::uint64_t>(section++);
  const auto rows = reader->section<std::uint32_t>(section++);
  index.probe_bits_.borrow(reader->section<std::uint16_t>(section++));
  check_section_size(*reader, section - 4, index.signatures_.size(),
                     index.count_ * index.words_, "signatures");
  check_section_size(*reader, section - 3, keys.size(),
                     index.tables_ * index.count_, "bucket keys");
  check_section_size(*reader, section - 2, rows.size(),
                     index.tables_ * index.count_, "bucket rows");
  // Each table borrows its slice of the flat table-major banks — the
  // sections were written per-table contiguous precisely so a mapped
  // reopen needs no per-table copies.
  index.tables_storage_.resize(index.tables_);
  for (std::size_t t = 0; t < index.tables_; ++t) {
    auto& table = index.tables_storage_[t];
    const std::size_t begin = t * index.count_;
    table.keys.borrow(keys.subspan(begin, index.count_));
    table.rows.borrow(rows.subspan(begin, index.count_));
  }
  index.pin_ = std::make_shared<MappedArtifactPin>(std::move(reader));
  return index;
}

// ---- SpellCodec --------------------------------------------------------

ArtifactKey SpellCodec::content_key(
    const std::vector<expr::Dataset>& datasets) {
  KeyBuilder builder;
  builder.string("spell-banks");
  builder.value(static_cast<std::uint64_t>(datasets.size()));
  for (const auto& dataset : datasets) {
    builder.string(dataset.name());
    builder.value(matrix_key(dataset.values()));
  }
  return builder.key();
}

void SpellCodec::save(ArtifactWriter& writer,
                      const spell::SpellSearch& search) {
  writer.scalar(static_cast<std::uint64_t>(search.engines_.size()));
  for (const auto& engine : search.engines_) {
    EngineCodec::save(writer, engine);
  }
}

spell::SpellSearch SpellCodec::load(
    const ArtifactReader& reader,
    const std::vector<expr::Dataset>& datasets) {
  std::size_t section = 0;
  const auto bank_count = reader.scalar<std::uint64_t>(section++);
  if (bank_count != datasets.size()) {
    throw CorruptArtifactError(
        "spell artifact '" + reader.path() + "' holds " +
        std::to_string(bank_count) + " dot banks for " +
        std::to_string(datasets.size()) + " datasets");
  }
  std::vector<sim::SimilarityEngine> engines;
  engines.reserve(datasets.size());
  for (std::size_t d = 0; d < bank_count; ++d) {
    engines.push_back(EngineCodec::load(reader, section));
  }
  return spell::SpellSearch(&datasets, std::move(engines));
}

// ---- NeighborCodec / DistanceCodec -------------------------------------

void NeighborCodec::save(ArtifactWriter& writer,
                         const sim::NeighborTable& table) {
  NeighborMeta meta{};
  meta.count = table.count;
  meta.k = table.k;
  writer.scalar(meta);
  writer.section(table.indices);
  writer.section(table.distances);
  writer.section(table.valid);
}

sim::NeighborTable NeighborCodec::load(const ArtifactReader& reader,
                                       std::size_t& section) {
  const auto meta = reader.scalar<NeighborMeta>(section++);
  sim::NeighborTable table;
  table.count = static_cast<std::size_t>(meta.count);
  table.k = static_cast<std::size_t>(meta.k);
  table.indices = reader.vector<std::uint32_t>(section++);
  table.distances = reader.vector<float>(section++);
  table.valid = reader.vector<std::uint32_t>(section++);
  check_section_size(reader, section - 3, table.indices.size(),
                     table.count * table.k, "neighbor indices");
  check_section_size(reader, section - 2, table.distances.size(),
                     table.count * table.k, "neighbor distances");
  check_section_size(reader, section - 1, table.valid.size(), table.count,
                     "neighbor valid counts");
  return table;
}

void DistanceCodec::save(ArtifactWriter& writer,
                         const cluster::DistanceMatrix& distances) {
  writer.scalar(static_cast<std::uint64_t>(distances.size()));
  writer.section(distances.condensed());
}

cluster::DistanceMatrix DistanceCodec::load(const ArtifactReader& reader,
                                            std::size_t& section) {
  const auto n =
      static_cast<std::size_t>(reader.scalar<std::uint64_t>(section++));
  const auto values = reader.section<float>(section++);
  cluster::DistanceMatrix distances(n);
  check_section_size(reader, section - 1, values.size(),
                     distances.condensed().size(), "condensed distances");
  std::memcpy(distances.condensed().data(), values.data(),
              values.size() * sizeof(float));
  return distances;
}

// ---- cached consumers --------------------------------------------------

sim::SimilarityEngine open_or_build_engine(
    ArtifactStore& store, ArtifactKey input_key,
    const std::function<expr::ExpressionMatrix()>& load_matrix,
    sim::Metric metric, sim::Precompute precompute, sim::DenseKernel kernel,
    OpenStats* stats) {
  const ArtifactKey key = engine_key(input_key, metric, precompute, kernel);
  return load_or_compute<sim::SimilarityEngine>(
      store, ArtifactKind::kEngine, key,
      [](const ArtifactReader& reader) {
        std::size_t section = 0;
        return EngineCodec::load(reader, section);
      },
      [&]() {
        const expr::ExpressionMatrix matrix = load_matrix();
        return sim::SimilarityEngine::from_rows(matrix, metric, precompute,
                                                kernel);
      },
      [](ArtifactWriter& writer, const sim::SimilarityEngine& engine) {
        EngineCodec::save(writer, engine);
      },
      stats);
}

std::optional<sim::SimilarityEngine> open_engine_mapped(ArtifactStore& store,
                                                        ArtifactKey key) {
  auto reader =
      store.open(ArtifactKind::kEngine, key, PageResidency::kOnDemand);
  if (!reader.has_value()) return std::nullopt;
  auto shared = std::make_shared<const ArtifactReader>(std::move(*reader));
  std::size_t section = 0;
  sim::SimilarityEngine engine = EngineCodec::load_mapped(shared, section);
  store.stats().warm_opens.fetch_add(1, std::memory_order_relaxed);
  return engine;
}

sim::SimilarityEngine open_or_build_engine_mapped(
    ArtifactStore& store, ArtifactKey input_key,
    const std::function<expr::ExpressionMatrix()>& load_matrix,
    sim::Metric metric, sim::Precompute precompute, sim::DenseKernel kernel,
    OpenStats* stats) {
  const ArtifactKey key = engine_key(input_key, metric, precompute, kernel);
  // Warm path + damage handling mirror load_or_compute; the load itself is
  // the mapped open (and cannot use load_or_compute directly, because the
  // cold path below must REOPEN the committed artifact mapped instead of
  // returning the heap value).
  bool recovered = false;
  try {
    if (auto engine = open_engine_mapped(store, key)) {
      if (stats != nullptr) stats->warm = true;
      return std::move(*engine);
    }
  } catch (const CorruptArtifactError& error) {
    store.stats().corrupt.fetch_add(1, std::memory_order_relaxed);
    detail::log_artifact_recovery(store.artifact_path(ArtifactKind::kEngine,
                                                      key),
                                  "corrupt", error.what(), "quarantined");
    store.quarantine(ArtifactKind::kEngine, key);
    recovered = true;
  } catch (const StaleArtifactError& error) {
    store.stats().stale.fetch_add(1, std::memory_order_relaxed);
    detail::log_artifact_recovery(store.artifact_path(ArtifactKind::kEngine,
                                                      key),
                                  "stale", error.what(), "removed");
    store.remove(ArtifactKind::kEngine, key);
    recovered = true;
  } catch (const IoError& error) {
    detail::log_artifact_recovery(store.artifact_path(ArtifactKind::kEngine,
                                                      key),
                                  "unreadable", error.what(), "ignored");
    recovered = true;
  }
  if (stats != nullptr) stats->recovered = recovered;

  const expr::ExpressionMatrix matrix = load_matrix();
  sim::SimilarityEngine built =
      sim::SimilarityEngine::from_rows(matrix, metric, precompute, kernel);
  store.stats().recomputes.fetch_add(1, std::memory_order_relaxed);
  try {
    store.put(ArtifactKind::kEngine, key,
              [&](ArtifactWriter& w) { EngineCodec::save(w, built); });
    store.stats().persists.fetch_add(1, std::memory_order_relaxed);
    if (stats != nullptr) stats->persisted = true;
  } catch (const Error& error) {
    store.stats().persist_failures.fetch_add(1, std::memory_order_relaxed);
    detail::log_artifact_recovery(store.artifact_path(ArtifactKind::kEngine,
                                                      key),
                                  "persist-failed", error.what(),
                                  "serving heap-built engine");
    return built;
  }
  // The commit succeeded, so the artifact under the final name is exactly
  // the engine just built; serve it mapped. Any failure to reopen what was
  // just committed degrades to the heap engine rather than erroring — the
  // caller asked for a correct engine first, a mapped one second.
  try {
    if (auto engine = open_engine_mapped(store, key)) {
      // Reopening our own commit is not a second warm serve.
      store.stats().warm_opens.fetch_sub(1, std::memory_order_relaxed);
      return std::move(*engine);
    }
  } catch (const Error& error) {
    detail::log_artifact_recovery(store.artifact_path(ArtifactKind::kEngine,
                                                      key),
                                  "mapped-reopen-failed", error.what(),
                                  "serving heap-built engine");
  }
  return built;
}

cluster::DistanceMatrix open_or_compute_condensed(
    ArtifactStore& store, const sim::SimilarityEngine& engine,
    par::ThreadPool& pool, OpenStats* stats) {
  const ArtifactKey key = KeyBuilder{}
                              .string("condensed")
                              .value(EngineCodec::content_key(engine))
                              .key();
  return load_or_compute<cluster::DistanceMatrix>(
      store, ArtifactKind::kCondensedDistances, key,
      [](const ArtifactReader& reader) {
        std::size_t section = 0;
        return DistanceCodec::load(reader, section);
      },
      [&]() {
        cluster::DistanceMatrix distances(engine.size());
        engine.condensed_distances(distances.condensed(), pool);
        return distances;
      },
      [](ArtifactWriter& writer, const cluster::DistanceMatrix& distances) {
        DistanceCodec::save(writer, distances);
      },
      stats);
}

sim::LshIndex open_or_build_lsh(ArtifactStore& store,
                                const sim::SimilarityEngine& engine,
                                const sim::LshParams& params,
                                par::ThreadPool& pool, OpenStats* stats) {
  const ArtifactKey key = lsh_key(EngineCodec::content_key(engine), params);
  return load_or_compute<sim::LshIndex>(
      store, ArtifactKind::kLshIndex, key,
      [](const ArtifactReader& reader) {
        std::size_t section = 0;
        return LshCodec::load(reader, section);
      },
      [&]() { return sim::LshIndex(engine, params, pool); },
      [](ArtifactWriter& writer, const sim::LshIndex& index) {
        LshCodec::save(writer, index);
      },
      stats);
}

std::optional<sim::LshIndex> open_lsh_mapped(
    ArtifactStore& store, const sim::SimilarityEngine& engine,
    const sim::LshParams& params) {
  const ArtifactKey key = lsh_key(EngineCodec::content_key(engine), params);
  auto reader =
      store.open(ArtifactKind::kLshIndex, key, PageResidency::kOnDemand);
  if (!reader.has_value()) return std::nullopt;
  auto shared = std::make_shared<const ArtifactReader>(std::move(*reader));
  std::size_t section = 0;
  sim::LshIndex index = LshCodec::load_mapped(shared, section);
  store.stats().warm_opens.fetch_add(1, std::memory_order_relaxed);
  return index;
}

sim::NeighborTable open_or_compute_top_k(
    ArtifactStore& store, const sim::SimilarityEngine& engine, std::size_t k,
    par::ThreadPool& pool, std::size_t min_common,
    sim::TopKStrategy strategy, const sim::LshParams& lsh,
    OpenStats* stats) {
  const ArtifactKey key = neighbors_key(EngineCodec::content_key(engine), k,
                                        min_common, strategy, lsh);
  return load_or_compute<sim::NeighborTable>(
      store, ArtifactKind::kNeighborTable, key,
      [](const ArtifactReader& reader) {
        std::size_t section = 0;
        return NeighborCodec::load(reader, section);
      },
      [&]() {
        if (strategy == sim::TopKStrategy::kApprox && engine.size() > 1 &&
            k < engine.size() - 1) {
          // Even the cold path reuses warm signatures: the index is its
          // own cached artifact, so recomputing a lost neighbor table
          // costs rescoring only, not the signature build.
          const sim::LshIndex index =
              open_or_build_lsh(store, engine, lsh, pool);
          return engine.top_k_neighbors(k, pool, min_common, strategy,
                                        nullptr, lsh, &index);
        }
        return engine.top_k_neighbors(k, pool, min_common, strategy,
                                      nullptr, lsh);
      },
      [](ArtifactWriter& writer, const sim::NeighborTable& table) {
        NeighborCodec::save(writer, table);
      },
      stats);
}

std::vector<cluster::Merge> open_or_compute_merges(
    ArtifactStore& store, const cluster::DistanceMatrix& distances,
    cluster::Linkage linkage, cluster::Agglomerator algorithm,
    OpenStats* stats) {
  const ArtifactKey key =
      merges_key(distances_key(distances), linkage, algorithm);
  return load_or_compute<std::vector<cluster::Merge>>(
      store, ArtifactKind::kMerges, key,
      [](const ArtifactReader& reader) {
        return reader.vector<cluster::Merge>(0);
      },
      [&]() {
        return cluster::agglomerate(distances, linkage, algorithm);
      },
      [](ArtifactWriter& writer,
         const std::vector<cluster::Merge>& merges) {
        writer.section(merges);
      },
      stats);
}

spell::SpellSearch open_or_build_spell(
    ArtifactStore& store, const std::vector<expr::Dataset>& datasets,
    par::ThreadPool& pool, OpenStats* stats) {
  const ArtifactKey key = SpellCodec::content_key(datasets);
  return load_or_compute<spell::SpellSearch>(
      store, ArtifactKind::kEngine, key,
      [&](const ArtifactReader& reader) {
        return SpellCodec::load(reader, datasets);
      },
      [&]() { return spell::SpellSearch(datasets, pool); },
      [](ArtifactWriter& writer, const spell::SpellSearch& search) {
        SpellCodec::save(writer, search);
      },
      stats);
}

void put_blob(ArtifactStore& store, ArtifactKey key, std::string_view bytes) {
  store.put(ArtifactKind::kBlob, key, [&](ArtifactWriter& writer) {
    writer.section_bytes(std::as_bytes(
        std::span<const char>(bytes.data(), bytes.size())));
  });
}

std::optional<std::string> load_blob(ArtifactStore& store, ArtifactKey key) {
  try {
    const auto reader = store.open(ArtifactKind::kBlob, key);
    if (!reader.has_value()) return std::nullopt;
    const auto bytes = reader->section_bytes(0);
    store.stats().warm_opens.fetch_add(1, std::memory_order_relaxed);
    return std::string(reinterpret_cast<const char*>(bytes.data()),
                       bytes.size());
  } catch (const CorruptArtifactError& error) {
    store.stats().corrupt.fetch_add(1, std::memory_order_relaxed);
    detail::log_artifact_recovery(store.artifact_path(ArtifactKind::kBlob, key),
                                  "corrupt", error.what(), "quarantined");
    store.quarantine(ArtifactKind::kBlob, key);
  } catch (const StaleArtifactError& error) {
    store.stats().stale.fetch_add(1, std::memory_order_relaxed);
    detail::log_artifact_recovery(store.artifact_path(ArtifactKind::kBlob, key),
                                  "stale", error.what(), "removed");
    store.remove(ArtifactKind::kBlob, key);
  } catch (const IoError& error) {
    detail::log_artifact_recovery(store.artifact_path(ArtifactKind::kBlob, key),
                                  "unreadable", error.what(), "ignored");
  }
  return std::nullopt;
}

}  // namespace fv::store
