// Store consistency checker — the library behind tools/fv_store_fsck.
//
// Scans an artifact store directory, classifies every file the store owns
// (committed *.fva artifacts and orphaned *.fva.tmp temporaries), and —
// in repair mode — quarantines what is damaged and sweeps what is dead
// weight. Repair never deletes a corrupt artifact's bytes (evidence goes
// to quarantine/) and never touches files the store does not own.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fv::store {

enum class FsckVerdict {
  kValid,      ///< opens clean, checksums hold
  kCorrupt,    ///< integrity failure (magic/checksum/truncation)
  kStale,      ///< foreign format version — unreadable by this build
  kOrphanTmp,  ///< *.fva.tmp left by an interrupted commit
  kUnreadable, ///< I/O error before validation could run
};

const char* fsck_verdict_name(FsckVerdict verdict);

struct FsckEntry {
  std::string path;
  FsckVerdict verdict;
  std::string detail;        ///< error text for non-valid entries
  std::uint64_t bytes = 0;   ///< file size (0 when stat failed)
};

struct FsckReport {
  std::vector<FsckEntry> entries;
  std::size_t valid = 0;
  std::size_t corrupt = 0;
  std::size_t stale = 0;
  std::size_t orphan_tmp = 0;
  std::size_t unreadable = 0;
  std::size_t repaired = 0;  ///< files quarantined or swept (repair mode)

  bool clean() const noexcept {
    return corrupt == 0 && stale == 0 && orphan_tmp == 0 && unreadable == 0;
  }
};

/// Read-only scan: validates every owned file, touches nothing.
FsckReport fsck_scan(const std::string& directory);

/// Scan + repair: corrupt artifacts move to <dir>/quarantine/, stale
/// artifacts and orphaned temporaries are removed (both are safe — the
/// consumers recompute). Valid artifacts are untouched.
FsckReport fsck_repair(const std::string& directory);

}  // namespace fv::store
