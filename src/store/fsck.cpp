#include "store/fsck.hpp"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "store/artifact_store.hpp"
#include "store/mapped_file.hpp"
#include "util/error.hpp"

namespace fv::store {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::uint64_t file_bytes(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<std::uint64_t>(st.st_size);
}

FsckEntry classify(const std::string& path) {
  FsckEntry entry{path, FsckVerdict::kValid, "", file_bytes(path)};
  if (ends_with(path, std::string(kArtifactExtension) + ".tmp")) {
    entry.verdict = FsckVerdict::kOrphanTmp;
    entry.detail = "temporary left by an interrupted commit";
    return entry;
  }
  try {
    (void)open_artifact_file(path);
  } catch (const CorruptArtifactError& error) {
    entry.verdict = FsckVerdict::kCorrupt;
    entry.detail = error.what();
  } catch (const StaleArtifactError& error) {
    entry.verdict = FsckVerdict::kStale;
    entry.detail = error.what();
  } catch (const IoError& error) {
    entry.verdict = FsckVerdict::kUnreadable;
    entry.detail = error.what();
  }
  return entry;
}

FsckReport run(const std::string& directory, bool repair) {
  DIR* dir = ::opendir(directory.c_str());
  if (dir == nullptr) {
    throw IoError("cannot open store directory '" + directory +
                  "': " + std::strerror(errno));
  }
  std::vector<std::string> names;
  while (const dirent* ent = ::readdir(dir)) {
    const std::string name = ent->d_name;
    // Own only commit-protocol products; quarantine/ and foreign files
    // are out of scope.
    if (ends_with(name, kArtifactExtension) ||
        ends_with(name, std::string(kArtifactExtension) + ".tmp")) {
      names.push_back(name);
    }
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());  // deterministic report order

  FsckReport report;
  for (const auto& name : names) {
    FsckEntry entry = classify(directory + "/" + name);
    switch (entry.verdict) {
      case FsckVerdict::kValid: ++report.valid; break;
      case FsckVerdict::kCorrupt: ++report.corrupt; break;
      case FsckVerdict::kStale: ++report.stale; break;
      case FsckVerdict::kOrphanTmp: ++report.orphan_tmp; break;
      case FsckVerdict::kUnreadable: ++report.unreadable; break;
    }
    if (repair) {
      switch (entry.verdict) {
        case FsckVerdict::kCorrupt: {
          // Same policy as the runtime degradation path: evidence moves
          // to quarantine/, it is never destroyed.
          const std::string qdir = directory + "/quarantine";
          ::mkdir(qdir.c_str(), 0755);
          const std::string dst = qdir + "/" + name;
          if (::rename(entry.path.c_str(), dst.c_str()) != 0) {
            MappedFile::remove_quiet(entry.path);
          }
          ++report.repaired;
          break;
        }
        case FsckVerdict::kStale:
        case FsckVerdict::kOrphanTmp:
          MappedFile::remove_quiet(entry.path);
          ++report.repaired;
          break;
        case FsckVerdict::kValid:
        case FsckVerdict::kUnreadable:
          break;
      }
    }
    report.entries.push_back(std::move(entry));
  }
  return report;
}

}  // namespace

const char* fsck_verdict_name(FsckVerdict verdict) {
  switch (verdict) {
    case FsckVerdict::kValid: return "valid";
    case FsckVerdict::kCorrupt: return "corrupt";
    case FsckVerdict::kStale: return "stale";
    case FsckVerdict::kOrphanTmp: return "orphan-tmp";
    case FsckVerdict::kUnreadable: return "unreadable";
  }
  return "unknown";
}

FsckReport fsck_scan(const std::string& directory) {
  return run(directory, /*repair=*/false);
}

FsckReport fsck_repair(const std::string& directory) {
  return run(directory, /*repair=*/true);
}

}  // namespace fv::store
