#include "wall/wall_display.hpp"

#include <algorithm>

#include "mpx/communicator.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace fv::wall {

layout::Rect WallSpec::tile_rect(std::size_t index) const {
  FV_REQUIRE(index < tile_count(), "tile index out of range");
  const std::size_t col = index % tile_cols;
  const std::size_t row = index / tile_cols;
  return layout::Rect{static_cast<long>(col * tile_width),
                      static_cast<long>(row * tile_height),
                      static_cast<long>(tile_width),
                      static_cast<long>(tile_height)};
}

namespace {

constexpr int kTagCommands = 1;
constexpr int kTagPixels = 2;
constexpr int kTagStats = 3;

/// Commands whose bounds intersect `region`, in stream order.
CommandList cull_for_region(const CommandList& commands,
                            const layout::Rect& region) {
  CommandList kept;
  for (const RenderCommand& command : commands) {
    if (layout::overlaps(command.bounds(), region)) kept.push_back(command);
  }
  return kept;
}

/// Tiles handled by a node (round-robin assignment, master excluded).
std::vector<std::size_t> tiles_of_node(std::size_t node,
                                       std::size_t node_count,
                                       std::size_t tile_count) {
  std::vector<std::size_t> tiles;
  for (std::size_t t = node; t < tile_count; t += node_count) {
    tiles.push_back(t);
  }
  return tiles;
}

struct NodeReport {
  double render_seconds = 0.0;
  std::uint64_t executed = 0;
};

}  // namespace

render::Framebuffer render_reference(const CommandList& commands,
                                     std::size_t width, std::size_t height) {
  render::Framebuffer fb(width, height);
  replay_commands(fb, commands, 0, 0);
  return fb;
}

FrameResult render_wall_frame(const CommandList& commands,
                              const WallSpec& spec, Distribution distribution,
                              std::size_t node_count) {
  FV_REQUIRE(spec.tile_count() >= 1, "wall needs at least one tile");
  if (node_count == 0) node_count = spec.tile_count();
  node_count = std::min(node_count, spec.tile_count());

  FrameResult result;
  result.frame =
      render::Framebuffer(spec.total_width(), spec.total_height());
  result.stats.commands_total = commands.size();
  result.stats.pixels = spec.total_pixels();

  Timer frame_timer;
  // Rank 0 = master (holds the command stream, composites); ranks 1..N are
  // the per-tile cluster nodes.
  const int ranks = static_cast<int>(node_count) + 1;
  mpx::run_group(ranks, [&](mpx::Comm& comm) {
    if (comm.rank() == 0) {
      // --- master: distribute -------------------------------------------
      std::size_t bytes = 0;
      if (distribution == Distribution::kBroadcast) {
        mpx::PayloadWriter writer;
        write_commands(writer, commands);
        auto payload = writer.take();
        bytes = payload.size() * node_count;
        for (int node = 1; node < ranks; ++node) {
          comm.send(node, kTagCommands, payload);  // copy per node
        }
      } else {
        for (int node = 1; node < ranks; ++node) {
          // Union region of this node's tiles; ship only what it needs.
          CommandList node_commands;
          for (const std::size_t tile :
               tiles_of_node(static_cast<std::size_t>(node - 1), node_count,
                             spec.tile_count())) {
            const auto culled =
                cull_for_region(commands, spec.tile_rect(tile));
            node_commands.insert(node_commands.end(), culled.begin(),
                                 culled.end());
          }
          mpx::PayloadWriter writer;
          write_commands(writer, node_commands);
          auto payload = writer.take();
          bytes += payload.size();
          comm.send(node, kTagCommands, std::move(payload));
        }
      }
      result.stats.bytes_distributed = bytes;

      // --- master: composite gathered tiles ------------------------------
      for (std::size_t tile = 0; tile < spec.tile_count(); ++tile) {
        const auto pixels = comm.recv_vector<render::Rgb8>(mpx::kAnySource,
                                                           kTagPixels);
        // First element encodes the tile index (avoids a second message).
        FV_ASSERT(!pixels.empty(), "tile pixel message is empty");
        const auto tile_index =
            static_cast<std::size_t>(pixels.front().r) +
            (static_cast<std::size_t>(pixels.front().g) << 8);
        const layout::Rect rect = spec.tile_rect(tile_index);
        render::Framebuffer tile_fb(static_cast<std::size_t>(rect.width),
                                    static_cast<std::size_t>(rect.height));
        FV_ASSERT(pixels.size() == tile_fb.pixel_count() + 1,
                  "tile pixel payload has wrong size");
        for (std::size_t i = 0; i < tile_fb.pixel_count(); ++i) {
          tile_fb.set(i % tile_fb.width(), i / tile_fb.width(),
                      pixels[i + 1]);
        }
        result.frame.blit(tile_fb, rect.x, rect.y);
      }
      // Per-node reports.
      for (int node = 1; node < ranks; ++node) {
        const auto report = comm.recv_vector<double>(node, kTagStats);
        FV_ASSERT(report.size() == 2, "bad node report");
        result.stats.max_node_render_seconds =
            std::max(result.stats.max_node_render_seconds, report[0]);
        result.stats.commands_executed +=
            static_cast<std::size_t>(report[1]);
      }
    } else {
      // --- render node ----------------------------------------------------
      mpx::Message message = comm.recv(0, kTagCommands);
      mpx::PayloadReader reader(message.payload);
      const CommandList node_commands = read_commands(reader);

      NodeReport report;
      Timer render_timer;
      for (const std::size_t tile :
           tiles_of_node(static_cast<std::size_t>(comm.rank() - 1),
                         node_count, spec.tile_count())) {
        const layout::Rect rect = spec.tile_rect(tile);
        render::Framebuffer tile_fb(static_cast<std::size_t>(rect.width),
                                    static_cast<std::size_t>(rect.height));
        report.executed +=
            replay_commands(tile_fb, node_commands, rect.x, rect.y);
        // Prefix the pixel payload with the tile index (16-bit, packed into
        // one Rgb8) so the master can composite out-of-order arrivals.
        std::vector<render::Rgb8> pixels;
        pixels.reserve(tile_fb.pixel_count() + 1);
        pixels.push_back(render::Rgb8{
            static_cast<std::uint8_t>(tile & 0xff),
            static_cast<std::uint8_t>((tile >> 8) & 0xff), 0});
        pixels.insert(pixels.end(), tile_fb.pixels().begin(),
                      tile_fb.pixels().end());
        comm.send_vector<render::Rgb8>(0, kTagPixels, pixels);
      }
      report.render_seconds = render_timer.seconds();
      const std::vector<double> packed{
          report.render_seconds, static_cast<double>(report.executed)};
      comm.send_vector<double>(0, kTagStats, packed);
    }
  });
  result.stats.total_seconds = frame_timer.seconds();
  return result;
}

}  // namespace fv::wall
