#include "wall/wall_display.hpp"

#include <algorithm>
#include <thread>

#include "mpx/communicator.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace fv::wall {

layout::Rect WallSpec::tile_rect(std::size_t index) const {
  FV_REQUIRE(index < tile_count(), "tile index out of range");
  const std::size_t col = index % tile_cols;
  const std::size_t row = index / tile_cols;
  return layout::Rect{static_cast<long>(col * tile_width),
                      static_cast<long>(row * tile_height),
                      static_cast<long>(tile_width),
                      static_cast<long>(tile_height)};
}

namespace {

// Wire tags. kTagCommands drives the trusting fast path (one stream per
// node, node renders everything it owns, no recovery). kTagWork/kTagShutdown
// drive the fault-tolerant work loop: a work message names explicit tiles so
// the master can re-send or re-assign any subset; shutdown is control
// traffic and is auto-exempted from fault injection so termination stays
// bounded even under 100% message loss on data tags.
constexpr int kTagCommands = 1;
constexpr int kTagPixels = 2;
constexpr int kTagStats = 3;
constexpr int kTagWork = 4;
constexpr int kTagShutdown = 5;

/// Commands whose bounds intersect `region`, in stream order.
CommandList cull_for_region(const CommandList& commands,
                            const layout::Rect& region) {
  CommandList kept;
  for (const RenderCommand& command : commands) {
    if (layout::overlaps(command.bounds(), region)) kept.push_back(command);
  }
  return kept;
}

/// Commands needed by any tile of `tiles`, in stream order (the "command
/// substream" a retry or reassignment ships).
CommandList cull_for_tiles(const CommandList& commands, const WallSpec& spec,
                           const std::vector<std::size_t>& tiles) {
  std::vector<layout::Rect> rects;
  rects.reserve(tiles.size());
  for (const std::size_t tile : tiles) rects.push_back(spec.tile_rect(tile));
  CommandList kept;
  for (const RenderCommand& command : commands) {
    const layout::Rect bounds = command.bounds();
    for (const layout::Rect& rect : rects) {
      if (layout::overlaps(bounds, rect)) {
        kept.push_back(command);
        break;
      }
    }
  }
  return kept;
}

/// Tiles handled by a node (round-robin assignment, master excluded).
std::vector<std::size_t> tiles_of_node(std::size_t node,
                                       std::size_t node_count,
                                       std::size_t tile_count) {
  std::vector<std::size_t> tiles;
  for (std::size_t t = node; t < tile_count; t += node_count) {
    tiles.push_back(t);
  }
  return tiles;
}

struct NodeReport {
  double render_seconds = 0.0;
  std::uint64_t executed = 0;
};

/// Rasterizes one tile of the command stream (deterministic — this is what
/// makes every recovery rung pixel-identical: any node, or the master, can
/// re-render any tile and produce the same bytes).
render::Framebuffer raster_tile(const CommandList& commands,
                                const layout::Rect& rect,
                                std::uint64_t* executed) {
  render::Framebuffer tile_fb(static_cast<std::size_t>(rect.width),
                              static_cast<std::size_t>(rect.height));
  const std::size_t count =
      replay_commands(tile_fb, commands, rect.x, rect.y);
  if (executed != nullptr) *executed += count;
  return tile_fb;
}

/// Pixel payload: the tile index packed into the first Rgb8 (16-bit), then
/// the tile's pixels row-major.
std::vector<render::Rgb8> pack_tile_pixels(std::size_t tile,
                                           const render::Framebuffer& fb) {
  std::vector<render::Rgb8> pixels;
  pixels.reserve(fb.pixel_count() + 1);
  pixels.push_back(render::Rgb8{static_cast<std::uint8_t>(tile & 0xff),
                                static_cast<std::uint8_t>((tile >> 8) & 0xff),
                                0});
  pixels.insert(pixels.end(), fb.pixels().begin(), fb.pixels().end());
  return pixels;
}

// ---------------------------------------------------------------------------
// Trusting fast path (tile_deadline == 0): the pre-robustness protocol,
// byte-for-byte. No deadlines, no recovery — a lost node blocks the frame.

void run_trusting_frame(const CommandList& commands, const WallSpec& spec,
                        Distribution distribution, std::size_t node_count,
                        FrameResult& result) {
  const int ranks = static_cast<int>(node_count) + 1;
  mpx::run_group(ranks, [&](mpx::Comm& comm) {
    if (comm.rank() == 0) {
      // --- master: distribute -------------------------------------------
      std::size_t bytes = 0;
      if (distribution == Distribution::kBroadcast) {
        mpx::PayloadWriter writer;
        write_commands(writer, commands);
        auto payload = writer.take();
        bytes = payload.size() * node_count;
        for (int node = 1; node < ranks; ++node) {
          comm.send(node, kTagCommands, payload);  // copy per node
        }
      } else {
        for (int node = 1; node < ranks; ++node) {
          // Union region of this node's tiles; ship only what it needs.
          CommandList node_commands;
          for (const std::size_t tile :
               tiles_of_node(static_cast<std::size_t>(node - 1), node_count,
                             spec.tile_count())) {
            const auto culled =
                cull_for_region(commands, spec.tile_rect(tile));
            node_commands.insert(node_commands.end(), culled.begin(),
                                 culled.end());
          }
          mpx::PayloadWriter writer;
          write_commands(writer, node_commands);
          auto payload = writer.take();
          bytes += payload.size();
          comm.send(node, kTagCommands, std::move(payload));
        }
      }
      result.stats.bytes_distributed = bytes;

      // --- master: composite gathered tiles ------------------------------
      for (std::size_t tile = 0; tile < spec.tile_count(); ++tile) {
        const auto pixels = comm.recv_vector<render::Rgb8>(mpx::kAnySource,
                                                           kTagPixels);
        // First element encodes the tile index (avoids a second message).
        FV_ASSERT(!pixels.empty(), "tile pixel message is empty");
        const auto tile_index =
            static_cast<std::size_t>(pixels.front().r) +
            (static_cast<std::size_t>(pixels.front().g) << 8);
        const layout::Rect rect = spec.tile_rect(tile_index);
        render::Framebuffer tile_fb(static_cast<std::size_t>(rect.width),
                                    static_cast<std::size_t>(rect.height));
        FV_ASSERT(pixels.size() == tile_fb.pixel_count() + 1,
                  "tile pixel payload has wrong size");
        for (std::size_t i = 0; i < tile_fb.pixel_count(); ++i) {
          tile_fb.set(i % tile_fb.width(), i / tile_fb.width(),
                      pixels[i + 1]);
        }
        result.frame.blit(tile_fb, rect.x, rect.y);
      }
      // Per-node reports.
      for (int node = 1; node < ranks; ++node) {
        const auto report = comm.recv_vector<double>(node, kTagStats);
        FV_ASSERT(report.size() == 2, "bad node report");
        result.stats.max_node_render_seconds =
            std::max(result.stats.max_node_render_seconds, report[0]);
        result.stats.commands_executed +=
            static_cast<std::size_t>(report[1]);
      }
    } else {
      // --- render node ----------------------------------------------------
      mpx::Message message = comm.recv(0, kTagCommands);
      mpx::PayloadReader reader(message.payload);
      const CommandList node_commands = read_commands(reader);

      NodeReport report;
      Timer render_timer;
      for (const std::size_t tile :
           tiles_of_node(static_cast<std::size_t>(comm.rank() - 1),
                         node_count, spec.tile_count())) {
        const layout::Rect rect = spec.tile_rect(tile);
        render::Framebuffer tile_fb =
            raster_tile(node_commands, rect, &report.executed);
        comm.send_vector<render::Rgb8>(0, kTagPixels,
                                       pack_tile_pixels(tile, tile_fb));
      }
      report.render_seconds = render_timer.seconds();
      const std::vector<double> packed{
          report.render_seconds, static_cast<double>(report.executed)};
      comm.send_vector<double>(0, kTagStats, packed);
    }
  });
}

// ---------------------------------------------------------------------------
// Fault-tolerant path (tile_deadline > 0): explicit work messages, bounded
// waits, and the degradation ladder.

/// Work message: [tile count, tile ids..., command stream].
std::vector<std::byte> pack_work(const std::vector<std::size_t>& tiles,
                                 const CommandList& commands) {
  mpx::PayloadWriter writer;
  writer.write<std::uint64_t>(tiles.size());
  for (const std::size_t tile : tiles) {
    writer.write<std::uint64_t>(static_cast<std::uint64_t>(tile));
  }
  write_commands(writer, commands);
  return writer.take();
}

void run_fault_tolerant_master(mpx::Comm& comm, const CommandList& commands,
                               const WallSpec& spec,
                               const WallOptions& options,
                               std::size_t node_count, FrameResult& result) {
  using Clock = mpx::Comm::Clock;
  const std::size_t tile_count = spec.tile_count();
  const int ranks = static_cast<int>(node_count) + 1;

  const auto send_work = [&](int node, const std::vector<std::size_t>& tiles,
                             bool full_stream) {
    const CommandList subset =
        full_stream ? CommandList{} : cull_for_tiles(commands, spec, tiles);
    auto payload = pack_work(tiles, full_stream ? commands : subset);
    result.stats.bytes_distributed += payload.size();
    comm.send(node, kTagWork, std::move(payload));
  };

  // Initial distribution: the legacy round-robin ownership. Broadcast ships
  // the full stream (nodes cull per tile); point-to-point ships each node
  // only the substream its tiles need.
  for (int node = 1; node < ranks; ++node) {
    send_work(node,
              tiles_of_node(static_cast<std::size_t>(node - 1), node_count,
                            tile_count),
              options.distribution == Distribution::kBroadcast);
  }

  std::vector<char> done(tile_count, 0);
  std::vector<char> alive(static_cast<std::size_t>(ranks), 0);
  std::size_t remaining = tile_count;

  // Drains pixel messages until every tile landed or the window closes.
  // Corrupt messages are dropped (their tiles stay pending — the ladder
  // recovers them); duplicates are suppressed by the mailbox and late
  // arrivals for already-done tiles are ignored here.
  const auto collect_until = [&](Clock::time_point window) {
    while (remaining > 0) {
      std::optional<mpx::Message> message;
      try {
        message = comm.try_recv_until(window, mpx::kAnySource, kTagPixels);
      } catch (const CorruptMessageError&) {
        ++result.stats.corrupt_messages;
        continue;
      }
      if (!message.has_value()) return;
      alive[static_cast<std::size_t>(message->source)] = 1;
      mpx::PayloadReader reader(message->payload);
      const auto pixels = reader.read_vector<render::Rgb8>();
      FV_ASSERT(!pixels.empty(), "tile pixel message is empty");
      const auto tile_index =
          static_cast<std::size_t>(pixels.front().r) +
          (static_cast<std::size_t>(pixels.front().g) << 8);
      FV_ASSERT(tile_index < tile_count, "tile index out of range");
      if (done[tile_index]) continue;  // re-render of a recovered tile
      const layout::Rect rect = spec.tile_rect(tile_index);
      render::Framebuffer tile_fb(static_cast<std::size_t>(rect.width),
                                  static_cast<std::size_t>(rect.height));
      FV_ASSERT(pixels.size() == tile_fb.pixel_count() + 1,
                "tile pixel payload has wrong size");
      for (std::size_t i = 0; i < tile_fb.pixel_count(); ++i) {
        tile_fb.set(i % tile_fb.width(), i / tile_fb.width(), pixels[i + 1]);
      }
      result.frame.blit(tile_fb, rect.x, rect.y);
      done[tile_index] = 1;
      --remaining;
    }
  };

  const auto pending_tiles = [&] {
    std::vector<std::size_t> pending;
    for (std::size_t t = 0; t < tile_count; ++t) {
      if (!done[t]) pending.push_back(t);
    }
    return pending;
  };

  // Rung 1: the healthy window.
  collect_until(Clock::now() + options.tile_deadline);

  // Rung 2: one bounded retry — resend each missing tile's command
  // substream to its owner node after a backoff (a slow node gets a second
  // chance; a dead one will miss this window too).
  if (remaining > 0) {
    result.stats.degraded = true;
    result.stats.retries += remaining;
    std::this_thread::sleep_for(options.retry_backoff);
    std::vector<std::vector<std::size_t>> by_owner(
        static_cast<std::size_t>(ranks));
    for (const std::size_t tile : pending_tiles()) {
      by_owner[1 + tile % node_count].push_back(tile);
    }
    for (int node = 1; node < ranks; ++node) {
      const auto& tiles = by_owner[static_cast<std::size_t>(node)];
      if (!tiles.empty()) send_work(node, tiles, false);
    }
    collect_until(Clock::now() + options.tile_deadline);
  }

  // Rung 3: reassign orphaned tiles to nodes that have proven alive (they
  // delivered at least one pixel message this frame).
  if (remaining > 0) {
    std::vector<int> survivors;
    for (int node = 1; node < ranks; ++node) {
      if (alive[static_cast<std::size_t>(node)]) survivors.push_back(node);
    }
    if (!survivors.empty()) {
      result.stats.degraded = true;
      result.stats.reassigned_tiles += remaining;
      std::vector<std::vector<std::size_t>> by_survivor(survivors.size());
      std::size_t next = 0;
      for (const std::size_t tile : pending_tiles()) {
        by_survivor[next++ % survivors.size()].push_back(tile);
      }
      for (std::size_t s = 0; s < survivors.size(); ++s) {
        if (!by_survivor[s].empty()) {
          send_work(survivors[s], by_survivor[s], false);
        }
      }
      collect_until(Clock::now() + options.tile_deadline);
    }
  }

  // Rung 4: the master rasters whatever is still missing itself. Tile
  // rasterization is deterministic, so this is pixel-identical to what the
  // lost node would have produced — the frame completes, always.
  if (remaining > 0) {
    result.stats.degraded = true;
    for (const std::size_t tile : pending_tiles()) {
      const layout::Rect rect = spec.tile_rect(tile);
      std::uint64_t executed = 0;
      const render::Framebuffer tile_fb =
          raster_tile(cull_for_region(commands, rect), rect, &executed);
      result.frame.blit(tile_fb, rect.x, rect.y);
      result.stats.commands_executed += static_cast<std::size_t>(executed);
      ++result.stats.master_rastered_tiles;
      done[tile] = 1;
      --remaining;
    }
  }

  // Orderly shutdown (the control tag is fault-exempt, so this always
  // arrives; the node-side watchdog is only a backstop for a dead master).
  for (int node = 1; node < ranks; ++node) {
    comm.send(node, kTagShutdown, {});
  }

  // Best-effort node-report drain: reports ride the faulty data tags, so
  // under injection these counters may undercount — they are diagnostics,
  // never correctness.
  for (;;) {
    std::optional<mpx::Message> message;
    try {
      message = comm.try_recv(mpx::kAnySource, kTagStats);
    } catch (const CorruptMessageError&) {
      ++result.stats.corrupt_messages;
      continue;
    }
    if (!message.has_value()) break;
    mpx::PayloadReader reader(message->payload);
    const auto report = reader.read_vector<double>();
    if (report.size() != 2) continue;
    result.stats.max_node_render_seconds =
        std::max(result.stats.max_node_render_seconds, report[0]);
    result.stats.commands_executed += static_cast<std::size_t>(report[1]);
  }
}

void run_fault_tolerant_node(mpx::Comm& comm, const WallSpec& spec,
                             const WallOptions& options) {
  using Clock = mpx::Comm::Clock;
  // Idle watchdog: if the master goes silent this long, assume the frame is
  // over (e.g. the shutdown message itself was lost to fault injection) and
  // exit — a node can never hang the group. Derived generously from the
  // master's ladder span: 4 windows + backoff + slack.
  const auto watchdog =
      options.node_watchdog.count() > 0
          ? options.node_watchdog
          : options.tile_deadline * 8 + options.retry_backoff * 4 +
                std::chrono::milliseconds(250);
  for (;;) {
    std::optional<mpx::Message> message;
    try {
      message = comm.try_recv_until(Clock::now() + watchdog, 0, mpx::kAnyTag);
    } catch (const CorruptMessageError&) {
      continue;  // a corrupt request is recovered by the master's ladder
    }
    if (!message.has_value() || message->tag == kTagShutdown) break;
    if (message->tag != kTagWork) continue;

    mpx::PayloadReader reader(message->payload);
    const auto count = reader.read<std::uint64_t>();
    std::vector<std::size_t> tiles(static_cast<std::size_t>(count));
    for (auto& tile : tiles) {
      tile = static_cast<std::size_t>(reader.read<std::uint64_t>());
    }
    const CommandList node_commands = read_commands(reader);

    NodeReport report;
    Timer render_timer;
    for (const std::size_t tile : tiles) {
      const layout::Rect rect = spec.tile_rect(tile);
      const render::Framebuffer tile_fb =
          raster_tile(node_commands, rect, &report.executed);
      comm.send_vector<render::Rgb8>(0, kTagPixels,
                                     pack_tile_pixels(tile, tile_fb));
    }
    report.render_seconds = render_timer.seconds();
    const std::vector<double> packed{
        report.render_seconds, static_cast<double>(report.executed)};
    comm.send_vector<double>(0, kTagStats, packed);
  }
}

}  // namespace

render::Framebuffer render_reference(const CommandList& commands,
                                     std::size_t width, std::size_t height) {
  render::Framebuffer fb(width, height);
  replay_commands(fb, commands, 0, 0);
  return fb;
}

FrameResult render_wall_frame(const CommandList& commands,
                              const WallSpec& spec, Distribution distribution,
                              std::size_t node_count) {
  WallOptions options;
  options.distribution = distribution;
  options.node_count = node_count;
  return render_wall_frame(commands, spec, options);
}

FrameResult render_wall_frame(const CommandList& commands,
                              const WallSpec& spec,
                              const WallOptions& options) {
  FV_REQUIRE(spec.tile_count() >= 1, "wall needs at least one tile");
  std::size_t node_count = options.node_count;
  if (node_count == 0) node_count = spec.tile_count();
  node_count = std::min(node_count, spec.tile_count());

  const bool fault_tolerant = options.tile_deadline.count() > 0;
  FV_REQUIRE(!options.faults.any() || fault_tolerant,
             "fault injection requires a tile deadline: the trusting path "
             "cannot recover a lost message");
  FV_REQUIRE(options.faults.crash_rank != 0,
             "rank 0 is the wall master and must survive the frame");

  FrameResult result;
  result.frame =
      render::Framebuffer(spec.total_width(), spec.total_height());
  result.stats.commands_total = commands.size();
  result.stats.pixels = spec.total_pixels();

  Timer frame_timer;
  // Rank 0 = master (holds the command stream, composites); ranks 1..N are
  // the per-tile cluster nodes.
  const int ranks = static_cast<int>(node_count) + 1;
  if (!fault_tolerant) {
    run_trusting_frame(commands, spec, options.distribution, node_count,
                       result);
  } else {
    mpx::FaultSpec faults = options.faults;
    faults.exempt_tags.push_back(kTagShutdown);
    mpx::run_group(
        ranks,
        [&](mpx::Comm& comm) {
          if (comm.rank() == 0) {
            run_fault_tolerant_master(comm, commands, spec, options,
                                      node_count, result);
          } else {
            run_fault_tolerant_node(comm, spec, options);
          }
        },
        faults);
  }
  result.stats.total_seconds = frame_timer.seconds();
  return result;
}

}  // namespace fv::wall
