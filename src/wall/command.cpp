#include "wall/command.hpp"

#include <algorithm>

#include "render/font.hpp"
#include "util/error.hpp"

namespace fv::wall {

layout::Rect RenderCommand::bounds() const {
  switch (type) {
    case CommandType::kFillRect:
    case CommandType::kDrawRect:
      return layout::Rect{x0, y0, x1, y1};  // x1/y1 hold width/height
    case CommandType::kHLine: {
      const long lo = std::min(x0, x1);
      return layout::Rect{lo, y0, std::max(x0, x1) - lo + 1, 1};
    }
    case CommandType::kVLine: {
      const long lo = std::min(y0, y1);
      return layout::Rect{x0, lo, 1, std::max(y0, y1) - lo + 1};
    }
    case CommandType::kLine: {
      const long lx = std::min(x0, x1);
      const long ly = std::min(y0, y1);
      return layout::Rect{lx, ly, std::max(x0, x1) - lx + 1,
                          std::max(y0, y1) - ly + 1};
    }
    case CommandType::kText: {
      const long width =
          static_cast<long>(render::text_width(text)) * scale + scale;
      return layout::Rect{x0, y0, std::max(width, 1L),
                          static_cast<long>(render::kGlyphHeight) * scale};
    }
  }
  FV_ASSERT(false, "unhandled command type");
  return {};
}

void RecordingCanvas::fill_rect(long x, long y, long width, long height,
                                render::Rgb8 color) {
  if (width <= 0 || height <= 0) return;
  commands_.push_back(
      RenderCommand{CommandType::kFillRect, x, y, width, height, color, 1,
                    {}});
}

void RecordingCanvas::draw_rect(long x, long y, long width, long height,
                                render::Rgb8 color) {
  if (width <= 0 || height <= 0) return;
  commands_.push_back(
      RenderCommand{CommandType::kDrawRect, x, y, width, height, color, 1,
                    {}});
}

void RecordingCanvas::hline(long x0, long x1, long y, render::Rgb8 color) {
  commands_.push_back(
      RenderCommand{CommandType::kHLine, x0, y, x1, y, color, 1, {}});
}

void RecordingCanvas::vline(long x, long y0, long y1, render::Rgb8 color) {
  commands_.push_back(
      RenderCommand{CommandType::kVLine, x, y0, x, y1, color, 1, {}});
}

void RecordingCanvas::line(long x0, long y0, long x1, long y1,
                           render::Rgb8 color) {
  commands_.push_back(
      RenderCommand{CommandType::kLine, x0, y0, x1, y1, color, 1, {}});
}

void RecordingCanvas::text(long x, long y, std::string_view content,
                           render::Rgb8 color, int scale) {
  FV_REQUIRE(scale >= 1, "text scale must be at least 1");
  commands_.push_back(RenderCommand{CommandType::kText, x, y, 0, 0, color,
                                    scale, std::string(content)});
}

std::size_t replay_commands(render::Framebuffer& fb,
                            const CommandList& commands, long origin_x,
                            long origin_y) {
  render::FramebufferCanvas canvas(fb);
  const layout::Rect viewport{origin_x, origin_y,
                              static_cast<long>(fb.width()),
                              static_cast<long>(fb.height())};
  std::size_t executed = 0;
  for (const RenderCommand& command : commands) {
    if (!layout::overlaps(command.bounds(), viewport)) continue;
    ++executed;
    const long x0 = command.x0 - origin_x;
    const long y0 = command.y0 - origin_y;
    switch (command.type) {
      case CommandType::kFillRect:
        canvas.fill_rect(x0, y0, command.x1, command.y1, command.color);
        break;
      case CommandType::kDrawRect:
        canvas.draw_rect(x0, y0, command.x1, command.y1, command.color);
        break;
      case CommandType::kHLine:
        canvas.hline(x0, command.x1 - origin_x, y0, command.color);
        break;
      case CommandType::kVLine:
        canvas.vline(x0, y0, command.y1 - origin_y, command.color);
        break;
      case CommandType::kLine:
        canvas.line(x0, y0, command.x1 - origin_x, command.y1 - origin_y,
                    command.color);
        break;
      case CommandType::kText:
        canvas.text(x0, y0, command.text, command.color,
                    static_cast<int>(command.scale));
        break;
    }
  }
  return executed;
}

void write_commands(mpx::PayloadWriter& writer, const CommandList& commands) {
  writer.write<std::uint64_t>(commands.size());
  for (const RenderCommand& command : commands) {
    writer.write<std::uint8_t>(static_cast<std::uint8_t>(command.type));
    writer.write<std::int64_t>(command.x0);
    writer.write<std::int64_t>(command.y0);
    writer.write<std::int64_t>(command.x1);
    writer.write<std::int64_t>(command.y1);
    writer.write<std::uint8_t>(command.color.r);
    writer.write<std::uint8_t>(command.color.g);
    writer.write<std::uint8_t>(command.color.b);
    writer.write<std::int32_t>(command.scale);
    writer.write_string(command.text);
  }
}

CommandList read_commands(mpx::PayloadReader& reader) {
  const auto count = reader.read<std::uint64_t>();
  CommandList commands;
  commands.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    RenderCommand command;
    command.type = static_cast<CommandType>(reader.read<std::uint8_t>());
    command.x0 = static_cast<long>(reader.read<std::int64_t>());
    command.y0 = static_cast<long>(reader.read<std::int64_t>());
    command.x1 = static_cast<long>(reader.read<std::int64_t>());
    command.y1 = static_cast<long>(reader.read<std::int64_t>());
    command.color.r = reader.read<std::uint8_t>();
    command.color.g = reader.read<std::uint8_t>();
    command.color.b = reader.read<std::uint8_t>();
    command.scale = reader.read<std::int32_t>();
    command.text = reader.read_string();
    commands.push_back(std::move(command));
  }
  return commands;
}

std::size_t serialized_size(const CommandList& commands) {
  mpx::PayloadWriter writer;
  write_commands(writer, commands);
  return writer.take().size();
}

}  // namespace fv::wall
