// The scalable display wall (paper Figure 3, substituted per DESIGN.md):
// an R x C grid of projector tiles, each owned by one cluster node. The
// master rank distributes a frame's command stream over mpx, every node
// culls + rasterizes its tile, and the compositor gathers the tiles back
// into one frame for inspection (on the physical wall the gather is
// replaced by photons; everything before it is the same pipeline).
#pragma once

#include <chrono>
#include <vector>

#include "layout/geometry.hpp"
#include "mpx/fault.hpp"
#include "render/framebuffer.hpp"
#include "wall/command.hpp"

namespace fv::wall {

struct WallSpec {
  std::size_t tile_cols = 4;
  std::size_t tile_rows = 3;
  std::size_t tile_width = 1024;   ///< pixels per projector, paper-era XGA
  std::size_t tile_height = 768;

  std::size_t tile_count() const noexcept { return tile_cols * tile_rows; }
  std::size_t total_width() const noexcept { return tile_cols * tile_width; }
  std::size_t total_height() const noexcept {
    return tile_rows * tile_height;
  }
  std::size_t total_pixels() const noexcept {
    return total_width() * total_height();
  }

  /// Canvas-space rectangle of tile `index` (row-major).
  layout::Rect tile_rect(std::size_t index) const;

  /// The Princeton wall configuration referenced by the paper's display
  /// wall project: 24 projectors in a 6x4 grid.
  static WallSpec princeton_wall() { return WallSpec{6, 4, 1024, 768}; }
  /// A paper-era 2-Mpixel desktop monitor as a 1x1 "wall".
  static WallSpec desktop() { return WallSpec{1, 1, 1600, 1200}; }
};

/// How the master distributes the command stream (ablation A2 in DESIGN.md).
enum class Distribution {
  kBroadcast,     ///< one collective broadcast of the full stream
  kPointToPoint,  ///< per-node send of only the commands its tiles need
};

/// Knobs for one wall frame, including the fault-tolerance ladder.
///
/// With tile_deadline == 0 (the default) the frame runs the trusting fast
/// path: every node is assumed alive and every message intact, and a node
/// failure blocks forever — byte-for-byte the pre-robustness protocol, with
/// zero added cost. With tile_deadline > 0 the master runs the degradation
/// ladder instead (see src/wall/README.md): wait one deadline window for
/// tile results, then resend the missing tiles' command substreams to their
/// owner nodes (one bounded retry with backoff), then reassign still-missing
/// tiles to nodes that have proven alive, and finally rasterize whatever
/// remains master-side. Every rung re-renders the same deterministic
/// commands, so a degraded frame stays pixel-identical to render_reference.
struct WallOptions {
  Distribution distribution = Distribution::kBroadcast;
  /// Cluster nodes (mpx ranks beyond the master); 0 = one per tile.
  std::size_t node_count = 0;
  /// Master-side wait per ladder rung; 0 disables fault tolerance.
  std::chrono::milliseconds tile_deadline{0};
  /// Pause before the retry rung (gives a merely-slow node a chance).
  std::chrono::milliseconds retry_backoff{5};
  /// Node-side idle watchdog: a node that hears nothing from the master for
  /// this long exits on its own, so a lost shutdown message can never hang
  /// the frame. 0 = derived from tile_deadline (generous multiple).
  std::chrono::milliseconds node_watchdog{0};
  /// Deterministic fault injection for this frame's mpx group. Requires
  /// tile_deadline > 0 when any fault is enabled; crash_rank 0 (the master)
  /// is rejected. The wall's shutdown control tag is auto-exempted.
  mpx::FaultSpec faults;
};

struct FrameStats {
  double total_seconds = 0.0;          ///< wall-clock for the whole frame
  double max_node_render_seconds = 0.0;///< slowest node's raster time
  std::size_t commands_total = 0;      ///< commands in the stream
  std::size_t commands_executed = 0;   ///< sum over tiles after culling
  std::size_t bytes_distributed = 0;   ///< payload bytes shipped to nodes
  std::size_t pixels = 0;              ///< pixels in the assembled frame

  // Degradation accounting (fault-tolerant mode only; all zero on the
  // trusting fast path and on a healthy deadline-mode frame).
  std::size_t retries = 0;             ///< tiles resent to their owner node
  std::size_t reassigned_tiles = 0;    ///< tiles moved to a surviving node
  std::size_t master_rastered_tiles = 0;  ///< tiles rendered by the master
  std::size_t corrupt_messages = 0;    ///< messages discarded by checksum
  /// True when any recovery rung fired. The frame is still pixel-identical
  /// to render_reference — degradation costs time, never correctness.
  bool degraded = false;
};

struct FrameResult {
  render::Framebuffer frame;  ///< composited full-wall image
  FrameStats stats;
};

/// Renders one frame on the simulated wall. `node_count` cluster nodes are
/// spawned as mpx ranks plus one master rank; tiles are assigned to nodes
/// round-robin. node_count defaults to one node per tile (the paper's
/// one-PC-per-projector layout).
FrameResult render_wall_frame(const CommandList& commands,
                              const WallSpec& spec,
                              Distribution distribution =
                                  Distribution::kBroadcast,
                              std::size_t node_count = 0);

/// Full-options variant: deadlines, bounded retries, reassignment, and
/// master-side fallback raster (plus deterministic fault injection for
/// tests). The no-deadline default is exactly the legacy trusting path.
FrameResult render_wall_frame(const CommandList& commands,
                              const WallSpec& spec,
                              const WallOptions& options);

/// Single-pass reference rendering of the same command stream (desktop
/// path); wall output must match it pixel for pixel.
render::Framebuffer render_reference(const CommandList& commands,
                                     std::size_t width, std::size_t height);

}  // namespace fv::wall
