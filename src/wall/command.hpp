// Render-command stream: the unit of work the wall master broadcasts to its
// tile nodes. Each command is one Canvas primitive with enough geometry to
// cull it against a tile's viewport before rasterizing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "layout/geometry.hpp"
#include "mpx/message.hpp"
#include "render/canvas.hpp"

namespace fv::wall {

enum class CommandType : std::uint8_t {
  kFillRect,
  kDrawRect,
  kHLine,
  kVLine,
  kLine,
  kText,
};

struct RenderCommand {
  CommandType type = CommandType::kFillRect;
  long x0 = 0, y0 = 0, x1 = 0, y1 = 0;  ///< geometry; meaning depends on type
  render::Rgb8 color;
  std::int32_t scale = 1;  ///< text scale
  std::string text;        ///< text content (empty for non-text commands)

  /// Conservative bounding box in canvas coordinates (for tile culling).
  layout::Rect bounds() const;
};

using CommandList = std::vector<RenderCommand>;

/// Canvas backend that records primitives instead of rasterizing them.
class RecordingCanvas final : public render::Canvas {
 public:
  void fill_rect(long x, long y, long width, long height,
                 render::Rgb8 color) override;
  void draw_rect(long x, long y, long width, long height,
                 render::Rgb8 color) override;
  void hline(long x0, long x1, long y, render::Rgb8 color) override;
  void vline(long x, long y0, long y1, render::Rgb8 color) override;
  void line(long x0, long y0, long x1, long y1, render::Rgb8 color) override;
  void text(long x, long y, std::string_view content, render::Rgb8 color,
            int scale) override;

  const CommandList& commands() const noexcept { return commands_; }
  CommandList take() { return std::move(commands_); }

 private:
  CommandList commands_;
};

/// Replays commands into a framebuffer, translating canvas coordinates by
/// (-origin_x, -origin_y) — i.e. the framebuffer shows the canvas region
/// starting at that origin (a tile). Returns the number of commands whose
/// bounds intersected the framebuffer region (after the caller's cull this
/// should equal commands.size()).
std::size_t replay_commands(render::Framebuffer& fb,
                            const CommandList& commands, long origin_x,
                            long origin_y);

/// Serialization for mpx transport.
void write_commands(mpx::PayloadWriter& writer, const CommandList& commands);
CommandList read_commands(mpx::PayloadReader& reader);

/// Total serialized size in bytes (for bandwidth accounting).
std::size_t serialized_size(const CommandList& commands);

}  // namespace fv::wall
