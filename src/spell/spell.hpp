// SPELL — Serial Patterns of Expression Levels Locator (paper §3).
//
// Query-driven search over a microarray compendium: given a small set of
// related genes, (1) weight each dataset by how coherently it co-expresses
// the query, then (2) score every gene by its weighted average correlation
// to the query across the compendium. Output is exactly what the paper
// describes: "an ordered list of genes and an ordered list of datasets".
//
// The per-dataset work (correlating all genes against the query centroid)
// is independent across datasets and runs on the thread pool — this is the
// paper's scalability story for very large compendia. Per-dataset profile
// normalization happens ONCE, at SpellSearch construction, in a
// sim::SimilarityEngine bank; each query is then one dot-product sweep per
// dataset instead of re-z-scoring every gene profile per search.
#pragma once

#include <string>
#include <vector>

#include "expr/dataset.hpp"
#include "par/thread_pool.hpp"
#include "sim/similarity_engine.hpp"

namespace fv::store {
class SpellCodec;  // store/cached.hpp — persists the dot-bank collection
}  // namespace fv::store

namespace fv::spell {

struct SpellOptions {
  /// Datasets whose query-coherence weight is below this contribute nothing.
  double min_dataset_weight = 0.0;
  /// Genes measured in fewer than this many weighted datasets are dropped
  /// from the ranking (too little evidence).
  std::size_t min_dataset_support = 1;
  /// Exclude the query genes themselves from the gene ranking (they match
  /// trivially). The web interface shows them separately.
  bool exclude_query_from_ranking = false;
};

struct DatasetScore {
  std::size_t dataset_index = 0;
  double weight = 0.0;             ///< query-coherence weight (>= 0)
  std::size_t query_genes_found = 0;
};

struct GeneScore {
  std::string gene;        ///< systematic name
  double score = 0.0;      ///< weighted mean correlation to the query
  std::size_t support = 0; ///< datasets contributing evidence
};

struct SpellResult {
  std::vector<DatasetScore> dataset_ranking;  ///< descending weight
  std::vector<GeneScore> gene_ranking;        ///< descending score
  std::size_t query_genes_recognized = 0;     ///< found in >= 1 dataset
};

class SpellSearch {
 public:
  /// The search holds a reference to the compendium; it must outlive it.
  /// Construction normalizes every dataset into a per-dataset dot bank on
  /// the shared pool (or the supplied one, for callers that pin their own
  /// concurrency).
  explicit SpellSearch(const std::vector<expr::Dataset>& datasets);
  SpellSearch(const std::vector<expr::Dataset>& datasets,
              par::ThreadPool& pool);

  /// Runs a query (gene names, systematic or common). Unknown genes are
  /// ignored; at least one query gene must be found somewhere.
  SpellResult search(const std::vector<std::string>& query,
                     const SpellOptions& options = {}) const;

  SpellResult search(const std::vector<std::string>& query,
                     const SpellOptions& options,
                     par::ThreadPool& pool) const;

 private:
  /// The artifact store's codec rebuilds a search from persisted engine
  /// banks — same datasets reference, zero re-normalization.
  friend class fv::store::SpellCodec;

  SpellSearch(const std::vector<expr::Dataset>* datasets,
              std::vector<sim::SimilarityEngine> engines)
      : datasets_(datasets), engines_(std::move(engines)) {}

  const std::vector<expr::Dataset>* datasets_;
  /// One Pearson bank per dataset: unit-norm z-rows + present counts,
  /// built once so searches never re-normalize profiles.
  std::vector<sim::SimilarityEngine> engines_;
};

/// Text-match baseline (what the paper contrasts SPELL against: "searching
/// through a collection of data by text matches"): ranks genes by how many
/// annotation tokens they share with the query genes' annotations.
SpellResult text_match_baseline(const std::vector<expr::Dataset>& datasets,
                                const std::vector<std::string>& query);

/// Iterative refinement (paper §2: "iteratively adjust the viewed gene
/// subsets in tandem with statistical analysis"): after each round the
/// `expand_per_round` strongest non-query hits join the query and the
/// search repeats, letting a small seed grow into its whole co-expression
/// program. Returns the final round's result plus the expanded query.
struct IterativeResult {
  SpellResult final_result;
  std::vector<std::string> expanded_query;  ///< seed + adopted genes
  std::size_t rounds_run = 0;
};
IterativeResult iterative_search(const SpellSearch& search,
                                 const std::vector<std::string>& seed,
                                 std::size_t rounds,
                                 std::size_t expand_per_round,
                                 const SpellOptions& options = {});

}  // namespace fv::spell
