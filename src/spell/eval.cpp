#include "spell/eval.hpp"

#include <algorithm>

namespace fv::spell {

double precision_at_k(const std::vector<GeneScore>& ranking,
                      const std::unordered_set<std::string>& relevant,
                      std::size_t k) {
  k = std::min(k, ranking.size());
  if (k == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (relevant.count(ranking[i].gene) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double recall_at_k(const std::vector<GeneScore>& ranking,
                   const std::unordered_set<std::string>& relevant,
                   std::size_t k) {
  if (relevant.empty()) return 0.0;
  k = std::min(k, ranking.size());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (relevant.count(ranking[i].gene) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(relevant.size());
}

double average_precision(const std::vector<GeneScore>& ranking,
                         const std::unordered_set<std::string>& relevant) {
  if (relevant.empty() || ranking.empty()) return 0.0;
  double sum = 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    if (relevant.count(ranking[i].gene) == 0) continue;
    ++hits;
    sum += static_cast<double>(hits) / static_cast<double>(i + 1);
  }
  if (hits == 0) return 0.0;
  return sum / static_cast<double>(relevant.size());
}

}  // namespace fv::spell
