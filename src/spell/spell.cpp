#include "spell/spell.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "stats/correlation.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace fv::spell {

namespace {

/// Per-dataset partial results produced in parallel.
struct DatasetContribution {
  double weight = 0.0;
  std::size_t query_found = 0;
  /// Per measured gene: (systematic name index handled by caller) weighted
  /// correlation sum contribution and support flag.
  std::vector<double> gene_correlation;  // parallel to dataset rows
};

/// Query-coherence weight of one dataset: mean pairwise Pearson among the
/// query genes found there, clamped at zero (anti-coherent datasets carry no
/// evidence). Needs >= 2 query genes to say anything. The query rows are
/// stacked into a small sub-engine and the pair sums stream through its
/// tile visitor — the iterative search grows the query every round, so the
/// per-round q(q-1)/2 pairs run on the blocked kernels instead of the
/// scalar per-pair path, and the long-lived per-dataset engine stays a
/// memory-lean dot bank. Serial tile walk on purpose: this runs inside the
/// per-dataset pool task, and a blocking nested parallel loop on the same
/// pool could deadlock.
double dataset_weight(const expr::Dataset& dataset,
                      const std::vector<std::size_t>& query_rows) {
  std::vector<std::span<const float>> profiles;
  profiles.reserve(query_rows.size());
  for (const std::size_t row : query_rows) {
    profiles.push_back(dataset.profile(row));
  }
  return sim::profile_coherence(profiles, dataset.condition_count());
}

DatasetContribution score_dataset(const expr::Dataset& dataset,
                                  const sim::SimilarityEngine& engine,
                                  const std::vector<std::string>& query) {
  DatasetContribution out;
  std::vector<std::size_t> query_rows;
  for (const std::string& gene : query) {
    if (const auto row = dataset.row_of(gene); row.has_value()) {
      query_rows.push_back(*row);
    }
  }
  out.query_found = query_rows.size();
  if (query_rows.empty()) return out;
  out.weight = dataset_weight(dataset, query_rows);
  if (out.weight <= 0.0) return out;

  // Mean correlation of every gene to the query = correlation with the mean
  // of the query's z-profiles (zdot is bilinear in its arguments). The
  // bank's unit-norm rows scale back to z-rows via zscale(), so the
  // centroid is assembled without touching raw profiles, and the whole
  // gene sweep is one dot_all pass.
  const std::size_t genes = dataset.gene_count();
  std::size_t centroid_present = dataset.condition_count();
  std::vector<float> centroid(engine.stride(), 0.0f);
  const float inv_k = 1.0f / static_cast<float>(query_rows.size());
  for (const std::size_t row : query_rows) {
    centroid_present = std::min<std::size_t>(centroid_present,
                                             engine.present(row));
    const auto u = engine.normalized_row(row);
    const float scale = engine.zscale(row) * inv_k;
    for (std::size_t c = 0; c < u.size(); ++c) centroid[c] += u[c] * scale;
  }

  std::vector<double> dots(genes);
  engine.dot_all(centroid, dots);
  out.gene_correlation.resize(genes);
  for (std::size_t row = 0; row < genes; ++row) {
    // zdot convention: r = dot(z_row, z_centroid) / (min(present) - 1),
    // clamped; 0 when too few values overlap.
    const std::size_t overlap =
        std::min<std::size_t>(engine.present(row), centroid_present);
    if (overlap < stats::kMinCompletePairs) {
      out.gene_correlation[row] = 0.0;
      continue;
    }
    const double r = static_cast<double>(engine.zscale(row)) * dots[row] /
                     static_cast<double>(overlap - 1);
    out.gene_correlation[row] = std::clamp(r, -1.0, 1.0);
  }
  return out;
}

}  // namespace

SpellSearch::SpellSearch(const std::vector<expr::Dataset>& datasets)
    : SpellSearch(datasets, par::ThreadPool::shared()) {}

SpellSearch::SpellSearch(const std::vector<expr::Dataset>& datasets,
                         par::ThreadPool& pool)
    : datasets_(&datasets) {
  FV_REQUIRE(!datasets.empty(), "SPELL needs at least one dataset");
  // Bank builds are independent per dataset; at compendium scale the
  // normalization pass is worth spreading across the pool.
  engines_.resize(datasets.size());
  par::parallel_for(pool, 0, datasets.size(), 1, [&](std::size_t d) {
    engines_[d] = sim::SimilarityEngine::from_rows(
        datasets[d].values(), sim::Metric::kPearson,
        sim::Precompute::kDotBank);
  });
}

SpellResult SpellSearch::search(const std::vector<std::string>& query,
                                const SpellOptions& options) const {
  return search(query, options, par::ThreadPool::shared());
}

SpellResult SpellSearch::search(const std::vector<std::string>& query,
                                const SpellOptions& options,
                                par::ThreadPool& pool) const {
  FV_REQUIRE(!query.empty(), "SPELL query must contain at least one gene");
  const auto& datasets = *datasets_;

  std::vector<DatasetContribution> contributions(datasets.size());
  par::parallel_for(pool, 0, datasets.size(), 1, [&](std::size_t d) {
    contributions[d] = score_dataset(datasets[d], engines_[d], query);
  });

  SpellResult result;
  // Dataset ranking by weight.
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    result.dataset_ranking.push_back(DatasetScore{
        d, contributions[d].weight, contributions[d].query_found});
  }
  std::stable_sort(result.dataset_ranking.begin(),
                   result.dataset_ranking.end(),
                   [](const DatasetScore& a, const DatasetScore& b) {
                     return a.weight > b.weight;
                   });

  // Query recognition across the whole compendium.
  std::unordered_set<std::string> query_lower;
  for (const std::string& gene : query) {
    query_lower.insert(str::to_lower(gene));
  }
  std::unordered_set<std::string> recognized;
  for (const auto& dataset : datasets) {
    for (const std::string& gene : query) {
      if (dataset.row_of(gene).has_value()) {
        recognized.insert(str::to_lower(gene));
      }
    }
  }
  result.query_genes_recognized = recognized.size();
  FV_REQUIRE(result.query_genes_recognized > 0,
             "no query gene found in any dataset");

  // Aggregate gene scores: weighted mean correlation across contributing
  // datasets (keyed by systematic name so per-dataset row orders differ).
  struct Accumulator {
    double weighted_sum = 0.0;
    double weight_total = 0.0;
    std::size_t support = 0;
    bool is_query = false;
  };
  std::unordered_map<std::string, Accumulator> accumulators;
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    const auto& contribution = contributions[d];
    if (contribution.weight <= options.min_dataset_weight ||
        contribution.gene_correlation.empty()) {
      continue;
    }
    for (std::size_t row = 0; row < datasets[d].gene_count(); ++row) {
      const std::string& name = datasets[d].gene(row).systematic_name;
      auto& acc = accumulators[name];
      acc.weighted_sum +=
          contribution.weight * contribution.gene_correlation[row];
      acc.weight_total += contribution.weight;
      ++acc.support;
      if (!acc.is_query) {
        acc.is_query =
            query_lower.count(str::to_lower(name)) > 0 ||
            query_lower.count(
                str::to_lower(datasets[d].gene(row).common_name)) > 0;
      }
    }
  }

  for (auto& [name, acc] : accumulators) {
    if (acc.support < options.min_dataset_support) continue;
    if (options.exclude_query_from_ranking && acc.is_query) continue;
    if (acc.weight_total <= 0.0) continue;
    result.gene_ranking.push_back(
        GeneScore{name, acc.weighted_sum / acc.weight_total, acc.support});
  }
  std::stable_sort(result.gene_ranking.begin(), result.gene_ranking.end(),
                   [](const GeneScore& a, const GeneScore& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.gene < b.gene;  // deterministic tie-break
                   });
  return result;
}

SpellResult text_match_baseline(const std::vector<expr::Dataset>& datasets,
                                const std::vector<std::string>& query) {
  FV_REQUIRE(!datasets.empty(), "baseline needs at least one dataset");
  FV_REQUIRE(!query.empty(), "baseline query must contain a gene");

  // Token set of the query genes' annotations.
  std::unordered_set<std::string> query_tokens;
  const auto add_tokens = [](std::unordered_set<std::string>& tokens,
                             const expr::GeneInfo& gene) {
    for (const std::string_view part :
         str::split(gene.description, ' ')) {
      const std::string_view token = str::trim(part);
      if (token.size() >= 3) tokens.insert(str::to_lower(token));
    }
  };
  for (const auto& dataset : datasets) {
    for (const std::string& gene : query) {
      if (const auto row = dataset.row_of(gene); row.has_value()) {
        add_tokens(query_tokens, dataset.gene(*row));
      }
    }
  }

  SpellResult result;
  result.query_genes_recognized = query_tokens.empty() ? 0 : query.size();
  // Score every gene by annotation-token overlap.
  std::unordered_map<std::string, double> scores;
  std::unordered_map<std::string, std::size_t> support;
  for (const auto& dataset : datasets) {
    for (std::size_t row = 0; row < dataset.gene_count(); ++row) {
      const expr::GeneInfo& gene = dataset.gene(row);
      std::unordered_set<std::string> tokens;
      add_tokens(tokens, gene);
      std::size_t overlap = 0;
      for (const std::string& token : tokens) {
        if (query_tokens.count(token) > 0) ++overlap;
      }
      auto& score = scores[gene.systematic_name];
      score = std::max(score, static_cast<double>(overlap));
      ++support[gene.systematic_name];
    }
  }
  for (const auto& [name, score] : scores) {
    result.gene_ranking.push_back(GeneScore{name, score, support[name]});
  }
  std::stable_sort(result.gene_ranking.begin(), result.gene_ranking.end(),
                   [](const GeneScore& a, const GeneScore& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.gene < b.gene;
                   });
  // Dataset ranking: all equal weight (text match has no notion of dataset
  // relevance — precisely the deficiency SPELL addresses).
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    result.dataset_ranking.push_back(DatasetScore{d, 0.0, 0});
  }
  return result;
}

IterativeResult iterative_search(const SpellSearch& search,
                                 const std::vector<std::string>& seed,
                                 std::size_t rounds,
                                 std::size_t expand_per_round,
                                 const SpellOptions& options) {
  FV_REQUIRE(rounds >= 1, "iterative search needs at least one round");
  IterativeResult iterative;
  iterative.expanded_query = seed;
  std::unordered_set<std::string> members;
  for (const std::string& gene : seed) {
    members.insert(str::to_lower(gene));
  }
  for (std::size_t round = 0; round < rounds; ++round) {
    iterative.final_result =
        search.search(iterative.expanded_query, options);
    ++iterative.rounds_run;
    if (round + 1 == rounds) break;
    // Adopt the strongest hits not already in the query.
    std::size_t adopted = 0;
    for (const GeneScore& hit : iterative.final_result.gene_ranking) {
      if (adopted == expand_per_round) break;
      if (!members.insert(str::to_lower(hit.gene)).second) continue;
      iterative.expanded_query.push_back(hit.gene);
      ++adopted;
    }
    if (adopted == 0) break;  // converged: nothing new to adopt
  }
  return iterative;
}

}  // namespace fv::spell
