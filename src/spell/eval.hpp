// Retrieval-quality metrics used to validate SPELL against the planted
// ground truth (the paper could only eyeball the web interface; we can
// measure precision because our compendium has known modules).
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "spell/spell.hpp"

namespace fv::spell {

/// Fraction of the top-k ranked genes that are relevant. k is clamped to
/// the ranking length; returns 0 for an empty ranking.
double precision_at_k(const std::vector<GeneScore>& ranking,
                      const std::unordered_set<std::string>& relevant,
                      std::size_t k);

/// Fraction of relevant genes found in the top-k.
double recall_at_k(const std::vector<GeneScore>& ranking,
                   const std::unordered_set<std::string>& relevant,
                   std::size_t k);

/// Mean average precision over the full ranking.
double average_precision(const std::vector<GeneScore>& ranking,
                         const std::unordered_set<std::string>& relevant);

}  // namespace fv::spell
