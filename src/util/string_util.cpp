#include "util/string_util.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace fv::str {

std::vector<std::string_view> split(std::string_view text, char delimiter) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.push_back(text.substr(start));
      return fields;
    }
    fields.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_copy(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  for (std::string_view view : split(text, delimiter)) {
    fields.emplace_back(view);
  }
  return fields;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!text.empty() && is_space(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && is_space(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string join(const std::vector<std::string>& items,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += separator;
    out += items[i];
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool icontains(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (iequals(haystack.substr(i, needle.size()), needle)) return true;
  }
  return false;
}

std::optional<double> parse_double(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::optional<long long> parse_int(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  long long value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

}  // namespace fv::str
