// Error types and precondition checking used throughout ForestView.
//
// The library reports unrecoverable misuse (bad arguments, broken invariants)
// and environmental failures (I/O, parse errors) through exceptions rooted at
// fv::Error, so callers can catch one type at an application boundary.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace fv {

/// Root of the ForestView exception hierarchy.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Filesystem / stream failures (file missing, short read, write failure).
class IoError : public Error {
 public:
  using Error::Error;
};

/// Malformed input data (PCL/CDT/OBO/GMT syntax errors). Carries the
/// 1-based line number when known; 0 means "not line-addressable".
class ParseError : public Error {
 public:
  ParseError(const std::string& message, std::size_t line = 0)
      : Error(line == 0 ? message
                        : "line " + std::to_string(line) + ": " + message),
        line_(line) {}

  /// 1-based source line of the problem, or 0 when unknown.
  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_ = 0;
};

/// Caller violated an API precondition.
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

/// Internal invariant broke; indicates a bug in ForestView itself.
class LogicError : public Error {
 public:
  using Error::Error;
};

/// A bounded-wait operation's deadline expired before it completed
/// (mpx deadline receives and collectives, future serving-layer job waits).
class TimeoutError : public Error {
 public:
  using Error::Error;
};

/// A bounded-capacity resource (the serving layer's job queue, its session
/// table) is full and admission was refused rather than queued unboundedly.
/// Always recoverable by retrying later — nothing was partially done. The
/// HTTP layer maps this to 503 Service Unavailable.
class OverloadedError : public Error {
 public:
  using Error::Error;
};

/// A message failed its envelope integrity check: the payload checksum no
/// longer matches what the sender sealed, so the bytes were truncated or
/// corrupted in transit. Surfaced *before* payload decoding, so consumers
/// never see a garbage PayloadReader stream.
class CorruptMessageError : public Error {
 public:
  using Error::Error;
};

/// A persisted artifact failed an integrity check at open: bad magic, a
/// header or payload checksum mismatch, a payload shorter than its header
/// claims, or a section layout that does not decode. The bytes on disk are
/// not trustworthy — consumers must quarantine the file and recompute from
/// inputs (the artifact store's load_or_compute helpers do exactly that).
class CorruptArtifactError : public Error {
 public:
  using Error::Error;
};

/// A persisted artifact is internally consistent but no longer usable: its
/// format version predates the current reader, or its sealed kind/key does
/// not match what the caller asked for (a renamed or collided file).
/// Recoverable by recomputing; the stale file is safe to delete.
class StaleArtifactError : public Error {
 public:
  using Error::Error;
};

/// A cooperating group (mpx ranks) was aborted while this participant was
/// blocked. Carries the rank whose failure originated the abort (-1 when the
/// abort was not attributed to a rank) so victims see *why* they died.
class AbortError : public Error {
 public:
  explicit AbortError(const std::string& message, int origin_rank = -1)
      : Error(message), origin_rank_(origin_rank) {}

  /// Rank whose failure triggered the abort, or -1 when unknown.
  int origin_rank() const noexcept { return origin_rank_; }

 private:
  int origin_rank_ = -1;
};

namespace detail {

[[noreturn]] inline void throw_check_failure(std::string_view kind,
                                             std::string_view expr,
                                             std::string_view file, int line,
                                             const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  if (kind == "invariant") throw LogicError(os.str());
  throw InvalidArgument(os.str());
}

}  // namespace detail

}  // namespace fv

/// Validate a public API precondition; throws fv::InvalidArgument on failure.
#define FV_REQUIRE(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::fv::detail::throw_check_failure("precondition", #cond, __FILE__,    \
                                        __LINE__, std::string(msg));        \
    }                                                                       \
  } while (false)

/// Validate an internal invariant; throws fv::LogicError on failure.
#define FV_ASSERT(cond, msg)                                                \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::fv::detail::throw_check_failure("invariant", #cond, __FILE__,       \
                                        __LINE__, std::string(msg));        \
    }                                                                       \
  } while (false)

/// Debug-build-only precondition: checked like FV_REQUIRE in Debug builds,
/// compiled out entirely under NDEBUG. For checks on per-element hot paths
/// (e.g. condensed-index ordering) where a branch per access is measurable.
#ifdef NDEBUG
#define FV_DBG_REQUIRE(cond, msg) \
  do {                            \
  } while (false)
#else
#define FV_DBG_REQUIRE(cond, msg) FV_REQUIRE(cond, msg)
#endif
