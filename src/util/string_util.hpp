// Small string helpers shared by the tabular-file parsers (PCL/CDT/OBO/GMT).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fv::str {

/// Splits on a single delimiter; keeps empty fields (tab-separated files use
/// empty cells for missing values). The returned views alias `text`.
std::vector<std::string_view> split(std::string_view text, char delimiter);

/// Like split(), but returns owned strings.
std::vector<std::string> split_copy(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// ASCII lower-casing (gene symbols and GO tags are ASCII).
std::string to_lower(std::string_view text);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items,
                 std::string_view separator);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

/// True when `haystack` contains `needle` ignoring ASCII case.
bool icontains(std::string_view haystack, std::string_view needle);

/// Strict floating-point parse of the whole field; nullopt on any junk.
std::optional<double> parse_double(std::string_view text);

/// Strict integer parse of the whole field; nullopt on any junk.
std::optional<long long> parse_int(std::string_view text);

}  // namespace fv::str
