// Deterministic pseudo-random number generation.
//
// ForestView's synthetic-compendium generator and the test/bench harnesses
// need reproducible randomness that is identical across platforms, so we
// implement xoshiro256** (seeded through splitmix64) rather than relying on
// implementation-defined std::mt19937 distributions.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace fv {

/// Deterministic, splittable random number generator (xoshiro256**).
///
/// Distribution helpers (uniform / normal / shuffle) are implemented in
/// terms of the raw stream, so results are bit-reproducible everywhere.
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling,
  /// so the result is exactly uniform.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Standard normal via Box–Muller (second deviate is cached).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    if (values.size() < 2) return;
    for (std::size_t i = values.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(i + 1));
      using std::swap;
      swap(values[i], values[j]);
    }
  }

  /// Draws k distinct indices from [0, n) in random order. Requires k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Derives an independent child generator; the parent stream advances.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace fv
