// Line-oriented text file helpers shared by the tabular parsers.
#pragma once

#include <string>
#include <vector>

namespace fv {

/// Reads a whole text file as lines. Handles both LF and CRLF endings and
/// drops a trailing empty line. Throws IoError if the file cannot be read.
std::vector<std::string> read_lines(const std::string& path);

/// Reads a whole file into one string. Throws IoError on failure.
std::string read_text_file(const std::string& path);

/// Writes (replaces) a text file. Throws IoError on failure.
void write_text_file(const std::string& path, const std::string& content);

}  // namespace fv
