// Condensed (packed upper-triangle) indexing shared by the distance storage
// and the similarity engine's condensed tile writer.
//
// A symmetric n x n matrix with a known diagonal needs only the strict upper
// triangle: n(n-1)/2 values, laid out row-major as
//   (0,1) (0,2) ... (0,n-1) (1,2) ... (n-2,n-1)
// — the same convention as SciPy's `pdist` / R's `dist`. Storing one copy of
// each pair halves memory versus the dense layout and removes the
// set()/raw() symmetry hazard by construction: there is no redundant mirror
// cell to get out of sync.
#pragma once

#include <cstddef>

#include "util/error.hpp"

namespace fv {

/// Number of values in the condensed layout for an n x n symmetric matrix.
constexpr std::size_t condensed_size(std::size_t n) noexcept {
  return n < 2 ? 0 : n * (n - 1) / 2;
}

/// Offset of ordered pair (i, j), i < j < n, in the condensed layout.
/// Ordering is the caller's job (FV_DBG_REQUIRE'd in debug builds): the
/// condensed layout has no (j, i) mirror to fall back on, and hot loops
/// cannot afford a swap branch per access.
inline std::size_t condensed_index(std::size_t i, std::size_t j,
                                   std::size_t n) {
  FV_DBG_REQUIRE(i < j && j < n, "condensed index requires i < j < n");
  return i * (2 * n - i - 1) / 2 + (j - i - 1);
}

}  // namespace fv
