#include "util/table_io.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace fv {

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open file for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw IoError("read failure on file: " + path);
  return buffer.str();
}

std::vector<std::string> read_lines(const std::string& path) {
  const std::string content = read_text_file(path);
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= content.size()) {
    std::size_t end = content.find('\n', start);
    if (end == std::string::npos) {
      if (start < content.size()) {
        lines.emplace_back(content.substr(start));
      }
      break;
    }
    std::size_t len = end - start;
    if (len > 0 && content[start + len - 1] == '\r') --len;
    lines.emplace_back(content.substr(start, len));
    start = end + 1;
  }
  return lines;
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot open file for writing: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) throw IoError("write failure on file: " + path);
}

}  // namespace fv
