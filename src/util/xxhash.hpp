// XXH64 — the 64-bit xxHash checksum (Collet's construction).
//
// The artifact store seals every header and payload with this: fast enough
// to validate a multi-megabyte mapped artifact at open time (the 4-lane
// stripe loop runs at memory bandwidth), strong enough that torn writes,
// truncation and bit rot surface as a mismatch rather than as silently
// wrong analysis results. Implemented from the published algorithm; the
// test suite pins reference vectors so the on-disk format cannot drift.
//
// Not a cryptographic hash — it defends against storage faults, not
// adversaries. (mpx's per-message payload_checksum stays separate: it is
// tuned for many tiny buffers, this for few large ones.)
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace fv {

namespace detail {

inline constexpr std::uint64_t kXxPrime1 = 0x9e3779b185ebca87ull;
inline constexpr std::uint64_t kXxPrime2 = 0xc2b2ae3d27d4eb4full;
inline constexpr std::uint64_t kXxPrime3 = 0x165667b19e3779f9ull;
inline constexpr std::uint64_t kXxPrime4 = 0x85ebca77c2b2ae63ull;
inline constexpr std::uint64_t kXxPrime5 = 0x27d4eb2f165667c5ull;

inline std::uint64_t xx_read64(const std::byte* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline std::uint32_t xx_read32(const std::byte* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline std::uint64_t xx_round(std::uint64_t acc, std::uint64_t input)
    noexcept {
  acc += input * kXxPrime2;
  acc = std::rotl(acc, 31);
  acc *= kXxPrime1;
  return acc;
}

inline std::uint64_t xx_merge_round(std::uint64_t acc, std::uint64_t val)
    noexcept {
  acc ^= xx_round(0, val);
  return acc * kXxPrime1 + kXxPrime4;
}

}  // namespace detail

/// XXH64 of `data` under `seed`.
inline std::uint64_t xxhash64(std::span<const std::byte> data,
                              std::uint64_t seed = 0) noexcept {
  using namespace detail;
  const std::byte* p = data.data();
  const std::byte* const end = p + data.size();
  std::uint64_t h;

  if (data.size() >= 32) {
    std::uint64_t v1 = seed + kXxPrime1 + kXxPrime2;
    std::uint64_t v2 = seed + kXxPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kXxPrime1;
    do {
      v1 = xx_round(v1, xx_read64(p));
      v2 = xx_round(v2, xx_read64(p + 8));
      v3 = xx_round(v3, xx_read64(p + 16));
      v4 = xx_round(v4, xx_read64(p + 24));
      p += 32;
    } while (p + 32 <= end);
    h = std::rotl(v1, 1) + std::rotl(v2, 7) + std::rotl(v3, 12) +
        std::rotl(v4, 18);
    h = xx_merge_round(h, v1);
    h = xx_merge_round(h, v2);
    h = xx_merge_round(h, v3);
    h = xx_merge_round(h, v4);
  } else {
    h = seed + kXxPrime5;
  }

  h += static_cast<std::uint64_t>(data.size());

  while (p + 8 <= end) {
    h ^= xx_round(0, xx_read64(p));
    h = std::rotl(h, 27) * kXxPrime1 + kXxPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(xx_read32(p)) * kXxPrime1;
    h = std::rotl(h, 23) * kXxPrime2 + kXxPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(*p)) *
         kXxPrime5;
    h = std::rotl(h, 11) * kXxPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kXxPrime2;
  h ^= h >> 29;
  h *= kXxPrime3;
  h ^= h >> 32;
  return h;
}

/// Convenience overload over any trivially-copyable element span.
template <typename T>
std::uint64_t xxhash64_of(std::span<const T> values,
                          std::uint64_t seed = 0) noexcept {
  return xxhash64(std::as_bytes(values), seed);
}

}  // namespace fv
