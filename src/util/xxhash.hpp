// XXH64 — the 64-bit xxHash checksum (Collet's construction).
//
// The artifact store seals every header and payload with this: fast enough
// to validate a multi-megabyte mapped artifact at open time (the 4-lane
// stripe loop runs at memory bandwidth), strong enough that torn writes,
// truncation and bit rot surface as a mismatch rather than as silently
// wrong analysis results. Implemented from the published algorithm; the
// test suite pins reference vectors so the on-disk format cannot drift.
//
// Not a cryptographic hash — it defends against storage faults, not
// adversaries. (mpx's per-message payload_checksum stays separate: it is
// tuned for many tiny buffers, this for few large ones.)
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace fv {

namespace detail {

inline constexpr std::uint64_t kXxPrime1 = 0x9e3779b185ebca87ull;
inline constexpr std::uint64_t kXxPrime2 = 0xc2b2ae3d27d4eb4full;
inline constexpr std::uint64_t kXxPrime3 = 0x165667b19e3779f9ull;
inline constexpr std::uint64_t kXxPrime4 = 0x85ebca77c2b2ae63ull;
inline constexpr std::uint64_t kXxPrime5 = 0x27d4eb2f165667c5ull;

inline std::uint64_t xx_read64(const std::byte* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline std::uint32_t xx_read32(const std::byte* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline std::uint64_t xx_round(std::uint64_t acc, std::uint64_t input)
    noexcept {
  acc += input * kXxPrime2;
  acc = std::rotl(acc, 31);
  acc *= kXxPrime1;
  return acc;
}

inline std::uint64_t xx_merge_round(std::uint64_t acc, std::uint64_t val)
    noexcept {
  acc ^= xx_round(0, val);
  return acc * kXxPrime1 + kXxPrime4;
}

}  // namespace detail

/// XXH64 of `data` under `seed`.
inline std::uint64_t xxhash64(std::span<const std::byte> data,
                              std::uint64_t seed = 0) noexcept {
  using namespace detail;
  const std::byte* p = data.data();
  const std::byte* const end = p + data.size();
  std::uint64_t h;

  if (data.size() >= 32) {
    std::uint64_t v1 = seed + kXxPrime1 + kXxPrime2;
    std::uint64_t v2 = seed + kXxPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kXxPrime1;
    do {
      v1 = xx_round(v1, xx_read64(p));
      v2 = xx_round(v2, xx_read64(p + 8));
      v3 = xx_round(v3, xx_read64(p + 16));
      v4 = xx_round(v4, xx_read64(p + 24));
      p += 32;
    } while (p + 32 <= end);
    h = std::rotl(v1, 1) + std::rotl(v2, 7) + std::rotl(v3, 12) +
        std::rotl(v4, 18);
    h = xx_merge_round(h, v1);
    h = xx_merge_round(h, v2);
    h = xx_merge_round(h, v3);
    h = xx_merge_round(h, v4);
  } else {
    h = seed + kXxPrime5;
  }

  h += static_cast<std::uint64_t>(data.size());

  while (p + 8 <= end) {
    h ^= xx_round(0, xx_read64(p));
    h = std::rotl(h, 27) * kXxPrime1 + kXxPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(xx_read32(p)) * kXxPrime1;
    h = std::rotl(h, 23) * kXxPrime2 + kXxPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(*p)) *
         kXxPrime5;
    h = std::rotl(h, 11) * kXxPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kXxPrime2;
  h ^= h >> 29;
  h *= kXxPrime3;
  h ^= h >> 32;
  return h;
}

/// Convenience overload over any trivially-copyable element span.
template <typename T>
std::uint64_t xxhash64_of(std::span<const T> values,
                          std::uint64_t seed = 0) noexcept {
  return xxhash64(std::as_bytes(values), seed);
}

/// Streaming XXH64: update() in chunks, digest() at the end — bit-identical
/// to the one-shot xxhash64() over the concatenated bytes, at any chunk
/// split. The store's mapped-open path validates multi-hundred-megabyte
/// payloads through this so it can drop each hashed chunk's pages before
/// faulting the next one in: peak validation residency is one chunk, not
/// the whole artifact (the one-shot function walks the entire mapping and
/// leaves every page resident behind it).
class Xxh64Stream {
 public:
  explicit Xxh64Stream(std::uint64_t seed = 0) noexcept
      : v1_(seed + detail::kXxPrime1 + detail::kXxPrime2),
        v2_(seed + detail::kXxPrime2), v3_(seed),
        v4_(seed - detail::kXxPrime1), seed_(seed) {}

  void update(std::span<const std::byte> data) noexcept {
    using namespace detail;
    const std::byte* p = data.data();
    std::size_t remaining = data.size();
    total_ += remaining;

    if (buffered_ > 0) {
      const std::size_t take = std::min(remaining, sizeof(buffer_) -
                                                       buffered_);
      std::memcpy(buffer_ + buffered_, p, take);
      buffered_ += take;
      p += take;
      remaining -= take;
      if (buffered_ < sizeof(buffer_)) return;
      consume_stripe(buffer_);
      buffered_ = 0;
    }
    while (remaining >= sizeof(buffer_)) {
      consume_stripe(p);
      p += sizeof(buffer_);
      remaining -= sizeof(buffer_);
    }
    if (remaining > 0) {
      std::memcpy(buffer_, p, remaining);
      buffered_ = remaining;
    }
  }

  /// The XXH64 of everything update()d so far. Does not consume the
  /// stream — more update() calls may follow, digest() again later.
  std::uint64_t digest() const noexcept {
    using namespace detail;
    std::uint64_t h;
    if (total_ >= sizeof(buffer_)) {
      h = std::rotl(v1_, 1) + std::rotl(v2_, 7) + std::rotl(v3_, 12) +
          std::rotl(v4_, 18);
      h = xx_merge_round(h, v1_);
      h = xx_merge_round(h, v2_);
      h = xx_merge_round(h, v3_);
      h = xx_merge_round(h, v4_);
    } else {
      h = seed_ + kXxPrime5;
    }
    h += total_;

    const std::byte* p = buffer_;
    const std::byte* const end = buffer_ + buffered_;
    while (p + 8 <= end) {
      h ^= xx_round(0, xx_read64(p));
      h = std::rotl(h, 27) * kXxPrime1 + kXxPrime4;
      p += 8;
    }
    if (p + 4 <= end) {
      h ^= static_cast<std::uint64_t>(xx_read32(p)) * kXxPrime1;
      h = std::rotl(h, 23) * kXxPrime2 + kXxPrime3;
      p += 4;
    }
    while (p < end) {
      h ^= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(*p)) *
           kXxPrime5;
      h = std::rotl(h, 11) * kXxPrime1;
      ++p;
    }

    h ^= h >> 33;
    h *= kXxPrime2;
    h ^= h >> 29;
    h *= kXxPrime3;
    h ^= h >> 32;
    return h;
  }

 private:
  void consume_stripe(const std::byte* p) noexcept {
    using namespace detail;
    v1_ = xx_round(v1_, xx_read64(p));
    v2_ = xx_round(v2_, xx_read64(p + 8));
    v3_ = xx_round(v3_, xx_read64(p + 16));
    v4_ = xx_round(v4_, xx_read64(p + 24));
  }

  std::uint64_t v1_, v2_, v3_, v4_;
  std::uint64_t seed_;
  std::uint64_t total_ = 0;
  std::byte buffer_[32];
  std::size_t buffered_ = 0;
};

}  // namespace fv
