// Shared deterministic fault-decision hash.
//
// Both fault-injection layers — mpx (the in-process message transport) and
// store (the on-disk artifact store) — need the same primitive: a pure
// function from an injection coordinate (message envelope, I/O operation)
// to a uniform draw in [0, 1), so a given seed reproduces exactly the same
// set of injected faults regardless of thread interleaving or replay
// order. The coordinate differs per layer (mpx hashes (source, dest, tag,
// sequence); store hashes (path, op index)); the mixing chain is shared
// here so the two layers cannot drift and so tests can pin the mpx
// behavior while store reuses it.
//
// The chain is the splitmix64 finalizer folded over the coordinate words:
//
//   h = mix64(seed ^ stream * 0x9e3779b97f4a7c15)
//   for each word w:  h = mix64(h ^ w)
//
// which is exactly the sequence mpx::FaultPlan has always computed (its
// envelope packs into two words); tests/util_test.cpp pins this bit for
// bit against an independent re-derivation.
#pragma once

#include <cstdint>
#include <initializer_list>

namespace fv {

/// splitmix64 finalizer: full-avalanche 64-bit mix.
constexpr std::uint64_t fault_mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// The shared mixing chain: seed and stream select an independent decision
/// family (mpx uses stream 1 for action draws; store uses its own streams),
/// then each coordinate word is folded through one full mix.
constexpr std::uint64_t fault_hash(std::uint64_t seed, std::uint64_t stream,
                                   std::initializer_list<std::uint64_t> words)
    noexcept {
  std::uint64_t h = fault_mix64(seed ^ (stream * 0x9e3779b97f4a7c15ull));
  for (const std::uint64_t w : words) h = fault_mix64(h ^ w);
  return h;
}

/// Maps a fault_hash value onto a uniform draw in [0, 1) (53 mantissa bits,
/// the standard 2⁻⁵³ ladder).
constexpr double fault_uniform(std::uint64_t hash) noexcept {
  return static_cast<double>(hash >> 11) * 0x1.0p-53;
}

}  // namespace fv
