#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace fv {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // splitmix64 guarantees a non-degenerate xoshiro state for any seed,
  // including zero.
  for (auto& word : state_) word = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  FV_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  FV_REQUIRE(n > 0, "uniform_u64 requires n > 0");
  // Lemire-style rejection: draw until the value falls inside the largest
  // multiple of n, avoiding modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is nudged away from zero so log() is finite.
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  FV_REQUIRE(stddev >= 0.0, "normal() requires stddev >= 0");
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  FV_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli requires p in [0, 1]");
  return uniform() < p;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  FV_REQUIRE(k <= n, "cannot sample more items than the population holds");
  // Partial Fisher–Yates over an index vector: O(n) setup, O(k) draws.
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_u64(n - i));
    using std::swap;
    swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
  return out;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace fv
