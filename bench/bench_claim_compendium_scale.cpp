// Experiment C1 (paper §1 claim): "well over a quarter billion microarray
// measurements have been generated … existing software focuses on the scale
// of individual datasets, leaving these methods unable to handle the sheer
// volume of data."
//
// What this bench reports: merged-interface behavior as the compendium
// grows toward that scale — generation, catalog build, full-sweep scan and
// cross-dataset gene query at 10^6 … 10^8 measurements (the top size is
// capped by bench runtime, with measured bytes/measurement making the
// quarter-billion extrapolation concrete).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "cluster/distance.hpp"
#include "core/merged.hpp"
#include "expr/synth.hpp"
#include "par/thread_pool.hpp"
#include "stats/descriptive.hpp"

namespace {

namespace ex = fv::expr;
namespace co = fv::core;
namespace cl = fv::cluster;

/// Builds a compendium with approximately `measurements` total cells: fixed
/// 2000-gene genome, 96-condition datasets, count derived from the target.
ex::Compendium build_compendium(std::size_t measurements) {
  constexpr std::size_t kGenes = 2000;
  constexpr std::size_t kConditions = 96;  // 4 stresses x 24 time points
  const std::size_t per_dataset = kGenes * kConditions;
  const std::size_t datasets =
      std::max<std::size_t>(1, measurements / per_dataset);
  const std::uint64_t seed = 7000 + datasets;
  ex::Compendium compendium(
      ex::make_genome(ex::GenomeSpec::yeast_like(kGenes), seed));
  for (std::size_t i = 0; i < datasets; ++i) {
    ex::StressDatasetSpec ds;
    ds.name = "stress_" + std::to_string(i);
    ds.time_points = 24;
    compendium.datasets.push_back(
        ex::make_stress_dataset(compendium.genome, ds, seed + i + 1));
  }
  return compendium;
}

/// Cached copy for the access benchmarks.
const ex::Compendium& compendium_for(std::size_t measurements) {
  static std::map<std::size_t, ex::Compendium> cache;
  const auto it = cache.find(measurements);
  if (it != cache.end()) return it->second;
  return cache.emplace(measurements, build_compendium(measurements))
      .first->second;
}

void BM_Generate(benchmark::State& state) {
  // Measures the full synthesis path (the "load" equivalent: parsing a PCL
  // of this size costs the same order).
  const auto target = static_cast<std::size_t>(state.range(0));
  std::size_t cells = 0;
  for (auto _ : state) {
    const ex::Compendium compendium = build_compendium(target);
    cells = 0;
    for (const auto& d : compendium.datasets) cells += d.values().size();
    benchmark::DoNotOptimize(cells);
  }
  state.counters["measurements"] = static_cast<double>(cells);
}
BENCHMARK(BM_Generate)->Arg(1 << 20)->Arg(1 << 23)->Arg(1 << 25)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_FullSweep(benchmark::State& state) {
  const auto target = static_cast<std::size_t>(state.range(0));
  const auto& compendium = compendium_for(target);
  co::MergedDatasetInterface merged(&compendium.datasets);
  for (auto _ : state) {
    double checksum = 0.0;
    std::size_t present = 0;
    for (std::size_t d = 0; d < merged.dataset_count(); ++d) {
      for (const float v : merged.dataset(d).values().data()) {
        if (!fv::stats::is_missing(v)) {
          checksum += v;
          ++present;
        }
      }
    }
    benchmark::DoNotOptimize(checksum);
    benchmark::DoNotOptimize(present);
  }
  state.counters["Mvals/s"] = benchmark::Counter(
      static_cast<double>(merged.total_measurements()) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_FullSweep)->Arg(1 << 20)->Arg(1 << 23)->Arg(1 << 25)
    ->Unit(benchmark::kMillisecond);

void BM_GeneQueryAtScale(benchmark::State& state) {
  // Interactive-path latency at scale: resolve one gene everywhere and
  // compute its per-dataset mean (what hovering a row costs).
  const auto target = static_cast<std::size_t>(state.range(0));
  const auto& compendium = compendium_for(target);
  co::MergedDatasetInterface merged(&compendium.datasets);
  co::GeneId gene = 0;
  for (auto _ : state) {
    double total = 0.0;
    for (std::size_t d = 0; d < merged.dataset_count(); ++d) {
      if (const auto profile = merged.profile(d, gene);
          profile.has_value()) {
        total += fv::stats::mean(*profile);
      }
    }
    gene = (gene + 101) % static_cast<co::GeneId>(
                               merged.catalog().gene_count());
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_GeneQueryAtScale)->Arg(1 << 20)->Arg(1 << 23)->Arg(1 << 25);

// --- Pairwise phase -------------------------------------------------------
// Clustering, SPELL weighting and the merged sweep all bottom out in
// all-pairs distances over one dataset's 2000 x 96 rows. These benches pin
// a single-thread pool so they measure the kernel, not the core count.

/// 2000 genes x 96 conditions. `missing` picks between the realistic
/// profile (~2% missing cells, so most pairs take the masked path) and a
/// dense one (pure fast path).
const ex::ExpressionMatrix& pairwise_matrix(bool missing) {
  static std::map<bool, ex::ExpressionMatrix> cache;
  const auto it = cache.find(missing);
  if (it != cache.end()) return it->second;
  const auto genome = ex::make_genome(ex::GenomeSpec::yeast_like(2000), 7777);
  ex::StressDatasetSpec spec;
  spec.time_points = 24;
  if (!missing) spec.missing_rate = 0.0;
  return cache
      .emplace(missing,
               ex::make_stress_dataset(genome, spec, 7778).values())
      .first->second;
}

void add_pair_rate(benchmark::State& state, const ex::ExpressionMatrix& m) {
  const double pairs =
      0.5 * static_cast<double>(m.rows()) * static_cast<double>(m.rows() - 1);
  state.counters["Mpairs/s"] = benchmark::Counter(
      pairs * 1e-6, benchmark::Counter::kIsIterationInvariantRate);
}

void BM_PairwiseDistances(benchmark::State& state) {
  const auto& m = pairwise_matrix(state.range(1) != 0);
  const auto metric = static_cast<cl::Metric>(state.range(0));
  fv::par::ThreadPool pool(1);
  for (auto _ : state) {
    const auto d = cl::row_distances(m, metric, pool);
    benchmark::DoNotOptimize(d.condensed().data());
  }
  add_pair_rate(state, m);
}
BENCHMARK(BM_PairwiseDistances)
    ->ArgNames({"metric", "missing"})
    ->Args({static_cast<int>(cl::Metric::kPearson), 0})
    ->Args({static_cast<int>(cl::Metric::kPearson), 1})
    ->Args({static_cast<int>(cl::Metric::kEuclidean), 0})
    ->Args({static_cast<int>(cl::Metric::kEuclidean), 1})
    ->Args({static_cast<int>(cl::Metric::kSpearman), 0})
    ->UseRealTime()  // the work runs on pool threads, not the timing thread
    ->Unit(benchmark::kMillisecond);

void BM_PairwiseDistancesThreads(benchmark::State& state) {
  // Thread scaling of the tile schedule (balanced pair blocks, dynamic
  // pull); on a many-core host this should be near-linear.
  const auto& m = pairwise_matrix(true);
  fv::par::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto d = cl::row_distances(m, cl::Metric::kPearson, pool);
    benchmark::DoNotOptimize(d.condensed().data());
  }
  add_pair_rate(state, m);
}
BENCHMARK(BM_PairwiseDistancesThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_PairwiseDistancesScalarRef(benchmark::State& state) {
  // The seed's kernel: per-pair scalar profile_distance with its
  // per-element missing-value branch. Kept as the speedup reference for
  // the blocked engine (same output, same missing-value semantics).
  const auto& m = pairwise_matrix(state.range(0) != 0);
  for (auto _ : state) {
    // The seed materialized the full dense n x n matrix; keep that here so
    // the reference measures exactly the seed's work (both triangle writes
    // included).
    std::vector<float> dense(m.rows() * m.rows(), 0.0f);
    for (std::size_t i = 0; i < m.rows(); ++i) {
      const auto row_i = m.row(i);
      for (std::size_t j = i + 1; j < m.rows(); ++j) {
        const auto dist = static_cast<float>(
            cl::profile_distance(row_i, m.row(j), cl::Metric::kPearson));
        dense[i * m.rows() + j] = dist;
        dense[j * m.rows() + i] = dist;
      }
    }
    benchmark::DoNotOptimize(dense.data());
  }
  add_pair_rate(state, m);
}
BENCHMARK(BM_PairwiseDistancesScalarRef)
    ->ArgNames({"missing"})->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf(
      "\n[C1 extrapolation] storage is 4 bytes/measurement (float, NaN = "
      "missing): the paper's quarter-billion measurements need ~1.0 GB — "
      "feasible in one address space with this design; per-dataset tools "
      "page through files instead.\n");
  return 0;
}
