// Experiment C1 (paper §1 claim): "well over a quarter billion microarray
// measurements have been generated … existing software focuses on the scale
// of individual datasets, leaving these methods unable to handle the sheer
// volume of data."
//
// What this bench reports: merged-interface behavior as the compendium
// grows toward that scale — generation, catalog build, full-sweep scan and
// cross-dataset gene query at 10^6 … 10^8 measurements (the top size is
// capped by bench runtime, with measured bytes/measurement making the
// quarter-billion extrapolation concrete).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "core/merged.hpp"
#include "expr/synth.hpp"
#include "stats/descriptive.hpp"

namespace {

namespace ex = fv::expr;
namespace co = fv::core;

/// Builds a compendium with approximately `measurements` total cells: fixed
/// 2000-gene genome, 96-condition datasets, count derived from the target.
ex::Compendium build_compendium(std::size_t measurements) {
  constexpr std::size_t kGenes = 2000;
  constexpr std::size_t kConditions = 96;  // 4 stresses x 24 time points
  const std::size_t per_dataset = kGenes * kConditions;
  const std::size_t datasets =
      std::max<std::size_t>(1, measurements / per_dataset);
  const std::uint64_t seed = 7000 + datasets;
  ex::Compendium compendium(
      ex::make_genome(ex::GenomeSpec::yeast_like(kGenes), seed));
  for (std::size_t i = 0; i < datasets; ++i) {
    ex::StressDatasetSpec ds;
    ds.name = "stress_" + std::to_string(i);
    ds.time_points = 24;
    compendium.datasets.push_back(
        ex::make_stress_dataset(compendium.genome, ds, seed + i + 1));
  }
  return compendium;
}

/// Cached copy for the access benchmarks.
const ex::Compendium& compendium_for(std::size_t measurements) {
  static std::map<std::size_t, ex::Compendium> cache;
  const auto it = cache.find(measurements);
  if (it != cache.end()) return it->second;
  return cache.emplace(measurements, build_compendium(measurements))
      .first->second;
}

void BM_Generate(benchmark::State& state) {
  // Measures the full synthesis path (the "load" equivalent: parsing a PCL
  // of this size costs the same order).
  const auto target = static_cast<std::size_t>(state.range(0));
  std::size_t cells = 0;
  for (auto _ : state) {
    const ex::Compendium compendium = build_compendium(target);
    cells = 0;
    for (const auto& d : compendium.datasets) cells += d.values().size();
    benchmark::DoNotOptimize(cells);
  }
  state.counters["measurements"] = static_cast<double>(cells);
}
BENCHMARK(BM_Generate)->Arg(1 << 20)->Arg(1 << 23)->Arg(1 << 25)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_FullSweep(benchmark::State& state) {
  const auto target = static_cast<std::size_t>(state.range(0));
  const auto& compendium = compendium_for(target);
  co::MergedDatasetInterface merged(&compendium.datasets);
  for (auto _ : state) {
    double checksum = 0.0;
    std::size_t present = 0;
    for (std::size_t d = 0; d < merged.dataset_count(); ++d) {
      for (const float v : merged.dataset(d).values().data()) {
        if (!fv::stats::is_missing(v)) {
          checksum += v;
          ++present;
        }
      }
    }
    benchmark::DoNotOptimize(checksum);
    benchmark::DoNotOptimize(present);
  }
  state.counters["Mvals/s"] = benchmark::Counter(
      static_cast<double>(merged.total_measurements()) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_FullSweep)->Arg(1 << 20)->Arg(1 << 23)->Arg(1 << 25)
    ->Unit(benchmark::kMillisecond);

void BM_GeneQueryAtScale(benchmark::State& state) {
  // Interactive-path latency at scale: resolve one gene everywhere and
  // compute its per-dataset mean (what hovering a row costs).
  const auto target = static_cast<std::size_t>(state.range(0));
  const auto& compendium = compendium_for(target);
  co::MergedDatasetInterface merged(&compendium.datasets);
  co::GeneId gene = 0;
  for (auto _ : state) {
    double total = 0.0;
    for (std::size_t d = 0; d < merged.dataset_count(); ++d) {
      if (const auto profile = merged.profile(d, gene);
          profile.has_value()) {
        total += fv::stats::mean(*profile);
      }
    }
    gene = (gene + 101) % static_cast<co::GeneId>(
                               merged.catalog().gene_count());
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_GeneQueryAtScale)->Arg(1 << 20)->Arg(1 << 23)->Arg(1 << 25);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf(
      "\n[C1 extrapolation] storage is 4 bytes/measurement (float, NaN = "
      "missing): the paper's quarter-billion measurements need ~1.0 GB — "
      "feasible in one address space with this design; per-dataset tools "
      "page through files instead.\n");
  return 0;
}
