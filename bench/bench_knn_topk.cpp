// ISSUE 3 + ISSUE 5 benchmarks: streaming top-k neighbor engine, float
// dense kernel, and the norm-bound pruned top-k strategy.
//
// What this bench reports:
//  * BM_TopKNeighbors         — streamed n x k neighbor tables vs n
//  * BM_TopKNeighbors{Exact,Pruned} — the exact tile stream vs the
//                               Cauchy–Schwarz bound-pruned schedule on
//                               dataset-block module data (the pruned run
//                               exports tiles_pruned/tiles_total/
//                               bounds_checked as JSON counters)
//  * BM_DistancePhaseCondensed— the materializing alternative (same tiles,
//                               n(n-1)/2 floats) for the memory contrast
//  * BM_DenseKernel{Double,Float} — the distance phase under the double
//                               reference kernel vs the 4x-unrolled float
//                               accumulator path (~2x on dense rows)
//  * BM_KnnImpute{Engine,Seed}— kNN imputation through top_k_neighbors vs
//                               the seed's scalar per-pair rescan
//  * An ISSUE 3 epilogue at n = 4000 genes x 96 conditions, 5% missing,
//    k = 10: distance-phase RSS of the top-k path vs condensed storage
//    (target < 10%), imputation speedup (target >= 3x), and the float
//    kernel's measured max error vs the double reference (target: inside
//    the 1e-6 contract wherever kAuto engages).
//  * An ISSUE 5 epilogue at n = 4000, k = 10 on module-structured data:
//    pruned strategy bit-identical NeighborTable to exact (asserted) and
//    distance-phase speedup (target >= 2x), with the prune statistics.
#include <benchmark/benchmark.h>

#include <malloc.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "expr/expression_matrix.hpp"
#include "expr/normalize.hpp"
#include "par/thread_pool.hpp"
#include "sim/similarity_engine.hpp"
#include "stats/descriptive.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "util/triangular.hpp"

namespace {

namespace ex = fv::expr;
namespace sm = fv::sim;

constexpr std::size_t kConditions = 96;
constexpr double kMissingRate = 0.05;
constexpr std::size_t kNeighbors = 10;

/// Module-structured expression data with a missing-value rate — the
/// imputation workload's natural shape (scattered failed spots over
/// co-regulated modules).
const ex::ExpressionMatrix& genes_matrix(std::size_t genes,
                                         double missing_rate) {
  static std::map<std::pair<std::size_t, int>, ex::ExpressionMatrix> cache;
  const auto key = std::make_pair(
      genes, static_cast<int>(missing_rate * 1000.0));
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  constexpr std::size_t kModuleSize = 250;
  const std::size_t modules = std::max<std::size_t>(1, genes / kModuleSize);
  fv::Rng rng(17000 + genes);
  ex::ExpressionMatrix m(genes, kConditions);
  for (std::size_t g = 0; g < genes; ++g) {
    const double phase = static_cast<double>(g % modules) * 0.61;
    const double freq = 0.25 + 0.05 * static_cast<double>(g % modules);
    for (std::size_t c = 0; c < kConditions; ++c) {
      if (rng.uniform() < missing_rate) continue;  // stays missing
      const double pattern =
          std::sin(freq * static_cast<double>(c + 1) + phase);
      m.set(g, c, static_cast<float>(pattern + rng.normal(0.0, 0.05)));
    }
  }
  return cache.emplace(key, std::move(m)).first->second;
}

/// Module-structured data for the pruned-vs-exact contrast: contiguous
/// 250-gene modules, each strongly varying inside its own pair of
/// 16-condition dataset blocks and flat (noise) elsewhere — the
/// condition-specific co-regulation of real compendia (a module responds
/// in the datasets that perturb it; SPELL's dataset weighting exists
/// because signal concentrates this way). Contiguity matters: genes
/// arrive pre-grouped the way a clustered/display-ordered compendium
/// stores them, so the engine's 64-row tile blocks are module-pure and
/// the segment-norm envelopes stay sharp.
const ex::ExpressionMatrix& module_block_matrix(std::size_t genes) {
  static std::map<std::size_t, ex::ExpressionMatrix> cache;
  const auto it = cache.find(genes);
  if (it != cache.end()) return it->second;
  constexpr std::size_t kModuleSize = 250;
  constexpr std::size_t kDatasetCols = 16;
  const std::size_t datasets = kConditions / kDatasetCols;
  fv::Rng rng(91000 + genes);
  ex::ExpressionMatrix m(genes, kConditions);
  for (std::size_t g = 0; g < genes; ++g) {
    const std::size_t module = g / kModuleSize;
    const std::size_t d0 = module % datasets;
    const std::size_t d1 = (module + 1 + module / datasets) % datasets;
    const double freq = 0.25 + 0.05 * static_cast<double>(module % 7);
    const double phase = 0.61 * static_cast<double>(module);
    for (std::size_t c = 0; c < kConditions; ++c) {
      const std::size_t dataset = c / kDatasetCols;
      double value = rng.normal(0.0, 0.05);
      if (dataset == d0 || dataset == d1) {
        value += std::sin(freq * static_cast<double>(c + 1) + phase);
      }
      m.set(g, c, static_cast<float>(value));
    }
  }
  return cache.emplace(genes, std::move(m)).first->second;
}

// --- The seed's scalar kNN imputation, kept as the speedup reference ------

double seed_impute_distance(std::span<const float> a,
                            std::span<const float> b) {
  double sum = 0.0;
  std::size_t shared = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (fv::stats::is_missing(a[i]) || fv::stats::is_missing(b[i])) continue;
    const double diff = static_cast<double>(a[i]) - b[i];
    sum += diff * diff;
    ++shared;
  }
  if (shared < 2) return std::numeric_limits<double>::infinity();
  return std::sqrt(sum * static_cast<double>(a.size()) /
                   static_cast<double>(shared));
}

std::size_t seed_knn_impute(ex::ExpressionMatrix& matrix, std::size_t k) {
  const ex::ExpressionMatrix original = matrix;
  std::size_t imputed = 0;
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    std::vector<std::size_t> holes;
    for (std::size_t c = 0; c < matrix.cols(); ++c) {
      if (fv::stats::is_missing(original.at(r, c))) holes.push_back(c);
    }
    if (holes.empty()) continue;
    std::vector<std::pair<double, std::size_t>> neighbors;
    for (std::size_t other = 0; other < original.rows(); ++other) {
      if (other == r) continue;
      const double d =
          seed_impute_distance(original.row(r), original.row(other));
      if (std::isinf(d)) continue;
      neighbors.emplace_back(d, other);
    }
    const std::size_t keep = std::min(k, neighbors.size());
    std::partial_sort(neighbors.begin(),
                      neighbors.begin() + static_cast<long>(keep),
                      neighbors.end());
    neighbors.resize(keep);
    const double row_mean = fv::stats::mean(original.row(r));
    const float fallback =
        std::isnan(row_mean) ? 0.0f : static_cast<float>(row_mean);
    for (const std::size_t c : holes) {
      double weighted = 0.0;
      double weight_total = 0.0;
      for (const auto& [distance, other] : neighbors) {
        const float v = original.at(other, c);
        if (fv::stats::is_missing(v)) continue;
        const double w = 1.0 / std::max(distance, 1e-9);
        weighted += w * v;
        weight_total += w;
      }
      matrix.set(r, c, weight_total > 0.0
                           ? static_cast<float>(weighted / weight_total)
                           : fallback);
      ++imputed;
    }
  }
  return imputed;
}

std::size_t current_rss_bytes() {
  std::ifstream statm("/proc/self/statm");
  std::size_t pages = 0, resident = 0;
  statm >> pages >> resident;
  return resident * static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
}

// --- Top-k distance phase -------------------------------------------------

void BM_TopKNeighbors(benchmark::State& state) {
  const auto& m = genes_matrix(static_cast<std::size_t>(state.range(0)),
                               kMissingRate);
  fv::par::ThreadPool pool(1);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  for (auto _ : state) {
    const auto table = engine.top_k_neighbors(kNeighbors, pool);
    benchmark::DoNotOptimize(table.indices.data());
  }
  state.counters["table_KiB"] = static_cast<double>(
      m.rows() * kNeighbors * (sizeof(float) + sizeof(std::uint32_t))) /
      1024.0;
}
BENCHMARK(BM_TopKNeighbors)->Arg(1000)->Arg(2000)->Arg(4000)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void topk_strategy_phase(benchmark::State& state, sm::TopKStrategy strategy,
                         bool export_stats) {
  const auto& m = module_block_matrix(static_cast<std::size_t>(state.range(0)));
  fv::par::ThreadPool pool(1);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  sm::TopKStats stats;
  for (auto _ : state) {
    const auto table =
        engine.top_k_neighbors(kNeighbors, pool, 0, strategy, &stats);
    benchmark::DoNotOptimize(table.indices.data());
  }
  if (export_stats) {
    // Into the JSON snapshot, so the PR-over-PR gate archive carries the
    // prune trajectory alongside the times.
    state.counters["tiles_total"] = static_cast<double>(stats.tiles_total);
    state.counters["tiles_pruned"] = static_cast<double>(stats.tiles_pruned);
    state.counters["bounds_checked"] =
        static_cast<double>(stats.bounds_checked);
  }
}

void BM_TopKNeighborsExact(benchmark::State& state) {
  topk_strategy_phase(state, sm::TopKStrategy::kExact, false);
}
void BM_TopKNeighborsPruned(benchmark::State& state) {
  topk_strategy_phase(state, sm::TopKStrategy::kPruned, true);
}
BENCHMARK(BM_TopKNeighborsExact)->Arg(1000)->Arg(2000)->Arg(4000)
    ->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TopKNeighborsPruned)->Arg(1000)->Arg(2000)->Arg(4000)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_DistancePhaseCondensed(benchmark::State& state) {
  const auto& m = genes_matrix(static_cast<std::size_t>(state.range(0)),
                               kMissingRate);
  fv::par::ThreadPool pool(1);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  for (auto _ : state) {
    std::vector<float> out(fv::condensed_size(m.rows()));
    engine.condensed_distances(out, pool);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["matrix_KiB"] = static_cast<double>(
      fv::condensed_size(m.rows()) * sizeof(float)) / 1024.0;
}
BENCHMARK(BM_DistancePhaseCondensed)->Arg(1000)->Arg(2000)->Arg(4000)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// --- Dense kernel: double reference vs float accumulators -----------------

void dense_kernel_phase(benchmark::State& state, sm::DenseKernel kernel) {
  // Dense rows (no missing) so every pair takes the fast path under test.
  const auto& m = genes_matrix(static_cast<std::size_t>(state.range(0)), 0.0);
  fv::par::ThreadPool pool(1);
  const auto engine = sm::SimilarityEngine::from_rows(
      m, sm::Metric::kPearson, sm::Precompute::kAllPairs, kernel);
  for (auto _ : state) {
    std::vector<float> out(fv::condensed_size(m.rows()));
    engine.condensed_distances(out, pool);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_DenseKernelDouble(benchmark::State& state) {
  dense_kernel_phase(state, sm::DenseKernel::kDouble);
}
void BM_DenseKernelFloat(benchmark::State& state) {
  dense_kernel_phase(state, sm::DenseKernel::kFloat);
}
BENCHMARK(BM_DenseKernelDouble)->Arg(2000)->Arg(4000)
    ->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DenseKernelFloat)->Arg(2000)->Arg(4000)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// --- kNN imputation -------------------------------------------------------

void BM_KnnImputeEngine(benchmark::State& state) {
  const auto& m = genes_matrix(static_cast<std::size_t>(state.range(0)),
                               kMissingRate);
  fv::par::ThreadPool pool(1);
  for (auto _ : state) {
    ex::ExpressionMatrix work = m;
    const std::size_t imputed = ex::knn_impute(work, kNeighbors, pool);
    benchmark::DoNotOptimize(imputed);
  }
}
BENCHMARK(BM_KnnImputeEngine)->Arg(1000)->Arg(2000)->Arg(4000)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_KnnImputeSeed(benchmark::State& state) {
  const auto& m = genes_matrix(static_cast<std::size_t>(state.range(0)),
                               kMissingRate);
  for (auto _ : state) {
    ex::ExpressionMatrix work = m;
    const std::size_t imputed = seed_knn_impute(work, kNeighbors);
    benchmark::DoNotOptimize(imputed);
  }
}
BENCHMARK(BM_KnnImputeSeed)->Arg(1000)->Arg(2000)
    ->Iterations(1)->UseRealTime()->Unit(benchmark::kMillisecond);

// --- Epilogue: the issue's acceptance numbers -----------------------------

void report_issue_targets() {
  constexpr std::size_t kGenes = 4000;
  const auto& m = genes_matrix(kGenes, kMissingRate);
  fv::par::ThreadPool pool(1);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);

  // Memory: RSS actually resident for the distance phase of each path. The
  // engine's padded rows are identical on both paths and built above, so
  // the deltas isolate what each consumer materializes: condensed storage
  // (n(n-1)/2 floats) vs the top-k table plus its transient per-thread
  // heap slab. Fresh mmaps for the big buffer so glibc cannot satisfy it
  // from already-resident arena pages.
  mallopt(M_MMAP_THRESHOLD, 1 << 20);
  const std::size_t rss0 = current_rss_bytes();
  std::vector<float> condensed(fv::condensed_size(kGenes), 0.0f);
  engine.condensed_distances(condensed, pool);
  benchmark::DoNotOptimize(condensed.data());
  const std::size_t condensed_rss = current_rss_bytes() - rss0;
  condensed.clear();
  condensed.shrink_to_fit();

  const std::size_t rss1 = current_rss_bytes();
  const auto table = engine.top_k_neighbors(kNeighbors, pool);
  benchmark::DoNotOptimize(table.indices.data());
  const std::size_t topk_rss =
      current_rss_bytes() > rss1 ? current_rss_bytes() - rss1 : 0;

  // Imputation: seed scalar path vs the engine-backed top-k path.
  fv::Timer timer;
  ex::ExpressionMatrix seed_work = m;
  const std::size_t seed_imputed = seed_knn_impute(seed_work, kNeighbors);
  const double seed_seconds = timer.seconds();
  timer.reset();
  ex::ExpressionMatrix engine_work = m;
  const std::size_t engine_imputed =
      ex::knn_impute(engine_work, kNeighbors, pool);
  const double engine_seconds = timer.seconds();

  // Float kernel: measured max error vs the double reference on the dense
  // benchmark shape (full fast-path coverage), plus the auto policy state
  // for these rows.
  const auto& dense_m = genes_matrix(2000, 0.0);
  const auto engine_f = sm::SimilarityEngine::from_rows(
      dense_m, sm::Metric::kPearson, sm::Precompute::kAllPairs,
      sm::DenseKernel::kFloat);
  const auto engine_d = sm::SimilarityEngine::from_rows(
      dense_m, sm::Metric::kPearson, sm::Precompute::kAllPairs,
      sm::DenseKernel::kDouble);
  std::vector<float> dist_f(fv::condensed_size(dense_m.rows()));
  std::vector<float> dist_d(dist_f.size());
  engine_f.condensed_distances(dist_f, pool);
  engine_d.condensed_distances(dist_d, pool);
  double max_error = 0.0;
  for (std::size_t p = 0; p < dist_f.size(); ++p) {
    max_error = std::max(
        max_error, std::abs(static_cast<double>(dist_f[p]) - dist_d[p]));
  }
  const auto engine_auto = sm::SimilarityEngine::from_rows(
      dense_m, sm::Metric::kPearson);

  const double mem_ratio =
      static_cast<double>(topk_rss) / static_cast<double>(condensed_rss);
  const double speedup = seed_seconds / engine_seconds;
  std::printf(
      "\n[ISSUE 3 targets @ %zu genes x %zu conditions, %.0f%% missing, "
      "k = %zu, 1 thread]\n"
      "  distance-phase RSS: condensed %.1f MiB -> top-k %.2f MiB "
      "(%.1f%% of condensed; target < 10%%: %s)\n"
      "  kNN imputation: seed %.2f s -> engine %.2f s (%.1fx; target >= 3x: "
      "%s; imputed %zu/%zu cells)\n"
      "  float kernel max |error| vs double reference (2000 dense genes): "
      "%.3g (1e-6 contract: %s; kAuto at %zu-condition rows engages: %s)\n",
      kGenes, kConditions, kMissingRate * 100.0, kNeighbors,
      static_cast<double>(condensed_rss) / (1024.0 * 1024.0),
      static_cast<double>(topk_rss) / (1024.0 * 1024.0), 100.0 * mem_ratio,
      mem_ratio < 0.10 ? "PASS" : "FAIL", seed_seconds, engine_seconds,
      speedup, speedup >= 3.0 ? "PASS" : "FAIL", engine_imputed,
      seed_imputed, max_error, max_error < 1e-6 ? "PASS" : "FAIL",
      kConditions, engine_auto.float_kernel_active() ? "yes" : "no");
}

// --- Epilogue: the issue-5 pruned-strategy gate ---------------------------

void report_issue5_targets() {
  constexpr std::size_t kGenes = 4000;
  const auto& m = module_block_matrix(kGenes);
  fv::par::ThreadPool pool(1);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);

  fv::Timer timer;
  const auto exact =
      engine.top_k_neighbors(kNeighbors, pool, 0, sm::TopKStrategy::kExact);
  const double exact_seconds = timer.seconds();
  timer.reset();
  sm::TopKStats stats;
  const auto pruned = engine.top_k_neighbors(
      kNeighbors, pool, 0, sm::TopKStrategy::kPruned, &stats);
  const double pruned_seconds = timer.seconds();

  // The whole point of bound pruning: the table is the SAME table.
  const bool identical = pruned.indices == exact.indices &&
                         pruned.distances == exact.distances &&
                         pruned.valid == exact.valid;
  const double speedup = exact_seconds / pruned_seconds;
  std::printf(
      "\n[ISSUE 5 targets @ %zu genes x %zu conditions (dataset-block "
      "modules), k = %zu, 1 thread]\n"
      "  pruned NeighborTable bit-identical to exact: %s\n"
      "  distance phase: exact %.3f s -> pruned %.3f s (%.2fx; target >= "
      "2x: %s)\n"
      "  prune statistics: %zu/%zu tiles skipped (%.1f%%), %zu bounds "
      "checked\n",
      kGenes, kConditions, kNeighbors, identical ? "PASS" : "FAIL",
      exact_seconds, pruned_seconds, speedup,
      speedup >= 2.0 ? "PASS" : "FAIL", stats.tiles_pruned,
      stats.tiles_total,
      100.0 * static_cast<double>(stats.tiles_pruned) /
          static_cast<double>(stats.tiles_total),
      stats.bounds_checked);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report_issue_targets();
  report_issue5_targets();
  return 0;
}
