// Experiment F1 (paper Figure 1): the Merged Dataset Interface.
//
// What the paper claims: a single 3-D array interface over all datasets
// lets analysis routines run across the whole compendium, where existing
// tools are stuck at the scale of individual dataset files.
//
// What this bench reports:
//  * MergedScan/N       — full 3-D sweep throughput vs #datasets (linear)
//  * MergedGeneQuery/N  — cross-dataset per-gene scan ("one row across all
//                         datasets") vs #datasets
//  * FileBaseline/N     — the per-file workflow baseline: re-parse the PCL
//                         file of each dataset to answer the same per-gene
//                         query (what "launch another instance" costs)
//  * MergedExport/N     — "Export Merged Dataset" cost
#include <benchmark/benchmark.h>

#include <map>

#include "core/merged.hpp"
#include "expr/pcl_io.hpp"
#include "expr/synth.hpp"
#include "stats/descriptive.hpp"

namespace {

namespace ex = fv::expr;
namespace co = fv::core;

constexpr std::size_t kGenes = 1000;

/// Compendia cached per dataset count (construction dominates otherwise).
const ex::Compendium& compendium_for(std::size_t dataset_count) {
  static std::map<std::size_t, ex::Compendium> cache;
  const auto it = cache.find(dataset_count);
  if (it != cache.end()) return it->second;
  ex::CompendiumSpec spec;
  spec.genome = ex::GenomeSpec::yeast_like(kGenes);
  spec.stress_datasets = dataset_count;  // homogeneous: isolates scaling
  spec.nutrient_datasets = 0;
  spec.knockout_datasets = 0;
  spec.noise_datasets = 0;
  spec.seed = 1000 + dataset_count;
  return cache.emplace(dataset_count, ex::make_compendium(spec))
      .first->second;
}

/// Pre-serialized PCL texts, simulating the on-disk files of the baseline.
const std::vector<std::string>& pcl_texts_for(std::size_t dataset_count) {
  static std::map<std::size_t, std::vector<std::string>> cache;
  const auto it = cache.find(dataset_count);
  if (it != cache.end()) return it->second;
  std::vector<std::string> texts;
  for (const auto& dataset : compendium_for(dataset_count).datasets) {
    texts.push_back(ex::format_pcl(dataset));
  }
  return cache.emplace(dataset_count, std::move(texts)).first->second;
}

void BM_MergedScan(benchmark::State& state) {
  const auto dataset_count = static_cast<std::size_t>(state.range(0));
  const auto& compendium = compendium_for(dataset_count);
  co::MergedDatasetInterface merged(&compendium.datasets);
  double checksum = 0.0;
  for (auto _ : state) {
    // Full 3-D sweep: every (dataset, gene-row, condition) cell.
    for (std::size_t d = 0; d < merged.dataset_count(); ++d) {
      for (const float v : merged.dataset(d).values().data()) {
        if (!fv::stats::is_missing(v)) checksum += v;
      }
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.counters["measurements"] = static_cast<double>(
      merged.total_measurements());
  state.counters["Mvals/s"] = benchmark::Counter(
      static_cast<double>(merged.total_measurements()) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_MergedScan)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_MergedGeneQuery(benchmark::State& state) {
  const auto dataset_count = static_cast<std::size_t>(state.range(0));
  const auto& compendium = compendium_for(dataset_count);
  co::MergedDatasetInterface merged(&compendium.datasets);
  // The paper's Figure-2 interaction: scan one gene across all datasets.
  std::vector<co::GeneId> ids;
  for (std::size_t g = 0; g < merged.catalog().gene_count(); g += 37) {
    ids.push_back(static_cast<co::GeneId>(g));
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    const co::GeneId gene = ids[cursor++ % ids.size()];
    double total = 0.0;
    for (std::size_t d = 0; d < merged.dataset_count(); ++d) {
      const auto profile = merged.profile(d, gene);
      if (!profile.has_value()) continue;
      total += fv::stats::mean(*profile);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_MergedGeneQuery)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_FileBaseline(benchmark::State& state) {
  // Baseline: the same per-gene query answered the pre-ForestView way —
  // parse each dataset's file, then look the gene up.
  const auto dataset_count = static_cast<std::size_t>(state.range(0));
  const auto& texts = pcl_texts_for(dataset_count);
  for (auto _ : state) {
    double total = 0.0;
    for (const std::string& text : texts) {
      const ex::Dataset dataset = ex::parse_pcl(text, "tmp");
      if (const auto row = dataset.row_of("YAL001C"); row.has_value()) {
        total += fv::stats::mean(dataset.profile(*row));
      }
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_FileBaseline)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MergedExport(benchmark::State& state) {
  const auto dataset_count = static_cast<std::size_t>(state.range(0));
  const auto& compendium = compendium_for(dataset_count);
  co::MergedDatasetInterface merged(&compendium.datasets);
  std::vector<co::GeneId> genes;
  for (co::GeneId g = 0; g < 200; ++g) genes.push_back(g);
  for (auto _ : state) {
    const auto exported = merged.export_merged(genes, "export");
    benchmark::DoNotOptimize(exported.gene_count());
  }
  state.counters["columns"] = static_cast<double>(
      compendium.datasets.size() * compendium.datasets[0].condition_count());
}
BENCHMARK(BM_MergedExport)->Arg(2)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_CatalogBuild(benchmark::State& state) {
  const auto dataset_count = static_cast<std::size_t>(state.range(0));
  const auto& compendium = compendium_for(dataset_count);
  for (auto _ : state) {
    co::GeneCatalog catalog(compendium.datasets);
    benchmark::DoNotOptimize(catalog.gene_count());
  }
}
BENCHMARK(BM_CatalogBuild)->Arg(2)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
