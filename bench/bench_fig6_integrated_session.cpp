// Experiment F6 (paper Figure 6): the integrated ForestView + SPELL + GOLEM
// workflow, against the pre-ForestView baseline the paper describes:
// "we would need to launch over a dozen independent instances of a program
//  and continually cut and paste selections between instances."
//
// What this bench reports:
//  * IntegratedWorkflow — one session: select cluster -> SPELL reorder +
//    highlight -> GOLEM enrich -> render frame
//  * CutAndPasteBaseline — per-dataset single-pane "instances": for each
//    dataset, re-parse its file, look up the gene list by hand (the paste),
//    render a single-dataset frame; enrichment requires an export/import
//    round trip through GMT text
//  * operations report  — user-visible operation counts for both paths
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/adapters.hpp"
#include "core/app.hpp"
#include "expr/gmt_io.hpp"
#include "expr/pcl_io.hpp"
#include "expr/synth.hpp"
#include "go/synth_ontology.hpp"

namespace {

namespace ex = fv::expr;
namespace co = fv::core;
namespace go = fv::go;

struct Fixture {
  ex::Compendium compendium;
  go::SynthOntology ontology;
  std::vector<std::string> query;
  std::vector<std::string> pcl_texts;  ///< the baseline's "files"

  Fixture()
      : compendium(make()),
        ontology(go::make_synth_ontology(compendium.genome)) {
    for (const std::size_t g :
         compendium.genome.module_members("ESR_UP")) {
      query.push_back(compendium.genome.gene(g).systematic_name);
      if (query.size() == 6) break;
    }
    for (const auto& dataset : compendium.datasets) {
      pcl_texts.push_back(ex::format_pcl(dataset));
    }
  }

  static ex::Compendium make() {
    ex::CompendiumSpec spec;
    spec.genome = ex::GenomeSpec::yeast_like(800);
    spec.stress_datasets = 4;
    spec.nutrient_datasets = 4;
    spec.knockout_datasets = 2;
    spec.noise_datasets = 2;  // 12 datasets: the paper's "over a dozen"
    spec.seed = 6000;
    return ex::make_compendium(spec);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

/// Copies datasets so every iteration starts from a fresh session.
std::vector<ex::Dataset> dataset_copy() {
  return fixture().compendium.datasets;
}

void BM_IntegratedWorkflow(benchmark::State& state) {
  std::size_t operations = 0;
  for (auto _ : state) {
    co::Session session(dataset_copy());
    // 1. SPELL: one query reorders all panes and selects the hits.
    const auto integration =
        co::apply_spell_search(session, fixture().query, 20);
    // 2. GOLEM on the selection, in place.
    const auto enrichment =
        co::run_golem_on_selection(session, fixture().ontology.propagated);
    // 3. One synchronized frame across all datasets.
    co::ForestViewApp app(&session);
    co::FrameConfig config;
    config.width = 1600;
    config.height = 1200;
    const auto frame = app.render_desktop(config);
    benchmark::DoNotOptimize(frame.pixel_count());
    benchmark::DoNotOptimize(enrichment.terms.size());
    operations = session.operation_count();
  }
  state.counters["user_operations"] = static_cast<double>(operations);
}
BENCHMARK(BM_IntegratedWorkflow)->Unit(benchmark::kMillisecond);

void BM_CutAndPasteBaseline(benchmark::State& state) {
  // The paper's described alternative: one single-dataset instance per
  // dataset. Each "instance" re-parses its file, the user pastes the gene
  // list into each one, and enrichment needs a GMT export/import hop.
  // User operations: per dataset (launch + paste + export) plus the final
  // import into the enrichment tool.
  std::size_t operations = 0;
  for (auto _ : state) {
    std::vector<std::string> collected_genes = fixture().query;
    operations = 0;
    for (const std::string& text : fixture().pcl_texts) {
      // "launch an instance": parse the file from scratch.
      const ex::Dataset dataset = ex::parse_pcl(text, "instance");
      ++operations;  // launch
      // "paste the selection": resolve the gene list in this instance.
      std::vector<std::size_t> rows;
      for (const std::string& gene : fixture().query) {
        if (const auto row = dataset.row_of(gene); row.has_value()) {
          rows.push_back(*row);
        }
      }
      ++operations;  // paste
      // Single-dataset render (its own pane, no synchronization).
      std::vector<ex::Dataset> one;
      one.push_back(dataset);
      co::Session solo(std::move(one));
      std::vector<co::GeneId> ids;
      for (const std::size_t row : rows) {
        ids.push_back(solo.merged().catalog().id_of_row(0, row));
      }
      solo.select_from_analysis(ids, "paste");
      co::ForestViewApp app(&solo);
      co::FrameConfig config;
      config.width = 400;
      config.height = 1200;  // one pane's worth of screen
      benchmark::DoNotOptimize(app.render_desktop(config).pixel_count());
      // "export the gene list" for the external enrichment tool.
      const auto gmt = ex::format_gmt({solo.export_selection("sel")});
      ++operations;  // export
      for (const auto& set : ex::parse_gmt(gmt)) {
        for (const auto& gene : set.genes) collected_genes.push_back(gene);
      }
    }
    // Final hop: import into the standalone GOLEM.
    const auto enrichment =
        go::enrich(fixture().ontology.propagated, collected_genes);
    ++operations;  // import into enrichment tool
    benchmark::DoNotOptimize(enrichment.terms.size());
  }
  state.counters["user_operations"] = static_cast<double>(operations);
}
BENCHMARK(BM_CutAndPasteBaseline)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf(
      "\n[F6 operations] integrated session: 2 user operations (one SPELL "
      "query + implicit selection) regardless of dataset count; "
      "cut-and-paste baseline: 3 per dataset + 1 = %zu for the %zu-dataset "
      "compendium — O(1) vs O(n) user effort, the paper's §4 contrast.\n",
      3 * fixture().compendium.datasets.size() + 1,
      fixture().compendium.datasets.size());
  return 0;
}
