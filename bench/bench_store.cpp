// ISSUE 8 benchmarks: the crash-consistent artifact store's warm-reopen
// story — the second process start should pay milliseconds of mmap, not
// the seconds of parse + normalize + O(n²) distance work the first one
// paid.
//
// What this bench reports:
//  * BM_ColdCompendiumOpen — parse the 4000 x 96 PCL compendium from disk
//                            and build the Pearson engine (the cold
//                            session's spine entry cost)
//  * BM_WarmCompendiumOpen — key the compendium by file bytes (no parse)
//                            and restore the engine from its artifact
//  * BM_ColdCondensed      — compute the condensed n(n-1)/2 distance
//                            triangle through the engine's tile kernels
//  * BM_WarmCondensedOpen  — restore the triangle from its artifact
//  * BM_ColdLshBuild       — build the 256-bit LSH signature bank (the
//                            term that dominates approximate top-k)
//  * BM_WarmLshOpen        — restore the bank from its artifact
//  * BM_ArtifactCommit     — one full commit (write-tmp -> sync ->
//                            atomic-rename -> sync-dir) of a 32 MiB
//                            payload: the durability cost warm sessions
//                            amortize away
//  * An ISSUE 8 epilogue at n = 4000: cold vs warm wall time for the
//    compendium engine, condensed distances and LSH signatures, the
//    combined >= 20x speedup gate, bit-identity of every warm product
//    against its cold original (asserted), and an fsck pass over the
//    store directory (must scan clean).
//
// ISSUE 9 additions — the out-of-core mapped path:
//  * BM_MappedCompendiumOpen — open_engine_mapped: validate chunk-streamed,
//                              borrow every array as spans into the mapping
//                              (no copy; compare against BM_WarmCompendiumOpen,
//                              which copies the slabs to the heap)
//  * BM_HeapCondensedSerial / BM_MappedCondensedSerial — the serial
//                              streaming distance phase over a heap vs a
//                              borrowed-mapped engine, same tile schedule
//  * An ISSUE 9 epilogue at n = 4000: mapped vs heap serial condensed wall
//    time with the <= 1.25x ratio gate, bit-identity of the mapped
//    triangle, and mapped-open vs copy-open latency. (The companion peak-
//    RSS >= 5x gate runs in tests/mapped_budget_test.cpp at a length where
//    engine state actually dwarfs the working set.)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "cluster/distance.hpp"
#include "expr/dataset.hpp"
#include "expr/gene.hpp"
#include "expr/pcl_io.hpp"
#include "par/thread_pool.hpp"
#include "sim/lsh.hpp"
#include "sim/similarity_engine.hpp"
#include "store/artifact_store.hpp"
#include "store/cached.hpp"
#include "store/fsck.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "util/triangular.hpp"

namespace {

namespace ex = fv::expr;
namespace sm = fv::sim;
namespace st = fv::store;
namespace fs = std::filesystem;

constexpr std::size_t kGenes = 4000;
constexpr std::size_t kConditions = 96;

/// Same dataset-block module compendium shape as bench_lsh_topk: 250-gene
/// modules varying inside their own pairs of 16-condition dataset blocks.
ex::ExpressionMatrix module_block_matrix() {
  constexpr std::size_t kModuleSize = 250;
  constexpr std::size_t kDatasetCols = 16;
  const std::size_t datasets = kConditions / kDatasetCols;
  fv::Rng rng(92000);
  ex::ExpressionMatrix m(kGenes, kConditions);
  for (std::size_t g = 0; g < kGenes; ++g) {
    const std::size_t module = g / kModuleSize;
    const std::size_t d0 = module % datasets;
    const std::size_t d1 = (module + 1 + module / datasets) % datasets;
    const double freq = 0.25 + 0.05 * static_cast<double>(module % 7);
    const double phase = 0.61 * static_cast<double>(module);
    for (std::size_t c = 0; c < kConditions; ++c) {
      const std::size_t dataset = c / kDatasetCols;
      double value = rng.normal(0.0, 0.05);
      if (dataset == d0 || dataset == d1) {
        value += std::sin(freq * static_cast<double>(c + 1) + phase);
      }
      m.set(g, c, static_cast<float>(value));
    }
  }
  return m;
}

/// The on-disk world the bench runs in: a compendium directory holding one
/// PCL file (what a cold session parses) and a store directory (what a
/// warm session maps). Built once, shared by every benchmark.
struct BenchWorld {
  std::string compendium_dir;
  std::string store_dir;
  std::string pcl_path;

  BenchWorld() {
    const auto root = fs::temp_directory_path() / "fv_bench_store";
    fs::remove_all(root);
    compendium_dir = (root / "compendium").string();
    store_dir = (root / "store").string();
    fs::create_directories(compendium_dir);
    fs::create_directories(store_dir);
    pcl_path = compendium_dir + "/compendium.pcl";

    auto matrix = module_block_matrix();
    std::vector<ex::GeneInfo> genes(kGenes);
    for (std::size_t g = 0; g < kGenes; ++g) {
      genes[g].systematic_name = "G" + std::to_string(g);
    }
    std::vector<std::string> conditions(kConditions);
    for (std::size_t c = 0; c < kConditions; ++c) {
      conditions[c] = "cond" + std::to_string(c);
    }
    ex::write_pcl(ex::Dataset("compendium", std::move(genes),
                              std::move(conditions), std::move(matrix)),
                  pcl_path);
  }
};

BenchWorld& world() {
  static BenchWorld w;
  return w;
}

sm::LshParams lsh_params() {
  sm::LshParams p;  // the 256-bit / 16-table defaults the LSH layer ships
  return p;
}

/// The cold session's compendium open: parse the PCL, build the engine.
sm::SimilarityEngine cold_engine() {
  const auto dataset = ex::read_pcl(world().pcl_path);
  return sm::SimilarityEngine::from_rows(dataset.values(),
                                         sm::Metric::kPearson);
}

/// The warm session's compendium open: byte-hash the compendium files
/// (no parsing), then restore the engine artifact. The parse fallback
/// exists but must not run once the store is populated.
sm::SimilarityEngine warm_engine(st::ArtifactStore& store,
                                 st::OpenStats* stats = nullptr) {
  const auto input_key = st::compendium_files_key(world().compendium_dir);
  return st::open_or_build_engine(
      store, input_key,
      []() { return ex::read_pcl(world().pcl_path).values(); },
      sm::Metric::kPearson, sm::Precompute::kAllPairs,
      sm::DenseKernel::kAuto, stats);
}

/// Populates the store once so every warm benchmark measures reopen, not
/// first-compute; returns the engine the warm products are keyed under.
const sm::SimilarityEngine& populated_engine(fv::par::ThreadPool& pool) {
  static sm::SimilarityEngine engine = [&pool]() {
    st::ArtifactStore store(world().store_dir);
    auto built = warm_engine(store);
    (void)st::open_or_compute_condensed(store, built, pool);
    (void)st::open_or_build_lsh(store, built, lsh_params(), pool);
    return built;
  }();
  return engine;
}

// --- cold vs warm, per product --------------------------------------------

void BM_ColdCompendiumOpen(benchmark::State& state) {
  for (auto _ : state) {
    auto engine = cold_engine();
    benchmark::DoNotOptimize(engine.size());
  }
}
BENCHMARK(BM_ColdCompendiumOpen)->Unit(benchmark::kMillisecond);

void BM_WarmCompendiumOpen(benchmark::State& state) {
  fv::par::ThreadPool pool(4);
  (void)populated_engine(pool);
  for (auto _ : state) {
    st::ArtifactStore store(world().store_dir);
    st::OpenStats stats;
    auto engine = warm_engine(store, &stats);
    if (!stats.warm) state.SkipWithError("warm open fell back to compute");
    benchmark::DoNotOptimize(engine.size());
  }
}
BENCHMARK(BM_WarmCompendiumOpen)->Unit(benchmark::kMillisecond);

void BM_ColdCondensed(benchmark::State& state) {
  fv::par::ThreadPool pool(4);
  const auto& engine = populated_engine(pool);
  fv::cluster::DistanceMatrix distances(engine.size());
  for (auto _ : state) {
    engine.condensed_distances(distances.condensed(), pool);
    benchmark::DoNotOptimize(distances.condensed().data());
  }
}
BENCHMARK(BM_ColdCondensed)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_WarmCondensedOpen(benchmark::State& state) {
  fv::par::ThreadPool pool(4);
  const auto& engine = populated_engine(pool);
  for (auto _ : state) {
    st::ArtifactStore store(world().store_dir);
    st::OpenStats stats;
    auto distances =
        st::open_or_compute_condensed(store, engine, pool, &stats);
    if (!stats.warm) state.SkipWithError("warm open fell back to compute");
    benchmark::DoNotOptimize(distances.condensed().data());
  }
}
BENCHMARK(BM_WarmCondensedOpen)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ColdLshBuild(benchmark::State& state) {
  fv::par::ThreadPool pool(4);
  const auto& engine = populated_engine(pool);
  for (auto _ : state) {
    sm::LshIndex index(engine, lsh_params(), pool);
    benchmark::DoNotOptimize(index.size());
  }
}
BENCHMARK(BM_ColdLshBuild)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_WarmLshOpen(benchmark::State& state) {
  fv::par::ThreadPool pool(4);
  const auto& engine = populated_engine(pool);
  for (auto _ : state) {
    st::ArtifactStore store(world().store_dir);
    st::OpenStats stats;
    auto index =
        st::open_or_build_lsh(store, engine, lsh_params(), pool, &stats);
    if (!stats.warm) state.SkipWithError("warm open fell back to compute");
    benchmark::DoNotOptimize(index.size());
  }
}
BENCHMARK(BM_WarmLshOpen)->Unit(benchmark::kMillisecond)->UseRealTime();

/// Full engine-artifact key of the bench compendium (what open_engine_mapped
/// addresses once populated_engine has committed it).
std::uint64_t mapped_engine_key() {
  return st::engine_key(st::compendium_files_key(world().compendium_dir),
                        sm::Metric::kPearson, sm::Precompute::kAllPairs,
                        sm::DenseKernel::kAuto);
}

sm::SimilarityEngine mapped_engine(st::ArtifactStore& store) {
  auto opened = st::open_engine_mapped(store, mapped_engine_key());
  if (!opened.has_value() ||
      opened->storage() != sm::EngineStorage::kBorrowedMapped) {
    std::abort();
  }
  return std::move(*opened);
}

void BM_MappedCompendiumOpen(benchmark::State& state) {
  fv::par::ThreadPool pool(4);
  (void)populated_engine(pool);
  for (auto _ : state) {
    st::ArtifactStore store(world().store_dir);
    auto engine = mapped_engine(store);
    benchmark::DoNotOptimize(engine.size());
  }
}
BENCHMARK(BM_MappedCompendiumOpen)->Unit(benchmark::kMillisecond);

void BM_HeapCondensedSerial(benchmark::State& state) {
  fv::par::ThreadPool pool(4);
  const auto& engine = populated_engine(pool);
  std::vector<float> out(fv::condensed_size(engine.size()));
  for (auto _ : state) {
    engine.condensed_distances(std::span<float>(out));
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_HeapCondensedSerial)->Unit(benchmark::kMillisecond);

void BM_MappedCondensedSerial(benchmark::State& state) {
  fv::par::ThreadPool pool(4);
  (void)populated_engine(pool);
  st::ArtifactStore store(world().store_dir);
  const auto engine = mapped_engine(store);
  std::vector<float> out(fv::condensed_size(engine.size()));
  for (auto _ : state) {
    engine.condensed_distances(std::span<float>(out));
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MappedCondensedSerial)->Unit(benchmark::kMillisecond);

void BM_ArtifactCommit(benchmark::State& state) {
  // One sealed 32 MiB commit, fsyncs and all — what a cold session pays
  // once per product so every later session can skip the compute.
  const std::vector<float> payload(8u << 20, 1.5f);
  st::ArtifactStore store(world().store_dir);
  std::uint64_t key = 0x9000;
  for (auto _ : state) {
    store.put(st::ArtifactKind::kBlob, key,
              [&](st::ArtifactWriter& w) { w.section(payload); });
    benchmark::DoNotOptimize(key);
    store.remove(st::ArtifactKind::kBlob, key);
    ++key;
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(payload.size() * sizeof(float)));
}
BENCHMARK(BM_ArtifactCommit)->Unit(benchmark::kMillisecond);

// --- Epilogue: the issue-8 acceptance numbers -----------------------------

/// Best-of-N wall time of `fn` — the steady-state number the per-product
/// benchmark loops above report, without google-benchmark's adaptive
/// iteration count.
template <typename Fn>
double best_of(int runs, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < runs; ++r) {
    fv::Timer timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

void report_issue8_targets() {
  fv::par::ThreadPool pool(4);
  fs::remove_all(world().store_dir);
  fs::create_directories(world().store_dir);

  // Cold session: parse + build + compute everything — the honest "what a
  // storeless session pays every start" numbers (persists excluded).
  const auto engine = cold_engine();
  const double cold_engine_s = best_of(3, []() {
    auto built = cold_engine();
    if (built.size() != kGenes) std::abort();
  });

  fv::cluster::DistanceMatrix cold_distances(engine.size());
  const double cold_condensed_s = best_of(3, [&]() {
    engine.condensed_distances(cold_distances.condensed(), pool);
  });

  const sm::LshIndex cold_lsh(engine, lsh_params(), pool);
  const double cold_lsh_s = best_of(3, [&]() {
    const sm::LshIndex built(engine, lsh_params(), pool);
    if (built.size() != kGenes) std::abort();
  });

  {
    st::ArtifactStore store(world().store_dir);
    (void)warm_engine(store);
    (void)st::open_or_compute_condensed(store, engine, pool);
    (void)st::open_or_build_lsh(store, engine, lsh_params(), pool);
  }

  // Warm session: fresh store handles over the same directory, everything
  // served from artifacts. Steady state (best of 5) is the scenario: a
  // warm session's artifacts sit in the OS page cache, exactly like any
  // recently-written file.
  st::ArtifactStore store(world().store_dir);
  st::OpenStats engine_stats, condensed_stats, lsh_stats;
  const auto warm = warm_engine(store, &engine_stats);
  const double warm_engine_s = best_of(5, [&]() {
    st::OpenStats stats;
    auto opened = warm_engine(store, &stats);
    if (!stats.warm || opened.size() != kGenes) std::abort();
  });

  const auto warm_distances =
      st::open_or_compute_condensed(store, warm, pool, &condensed_stats);
  const double warm_condensed_s = best_of(5, [&]() {
    st::OpenStats stats;
    auto opened = st::open_or_compute_condensed(store, warm, pool, &stats);
    if (!stats.warm) std::abort();
  });

  const auto warm_lsh =
      st::open_or_build_lsh(store, warm, lsh_params(), pool, &lsh_stats);
  const double warm_lsh_s = best_of(5, [&]() {
    st::OpenStats stats;
    auto opened =
        st::open_or_build_lsh(store, warm, lsh_params(), pool, &stats);
    if (!stats.warm) std::abort();
  });

  const bool all_warm =
      engine_stats.warm && condensed_stats.warm && lsh_stats.warm;

  // Bit-identity of every warm product against its cold original.
  bool identical = warm.size() == engine.size();
  for (std::size_t i = 0; identical && i + 1 < engine.size(); i += 97) {
    identical = warm.distance(i, i + 1) == engine.distance(i, i + 1);
  }
  const auto cold_span = cold_distances.condensed();
  const auto warm_span = warm_distances.condensed();
  identical = identical && warm_span.size() == cold_span.size() &&
              std::memcmp(warm_span.data(), cold_span.data(),
                          cold_span.size() * sizeof(float)) == 0;
  for (std::size_t i = 0; identical && i < kGenes; i += 131) {
    const auto a = cold_lsh.signature(i);
    const auto b = warm_lsh.signature(i);
    identical = a.size() == b.size() &&
                std::memcmp(a.data(), b.data(),
                            a.size() * sizeof(std::uint64_t)) == 0;
  }

  const double cold_total = cold_engine_s + cold_condensed_s + cold_lsh_s;
  const double warm_total = warm_engine_s + warm_condensed_s + warm_lsh_s;
  const double speedup = warm_total > 0.0 ? cold_total / warm_total : 0.0;
  const auto fsck = st::fsck_scan(world().store_dir);

  std::printf(
      "\n[ISSUE 8 targets @ %zu genes x %zu conditions, 4 threads]\n"
      "  compendium engine: cold (parse + normalize) %.4f s, warm (mmap "
      "artifact) %.4f s (%.0fx)\n"
      "  condensed distances (%zu pairs): cold %.4f s, warm %.4f s "
      "(%.0fx)\n"
      "  lsh signatures (256-bit x 16 tables): cold %.4f s, warm %.4f s "
      "(%.0fx)\n"
      "  combined warm speedup: %.1fx (target >= 20x: %s)\n"
      "  every warm open served from artifacts: %s\n"
      "  warm products bit-identical to cold: %s\n"
      "  store directory fsck: %zu artifacts, %s\n",
      kGenes, kConditions, cold_engine_s, warm_engine_s,
      warm_engine_s > 0.0 ? cold_engine_s / warm_engine_s : 0.0,
      fv::condensed_size(kGenes), cold_condensed_s, warm_condensed_s,
      warm_condensed_s > 0.0 ? cold_condensed_s / warm_condensed_s : 0.0,
      cold_lsh_s, warm_lsh_s,
      warm_lsh_s > 0.0 ? cold_lsh_s / warm_lsh_s : 0.0, speedup,
      speedup >= 20.0 ? "PASS" : "FAIL", all_warm ? "PASS" : "FAIL",
      identical ? "PASS" : "FAIL", fsck.valid,
      fsck.clean() ? "clean (PASS)" : "DAMAGED (FAIL)");
}

// --- Epilogue: the issue-9 acceptance numbers -----------------------------

void report_issue9_targets() {
  fv::par::ThreadPool pool(4);
  // report_issue8_targets leaves the store populated; make sure regardless.
  (void)populated_engine(pool);
  {
    st::ArtifactStore store(world().store_dir);
    (void)warm_engine(store);
  }

  st::ArtifactStore store(world().store_dir);
  st::OpenStats heap_stats;
  const auto heap = warm_engine(store, &heap_stats);
  const auto mapped = mapped_engine(store);
  const double copy_open_s = best_of(5, [&]() {
    st::OpenStats stats;
    auto opened = warm_engine(store, &stats);
    if (!stats.warm) std::abort();
  });
  const double mapped_open_s = best_of(5, [&]() {
    auto opened = mapped_engine(store);
    if (opened.size() != kGenes) std::abort();
  });

  // The distance phase, serial streaming driver, both residencies — the
  // out-of-core acceptance: the mapped run pays page faults + per-stripe
  // backing checks + page releases, and must stay within 1.25x of heap.
  std::vector<float> heap_out(fv::condensed_size(kGenes));
  std::vector<float> mapped_out(fv::condensed_size(kGenes));
  const double heap_serial_s = best_of(3, [&]() {
    heap.condensed_distances(std::span<float>(heap_out));
  });
  const double mapped_serial_s = best_of(3, [&]() {
    mapped.condensed_distances(std::span<float>(mapped_out));
  });
  const double ratio =
      heap_serial_s > 0.0 ? mapped_serial_s / heap_serial_s : 0.0;

  const bool identical =
      std::memcmp(heap_out.data(), mapped_out.data(),
                  heap_out.size() * sizeof(float)) == 0;

  std::printf(
      "\n[ISSUE 9 targets @ %zu genes x %zu conditions, serial distance "
      "phase]\n"
      "  engine open: copy-to-heap %.4f s, borrowed-mapped %.4f s\n"
      "  condensed distances (%zu pairs): heap %.4f s, mapped %.4f s — "
      "ratio %.3fx (target <= 1.25x: %s)\n"
      "  mapped triangle bit-identical to heap: %s\n"
      "  peak-RSS >= 5x drop gate: runs in fv_budget_tests (n where engine "
      "state is ~134 MiB)\n",
      kGenes, kConditions, copy_open_s, mapped_open_s,
      fv::condensed_size(kGenes), heap_serial_s, mapped_serial_s, ratio,
      ratio <= 1.25 ? "PASS" : "FAIL", identical ? "PASS" : "FAIL");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report_issue8_targets();
  report_issue9_targets();
  fs::remove_all(fs::temp_directory_path() / "fv_bench_store");
  return 0;
}