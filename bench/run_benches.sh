#!/usr/bin/env bash
# Runs every benchmark executable and records JSON results so the perf
# trajectory is tracked PR over PR.
#
# Usage: bench/run_benches.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  cmake build tree containing bench/ (default: build)
#   OUT_DIR    where BENCH_<name>.json files land (default: bench_results)
#
# Optional PR-over-PR comparison via FV_BENCH_BASELINE — authoritative
# description in docs/benchmarks.md ("The regression gate and
# FV_BENCH_BASELINE").
#
# JSON goes through --benchmark_out (not stdout redirection) because several
# benches print a human-readable report epilogue after the runs.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench_results}"
SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"

if [ ! -d "${BUILD_DIR}/bench" ]; then
  echo "error: ${BUILD_DIR}/bench not found — configure with" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"

status=0
for exe in "${BUILD_DIR}"/bench/bench_*; do
  [ -x "${exe}" ] || continue
  [ -f "${exe}" ] || continue
  name="$(basename "${exe}")"
  name="${name#bench_}"
  out="${OUT_DIR}/BENCH_${name}.json"
  echo "== ${name} -> ${out}"
  if ! "${exe}" --benchmark_out="${out}" --benchmark_out_format=json \
       "${@:3}"; then
    echo "warning: ${name} failed" >&2
    status=1
  fi
done

if [ -n "${FV_BENCH_BASELINE:-}" ]; then
  echo "== comparing against baseline ${FV_BENCH_BASELINE}"
  if ! python3 "${SCRIPT_DIR}/compare_benchmarks.py" \
       "${FV_BENCH_BASELINE}" "${OUT_DIR}" \
       --threshold "${FV_BENCH_THRESHOLD:-10}"; then
    echo "warning: benchmark regression beyond threshold" >&2
    status=1
  fi
fi
exit "${status}"
