// ISSUE 7 benchmarks: the LSH signature layer behind TopKStrategy::kApprox.
//
// What this bench reports:
//  * BM_LshTopK               — full kApprox top-k (signature build +
//                               candidate generation + exact rescoring)
//                               vs n at the default 256-bit params
//  * BM_LshTopKBits           — the recall/speed curve at n = 4000 over
//                               signature widths 64..512 (tables scale as
//                               bits/16 so slices stay 16 bits); each run
//                               exports recall, candidates_rescored and
//                               exact_dot_fraction as JSON counters, so
//                               the snapshot archive carries the curve
//  * BM_LshTopKExactBaseline  — kExact on the same data (the ground truth
//                               and the denominator of the dot-fraction)
//  * BM_LshSignatureBuild     — the one-pass signature + table build alone
//  * BM_HammingKernel{Popcount,Portable} — packed-signature Hamming
//                               throughput, std::popcount vs explicit SWAR
//  * An ISSUE 7 epilogue at n = 4000 genes x 96 conditions, k = 10:
//    measured recall (target >= 0.95), exact dots as a fraction of
//    kExact's n(n-1)/2 (target <= 20%), per-pair bit-identity of every
//    returned distance (asserted), and the wall-time three-way against
//    kExact and kPruned.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "expr/expression_matrix.hpp"
#include "par/thread_pool.hpp"
#include "sim/lsh.hpp"
#include "sim/similarity_engine.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "util/triangular.hpp"

namespace {

namespace ex = fv::expr;
namespace sm = fv::sim;

constexpr std::size_t kConditions = 96;
constexpr std::size_t kNeighbors = 10;

/// Same dataset-block module compendium as bench_knn_topk's pruned-vs-
/// exact contrast: contiguous 250-gene modules, each varying inside its
/// own pair of 16-condition dataset blocks — within-module correlation
/// ~0.98, cross-module near zero, the shape the recall target is
/// specified on.
const ex::ExpressionMatrix& module_block_matrix(std::size_t genes) {
  static std::map<std::size_t, ex::ExpressionMatrix> cache;
  const auto it = cache.find(genes);
  if (it != cache.end()) return it->second;
  constexpr std::size_t kModuleSize = 250;
  constexpr std::size_t kDatasetCols = 16;
  const std::size_t datasets = kConditions / kDatasetCols;
  fv::Rng rng(91000 + genes);
  ex::ExpressionMatrix m(genes, kConditions);
  for (std::size_t g = 0; g < genes; ++g) {
    const std::size_t module = g / kModuleSize;
    const std::size_t d0 = module % datasets;
    const std::size_t d1 = (module + 1 + module / datasets) % datasets;
    const double freq = 0.25 + 0.05 * static_cast<double>(module % 7);
    const double phase = 0.61 * static_cast<double>(module);
    for (std::size_t c = 0; c < kConditions; ++c) {
      const std::size_t dataset = c / kDatasetCols;
      double value = rng.normal(0.0, 0.05);
      if (dataset == d0 || dataset == d1) {
        value += std::sin(freq * static_cast<double>(c + 1) + phase);
      }
      m.set(g, c, static_cast<float>(value));
    }
  }
  return cache.emplace(genes, std::move(m)).first->second;
}

const sm::SimilarityEngine& engine_for(std::size_t genes) {
  static std::map<std::size_t, sm::SimilarityEngine> cache;
  const auto it = cache.find(genes);
  if (it != cache.end()) return it->second;
  return cache
      .emplace(genes, sm::SimilarityEngine::from_rows(
                          module_block_matrix(genes), sm::Metric::kPearson))
      .first->second;
}

/// kExact ground truth per size, computed once — both the recall
/// reference and the wall-time/dot-count baseline.
const sm::NeighborTable& exact_table_for(std::size_t genes,
                                         fv::par::ThreadPool& pool) {
  static std::map<std::size_t, sm::NeighborTable> cache;
  const auto it = cache.find(genes);
  if (it != cache.end()) return it->second;
  const auto& engine = engine_for(genes);
  return cache
      .emplace(genes, engine.top_k_neighbors(kNeighbors, pool, 0,
                                             sm::TopKStrategy::kExact))
      .first->second;
}

double recall_vs(const sm::NeighborTable& approx,
                 const sm::NeighborTable& exact) {
  std::size_t hits = 0, wanted = 0;
  for (std::size_t i = 0; i < exact.count; ++i) {
    const auto want = exact.neighbors(i);
    const auto got = approx.neighbors(i);
    const std::set<std::uint32_t> got_set(got.begin(), got.end());
    wanted += want.size();
    for (const auto j : want) hits += got_set.count(j);
  }
  return wanted == 0 ? 1.0
                     : static_cast<double>(hits) / static_cast<double>(wanted);
}

/// The curve's parameterization: slices stay 16 bits wide, so wider
/// signatures buy more tables (more OR-chances) instead of stricter keys.
sm::LshParams params_for_bits(std::size_t bits) {
  sm::LshParams p;
  p.bits = bits;
  p.tables = bits / 16;
  p.probes = 2;
  return p;
}

// --- kApprox end to end ---------------------------------------------------

void lsh_topk_phase(benchmark::State& state, std::size_t genes,
                    std::size_t bits) {
  const auto& engine = engine_for(genes);
  fv::par::ThreadPool pool(1);
  const auto params = params_for_bits(bits);
  sm::TopKStats stats;
  sm::NeighborTable table;
  for (auto _ : state) {
    table = engine.top_k_neighbors(kNeighbors, pool, 0,
                                   sm::TopKStrategy::kApprox, &stats, params);
    benchmark::DoNotOptimize(table.indices.data());
  }
  state.counters["recall"] = recall_vs(table, exact_table_for(genes, pool));
  state.counters["candidates_rescored"] =
      static_cast<double>(stats.candidates_rescored);
  state.counters["exact_dot_fraction"] = stats.exact_dot_fraction;
}

void BM_LshTopK(benchmark::State& state) {
  lsh_topk_phase(state, static_cast<std::size_t>(state.range(0)), 256);
}
BENCHMARK(BM_LshTopK)->Arg(1000)->Arg(2000)->Arg(4000)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_LshTopKBits(benchmark::State& state) {
  lsh_topk_phase(state, 4000, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_LshTopKBits)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_LshTopKExactBaseline(benchmark::State& state) {
  const auto& engine = engine_for(static_cast<std::size_t>(state.range(0)));
  fv::par::ThreadPool pool(1);
  for (auto _ : state) {
    const auto table = engine.top_k_neighbors(kNeighbors, pool, 0,
                                              sm::TopKStrategy::kExact);
    benchmark::DoNotOptimize(table.indices.data());
  }
}
BENCHMARK(BM_LshTopKExactBaseline)->Arg(4000)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_LshSignatureBuild(benchmark::State& state) {
  const auto& engine = engine_for(4000);
  fv::par::ThreadPool pool(1);
  const auto params = params_for_bits(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const sm::LshIndex index(engine, params, pool);
    benchmark::DoNotOptimize(index.signature(0).data());
  }
}
BENCHMARK(BM_LshSignatureBuild)->Arg(64)->Arg(256)->Arg(1024)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// --- Hamming kernel microbench --------------------------------------------

constexpr std::size_t kHammingRows = 4096;
constexpr std::size_t kHammingWords = 4;  // 256-bit signatures

const std::vector<std::uint64_t>& hamming_corpus() {
  static std::vector<std::uint64_t> rows = [] {
    fv::Rng rng(4242);
    std::vector<std::uint64_t> r(kHammingRows * kHammingWords);
    for (auto& w : r) w = rng.next_u64();
    return r;
  }();
  return rows;
}

template <std::size_t (*Kernel)(const std::uint64_t*, const std::uint64_t*,
                                std::size_t)>
void hamming_phase(benchmark::State& state) {
  const auto& rows = hamming_corpus();
  std::size_t sum = 0;
  for (auto _ : state) {
    // Row 0 against all rows: kHammingRows kernel calls per iteration.
    const std::uint64_t* base = rows.data();
    for (std::size_t i = 0; i < kHammingRows; ++i) {
      sum += Kernel(base, rows.data() + i * kHammingWords, kHammingWords);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kHammingRows));
}

void BM_HammingKernelPopcount(benchmark::State& state) {
  hamming_phase<sm::hamming_words>(state);
}
void BM_HammingKernelPortable(benchmark::State& state) {
  hamming_phase<sm::hamming_words_portable>(state);
}
BENCHMARK(BM_HammingKernelPopcount)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HammingKernelPortable)->Unit(benchmark::kMicrosecond);

// --- Epilogue: the issue-7 acceptance numbers -----------------------------

void report_issue7_targets() {
  constexpr std::size_t kGenes = 4000;
  const auto& engine = engine_for(kGenes);
  fv::par::ThreadPool pool(1);

  fv::Timer timer;
  const auto exact =
      engine.top_k_neighbors(kNeighbors, pool, 0, sm::TopKStrategy::kExact);
  const double exact_seconds = timer.seconds();
  timer.reset();
  const auto pruned =
      engine.top_k_neighbors(kNeighbors, pool, 0, sm::TopKStrategy::kPruned);
  const double pruned_seconds = timer.seconds();
  timer.reset();
  sm::TopKStats stats;
  const auto approx = engine.top_k_neighbors(
      kNeighbors, pool, 0, sm::TopKStrategy::kApprox, &stats);
  const double approx_seconds = timer.seconds();

  const double recall = recall_vs(approx, exact);
  // kExact's dot-product count is every pair, once: n(n-1)/2.
  const double exact_dots = static_cast<double>(fv::condensed_size(kGenes));
  const double dot_fraction =
      static_cast<double>(stats.candidates_rescored) / exact_dots;

  // Per-pair honesty: every distance kApprox returned must be the exact
  // engine distance, bit for bit.
  bool bit_identical = true;
  for (std::size_t i = 0; i < approx.count && bit_identical; ++i) {
    const auto idx = approx.neighbors(i);
    const auto dist = approx.neighbor_distances(i);
    for (std::size_t s = 0; s < idx.size(); ++s) {
      const std::size_t a = std::min<std::size_t>(i, idx[s]);
      const std::size_t b = std::max<std::size_t>(i, idx[s]);
      if (dist[s] != engine.distance(a, b)) {
        bit_identical = false;
        break;
      }
    }
  }

  std::printf(
      "\n[ISSUE 7 targets @ %zu genes x %zu conditions (dataset-block "
      "modules), k = %zu, 256-bit/16-table/2-probe signatures, 1 thread]\n"
      "  measured recall vs kExact: %.4f (target >= 0.95: %s)\n"
      "  exact dot products: %zu of %.0f pairs = %.1f%% (target <= 20%%: "
      "%s)\n"
      "  every returned distance bit-identical to exact: %s\n"
      "  wall time: exact %.3f s, pruned %.3f s, approx %.3f s (approx "
      "rescoring is sub-quadratic; the signature build is the O(n·bits) "
      "term that amortizes at larger n)\n",
      kGenes, kConditions, kNeighbors, recall,
      recall >= 0.95 ? "PASS" : "FAIL", stats.candidates_rescored,
      exact_dots, 100.0 * dot_fraction,
      dot_fraction <= 0.20 ? "PASS" : "FAIL",
      bit_identical ? "PASS" : "FAIL", exact_seconds, pruned_seconds,
      approx_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report_issue7_targets();
  return 0;
}
