// Experiment F4 (paper Figure 4): SPELL search over a large compendium.
//
// What the paper shows: the SPELL web interface answering a gene-set query
// over "a very large compendia of microarray data", returning ranked
// datasets and genes — and the claim that data-driven search beats text
// matching.
//
// What this bench reports:
//  * SpellSearch/datasets — search latency vs compendium size (≈linear)
//  * SpellSearch/query    — latency vs query size
//  * quality report       — precision@k of SPELL vs the text-match baseline
//                           on planted modules, printed after the runs
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <unordered_set>

#include "expr/synth.hpp"
#include "spell/eval.hpp"
#include "spell/spell.hpp"

namespace {

namespace ex = fv::expr;
namespace sp = fv::spell;

const ex::Compendium& compendium_for(std::size_t datasets) {
  static std::map<std::size_t, ex::Compendium> cache;
  const auto it = cache.find(datasets);
  if (it != cache.end()) return it->second;
  ex::CompendiumSpec spec;
  spec.genome = ex::GenomeSpec::yeast_like(1000);
  // Mix: half informative (stress/nutrient), half noise, like a real
  // public compendium where many datasets are irrelevant to any query.
  spec.stress_datasets = (datasets + 3) / 4;
  spec.nutrient_datasets = (datasets + 2) / 4;
  spec.knockout_datasets = (datasets + 1) / 4;
  spec.noise_datasets = datasets / 4;
  spec.seed = 4000 + datasets;
  return cache.emplace(datasets, ex::make_compendium(spec)).first->second;
}

std::vector<std::string> query_for(const ex::Compendium& compendium,
                                   const std::string& module,
                                   std::size_t size) {
  std::vector<std::string> query;
  for (const std::size_t g : compendium.genome.module_members(module)) {
    query.push_back(compendium.genome.gene(g).systematic_name);
    if (query.size() == size) break;
  }
  return query;
}

void BM_SpellSearch_Datasets(benchmark::State& state) {
  const auto datasets = static_cast<std::size_t>(state.range(0));
  const auto& compendium = compendium_for(datasets);
  const sp::SpellSearch search(compendium.datasets);
  const auto query = query_for(compendium, "ESR_UP", 8);
  for (auto _ : state) {
    const auto result = search.search(query);
    benchmark::DoNotOptimize(result.gene_ranking.size());
  }
  state.counters["datasets"] = static_cast<double>(
      compendium.datasets.size());
}
BENCHMARK(BM_SpellSearch_Datasets)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Arg(60)->Unit(benchmark::kMillisecond);

void BM_SpellSearch_QuerySize(benchmark::State& state) {
  const auto& compendium = compendium_for(12);
  const sp::SpellSearch search(compendium.datasets);
  const auto query = query_for(compendium, "ESR_UP",
                               static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto result = search.search(query);
    benchmark::DoNotOptimize(result.gene_ranking.size());
  }
}
BENCHMARK(BM_SpellSearch_QuerySize)->Arg(2)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_TextMatchBaseline(benchmark::State& state) {
  const auto& compendium = compendium_for(12);
  const auto query = query_for(compendium, "ESR_UP", 8);
  for (auto _ : state) {
    const auto result = sp::text_match_baseline(compendium.datasets, query);
    benchmark::DoNotOptimize(result.gene_ranking.size());
  }
}
BENCHMARK(BM_TextMatchBaseline)->Unit(benchmark::kMillisecond);

void print_quality_report() {
  std::printf("\n[F4 quality] retrieval of held-out planted-module genes "
              "(12-dataset compendium):\n");
  std::printf("  %-8s %-10s %-10s %-10s %-10s\n", "module", "SPELL_p10",
              "SPELL_AP", "text_p10", "text_AP");
  const auto& compendium = compendium_for(12);
  const sp::SpellSearch search(compendium.datasets);
  for (const std::string module : {"ESR_UP", "RP", "RIBI", "MITO"}) {
    const auto query = query_for(compendium, module, 6);
    std::unordered_set<std::string> held_out;
    for (const std::size_t g : compendium.genome.module_members(module)) {
      const std::string& name = compendium.genome.gene(g).systematic_name;
      if (std::find(query.begin(), query.end(), name) == query.end()) {
        held_out.insert(name);
      }
    }
    sp::SpellOptions options;
    options.exclude_query_from_ranking = true;
    const auto spell_result = search.search(query, options);
    const auto baseline = sp::text_match_baseline(compendium.datasets, query);
    std::printf("  %-8s %-10.2f %-10.2f %-10.2f %-10.2f\n", module.c_str(),
                sp::precision_at_k(spell_result.gene_ranking, held_out, 10),
                sp::average_precision(spell_result.gene_ranking, held_out),
                sp::precision_at_k(baseline.gene_ranking, held_out, 10),
                sp::average_precision(baseline.gene_ranking, held_out));
  }
  std::printf("  (SPELL uses the data; the text baseline can only exploit "
              "shared annotation words)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_quality_report();
  return 0;
}
