// Experiment F2 (paper Figure 2): multi-pane ForestView rendering.
//
// What the paper shows: the application displaying a gene subset across
// several datasets at once — global views, dendrograms, synchronized zoom
// views, annotations.
//
// What this bench reports:
//  * RenderFrame/panes      — full-frame render time vs #datasets (≈linear)
//  * RenderFrame/selection  — render time vs selection size
//  * SyncOn vs SyncOff      — ablation A1: the synchronization layer's cost
//    (aligned gap rows vs per-dataset order)
//  * RecordFrame            — command-stream recording cost (wall path)
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "cluster/hclust.hpp"
#include "core/app.hpp"
#include "core/session.hpp"
#include "expr/synth.hpp"
#include "wall/command.hpp"

namespace {

namespace ex = fv::expr;
namespace co = fv::core;

constexpr std::size_t kGenes = 1200;

/// One session per pane count; the first dataset carries a dendrogram.
co::Session& session_for(std::size_t panes, std::size_t selection) {
  static std::map<std::pair<std::size_t, std::size_t>,
                  std::unique_ptr<co::Session>>
      cache;
  const auto key = std::make_pair(panes, selection);
  const auto it = cache.find(key);
  if (it != cache.end()) return *it->second;
  ex::CompendiumSpec spec;
  spec.genome = ex::GenomeSpec::yeast_like(kGenes);
  spec.stress_datasets = panes;
  spec.nutrient_datasets = 0;
  spec.knockout_datasets = 0;
  spec.noise_datasets = 0;
  spec.seed = 2000 + panes;
  auto compendium = ex::make_compendium(spec);
  fv::par::ThreadPool pool;
  fv::cluster::cluster_genes(compendium.datasets[0],
                             fv::cluster::Metric::kPearson,
                             fv::cluster::Linkage::kAverage, pool);
  auto session = std::make_unique<co::Session>(std::move(compendium.datasets));
  session->select_region(0, 0, selection);
  return *cache.emplace(key, std::move(session)).first->second;
}

const co::FrameConfig kDesktop{1600, 1200, 4, {}};

void BM_RenderFrame_Panes(benchmark::State& state) {
  auto& session = session_for(static_cast<std::size_t>(state.range(0)), 100);
  co::ForestViewApp app(&session);
  for (auto _ : state) {
    benchmark::DoNotOptimize(app.render_desktop(kDesktop));
  }
  state.counters["panes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RenderFrame_Panes)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_RenderFrame_Selection(benchmark::State& state) {
  auto& session = session_for(4, static_cast<std::size_t>(state.range(0)));
  co::ForestViewApp app(&session);
  for (auto _ : state) {
    benchmark::DoNotOptimize(app.render_desktop(kDesktop));
  }
  state.counters["selected"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RenderFrame_Selection)->Arg(10)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);

void BM_RenderFrame_SyncOn(benchmark::State& state) {
  auto& session = session_for(8, 200);
  if (!session.sync().synchronized()) session.toggle_sync();
  co::ForestViewApp app(&session);
  for (auto _ : state) {
    benchmark::DoNotOptimize(app.render_desktop(kDesktop));
  }
}
BENCHMARK(BM_RenderFrame_SyncOn)->Unit(benchmark::kMillisecond);

void BM_RenderFrame_SyncOff(benchmark::State& state) {
  auto& session = session_for(8, 200);
  if (session.sync().synchronized()) session.toggle_sync();
  co::ForestViewApp app(&session);
  for (auto _ : state) {
    benchmark::DoNotOptimize(app.render_desktop(kDesktop));
  }
  if (!session.sync().synchronized()) session.toggle_sync();  // restore
}
BENCHMARK(BM_RenderFrame_SyncOff)->Unit(benchmark::kMillisecond);

void BM_SelectionPropagation(benchmark::State& state) {
  // The interactive-latency path: user drags a new region; every pane's
  // zoom rows are recomputed through the catalog.
  auto& session = session_for(static_cast<std::size_t>(state.range(0)), 100);
  std::size_t first = 0;
  for (auto _ : state) {
    session.select_region(0, first % 500, 100);
    first += 37;
    std::size_t rows = 0;
    for (std::size_t d = 0; d < session.dataset_count(); ++d) {
      rows += session.sync().zoom_rows(d, session.selection()).size();
    }
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_SelectionPropagation)->Arg(2)->Arg(8)->Arg(16);

void BM_RecordFrame(benchmark::State& state) {
  auto& session = session_for(4, 200);
  co::ForestViewApp app(&session);
  std::size_t commands = 0;
  for (auto _ : state) {
    const auto list = app.record_frame(kDesktop);
    commands = list.size();
    benchmark::DoNotOptimize(list.size());
  }
  state.counters["commands"] = static_cast<double>(commands);
}
BENCHMARK(BM_RecordFrame)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
