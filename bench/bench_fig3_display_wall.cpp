// Experiment F3 (paper Figure 3): display-wall scalability.
//
// What the paper claims: the same software scales from a desktop to a
// large-format tiled wall, buying ~two orders of magnitude of visualization
// capability (resolution x physical scale).
//
// What this bench reports:
//  * WallFrame/tiles     — end-to-end frame time vs tile count (fixed tile
//                          size, so total pixels grow with tiles);
//                          counters: Mpix/s throughput, cull efficiency
//  * FixedCanvas/tiles   — same canvas area split across more tiles
//                          (parallel speedup of the raster stage)
//  * Broadcast vs P2P    — ablation A2: distribution strategy bytes/time
//  * PixelClaim          — desktop vs Princeton-wall pixel capability
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>

#include "core/app.hpp"
#include "core/session.hpp"
#include "expr/synth.hpp"
#include "wall/wall_display.hpp"

namespace {

namespace ex = fv::expr;
namespace co = fv::core;
namespace wl = fv::wall;

co::Session& shared_session() {
  static std::unique_ptr<co::Session> session = [] {
    ex::CompendiumSpec spec;
    spec.genome = ex::GenomeSpec::yeast_like(800);
    spec.stress_datasets = 4;
    spec.nutrient_datasets = 0;
    spec.knockout_datasets = 0;
    spec.noise_datasets = 0;
    spec.seed = 3000;
    auto compendium = ex::make_compendium(spec);
    auto s = std::make_unique<co::Session>(std::move(compendium.datasets));
    s->select_region(0, 0, 150);
    return s;
  }();
  return *session;
}

/// The frame command stream for a given canvas size, cached.
const wl::CommandList& commands_for(long width, long height) {
  static std::map<std::pair<long, long>, wl::CommandList> cache;
  const auto key = std::make_pair(width, height);
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  co::ForestViewApp app(&shared_session());
  co::FrameConfig config;
  config.width = width;
  config.height = height;
  return cache.emplace(key, app.record_frame(config)).first->second;
}

/// Growing wall: fixed 512x384 tiles, more of them => more pixels.
void BM_WallFrame_Tiles(benchmark::State& state) {
  const auto tiles = static_cast<std::size_t>(state.range(0));
  // Arrange as close to square as possible.
  std::size_t cols = 1;
  while (cols * cols < tiles) ++cols;
  while (tiles % cols != 0) ++cols;
  const wl::WallSpec spec{cols, tiles / cols, 512, 384};
  const auto& commands = commands_for(static_cast<long>(spec.total_width()),
                                      static_cast<long>(spec.total_height()));
  wl::FrameStats last{};
  for (auto _ : state) {
    const auto result = wl::render_wall_frame(commands, spec);
    last = result.stats;
    benchmark::DoNotOptimize(result.frame.pixel_count());
  }
  state.counters["tiles"] = static_cast<double>(tiles);
  state.counters["Mpix"] = static_cast<double>(spec.total_pixels()) * 1e-6;
  state.counters["Mpix/s"] = benchmark::Counter(
      static_cast<double>(spec.total_pixels()) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["cull_ratio"] =
      static_cast<double>(last.commands_executed) /
      static_cast<double>(std::max<std::size_t>(1, last.commands_total));
}
BENCHMARK(BM_WallFrame_Tiles)->Arg(1)->Arg(2)->Arg(4)->Arg(6)->Arg(12)
    ->Arg(24)->Unit(benchmark::kMillisecond)->Iterations(2)->UseRealTime();

/// Fixed canvas (1536x768) split across 1..8 render nodes: raster-stage
/// parallelism at constant work.
void BM_FixedCanvas_Nodes(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const wl::WallSpec spec{8, 2, 192, 384};  // 16 tiles, 1536x768 total
  const auto& commands = commands_for(static_cast<long>(spec.total_width()),
                                      static_cast<long>(spec.total_height()));
  for (auto _ : state) {
    const auto result = wl::render_wall_frame(
        commands, spec, wl::Distribution::kBroadcast, nodes);
    benchmark::DoNotOptimize(result.frame.pixel_count());
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_FixedCanvas_Nodes)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(2)->UseRealTime();

/// Ablation A2: broadcast vs per-node point-to-point distribution.
void BM_Distribution(benchmark::State& state) {
  const auto mode = static_cast<wl::Distribution>(state.range(0));
  const wl::WallSpec spec{4, 3, 256, 192};
  const auto& commands = commands_for(static_cast<long>(spec.total_width()),
                                      static_cast<long>(spec.total_height()));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto result = wl::render_wall_frame(commands, spec, mode);
    bytes = result.stats.bytes_distributed;
    benchmark::DoNotOptimize(result.frame.pixel_count());
  }
  state.counters["MB_shipped"] = static_cast<double>(bytes) * 1e-6;
  state.SetLabel(mode == wl::Distribution::kBroadcast ? "broadcast"
                                                      : "point-to-point");
}
BENCHMARK(BM_Distribution)
    ->Arg(static_cast<int>(wl::Distribution::kBroadcast))
    ->Arg(static_cast<int>(wl::Distribution::kPointToPoint))
    ->Unit(benchmark::kMillisecond)->Iterations(2)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // The paper's §1 capability claim, stated with our concrete numbers.
  const auto desktop = wl::WallSpec::desktop();
  const auto wall = wl::WallSpec::princeton_wall();
  std::printf(
      "\n[PixelClaim] desktop %zux%zu = %.1f Mpixel; Princeton wall "
      "%zux%zu = %.1f Mpixel across %zu tiles -> %.1fx resolution "
      "(paper claims ~two orders of magnitude improvement in visualization "
      "capability counting resolution AND physical scale)\n",
      desktop.total_width(), desktop.total_height(),
      static_cast<double>(desktop.total_pixels()) / 1e6, wall.total_width(),
      wall.total_height(), static_cast<double>(wall.total_pixels()) / 1e6,
      wall.tile_count(),
      static_cast<double>(wall.total_pixels()) /
          static_cast<double>(desktop.total_pixels()));
  return 0;
}
