// Experiment F5 (paper Figure 5): GOLEM — GO enrichment and the local
// exploration map.
//
// What the paper shows: a portion of the GO hierarchy visualized by GOLEM,
// backing "robust statistical analyses of clusters" plus context.
//
// What this bench reports:
//  * Propagate/terms   — true-path propagation cost vs ontology size
//  * Enrich/terms      — enrichment cost vs ontology size
//  * LocalMap/focus    — subgraph extraction + layered layout cost
//  * DrawMap           — map rasterization cost
//  * quality report    — planted-term recovery (rank & q-value) per module
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>

#include "expr/synth.hpp"
#include "go/golem.hpp"
#include "go/local_map.hpp"
#include "go/synth_ontology.hpp"
#include "render/framebuffer.hpp"

namespace {

namespace ex = fv::expr;
namespace go = fv::go;

const ex::SynthGenome& genome() {
  static const ex::SynthGenome g =
      ex::make_genome(ex::GenomeSpec::yeast_like(1500), 51);
  return g;
}

/// Ontologies of increasing size via depth (4^d leaves).
const go::SynthOntology& ontology_for(std::size_t depth) {
  static std::map<std::size_t, std::unique_ptr<go::SynthOntology>> cache;
  const auto it = cache.find(depth);
  if (it != cache.end()) return *it->second;
  go::SynthOntologySpec spec;
  spec.depth = depth;
  spec.seed = 60 + depth;
  auto synth = std::make_unique<go::SynthOntology>(
      go::make_synth_ontology(genome(), spec));
  return *cache.emplace(depth, std::move(synth)).first->second;
}

std::vector<std::string> module_query(const std::string& module) {
  std::vector<std::string> query;
  for (const std::size_t g : genome().module_members(module)) {
    query.push_back(genome().gene(g).systematic_name);
  }
  return query;
}

void BM_Propagate(benchmark::State& state) {
  const auto& synth = ontology_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto propagated = synth.direct.propagated();
    benchmark::DoNotOptimize(propagated.gene_count());
  }
  state.counters["terms"] = static_cast<double>(
      synth.ontology->term_count());
}
BENCHMARK(BM_Propagate)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);

void BM_Enrich(benchmark::State& state) {
  const auto& synth = ontology_for(static_cast<std::size_t>(state.range(0)));
  const auto query = module_query("ESR_UP");
  for (auto _ : state) {
    const auto result = go::enrich(synth.propagated, query);
    benchmark::DoNotOptimize(result.terms.size());
  }
  state.counters["terms"] = static_cast<double>(
      synth.ontology->term_count());
}
BENCHMARK(BM_Enrich)->Arg(3)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_LocalMap(benchmark::State& state) {
  const auto& synth = ontology_for(4);
  const auto query = module_query("ESR_UP");
  const auto enrichment = go::enrich(synth.propagated, query);
  for (auto _ : state) {
    const auto map = go::build_local_map(*synth.ontology, enrichment, 0.05);
    benchmark::DoNotOptimize(map.nodes.size());
  }
}
BENCHMARK(BM_LocalMap);

void BM_DrawMap(benchmark::State& state) {
  const auto& synth = ontology_for(4);
  const auto enrichment = go::enrich(synth.propagated, module_query("RP"));
  const auto map = go::build_local_map(*synth.ontology, enrichment, 0.05);
  fv::render::Framebuffer fb(1024, 768);
  for (auto _ : state) {
    go::draw_local_map(fb, *synth.ontology, map, 0, 0, 1024, 768);
    benchmark::DoNotOptimize(fb.pixel_count());
  }
}
BENCHMARK(BM_DrawMap)->Unit(benchmark::kMillisecond);

void print_quality_report() {
  std::printf("\n[F5 quality] planted-term recovery per module (depth-4 "
              "ontology, %zu terms):\n",
              ontology_for(4).ontology->term_count());
  std::printf("  %-8s %-6s %-12s %-12s\n", "module", "rank", "q(BH)",
              "fold");
  const auto& synth = ontology_for(4);
  for (const std::string& module : genome().module_names()) {
    const auto result = go::enrich(synth.propagated, module_query(module));
    const go::TermIndex truth = synth.module_terms.at(module);
    std::size_t rank = 0;
    for (std::size_t i = 0; i < result.terms.size(); ++i) {
      if (result.terms[i].term == truth) {
        rank = i + 1;
        std::printf("  %-8s %-6zu %-12.2e %-12.1f\n", module.c_str(), rank,
                    result.terms[i].q_benjamini_hochberg,
                    result.terms[i].fold_enrichment);
        break;
      }
    }
    if (rank == 0) std::printf("  %-8s NOT RECOVERED\n", module.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_quality_report();
  return 0;
}
