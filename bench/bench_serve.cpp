// ISSUE 10 benchmarks: the serving layer (src/serve) under multi-user
// load — N sessions over ONE shared borrowed-mapped compendium artifact.
//
// What this bench reports:
//  * BM_ServeHealthz        — request-dispatch overhead (no job)
//  * BM_ServeColdTopkJob    — submit -> wait -> fetch of a top-k job on a
//                             FRESH service: the full compute cost a first
//                             user pays on the mapped n=4000 engine
//  * BM_ServeCachedTopkJob  — the same request against a warmed service:
//                             the content-addressed cache path
//  * BM_ServeConcurrent8Users — 8 client threads round-tripping cached
//                             jobs against one service; per-request
//                             latencies feed a p99_ms counter so the tail
//                             lands in the JSON snapshot run_benches.sh
//                             records
//  * An ISSUE 10 epilogue: 8 concurrent synthetic users on the shared
//    mapped compendium — every response byte-compared against a
//    single-user serial reference (gate: bit-identical), cache-hit vs
//    cold-compute wall time (gate: >= 10x), and the concurrent p99.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "expr/dataset.hpp"
#include "expr/gene.hpp"
#include "par/thread_pool.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"
#include "sim/similarity_engine.hpp"
#include "store/artifact_store.hpp"
#include "store/cached.hpp"
#include "util/rng.hpp"

namespace {

namespace ex = fv::expr;
namespace sv = fv::serve;
namespace st = fv::store;
namespace fs = std::filesystem;

constexpr std::size_t kGenes = 4000;
constexpr std::size_t kConditions = 96;

/// Module-block compendium, same shape as bench_store: correlated gene
/// modules so top-k has real structure to find.
ex::ExpressionMatrix module_block_matrix() {
  constexpr std::size_t kModuleSize = 250;
  constexpr std::size_t kDatasetCols = 16;
  const std::size_t datasets = kConditions / kDatasetCols;
  fv::Rng rng(104000);
  ex::ExpressionMatrix m(kGenes, kConditions);
  for (std::size_t g = 0; g < kGenes; ++g) {
    const std::size_t module = g / kModuleSize;
    const std::size_t d0 = module % datasets;
    const std::size_t d1 = (module + 1 + module / datasets) % datasets;
    const double freq = 0.25 + 0.05 * static_cast<double>(module % 7);
    const double phase = 0.61 * static_cast<double>(module);
    for (std::size_t c = 0; c < kConditions; ++c) {
      const std::size_t dataset = c / kDatasetCols;
      double value = rng.normal(0.0, 0.05);
      if (dataset == d0 || dataset == d1) {
        value += std::sin(freq * static_cast<double>(c + 1) + phase);
      }
      m.set(g, c, static_cast<float>(value));
    }
  }
  return m;
}

/// The shared world every benchmark uses: one artifact store holding the
/// n=4000 engine, opened BORROWED-MAPPED (open_or_build_engine_mapped), so
/// all services, sessions and client threads read one shared mapping.
struct BenchWorld {
  std::string root;
  std::shared_ptr<const std::vector<ex::Dataset>> datasets;
  std::unique_ptr<st::ArtifactStore> store;
  sv::SharedCompendium compendium;
  fv::par::ThreadPool pool{4};

  BenchWorld() {
    root = (fs::temp_directory_path() / "fv_bench_serve").string();
    fs::remove_all(root);
    fs::create_directories(root);

    auto matrix = module_block_matrix();
    std::vector<ex::GeneInfo> genes(kGenes);
    for (std::size_t g = 0; g < kGenes; ++g) {
      char name[16];
      std::snprintf(name, sizeof(name), "G%05zu", g);
      genes[g] = ex::GeneInfo{name, name, "synthetic"};
    }
    std::vector<std::string> conditions(kConditions);
    for (std::size_t c = 0; c < kConditions; ++c) {
      conditions[c] = "cond" + std::to_string(c);
    }
    const st::ArtifactKey input_key = st::matrix_key(matrix);
    std::vector<ex::Dataset> vec;
    vec.emplace_back("bench_serve", std::move(genes), std::move(conditions),
                     std::move(matrix));
    datasets =
        std::make_shared<const std::vector<ex::Dataset>>(std::move(vec));

    store = std::make_unique<st::ArtifactStore>(root + "/store");
    auto engine = std::make_shared<fv::sim::SimilarityEngine>(
        st::open_or_build_engine_mapped(
            *store, input_key, [&] { return (*datasets)[0].values(); },
            fv::sim::Metric::kPearson));
    // SPELL is deliberately absent: the bench workload is cluster/topk.
    compendium = sv::make_shared_compendium(std::move(engine), datasets);
  }
  ~BenchWorld() { fs::remove_all(root); }
};

BenchWorld& world() {
  static BenchWorld w;
  return w;
}

sv::HttpRequest make_request(const std::string& method, const std::string& path,
                             const std::string& body = "") {
  sv::HttpRequest request;
  request.method = method;
  request.path = path;
  request.body = body;
  return request;
}

std::string json_field(const std::string& body, const std::string& key) {
  const sv::JsonValue parsed = sv::parse_json(body);
  const sv::JsonValue* value = parsed.find(key);
  if (value == nullptr) {
    std::fprintf(stderr, "bench_serve: no \"%s\" in response: %s\n",
                 key.c_str(), body.c_str());
    std::abort();
  }
  return value->as_string();
}

std::string create_session(sv::AnalysisService& service) {
  return json_field(service.handle(make_request("POST", "/sessions")).body,
                    "session");
}

/// One full client round trip: submit -> bounded wait -> fetch result
/// bytes. Aborts on any unexpected status (a bench must not average over
/// failures).
std::string run_job(sv::AnalysisService& service, const std::string& sid,
                    const std::string& body) {
  const auto submit =
      service.handle(make_request("POST", "/sessions/" + sid + "/jobs", body));
  if (submit.status != 202 && submit.status != 200) std::abort();
  const std::string job = json_field(submit.body, "job");
  service.wait_job(job, std::chrono::minutes(5));
  const auto result = service.handle(
      make_request("GET", "/sessions/" + sid + "/jobs/" + job + "/result"));
  if (result.status != 200) std::abort();
  return result.body;
}

/// The mixed job bodies of the multi-user scenario. All are pure
/// functions of the shared compendium, so they cache and byte-compare.
std::vector<std::string> job_mix() {
  return {
      "{\"type\":\"topk\",\"k\":5,\"rows\":32}",
      "{\"type\":\"topk\",\"k\":10,\"rows\":32}",
      "{\"type\":\"topk\",\"k\":10,\"rows\":64,\"strategy\":\"exact\"}",
      "{\"type\":\"topk\",\"k\":15,\"rows\":16}",
  };
}

constexpr const char* kColdBody = "{\"type\":\"topk\",\"k\":10,\"rows\":32}";

void BM_ServeHealthz(benchmark::State& state) {
  sv::AnalysisService service(world().compendium, world().pool);
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.handle(make_request("GET", "/healthz")));
  }
}
BENCHMARK(BM_ServeHealthz);

void BM_ServeColdTopkJob(benchmark::State& state) {
  for (auto _ : state) {
    // A fresh service has an empty result cache: this is the cold path.
    sv::AnalysisService service(world().compendium, world().pool);
    const std::string sid = create_session(service);
    benchmark::DoNotOptimize(run_job(service, sid, kColdBody));
  }
}
BENCHMARK(BM_ServeColdTopkJob)->Unit(benchmark::kMillisecond);

void BM_ServeCachedTopkJob(benchmark::State& state) {
  sv::AnalysisService service(world().compendium, world().pool);
  const std::string sid = create_session(service);
  (void)run_job(service, sid, kColdBody);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_job(service, sid, kColdBody));
  }
}
BENCHMARK(BM_ServeCachedTopkJob)->Unit(benchmark::kMicrosecond);

void BM_ServeConcurrent8Users(benchmark::State& state) {
  constexpr std::size_t kUsers = 8;
  sv::AnalysisService::Options options;
  options.job_workers = 4;
  options.max_active_jobs = 64;
  sv::AnalysisService service(world().compendium, world().pool, options);
  {
    const std::string sid = create_session(service);
    for (const std::string& body : job_mix()) (void)run_job(service, sid, body);
  }
  // One session per user, created OUTSIDE the timing loop: the benchmark
  // iterates many times and per-iteration sessions would overflow the
  // (deliberately bounded) session table.
  std::vector<std::string> sessions(kUsers);
  for (std::size_t u = 0; u < kUsers; ++u) {
    sessions[u] = create_session(service);
  }

  std::vector<double> latencies_ms;
  for (auto _ : state) {
    std::vector<std::thread> users;
    std::vector<std::vector<double>> per_user(kUsers);
    for (std::size_t u = 0; u < kUsers; ++u) {
      users.emplace_back([&service, &per_user, &sessions, u] {
        const std::string& sid = sessions[u];
        for (const std::string& body : job_mix()) {
          const auto start = std::chrono::steady_clock::now();
          (void)run_job(service, sid, body);
          per_user[u].push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count());
        }
      });
    }
    for (std::thread& t : users) t.join();
    for (const auto& user : per_user) {
      latencies_ms.insert(latencies_ms.end(), user.begin(), user.end());
    }
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  if (!latencies_ms.empty()) {
    const std::size_t idx = std::min(
        latencies_ms.size() - 1,
        static_cast<std::size_t>(0.99 * static_cast<double>(latencies_ms.size())));
    state.counters["p99_ms"] = latencies_ms[idx];
    state.counters["p50_ms"] = latencies_ms[latencies_ms.size() / 2];
  }
}
BENCHMARK(BM_ServeConcurrent8Users)->Unit(benchmark::kMillisecond);

double seconds_of(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// The ISSUE 10 acceptance epilogue.
void report_issue10_targets() {
  constexpr std::size_t kUsers = 8;
  constexpr std::size_t kRoundsPerUser = 4;
  const std::vector<std::string> mix = job_mix();

  // 1. Single-user serial reference: each distinct body computed once, in
  //    order, on its own service.
  std::map<std::string, std::string> reference;
  {
    sv::AnalysisService serial(world().compendium, world().pool);
    const std::string sid = create_session(serial);
    for (const std::string& body : mix) {
      reference[body] = run_job(serial, sid, body);
    }
  }

  // 2. 8 concurrent synthetic users on a fresh service over the SAME
  //    shared mapped compendium, every response byte-compared.
  sv::AnalysisService::Options options;
  options.job_workers = 4;
  options.max_active_jobs = kUsers * mix.size();
  sv::AnalysisService service(world().compendium, world().pool, options);
  std::vector<std::vector<double>> per_user(kUsers);
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> users;
  for (std::size_t u = 0; u < kUsers; ++u) {
    users.emplace_back([&, u] {
      const std::string sid = create_session(service);
      for (std::size_t round = 0; round < kRoundsPerUser; ++round) {
        for (std::size_t j = 0; j < mix.size(); ++j) {
          const std::string& body = mix[(j + u) % mix.size()];
          const auto start = std::chrono::steady_clock::now();
          const std::string result = run_job(service, sid, body);
          per_user[u].push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count());
          if (result != reference.at(body)) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : users) t.join();

  std::vector<double> latencies;
  for (const auto& user : per_user) {
    latencies.insert(latencies.end(), user.begin(), user.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double p99 =
      latencies[std::min(latencies.size() - 1,
                         static_cast<std::size_t>(
                             0.99 * static_cast<double>(latencies.size())))];

  // 3. Cache-hit vs cold-compute on one more fresh service.
  double cold_s = 0.0;
  double warm_s = 0.0;
  {
    sv::AnalysisService fresh(world().compendium, world().pool);
    const std::string sid = create_session(fresh);
    cold_s = seconds_of([&] { (void)run_job(fresh, sid, kColdBody); });
    warm_s = seconds_of([&] { (void)run_job(fresh, sid, kColdBody); });
    for (int i = 0; i < 4; ++i) {
      warm_s = std::min(
          warm_s, seconds_of([&] { (void)run_job(fresh, sid, kColdBody); }));
    }
  }
  const double speedup = warm_s > 0.0 ? cold_s / warm_s : 0.0;

  const bool identical = mismatches.load() == 0;
  std::printf(
      "\n[ISSUE 10 targets @ %zu genes x %zu conditions, shared mapped "
      "compendium]\n"
      "  %zu concurrent users x %zu requests: %zu responses, p50 %.3f ms, "
      "p99 %.3f ms\n"
      "  bit-identical to single-user serial reference: %s\n"
      "  cache hit %.6f s vs cold compute %.4f s — %.1fx (target >= 10x: "
      "%s)\n"
      "  service stats: computes=%llu cache_hits=%llu rejected=%llu\n",
      kGenes, kConditions, kUsers, kRoundsPerUser * mix.size(),
      latencies.size(), latencies[latencies.size() / 2], p99,
      identical ? "PASS" : "FAIL", warm_s, cold_s, speedup,
      speedup >= 10.0 ? "PASS" : "FAIL",
      static_cast<unsigned long long>(service.stats().computes.load()),
      static_cast<unsigned long long>(service.stats().cache_hits.load()),
      static_cast<unsigned long long>(service.stats().jobs_rejected.load()));
  if (!identical || speedup < 10.0) {
    std::printf("  ISSUE 10 GATE FAILED\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report_issue10_targets();
  return 0;
}
