// ISSUE 2 + ISSUE 4 benchmarks: condensed distance storage, NN-chain
// agglomeration, and the generic heap agglomerator.
//
// What this bench reports:
//  * BM_DistancePhase{Condensed,Dense} — the engine's condensed tile writer
//    vs the dense writer (same values; condensed touches half the memory).
//  * BM_Agglomerate{NNChain,Seed} — the NN-chain agglomerator (guaranteed
//    O(n²)) vs the seed's nearest-neighbor-cached agglomeration, whose
//    rescans degrade toward O(n³) on module-structured expression data —
//    exactly what genomic compendia look like.
//  * BM_AgglomerateHeap — the lazy-deletion heap agglomerator on the
//    linkages NN-chain cannot run (centroid/median) plus Ward forced
//    through it, over squared Euclidean distances.
//  * An epilogue head-to-head at n = 4000 genes: end-to-end gene clustering
//    (distances + agglomeration + tree) old path vs new, plus measured RSS
//    of the dense vs condensed distance storage. Targets: >= 3x end-to-end
//    vs seed and condensed <= 55% of dense memory (issue 2); heap-path
//    end-to-end within 3x of NN-chain (issue 4).
#include <benchmark/benchmark.h>

#include <malloc.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <numeric>
#include <span>
#include <vector>

#include "cluster/distance.hpp"
#include "cluster/hclust.hpp"
#include "expr/expression_matrix.hpp"
#include "par/thread_pool.hpp"
#include "sim/similarity_engine.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "util/triangular.hpp"

namespace {

namespace cl = fv::cluster;
namespace ex = fv::expr;
namespace sm = fv::sim;

constexpr std::size_t kConditions = 96;  // 4 stresses x 24 time points

/// Module-structured expression data: genes fall into tightly co-regulated
/// modules (shared response pattern + per-gene noise), the hallmark shape
/// of real compendia — stress regulons, ribosome biogenesis, cell cycle.
/// This is the seed agglomerator's worst case: within a module every slot's
/// cached nearest neighbor points at a module-mate, so each merge
/// invalidates O(module) caches and triggers that many full O(n) rescans —
/// O(m²·n) per module. The NN-chain is O(n²) on any input.
const ex::ExpressionMatrix& genes_matrix(std::size_t genes) {
  static std::map<std::size_t, ex::ExpressionMatrix> cache;
  const auto it = cache.find(genes);
  if (it != cache.end()) return it->second;
  constexpr std::size_t kModuleSize = 250;
  const std::size_t modules = std::max<std::size_t>(1, genes / kModuleSize);
  fv::Rng rng(9000 + genes);
  ex::ExpressionMatrix m(genes, kConditions);
  for (std::size_t g = 0; g < genes; ++g) {
    const double phase = static_cast<double>(g % modules) * 0.61;
    const double freq = 0.25 + 0.05 * static_cast<double>(g % modules);
    for (std::size_t c = 0; c < kConditions; ++c) {
      const double pattern =
          std::sin(freq * static_cast<double>(c + 1) + phase);
      m.set(g, c, static_cast<float>(pattern + rng.normal(0.0, 0.05)));
    }
  }
  return cache.emplace(genes, std::move(m)).first->second;
}

const cl::DistanceMatrix& distances_for(std::size_t genes) {
  static std::map<std::size_t, cl::DistanceMatrix> cache;
  const auto it = cache.find(genes);
  if (it != cache.end()) return it->second;
  fv::par::ThreadPool pool(1);
  return cache
      .emplace(genes, cl::row_distances(genes_matrix(genes),
                                        cl::Metric::kPearson, pool))
      .first->second;
}

/// Squared Euclidean distances for the Ward/centroid/median benches, cached
/// like distances_for.
const cl::DistanceMatrix& squared_distances_for(std::size_t genes) {
  static std::map<std::size_t, cl::DistanceMatrix> cache;
  const auto it = cache.find(genes);
  if (it != cache.end()) return it->second;
  fv::par::ThreadPool pool(1);
  return cache
      .emplace(genes, cl::row_squared_distances(genes_matrix(genes), pool))
      .first->second;
}

// --- The seed's agglomerator, verbatim over dense storage -----------------
// Kept here as the speedup reference: globally-closest-pair selection with
// per-slot nearest-neighbor caches, Lance–Williams updates in a dense
// mutable n x n matrix, full O(n) rescans whenever a cached neighbor dies.

struct DenseDistances {
  std::size_t n = 0;
  std::vector<float> values;  // n x n, symmetric

  explicit DenseDistances(const cl::DistanceMatrix& condensed)
      : n(condensed.size()), values(n * n, 0.0f) {
    // Mirror the condensed strict upper triangle into the dense layout the
    // seed agglomerator mutates (the dense() compat accessor is gone).
    const std::span<const float> packed = condensed.condensed();
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const std::size_t base = fv::condensed_index(i, i + 1, n) - (i + 1);
      for (std::size_t j = i + 1; j < n; ++j) {
        const float d = packed[base + j];
        values[i * n + j] = d;
        values[j * n + i] = d;
      }
    }
  }

  float at(std::size_t i, std::size_t j) const { return values[i * n + j]; }
  void set(std::size_t i, std::size_t j, float d) {
    values[i * n + j] = d;
    values[j * n + i] = d;
  }
};

std::vector<cl::Merge> seed_agglomerate(DenseDistances distances,
                                        cl::Linkage linkage) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  const std::size_t n = distances.n;
  std::vector<cl::Merge> merges;
  if (n <= 1) return merges;
  merges.reserve(n - 1);

  std::vector<bool> active(n, true);
  std::vector<std::size_t> cluster_size(n, 1);
  std::vector<int> node_id(n);
  std::iota(node_id.begin(), node_id.end(), 0);

  std::vector<std::size_t> nn(n, 0);
  std::vector<float> nn_dist(n, kInf);
  const auto recompute_nn = [&](std::size_t i) {
    float best = kInf;
    std::size_t best_j = i;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i || !active[j]) continue;
      const float d = distances.at(i, j);
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    nn[i] = best_j;
    nn_dist[i] = best;
  };
  for (std::size_t i = 0; i < n; ++i) recompute_nn(i);

  for (std::size_t step = 0; step + 1 < n; ++step) {
    std::size_t a = n;
    float best = kInf;
    for (std::size_t i = 0; i < n; ++i) {
      if (active[i] && nn_dist[i] < best) {
        best = nn_dist[i];
        a = i;
      }
    }
    const std::size_t b = nn[a];
    merges.push_back(cl::Merge{node_id[a], node_id[b],
                               static_cast<double>(distances.at(a, b))});
    for (std::size_t k = 0; k < n; ++k) {
      if (!active[k] || k == a || k == b) continue;
      double updated = 0.0;
      switch (linkage) {
        case cl::Linkage::kSingle:
          updated = std::min(distances.at(a, k), distances.at(b, k));
          break;
        case cl::Linkage::kComplete:
          updated = std::max(distances.at(a, k), distances.at(b, k));
          break;
        case cl::Linkage::kAverage:
          updated =
              (static_cast<double>(cluster_size[a]) * distances.at(a, k) +
               static_cast<double>(cluster_size[b]) * distances.at(b, k)) /
              static_cast<double>(cluster_size[a] + cluster_size[b]);
          break;
      }
      distances.set(a, k, static_cast<float>(updated));
    }
    active[b] = false;
    cluster_size[a] += cluster_size[b];
    node_id[a] = static_cast<int>(n + step);

    recompute_nn(a);
    for (std::size_t k = 0; k < n; ++k) {
      if (!active[k] || k == a) continue;
      if (nn[k] == a || nn[k] == b) {
        recompute_nn(k);
      } else if (distances.at(k, a) < nn_dist[k]) {
        nn[k] = a;
        nn_dist[k] = distances.at(k, a);
      }
    }
  }
  return merges;
}

std::size_t current_rss_bytes() {
  std::ifstream statm("/proc/self/statm");
  std::size_t pages = 0, resident = 0;
  statm >> pages >> resident;
  return resident * static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
}

// --- Distance phase -------------------------------------------------------

void BM_DistancePhaseCondensed(benchmark::State& state) {
  const auto& m = genes_matrix(static_cast<std::size_t>(state.range(0)));
  fv::par::ThreadPool pool(1);
  for (auto _ : state) {
    const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
    std::vector<float> out(fv::condensed_size(m.rows()));
    engine.condensed_distances(out, pool);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["matrix_MiB"] = static_cast<double>(
      fv::condensed_size(m.rows()) * sizeof(float)) / (1024.0 * 1024.0);
}
BENCHMARK(BM_DistancePhaseCondensed)->Arg(1000)->Arg(2000)->Arg(4000)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_DistancePhaseDense(benchmark::State& state) {
  const auto& m = genes_matrix(static_cast<std::size_t>(state.range(0)));
  fv::par::ThreadPool pool(1);
  for (auto _ : state) {
    const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
    std::vector<float> out(m.rows() * m.rows());
    engine.all_distances(out, pool);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["matrix_MiB"] = static_cast<double>(
      m.rows() * m.rows() * sizeof(float)) / (1024.0 * 1024.0);
}
BENCHMARK(BM_DistancePhaseDense)->Arg(1000)->Arg(2000)->Arg(4000)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// --- Agglomeration phase --------------------------------------------------

void BM_AgglomerateNNChain(benchmark::State& state) {
  const auto& d = distances_for(static_cast<std::size_t>(state.range(0)));
  const auto linkage = static_cast<cl::Linkage>(state.range(1));
  for (auto _ : state) {
    auto merges = cl::agglomerate(d, linkage);
    benchmark::DoNotOptimize(merges.data());
  }
}
BENCHMARK(BM_AgglomerateNNChain)
    ->ArgNames({"genes", "linkage"})
    ->Args({1000, 2})->Args({2000, 2})->Args({4000, 2})
    ->Args({4000, 0})
    ->Unit(benchmark::kMillisecond);

void BM_AgglomerateSeed(benchmark::State& state) {
  const auto& d = distances_for(static_cast<std::size_t>(state.range(0)));
  const auto linkage = static_cast<cl::Linkage>(state.range(1));
  for (auto _ : state) {
    auto merges = seed_agglomerate(DenseDistances(d), linkage);
    benchmark::DoNotOptimize(merges.data());
  }
}
BENCHMARK(BM_AgglomerateSeed)
    ->ArgNames({"genes", "linkage"})
    ->Args({1000, 2})->Args({2000, 2})->Args({4000, 2})
    ->Args({4000, 0})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_AgglomerateHeap(benchmark::State& state) {
  const auto& d =
      squared_distances_for(static_cast<std::size_t>(state.range(0)));
  const auto linkage = static_cast<cl::Linkage>(state.range(1));
  for (auto _ : state) {
    auto merges = cl::agglomerate(d, linkage, cl::Agglomerator::kHeap);
    benchmark::DoNotOptimize(merges.data());
  }
}
// linkage indices: 3 = Ward, 4 = centroid, 5 = median.
BENCHMARK(BM_AgglomerateHeap)
    ->ArgNames({"genes", "linkage"})
    ->Args({1000, 3})->Args({2000, 3})->Args({4000, 3})
    ->Args({4000, 4})->Args({4000, 5})
    ->Unit(benchmark::kMillisecond);

// Ward runs on the NN-chain by default (it is reducible); this is the
// like-for-like baseline the heap path is gated against.
void BM_AgglomerateNNChainWard(benchmark::State& state) {
  const auto& d =
      squared_distances_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto merges = cl::agglomerate(d, cl::Linkage::kWard);
    benchmark::DoNotOptimize(merges.data());
  }
}
BENCHMARK(BM_AgglomerateNNChainWard)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

// --- End-to-end gene clustering ------------------------------------------

void BM_ClusterEndToEndNNChain(benchmark::State& state) {
  const auto& m = genes_matrix(static_cast<std::size_t>(state.range(0)));
  fv::par::ThreadPool pool(1);
  for (auto _ : state) {
    auto merges = cl::agglomerate(
        cl::row_distances(m, cl::Metric::kPearson, pool),
        cl::Linkage::kAverage);
    const auto tree =
        cl::merges_to_tree(merges, m.rows(), cl::correlation_similarity);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_ClusterEndToEndNNChain)->Arg(1000)->Arg(2000)->Arg(4000)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_ClusterEndToEndSeed(benchmark::State& state) {
  const auto& m = genes_matrix(static_cast<std::size_t>(state.range(0)));
  fv::par::ThreadPool pool(1);
  for (auto _ : state) {
    const auto engine =
        sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
    DenseDistances dense{cl::DistanceMatrix(m.rows())};
    engine.all_distances(dense.values, pool);
    auto merges = seed_agglomerate(std::move(dense), cl::Linkage::kAverage);
    const auto tree =
        cl::merges_to_tree(merges, m.rows(), cl::correlation_similarity);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_ClusterEndToEndSeed)->Arg(1000)->Arg(2000)
    ->Iterations(1)->UseRealTime()->Unit(benchmark::kMillisecond);

// --- Epilogue: the issue's acceptance numbers at n = 4000 -----------------

void report_issue_targets() {
  constexpr std::size_t kGenes = 4000;
  const auto& m = genes_matrix(kGenes);
  fv::par::ThreadPool pool(1);

  // Memory: RSS actually resident for each storage layout of the distance
  // phase (the matrix dominates; the engine's padded rows are identical on
  // both paths and excluded so the comparison isolates the storage change).
  // Force both buffers onto fresh mmaps: after the benchmark suite has
  // churned the heap, glibc would otherwise satisfy these from
  // already-resident arena pages and the RSS delta would read ~0.
  mallopt(M_MMAP_THRESHOLD, 1 << 20);
  const std::size_t rss0 = current_rss_bytes();
  std::vector<float> dense_buffer(kGenes * kGenes, 0.0f);
  benchmark::DoNotOptimize(dense_buffer.data());
  const std::size_t dense_rss = current_rss_bytes() - rss0;
  dense_buffer.clear();
  dense_buffer.shrink_to_fit();
  const std::size_t rss1 = current_rss_bytes();
  std::vector<float> condensed_buffer(fv::condensed_size(kGenes), 0.0f);
  benchmark::DoNotOptimize(condensed_buffer.data());
  const std::size_t condensed_rss = current_rss_bytes() - rss1;
  condensed_buffer.clear();
  condensed_buffer.shrink_to_fit();

  // End-to-end = distance phase + agglomeration + tree build. The distance
  // phase is linkage-independent, so it is timed once per path and added to
  // each linkage's agglomeration time; every linkage the API offers is
  // reported. Single linkage is where the seed's cached-NN agglomerator
  // truly degrades (a growing cluster becomes the nearest neighbor of more
  // and more slots and every merge rescans all of them).
  fv::Timer timer;
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  DenseDistances dense{cl::DistanceMatrix(kGenes)};
  engine.all_distances(dense.values, pool);
  const double dense_distance_seconds = timer.seconds();

  timer.reset();
  const auto condensed = cl::row_distances(m, cl::Metric::kPearson, pool);
  const double condensed_distance_seconds = timer.seconds();

  struct LinkageReport {
    const char* name;
    cl::Linkage linkage;
    double seed_seconds = 0.0;
    double chain_seconds = 0.0;
  } reports[] = {{"single  ", cl::Linkage::kSingle},
                 {"complete", cl::Linkage::kComplete},
                 {"average ", cl::Linkage::kAverage}};

  std::printf("\n[ISSUE 2 targets @ %zu genes x %zu conditions, 1 thread]\n",
              kGenes, kConditions);
  std::printf("  distance phase: dense %.2f s, condensed %.2f s\n",
              dense_distance_seconds, condensed_distance_seconds);
  double best_speedup = 0.0;
  for (auto& report : reports) {
    timer.reset();
    auto seed_merges = seed_agglomerate(dense, report.linkage);
    const auto seed_tree =
        cl::merges_to_tree(seed_merges, kGenes, cl::correlation_similarity);
    report.seed_seconds = dense_distance_seconds + timer.seconds();

    timer.reset();
    auto chain_merges = cl::agglomerate(condensed, report.linkage);
    const auto chain_tree =
        cl::merges_to_tree(chain_merges, kGenes, cl::correlation_similarity);
    report.chain_seconds = condensed_distance_seconds + timer.seconds();

    const double speedup = report.seed_seconds / report.chain_seconds;
    best_speedup = std::max(best_speedup, speedup);
    std::printf(
        "  %s end-to-end: seed %.2f s -> NN-chain %.2f s (%.1fx; trees "
        "%zu/%zu nodes)\n",
        report.name, report.seed_seconds, report.chain_seconds, speedup,
        seed_tree.node_count(), chain_tree.node_count());
  }

  const double mem_ratio =
      static_cast<double>(condensed_rss) / static_cast<double>(dense_rss);
  std::printf(
      "  end-to-end speedup at the seed's degenerate linkage: %.1fx "
      "(target >= 3x: %s)\n"
      "  distance storage RSS: dense %.1f MiB -> condensed %.1f MiB "
      "(%.1f%% of dense; target <= 55%%: %s)\n"
      "  (tree equivalence enforced by tests/hclust_equivalence_test.cpp)\n",
      best_speedup, best_speedup >= 3.0 ? "PASS" : "FAIL",
      static_cast<double>(dense_rss) / (1024.0 * 1024.0),
      static_cast<double>(condensed_rss) / (1024.0 * 1024.0),
      100.0 * mem_ratio, mem_ratio <= 0.55 ? "PASS" : "FAIL");
}

// --- Epilogue: the issue-4 heap-agglomerator targets at n = 4000 ----------

void report_heap_targets() {
  constexpr std::size_t kGenes = 4000;
  const auto& m = genes_matrix(kGenes);
  fv::par::ThreadPool pool(1);

  fv::Timer timer;
  const auto squared = cl::row_squared_distances(m, pool);
  const double distance_seconds = timer.seconds();

  // Like-for-like: Ward on both paths over the same squared matrix. The
  // heap pays for generality (candidate repair + heap maintenance per
  // merge) and must stay within 3x of the NN-chain end-to-end.
  timer.reset();
  const auto chain_tree = cl::merges_to_tree(
      cl::agglomerate(squared, cl::Linkage::kWard), kGenes,
      cl::negated_similarity);
  const double chain_seconds = distance_seconds + timer.seconds();

  timer.reset();
  const auto heap_tree = cl::merges_to_tree(
      cl::agglomerate(squared, cl::Linkage::kWard, cl::Agglomerator::kHeap),
      kGenes, cl::negated_similarity);
  const double heap_seconds = distance_seconds + timer.seconds();

  struct NonReducibleReport {
    const char* name;
    cl::Linkage linkage;
  } non_reducible[] = {{"centroid", cl::Linkage::kCentroid},
                       {"median  ", cl::Linkage::kMedian}};

  const double ratio = heap_seconds / chain_seconds;
  std::printf(
      "\n[ISSUE 4 targets @ %zu genes x %zu conditions, 1 thread]\n"
      "  squared-distance phase: %.2f s (condensed, no dense staging)\n"
      "  Ward end-to-end: NN-chain %.2f s -> heap %.2f s "
      "(%.2fx; target <= 3x: %s; trees %zu/%zu nodes)\n",
      kGenes, kConditions, distance_seconds, chain_seconds, heap_seconds,
      ratio, ratio <= 3.0 ? "PASS" : "FAIL", chain_tree.node_count(),
      heap_tree.node_count());
  for (const auto& report : non_reducible) {
    timer.reset();
    auto merges = cl::agglomerate(squared, report.linkage);
    const auto tree =
        cl::merges_to_tree(merges, kGenes, cl::negated_similarity,
                           cl::HeightOrder::kAllowInversions);
    std::size_t inversions = 0;
    for (std::size_t i = 1; i < merges.size(); ++i) {
      if (merges[i].distance < merges[i - 1].distance) ++inversions;
    }
    std::printf(
        "  %s end-to-end: %.2f s (heap; %zu height inversions carried, "
        "tree %zu nodes)\n",
        report.name, distance_seconds + timer.seconds(), inversions,
        tree.node_count());
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report_issue_targets();
  report_heap_targets();
  return 0;
}
