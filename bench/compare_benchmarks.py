#!/usr/bin/env python3
"""PR-over-PR benchmark comparison for BENCH_<name>.json snapshots.

Compares two directories of Google Benchmark JSON files (as written by
bench/run_benches.sh) benchmark-by-benchmark and prints a delta table.
Exits nonzero when any matched benchmark regressed by more than the
threshold (default 10%), so CI can gate on the perf trajectory.

Usage:
    bench/compare_benchmarks.py BASELINE_DIR CURRENT_DIR [--threshold PCT]
                                [--metric real_time|cpu_time]

Benchmarks present on only one side are reported informationally and never
fail the comparison (new benchmarks appear, retired ones disappear).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


# Google Benchmark reports times in the benchmark's own Unit(); normalize to
# nanoseconds so snapshots taken before/after a ->Unit() change still compare.
TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_snapshot_dir(directory: Path, metric: str) -> dict[str, dict]:
    """Maps '<file-stem>/<benchmark name>' -> {'value': ns, 'unit': str}."""
    results: dict[str, dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            with path.open() as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"warning: skipping unreadable {path}: {error}",
                  file=sys.stderr)
            continue
        stem = path.stem.removeprefix("BENCH_")
        for bench in document.get("benchmarks", []):
            # Aggregate rows (mean/median/stddev of repetitions) would double
            # count; plain runs have run_type == 'iteration'.
            if bench.get("run_type", "iteration") != "iteration":
                continue
            name = bench.get("name")
            if name is None or metric not in bench:
                continue
            unit = bench.get("time_unit", "ns")
            if unit not in TIME_UNIT_NS:
                print(f"warning: {path}: unknown time_unit '{unit}' for "
                      f"{name}; skipping", file=sys.stderr)
                continue
            results[f"{stem}/{name}"] = {
                "value": float(bench[metric]) * TIME_UNIT_NS[unit],
                "unit": unit,
            }
    return results


def format_value(value_ns: float, unit: str) -> str:
    """Renders a normalized-ns value back in the benchmark's own unit."""
    return f"{value_ns / TIME_UNIT_NS[unit]:,.2f} {unit}"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path,
                        help="directory of baseline BENCH_*.json files")
    parser.add_argument("current", type=Path,
                        help="directory of current BENCH_*.json files")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in percent (default 10)")
    parser.add_argument("--metric", default="real_time",
                        choices=["real_time", "cpu_time"],
                        help="which benchmark time to compare")
    args = parser.parse_args()

    for directory in (args.baseline, args.current):
        if not directory.is_dir():
            print(f"error: {directory} is not a directory", file=sys.stderr)
            return 2

    baseline = load_snapshot_dir(args.baseline, args.metric)
    current = load_snapshot_dir(args.current, args.metric)
    if not baseline:
        print(f"error: no BENCH_*.json results under {args.baseline}",
              file=sys.stderr)
        return 2
    if not current:
        print(f"error: no BENCH_*.json results under {args.current}",
              file=sys.stderr)
        return 2

    shared = sorted(set(baseline) & set(current))
    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))

    regressions: list[tuple[str, float]] = []
    width = max((len(name) for name in shared), default=20)
    header = (f"{'benchmark':<{width}}  {'baseline':>16}  {'current':>16}  "
              f"{'delta':>8}")
    print(header)
    print("-" * len(header))
    for name in shared:
        base = baseline[name]
        cur = current[name]
        if base["value"] <= 0.0:
            delta_text = "n/a"
            delta = 0.0
        else:
            delta = 100.0 * (cur["value"] - base["value"]) / base["value"]
            delta_text = f"{delta:+7.1f}%"
        marker = ""
        if delta > args.threshold:
            marker = "  << REGRESSION"
            regressions.append((name, delta))
        elif delta < -args.threshold:
            marker = "  improved"
        print(f"{name:<{width}}  {format_value(base['value'], base['unit']):>16}"
              f"  {format_value(cur['value'], cur['unit']):>16}"
              f"  {delta_text:>8}{marker}")

    for name in only_current:
        print(f"{name:<{width}}  {'(new)':>16}  "
              f"{format_value(current[name]['value'], current[name]['unit']):>16}")
    for name in only_baseline:
        print(f"{name:<{width}}  "
              f"{format_value(baseline[name]['value'], baseline[name]['unit']):>16}"
              f"  {'(removed)':>16}")

    print(f"\n{len(shared)} compared, {len(only_current)} new, "
          f"{len(only_baseline)} removed, {len(regressions)} regressed "
          f"beyond {args.threshold:.0f}%")
    if regressions:
        worst = max(regressions, key=lambda item: item[1])
        print(f"worst regression: {worst[0]} ({worst[1]:+.1f}%)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
