// Experiment C2 (paper §4): the stress-response discovery study.
//
// What the paper reports, qualitatively: using ForestView, a collaborator
// selected gene clusters in nutrient-limitation and knockout data and found
// "a strong pattern of correlation within the stress response datasets",
// suggesting the general stress response supersedes specific effects.
//
// What this bench reports:
//  * StudyWorkflow      — time of the full scripted study (cluster the
//                         knockout data, select, cross-correlate in stress)
//  * quality counters   — mean within-stress correlation of the selected
//                         cluster and its planted-module purity (measurable
//                         here because the modules are planted)
#include <benchmark/benchmark.h>

#include <cstdio>

#include "cluster/hclust.hpp"
#include "core/session.hpp"
#include "expr/synth.hpp"
#include "stats/correlation.hpp"

namespace {

namespace ex = fv::expr;
namespace cl = fv::cluster;
namespace co = fv::core;

struct StudyResult {
  double mean_stress_correlation = 0.0;
  double stress_module_purity = 0.0;
  std::size_t cluster_size = 0;
  std::size_t operations = 0;
};

StudyResult run_study(std::size_t genes, std::uint64_t seed) {
  const auto genome = ex::make_genome(ex::GenomeSpec::yeast_like(genes),
                                      seed);
  ex::StressDatasetSpec stress_spec;
  ex::NutrientDatasetSpec nutrient_spec;
  ex::KnockoutDatasetSpec knockout_spec;
  knockout_spec.knockouts = 120;
  knockout_spec.slow_growth_fraction = 0.2;

  std::vector<ex::Dataset> datasets;
  datasets.push_back(ex::make_stress_dataset(genome, stress_spec, seed + 1));
  datasets.push_back(
      ex::make_nutrient_dataset(genome, nutrient_spec, seed + 2));
  datasets.push_back(
      ex::make_knockout_dataset(genome, knockout_spec, seed + 3).dataset);

  fv::par::ThreadPool pool;
  cl::cluster_genes(datasets[2], cl::Metric::kPearson, cl::Linkage::kAverage,
                    pool);
  const auto clusters =
      cl::cut_tree_at_similarity(*datasets[2].gene_tree(), 0.35);
  std::size_t best = 0;
  for (std::size_t i = 1; i < clusters.size(); ++i) {
    if (clusters[i].size() > clusters[best].size()) best = i;
  }

  co::Session session(std::move(datasets));
  std::vector<co::GeneId> picked;
  for (const std::size_t row : clusters[best]) {
    picked.push_back(session.merged().catalog().id_of_row(2, row));
  }
  session.select_from_analysis(picked, "knockout-clustering");

  StudyResult result;
  result.cluster_size = session.selection().size();
  result.operations = session.operation_count();

  const auto& stress = session.dataset(0);
  std::vector<std::size_t> rows;
  for (const auto gene : session.selection().ordered()) {
    if (const auto row = session.merged().catalog().row_in(0, gene);
        row.has_value()) {
      rows.push_back(*row);
    }
  }
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < rows.size() && i < 50; ++i) {
    for (std::size_t j = i + 1; j < rows.size() && j < 50; ++j) {
      total += fv::stats::pearson(stress.profile(rows[i]),
                                  stress.profile(rows[j]));
      ++pairs;
    }
  }
  result.mean_stress_correlation = pairs > 0 ? total / pairs : 0.0;

  std::size_t stress_module = 0;
  for (const auto gene : session.selection().ordered()) {
    const auto& name = session.merged().catalog().name(gene);
    const auto id = genome.module_index("ESR_UP");
    const auto rp = genome.module_index("RP");
    for (std::size_t g = 0; g < genome.gene_count(); ++g) {
      if (genome.gene(g).systematic_name != name) continue;
      const int m = genome.module_of(g);
      if (m >= 0 && (static_cast<std::size_t>(m) == *id ||
                     static_cast<std::size_t>(m) == *rp)) {
        ++stress_module;
      }
      break;
    }
  }
  result.stress_module_purity =
      result.cluster_size > 0
          ? static_cast<double>(stress_module) /
                static_cast<double>(result.cluster_size)
          : 0.0;
  return result;
}

void BM_StudyWorkflow(benchmark::State& state) {
  const auto genes = static_cast<std::size_t>(state.range(0));
  StudyResult last;
  for (auto _ : state) {
    last = run_study(genes, 97);
    benchmark::DoNotOptimize(last.cluster_size);
  }
  state.counters["cluster_size"] = static_cast<double>(last.cluster_size);
  state.counters["stress_corr"] = last.mean_stress_correlation;
  state.counters["module_purity"] = last.stress_module_purity;
}
BENCHMARK(BM_StudyWorkflow)->Arg(400)->Arg(800)->Arg(1200)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const auto result = run_study(800, 97);
  std::printf(
      "\n[C2 verdict] knockout-derived cluster of %zu genes shows mean "
      "pairwise correlation %.3f inside the stress datasets (paper: 'a "
      "strong pattern of correlation'); %.0f%% of the cluster belongs to "
      "the planted stress program; ForestView operations used: %zu "
      "(baseline: a dozen instances + cut-and-paste).\n",
      result.cluster_size, result.mean_stress_correlation,
      result.stress_module_purity * 100.0, result.operations);
  return 0;
}
