// Memory-budget proof of the out-of-core path: the borrowed-mapped engine's
// distance phase must run in O(working set), not O(engine state).
//
// This test lives in its own executable (fv_budget_tests) because it
// measures process-wide peaks: VmHWM (/proc/self/status) is a monotonic
// high-water mark, so the measuring process must not have run unrelated
// tests first, and the heap comparison phase runs in a FORKED child whose
// peak is read from wait4()'s ru_maxrss — the child's 200+ MB never touch
// the parent's mark.
//
// Shape: n = 1024 profiles x 16384 values, complete data, Pearson. The
// persisted engine artifact is ~134 MB (filled + normalized slabs dominate).
//  * heap path  (child): warm open_or_build_engine copies the slabs to the
//    heap — peak RSS ≈ mapping + copy ≈ 270 MB.
//  * mapped path (parent): open_engine_mapped + the serial streaming
//    condensed driver — pages fault in per tile stripe and are released
//    behind the cursor, so the parent's VmHWM delta stays around one
//    validation chunk + two row stripes + the condensed output.
//
// CI additionally runs this executable under `ulimit -v` BELOW what the
// heap copy needs (see .github/workflows): FV_BUDGET_MODE=prepare builds
// and persists the artifact uncapped, FV_BUDGET_MODE=mapped then opens and
// streams it inside the cap — the leg passes only if the mapped path never
// materializes engine state on the heap.
#include <gtest/gtest.h>

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "expr/expression_matrix.hpp"
#include "sim/similarity_engine.hpp"
#include "store/artifact_store.hpp"
#include "store/cached.hpp"
#include "util/triangular.hpp"

namespace {

namespace fs = std::filesystem;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kUnderSanitizer = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kUnderSanitizer = true;
#else
constexpr bool kUnderSanitizer = false;
#endif
#else
constexpr bool kUnderSanitizer = false;
#endif

constexpr std::size_t kProfiles = 1024;
constexpr std::size_t kLength = 16384;
/// Cache key of the budget matrix. open_or_build_engine treats input_key
/// as an opaque cache key, so a fixed constant lets every phase (and the
/// capped CI process) address the artifact without materializing the 64 MB
/// matrix just to hash it.
constexpr std::uint64_t kInputKey = 0xb00d0001;

/// Complete (no missing cells) deterministic matrix — formula-generated so
/// prepare/heap/mapped phases agree without shipping data between them.
fv::expr::ExpressionMatrix budget_matrix() {
  fv::expr::ExpressionMatrix m(kProfiles, kLength);
  for (std::size_t r = 0; r < kProfiles; ++r) {
    const float phase = static_cast<float>(r % 31) * 0.2f;
    const auto row = m.row(r);
    for (std::size_t c = 0; c < kLength; ++c) {
      row[c] = std::sin(phase + 0.001f * static_cast<float>(c)) +
               0.0001f * static_cast<float>((r * 131 + c * 17) % 97);
    }
  }
  return m;
}

std::string store_dir() {
  if (const char* dir = std::getenv("FV_BUDGET_DIR")) return dir;
  return (fs::temp_directory_path() / "fv_budget_store").string();
}

/// VmHWM of this process in KiB — the kernel's peak-resident high-water
/// mark, which madvise(MADV_DONTNEED) page drops genuinely keep low.
long vm_hwm_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtol(line.c_str() + 6, nullptr, 10);
    }
  }
  return -1;
}

void build_and_persist(fv::store::ArtifactStore& store) {
  fv::store::OpenStats stats;
  const auto engine = fv::store::open_or_build_engine(
      store, kInputKey, []() { return budget_matrix(); },
      fv::sim::Metric::kPearson, fv::sim::Precompute::kAllPairs,
      fv::sim::DenseKernel::kAuto, &stats);
  ASSERT_EQ(engine.size(), kProfiles);
  ASSERT_TRUE(stats.warm || stats.persisted);
}

/// The measured workload, identical for heap and mapped phases: serial
/// condensed distance triangle over the opened engine.
void run_condensed(const fv::sim::SimilarityEngine& engine) {
  std::vector<float> out(fv::condensed_size(engine.size()));
  engine.condensed_distances(std::span<float>(out));
  // Keep the optimizer honest and sanity-check the values are real.
  ASSERT_GT(out[0], -1.0f);
  ASSERT_LT(out[0], 5.0f);
}

void open_mapped_and_stream(fv::store::ArtifactStore& store) {
  const auto key = fv::store::engine_key(
      kInputKey, fv::sim::Metric::kPearson, fv::sim::Precompute::kAllPairs,
      fv::sim::DenseKernel::kAuto);
  const auto mapped = fv::store::open_engine_mapped(store, key);
  ASSERT_TRUE(mapped.has_value()) << "run the prepare phase first";
  ASSERT_EQ(mapped->storage(), fv::sim::EngineStorage::kBorrowedMapped);
  run_condensed(*mapped);
}

TEST(MappedBudgetTest, StreamedDistancePhaseStaysInWorkingSetBudget) {
  if (kUnderSanitizer) {
    GTEST_SKIP() << "sanitizer shadow memory invalidates RSS accounting";
  }
#ifndef NDEBUG
  GTEST_SKIP() << "RSS budget is only meaningful with optimized kernels";
#endif
  const std::string dir = store_dir();
  const char* mode_env = std::getenv("FV_BUDGET_MODE");
  const std::string mode = mode_env ? mode_env : "";

  if (mode == "prepare") {
    // Uncapped CI phase: leave a committed artifact for the capped run.
    fs::create_directories(dir);
    fv::store::ArtifactStore store(dir);
    build_and_persist(store);
    return;
  }
  if (mode == "mapped") {
    // Capped CI phase (ulimit -v below the heap copy): open + stream. A
    // regression that copies engine slabs to the heap aborts on the cap.
    fv::store::ArtifactStore store(dir);
    open_mapped_and_stream(store);
    return;
  }

  // Self-contained mode: prepare and the heap phase each run in a forked
  // child (their peaks reaped via ru_maxrss), the mapped phase runs here
  // against a VmHWM delta.
  fs::remove_all(dir);
  fs::create_directories(dir);

  const auto run_child = [&](void (*phase)(fv::store::ArtifactStore&)) {
    const pid_t pid = fork();
    if (pid == 0) {
      {
        fv::store::ArtifactStore store(dir);
        phase(store);
      }
      _exit(::testing::Test::HasFailure() ? 1 : 0);
    }
    int status = 0;
    struct rusage usage {};
    EXPECT_EQ(wait4(pid, &status, 0, &usage), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    return usage.ru_maxrss;  // KiB on Linux
  };

  (void)run_child([](fv::store::ArtifactStore& store) {
    build_and_persist(store);
  });
  // Heap phase: warm copy-open + the same serial condensed workload.
  const long heap_peak_kb = run_child([](fv::store::ArtifactStore& store) {
    fv::store::OpenStats stats;
    const auto engine = fv::store::open_or_build_engine(
        store, kInputKey, []() { return budget_matrix(); },
        fv::sim::Metric::kPearson, fv::sim::Precompute::kAllPairs,
        fv::sim::DenseKernel::kAuto, &stats);
    ASSERT_TRUE(stats.warm) << "heap phase must not rebuild";
    ASSERT_EQ(engine.storage(), fv::sim::EngineStorage::kOwnedHeap);
    run_condensed(engine);
  });

  // Mapped phase in THIS process, bracketed by the high-water mark. The
  // measurement needs the kernel to expose VmHWM in /proc/self/status —
  // absent on non-Linux kernels and some hardened/containerized procfs
  // mounts. Without it there is nothing to bracket, so skip (loudly)
  // rather than fail on an environment limitation.
  const long before_kb = vm_hwm_kb();
  if (before_kb <= 0) {
    GTEST_SKIP() << "VmHWM not readable from /proc/self/status on this "
                    "system; the mapped-budget measurement needs the "
                    "kernel's peak-RSS high-water mark";
  }
  {
    fv::store::ArtifactStore store(dir);
    open_mapped_and_stream(store);
  }
  const long after_kb = vm_hwm_kb();
  const long delta_kb = after_kb - before_kb;

  const auto artifact_kb = static_cast<long>(
      fs::file_size(fv::store::ArtifactStore(dir).artifact_path(
          fv::store::ArtifactKind::kEngine,
          fv::store::engine_key(kInputKey, fv::sim::Metric::kPearson,
                                fv::sim::Precompute::kAllPairs,
                                fv::sim::DenseKernel::kAuto))) /
      1024);
  RecordProperty("artifact_kb", static_cast<int>(artifact_kb));
  RecordProperty("heap_peak_kb", static_cast<int>(heap_peak_kb));
  RecordProperty("mapped_delta_kb", static_cast<int>(delta_kb));
  std::fprintf(stderr,
               "[budget] artifact=%ld KiB heap_peak=%ld KiB "
               "mapped_delta=%ld KiB\n",
               artifact_kb, heap_peak_kb, delta_kb);

  // The engine state really is out-of-scale for the budget...
  ASSERT_GE(artifact_kb, 128L * 1024);
  // ...the streamed mapped phase stays inside a working-set budget that is
  // a small fraction of it (one validation chunk + tile stripes in flight +
  // the condensed output + allocator noise)...
  EXPECT_LE(delta_kb, 48L * 1024);
  // ...and the peak-RSS drop vs the heap path is at least 5x.
  EXPECT_GE(heap_peak_kb, 5 * std::max(delta_kb, 1L));

  fs::remove_all(dir);
}

}  // namespace
