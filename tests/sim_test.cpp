// Tests for the blocked similarity engine: kernel equivalence against the
// scalar reference (all metrics, with and without missing values, degenerate
// profiles), tile scheduling across boundaries, the SPELL zdot bank, and the
// dynamic parallel loop that schedules the tiles.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "cluster/distance.hpp"
#include "expr/expression_matrix.hpp"
#include "par/thread_pool.hpp"
#include "sim/similarity_engine.hpp"
#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/triangular.hpp"

namespace {

namespace cl = fv::cluster;
namespace ex = fv::expr;
namespace sm = fv::sim;
namespace st = fv::stats;

constexpr sm::Metric kAllMetrics[] = {
    sm::Metric::kPearson, sm::Metric::kUncenteredPearson,
    sm::Metric::kSpearman, sm::Metric::kEuclidean};

/// Random matrix with structure (half the rows correlate) and a missing
/// rate; deterministic per seed.
ex::ExpressionMatrix random_matrix(std::size_t rows, std::size_t cols,
                                   double missing_rate, std::uint64_t seed) {
  fv::Rng rng(seed);
  ex::ExpressionMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const double sign = r % 2 == 0 ? 1.0 : -1.0;
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.uniform() < missing_rate) continue;  // stays missing (NaN)
      const double pattern = std::sin(0.31 * static_cast<double>(c + 1));
      m.set(r, c,
            static_cast<float>(sign * pattern + rng.normal(0.0, 0.4)));
    }
  }
  return m;
}

void expect_engine_matches_scalar(const ex::ExpressionMatrix& m,
                                  sm::Metric metric, double tol = 1e-6) {
  const auto engine = sm::SimilarityEngine::from_rows(m, metric);
  ASSERT_EQ(engine.size(), m.rows());
  ASSERT_EQ(engine.length(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = i; j < m.rows(); ++j) {
      const double reference =
          cl::profile_distance(m.row(i), m.row(j), metric);
      EXPECT_NEAR(engine.distance(i, j), reference, tol)
          << "metric=" << static_cast<int>(metric) << " i=" << i
          << " j=" << j;
    }
  }
}

TEST(SimilarityEngineTest, DenseMatchesScalarAllMetrics) {
  const auto m = random_matrix(24, 13, 0.0, 101);  // length not lane-aligned
  for (const auto metric : kAllMetrics) {
    expect_engine_matches_scalar(m, metric);
  }
}

TEST(SimilarityEngineTest, MissingValuesMatchScalarAllMetrics) {
  const auto m = random_matrix(24, 19, 0.25, 103);
  for (const auto metric : kAllMetrics) {
    expect_engine_matches_scalar(m, metric);
  }
}

TEST(SimilarityEngineTest, DegenerateProfilesMatchScalar) {
  // Row 0: all missing. Row 1: two present values (< 3 complete pairs).
  // Row 2: constant. Row 3: constant over its present cells. Rows 4-7:
  // ordinary profiles to pair them against.
  const float na = st::missing_value();
  ex::ExpressionMatrix m(8, 6);
  const std::vector<std::vector<float>> rows{
      {na, na, na, na, na, na},
      {1.0f, 2.0f, na, na, na, na},
      {3.0f, 3.0f, 3.0f, 3.0f, 3.0f, 3.0f},
      {2.5f, na, 2.5f, na, 2.5f, 2.5f},
      {1.0f, -2.0f, 0.5f, 3.0f, -1.0f, 2.0f},
      {0.3f, 1.8f, -0.7f, 2.2f, 0.9f, -1.4f},
      {na, 1.0f, 2.0f, 3.0f, 4.0f, 5.0f},
      {5.0f, 4.0f, 3.0f, 2.0f, 1.0f, 0.0f}};
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < 6; ++c) m.set(r, c, rows[r][c]);
  }
  for (const auto metric : kAllMetrics) {
    expect_engine_matches_scalar(m, metric);
  }
}

TEST(SimilarityEngineTest, AllDistancesCrossesTileBoundaries) {
  // 70 and 130 rows cross the 64-row tile edge; verify the full matrix
  // against per-pair calls and the symmetry/diagonal contract.
  for (const std::size_t rows : {70u, 130u}) {
    const auto m = random_matrix(rows, 9, 0.1, 200 + rows);
    const auto engine =
        sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
    fv::par::ThreadPool pool(3);
    std::vector<float> all(rows * rows);
    engine.all_distances(all, pool);
    for (std::size_t i = 0; i < rows; ++i) {
      EXPECT_EQ(all[i * rows + i], 0.0f);
      for (std::size_t j = i + 1; j < rows; ++j) {
        EXPECT_EQ(all[i * rows + j], all[j * rows + i]);
        EXPECT_NEAR(all[i * rows + j], engine.distance(i, j), 1e-7);
      }
    }
  }
}

TEST(SimilarityEngineTest, CondensedDistancesMatchDense) {
  // The condensed tile writer must produce exactly the dense writer's
  // values, one copy per pair in pdist layout — including across the
  // 64-row tile edge.
  for (const std::size_t rows : {3u, 70u, 130u}) {
    const auto m = random_matrix(rows, 9, 0.1, 300 + rows);
    const auto engine =
        sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
    fv::par::ThreadPool pool(3);
    std::vector<float> dense(rows * rows);
    engine.all_distances(dense, pool);
    std::vector<float> condensed(fv::condensed_size(rows));
    engine.condensed_distances(condensed, pool);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = i + 1; j < rows; ++j) {
        EXPECT_EQ(condensed[fv::condensed_index(i, j, rows)],
                  dense[i * rows + j])
            << "pair (" << i << ", " << j << ")";
      }
    }
  }
}

TEST(SimilarityEngineTest, CondensedDistancesDegenerateSizes) {
  fv::par::ThreadPool pool(2);
  const auto empty = sm::SimilarityEngine::from_profiles({}, 0, 5,
                                                         sm::Metric::kPearson);
  std::vector<float> none;
  empty.condensed_distances(none, pool);  // no-op, must not crash
  const std::vector<float> one{1.0f, 2.0f, 3.0f};
  const auto single =
      sm::SimilarityEngine::from_profiles(one, 1, 3, sm::Metric::kPearson);
  single.condensed_distances(none, pool);  // n == 1 has zero pairs
}

TEST(SimilarityEngineTest, RowDistancesMatchesScalarReference) {
  const auto m = random_matrix(40, 12, 0.15, 307);
  fv::par::ThreadPool pool(2);
  for (const auto metric : kAllMetrics) {
    const auto d = cl::row_distances(m, metric, pool);
    for (std::size_t i = 0; i < m.rows(); ++i) {
      for (std::size_t j = i + 1; j < m.rows(); ++j) {
        EXPECT_NEAR(d.at(i, j),
                    cl::profile_distance(m.row(i), m.row(j), metric), 1e-6);
      }
    }
  }
}

TEST(SimilarityEngineTest, ColumnEngineMatchesColumnProfiles) {
  const auto m = random_matrix(30, 11, 0.1, 401);
  const auto engine =
      sm::SimilarityEngine::from_columns(m, sm::Metric::kEuclidean);
  ASSERT_EQ(engine.size(), m.cols());
  for (std::size_t a = 0; a < m.cols(); ++a) {
    for (std::size_t b = a + 1; b < m.cols(); ++b) {
      const auto ca = m.column(a);
      const auto cb = m.column(b);
      EXPECT_NEAR(engine.distance(a, b),
                  cl::profile_distance(ca, cb, sm::Metric::kEuclidean), 1e-6);
    }
  }
}

TEST(SimilarityEngineTest, SimilarityMatchesStatsPearson) {
  const auto m = random_matrix(20, 17, 0.2, 503);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = i; j < m.rows(); ++j) {
      EXPECT_NEAR(engine.similarity(i, j), st::pearson(m.row(i), m.row(j)),
                  1e-6);
    }
  }
}

TEST(SimilarityEngineTest, ZdotBankMatchesZProfiles) {
  // The SPELL contract: zscale(i) * normalized_row(i) is the ZProfile
  // z-row, so dot products reproduce stats::zdot.
  const auto m = random_matrix(16, 14, 0.2, 601);
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.rows(); ++j) {
      const auto za = st::ZProfile::from(m.row(i));
      const auto zb = st::ZProfile::from(m.row(j));
      ASSERT_EQ(engine.present(i), za.present);
      std::vector<float> query(engine.stride(), 0.0f);
      const auto uj = engine.normalized_row(j);
      for (std::size_t c = 0; c < uj.size(); ++c) {
        query[c] = uj[c] * engine.zscale(j);
      }
      std::vector<double> dots(engine.size());
      engine.dot_all(query, dots);
      const std::size_t overlap =
          std::min(engine.present(i), engine.present(j));
      const double r =
          overlap < st::kMinCompletePairs
              ? 0.0
              : std::clamp(engine.zscale(i) * dots[i] /
                               static_cast<double>(overlap - 1),
                           -1.0, 1.0);
      EXPECT_NEAR(r, st::zdot(za, zb), 1e-5) << "i=" << i << " j=" << j;
    }
  }
}

TEST(SimilarityEngineTest, SmallMagnitudeProfilesStillCorrelate) {
  // Tiny but genuinely varying values (~1e-7) with missing cells must not
  // be flushed to r = 0 by the masked path's variance guard.
  const float na = st::missing_value();
  ex::ExpressionMatrix m(2, 8);
  for (std::size_t c = 0; c < 8; ++c) {
    const float v = static_cast<float>(1e-7 * std::sin(0.9 * (c + 1.0)));
    m.set(0, c, v);
    m.set(1, c, c == 3 ? na : 2.0f * v);
  }
  const auto engine = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  EXPECT_NEAR(engine.similarity(0, 1), st::pearson(m.row(0), m.row(1)), 1e-6);
  EXPECT_GT(engine.similarity(0, 1), 0.99);
}

TEST(SimilarityEngineTest, DotBankScoresButRefusesPairwise) {
  const auto m = random_matrix(12, 10, 0.1, 901);
  const auto full = sm::SimilarityEngine::from_rows(m, sm::Metric::kPearson);
  const auto bank = sm::SimilarityEngine::from_rows(
      m, sm::Metric::kPearson, sm::Precompute::kDotBank);
  // The bank scores one-vs-all exactly like the full engine...
  std::vector<float> query(bank.stride(), 0.0f);
  const auto u0 = full.normalized_row(0);
  for (std::size_t c = 0; c < u0.size(); ++c) query[c] = u0[c];
  std::vector<double> bank_dots(bank.size()), full_dots(full.size());
  bank.dot_all(query, bank_dots);
  full.dot_all(query, full_dots);
  for (std::size_t i = 0; i < bank.size(); ++i) {
    EXPECT_DOUBLE_EQ(bank_dots[i], full_dots[i]);
    EXPECT_EQ(bank.present(i), full.present(i));
    EXPECT_EQ(bank.zscale(i), full.zscale(i));
  }
  // ...but has no pairwise state to answer exact pair queries.
  EXPECT_THROW(bank.similarity(0, 1), fv::InvalidArgument);
  EXPECT_THROW(bank.distance(0, 1), fv::InvalidArgument);
  EXPECT_THROW(sm::SimilarityEngine::from_rows(m, sm::Metric::kEuclidean,
                                               sm::Precompute::kDotBank),
               fv::InvalidArgument);
}

TEST(SimilarityEngineTest, TransposedMatchesColumns) {
  const auto m = random_matrix(7, 5, 0.1, 701);
  const auto t = m.transposed();
  ASSERT_EQ(t.rows(), m.cols());
  ASSERT_EQ(t.cols(), m.rows());
  for (std::size_t c = 0; c < m.cols(); ++c) {
    const auto column = m.column(c);
    const auto row = t.row(c);
    for (std::size_t r = 0; r < m.rows(); ++r) {
      if (st::is_missing(column[r])) {
        EXPECT_TRUE(st::is_missing(row[r]));
      } else {
        EXPECT_EQ(row[r], column[r]);
      }
    }
  }
}

TEST(SimilarityEngineTest, EmptyAndSingleProfileEdgeCases) {
  const ex::ExpressionMatrix empty(0, 4);
  const auto engine =
      sm::SimilarityEngine::from_rows(empty, sm::Metric::kPearson);
  EXPECT_EQ(engine.size(), 0u);
  fv::par::ThreadPool pool(2);
  std::vector<float> out;
  engine.all_distances(out, pool);  // no-op, must not crash

  const auto one = random_matrix(1, 6, 0.0, 801);
  const auto single = sm::SimilarityEngine::from_rows(one, sm::Metric::kPearson);
  std::vector<float> d(1);
  single.all_distances(d, pool);
  EXPECT_EQ(d[0], 0.0f);
}

TEST(ParallelDynamicTest, VisitsEveryIndexOnce) {
  fv::par::ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  fv::par::parallel_dynamic(pool, 0, kN,
                            [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelDynamicTest, PropagatesExceptions) {
  fv::par::ThreadPool pool(2);
  EXPECT_THROW(fv::par::parallel_dynamic(pool, 0, 100,
                                         [](std::size_t i) {
                                           if (i == 42) {
                                             throw fv::InvalidArgument("boom");
                                           }
                                         }),
               fv::InvalidArgument);
}

TEST(ParallelDynamicTest, EmptyRangeIsNoop) {
  fv::par::ThreadPool pool(2);
  bool ran = false;
  fv::par::parallel_dynamic(pool, 5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

}  // namespace
