// Deeper property-based suites validating implementations against
// brute-force references on randomized small inputs:
//  * hierarchical clustering vs an O(n^3) reference agglomerator
//  * hypergeometric tail vs direct summation over the support
//  * mpx collectives under message storms
//  * wall culling: executing only culled commands == executing all
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "cluster/hclust.hpp"
#include "mpx/communicator.hpp"
#include "stats/special.hpp"
#include "util/rng.hpp"
#include "wall/command.hpp"
#include "wall/wall_display.hpp"

namespace {

namespace cl = fv::cluster;

// ---------------------------------------------------------------------------
// Reference agglomerative clustering: O(n^3), no caching tricks — scan the
// full active distance matrix for the global minimum at every step.
std::vector<cl::Merge> reference_agglomerate(cl::DistanceMatrix distances,
                                             cl::Linkage linkage) {
  const std::size_t n = distances.size();
  std::vector<bool> active(n, true);
  std::vector<std::size_t> size(n, 1);
  std::vector<int> node_id(n);
  std::iota(node_id.begin(), node_id.end(), 0);
  std::vector<cl::Merge> merges;
  for (std::size_t step = 0; step + 1 < n; ++step) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (distances.at(i, j) < best) {
          best = distances.at(i, j);
          bi = i;
          bj = j;
        }
      }
    }
    merges.push_back(cl::Merge{node_id[bi], node_id[bj], best});
    for (std::size_t k = 0; k < n; ++k) {
      if (!active[k] || k == bi || k == bj) continue;
      double updated = 0.0;
      switch (linkage) {
        case cl::Linkage::kSingle:
          updated = std::min(distances.at(bi, k), distances.at(bj, k));
          break;
        case cl::Linkage::kComplete:
          updated = std::max(distances.at(bi, k), distances.at(bj, k));
          break;
        case cl::Linkage::kAverage:
          updated = (static_cast<double>(size[bi]) * distances.at(bi, k) +
                     static_cast<double>(size[bj]) * distances.at(bj, k)) /
                    static_cast<double>(size[bi] + size[bj]);
          break;
      }
      distances.set(bi, k, static_cast<float>(updated));
    }
    active[bj] = false;
    size[bi] += size[bj];
    node_id[bi] = static_cast<int>(n + step);
  }
  return merges;
}

cl::DistanceMatrix random_distances(std::size_t n, fv::Rng& rng) {
  cl::DistanceMatrix d(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      d.set(i, j, static_cast<float>(rng.uniform(0.01, 2.0)));
    }
  }
  return d;
}

class HclustVsReferenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HclustVsReferenceTest, MatchesBruteForce) {
  const auto [seed, linkage_index] = GetParam();
  const auto linkage = static_cast<cl::Linkage>(linkage_index);
  fv::Rng rng(static_cast<std::uint64_t>(seed));
  const std::size_t n = 4 + static_cast<std::size_t>(seed) % 14;
  const auto distances = random_distances(n, rng);

  const auto fast = cl::agglomerate(distances, linkage);
  const auto reference = reference_agglomerate(distances, linkage);
  ASSERT_EQ(fast.size(), reference.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    // Merge heights must match exactly step for step. Child ids may swap
    // sides, so compare as unordered pairs.
    EXPECT_NEAR(fast[i].distance, reference[i].distance, 1e-5)
        << "merge " << i;
    const auto fast_pair = std::minmax(fast[i].left, fast[i].right);
    const auto ref_pair = std::minmax(reference[i].left, reference[i].right);
    EXPECT_EQ(fast_pair, ref_pair) << "merge " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomMatrices, HclustVsReferenceTest,
    ::testing::Combine(::testing::Range(1, 12),
                       ::testing::Values(0, 1, 2)));  // single/complete/avg

// ---------------------------------------------------------------------------
// Hypergeometric tails vs direct full-support summation.
class HypergeometricPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HypergeometricPropertyTest, TailsMatchDirectSummation) {
  fv::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::uint64_t N = 10 + rng.uniform_u64(200);
  const std::uint64_t K = rng.uniform_u64(N + 1);
  const std::uint64_t n = rng.uniform_u64(N + 1);
  const std::uint64_t hi = std::min(n, K);
  // Direct summation across the whole support.
  double cumulative = 0.0;
  for (std::uint64_t k = 0; k <= hi; ++k) {
    cumulative += fv::stats::hypergeometric_pmf(k, N, K, n);
  }
  EXPECT_NEAR(cumulative, 1.0, 1e-9);
  // Upper tail at a random threshold.
  const std::uint64_t threshold = rng.uniform_u64(hi + 2);
  double direct_upper = 0.0;
  for (std::uint64_t k = threshold; k <= hi; ++k) {
    direct_upper += fv::stats::hypergeometric_pmf(k, N, K, n);
  }
  EXPECT_NEAR(fv::stats::hypergeometric_upper_tail(threshold, N, K, n),
              std::min(direct_upper, 1.0), 1e-9);
  // Monotonicity: P[X >= k] decreases in k.
  double previous = 1.0;
  for (std::uint64_t k = 0; k <= hi + 1; ++k) {
    const double tail = fv::stats::hypergeometric_upper_tail(k, N, K, n);
    EXPECT_LE(tail, previous + 1e-12);
    previous = tail;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomUrns, HypergeometricPropertyTest,
                         ::testing::Range(0, 20));

// ---------------------------------------------------------------------------
// mpx under load: many interleaved tagged messages must be delivered in
// per-(source, tag) FIFO order with nothing lost.
TEST(MpxStressTest, MessageStormKeepsOrderAndCompleteness) {
  constexpr int kRanks = 4;
  constexpr int kMessagesPerPair = 200;
  fv::mpx::run_group(kRanks, [&](fv::mpx::Comm& comm) {
    // Everyone sends numbered messages to everyone on two tags.
    for (int dest = 0; dest < comm.size(); ++dest) {
      if (dest == comm.rank()) continue;
      for (int i = 0; i < kMessagesPerPair; ++i) {
        comm.send_value<int>(dest, i % 2, i);
      }
    }
    // Receive: per (source, tag) the values must arrive ascending.
    for (int source = 0; source < comm.size(); ++source) {
      if (source == comm.rank()) continue;
      for (int tag = 0; tag < 2; ++tag) {
        int previous = -1;
        for (int i = 0; i < kMessagesPerPair / 2; ++i) {
          const int value = comm.recv_value<int>(source, tag);
          EXPECT_GT(value, previous);
          EXPECT_EQ(value % 2, tag);
          previous = value;
        }
      }
    }
    comm.barrier();
  });
}

// ---------------------------------------------------------------------------
// Wall culling is sound: rendering a tile from the culled command list is
// identical to rendering it from the full list.
class CullSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(CullSoundnessTest, CulledEqualsFull) {
  fv::Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  fv::wall::RecordingCanvas canvas;
  for (int i = 0; i < 60; ++i) {
    const long x = static_cast<long>(rng.uniform_u64(400)) - 50;
    const long y = static_cast<long>(rng.uniform_u64(300)) - 50;
    switch (rng.uniform_u64(3)) {
      case 0:
        canvas.fill_rect(x, y, 1 + static_cast<long>(rng.uniform_u64(60)),
                         1 + static_cast<long>(rng.uniform_u64(40)),
                         fv::render::colors::kRed);
        break;
      case 1:
        canvas.line(x, y, x + 70, y + 25, fv::render::colors::kGreen);
        break;
      default:
        canvas.text(x, y, "NODE" + std::to_string(i),
                    fv::render::colors::kWhite, 1);
        break;
    }
  }
  const auto commands = canvas.take();
  const fv::layout::Rect tile{120, 80, 100, 100};

  fv::render::Framebuffer from_full(100, 100);
  fv::wall::replay_commands(from_full, commands, tile.x, tile.y);

  // Manual cull, then replay only the survivors.
  fv::wall::CommandList culled;
  for (const auto& command : commands) {
    if (fv::layout::overlaps(command.bounds(), tile)) {
      culled.push_back(command);
    }
  }
  fv::render::Framebuffer from_culled(100, 100);
  fv::wall::replay_commands(from_culled, culled, tile.x, tile.y);
  EXPECT_EQ(from_full, from_culled);
  EXPECT_LE(culled.size(), commands.size());
}

INSTANTIATE_TEST_SUITE_P(Scenes, CullSoundnessTest, ::testing::Range(0, 10));

}  // namespace
